(* The proxion command-line tool: run the paper's experiments, analyze raw
   bytecode, or mine selector collisions. *)

open Cmdliner

let print_and_exit s =
  print_string s;
  if s <> "" && s.[String.length s - 1] <> '\n' then print_newline ()

(* --- analyze: single-bytecode analysis --------------------------------- *)

let analyze_bytecode hex disasm_flag =
  match Hexutil.of_hex_opt hex with
  | None ->
      prerr_endline "error: invalid hex bytecode";
      1
  | Some code ->
      if disasm_flag then begin
        print_endline "-- disassembly --";
        print_endline (Evm.Disasm.format_listing (Evm.Disasm.disassemble code))
      end;
      let d = Proxion.Proxy_detect.detect_code code in
      (match d.Proxion.Proxy_detect.verdict with
      | Proxion.Proxy_detect.Not_proxy_no_delegatecall ->
          print_endline "verdict: NOT a proxy (no DELEGATECALL opcode)"
      | Proxion.Proxy_detect.Not_proxy_no_forward ->
          print_endline
            "verdict: NOT a proxy (DELEGATECALL present but the probe call \
             data was not forwarded)"
      | Proxion.Proxy_detect.Emulation_error msg ->
          Printf.printf "verdict: emulation error (%s)\n" msg
      | Proxion.Proxy_detect.Proxy { target; source } ->
          Printf.printf "verdict: PROXY, current logic target %s\n"
            (Evm.Address.to_hex target);
          (match source with
          | Proxion.Proxy_detect.Hardcoded ->
              print_endline "logic address: hard-coded in bytecode"
          | Proxion.Proxy_detect.Storage_slot slot ->
              Printf.printf "logic address: storage slot %s\n" (U256.to_hex slot)
          | Proxion.Proxy_detect.Computed ->
              print_endline "logic address: dynamically computed");
          Printf.printf "standard: %s\n"
            (Proxion.Standard_classify.to_string
               (Proxion.Standard_classify.classify ~code source)));
      let naive = Proxion.Selector_extract.naive_push4 code in
      let dispatch = Proxion.Selector_extract.dispatcher_selectors code in
      Printf.printf "PUSH4 constants (%d): %s\n" (List.length naive)
        (String.concat " " (List.map Hexutil.to_hex naive));
      Printf.printf "dispatcher selectors (%d): %s\n" (List.length dispatch)
        (String.concat " " (List.map Hexutil.to_hex dispatch));
      0

let analyze_cmd =
  let hex =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BYTECODE" ~doc:"Runtime bytecode as hex (0x-prefixed).")
  in
  let disasm_flag =
    Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the disassembly.")
  in
  let doc = "Analyze raw EVM bytecode: proxy detection and selector recovery." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze_bytecode $ hex $ disasm_flag)

(* --- landscape: section 7 ------------------------------------------------ *)

let total_arg =
  Arg.(
    value & opt int 36_000
    & info [ "n"; "total" ] ~docv:"N"
        ~doc:"Population size (default 36000 = 1/1000 of mainnet).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let landscape_config total seed =
  { Dataset.Generate.default_config with Dataset.Generate.total; seed }

(* Progress reporting goes through the structured log sink
   (Engine.Telemetry.attach_log): per-batch summary lines with retry and
   breaker counts folded in, per-item detail at warn/debug — on stderr,
   leaving stdout to the figures.  [--log-json] switches the same stream
   to JSONL. *)

(* Durable plain-file checkpoint: write the whole payload under a
   temporary name, then rename into place — a crash mid-write can never
   leave a half-written checkpoint behind, and I/O failures come back as
   a clean [Error] instead of an uncaught exception. *)
let write_checkpoint path json =
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_text tmp (fun oc ->
        Out_channel.output_string oc (Report.Json.to_string ~pretty:true json);
        Out_channel.output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let read_checkpoint path =
  match In_channel.with_open_text path In_channel.input_all with
  | data -> Report.Json.parse data
  | exception Sys_error msg -> Error msg

let print_landscape t findings =
  print_string (Experiments.Landscape.summary t);
  print_newline ();
  print_string (Experiments.Landscape.fig2 t);
  print_newline ();
  print_string (Experiments.Landscape.fig4 t);
  print_newline ();
  print_string (Experiments.Landscape.table3 t);
  print_newline ();
  print_string (Experiments.Landscape.fig5 t);
  print_newline ();
  print_string (Experiments.Landscape.table4 t);
  print_newline ();
  print_string (Experiments.Landscape.fig6 t);
  print_newline ();
  print_string (Experiments.Landscape.upgrade_authority t);
  (if findings > 0 then begin
     print_newline ();
     print_string
       (Proxion.Findings.render ~limit:findings
          (Proxion.Findings.of_report t.Experiments.Landscape.report))
   end);
  0

exception Journal_write_error of string

let run_landscape total seed findings batch_size domains progress
    checkpoint_path resume_path max_batches fault_rate fault_seed fault_latency
    retry_skipped journal_path watchdog_steps metrics_out metrics_det trace_out
    log_json log_level =
  match (batch_size, domains) with
  | Some b, _ when b <= 0 ->
      prerr_endline "error: --batch-size must be positive";
      1
  | _, Some d when d <= 0 ->
      prerr_endline "error: --domains must be positive";
      1
  | _ when fault_rate < 0.0 || fault_rate >= 1.0 ->
      prerr_endline "error: --fault-rate must be in [0, 1)";
      1
  | _ when (match watchdog_steps with Some w -> w <= 0 | None -> false) ->
      prerr_endline "error: --watchdog-steps must be positive";
      1
  | _ when journal_path <> None && resume_path <> None ->
      prerr_endline
        "error: --journal recovers its own state; pass either --journal or \
         --resume, not both";
      1
  | _ ->
  let land_ = Dataset.Generate.generate (landscape_config total seed) in
  let chain = land_.Dataset.Generate.chain in
  let source = land_.Dataset.Generate.source_of in
  Chain.reset_api_call_count chain;
  (* Telemetry: the registry always exists (recording into it is cheap
     and instrument wires the engine recorders); the trace collector and
     log sink only when requested. *)
  let registry = Obs.Metrics.create () in
  let journal_commits =
    Obs.Metrics.counter registry
      ~help:"Checkpoint frames committed to the durable journal"
      "proxion_journal_commits_total"
  in
  let trace = Option.map (fun _ -> Obs.Trace.create ()) trace_out in
  let log =
    if progress || log_json then
      Some (Obs.Log.create ~level:log_level ~json:log_json stderr)
    else None
  in
  (* Like --domains, the fault plan and the watchdog budget are execution
     parameters: any combination of knobs produces the same figures,
     faults only exercise the retry path and the watchdog only decides
     how fast a pathological item dies. *)
  let resilience =
    let plan =
      if fault_rate > 0.0 || fault_latency > 0.0 then
        Some
          (Resilience.Fault_plan.spec ~seed:fault_seed ~fault_rate
             ~mean_latency:fault_latency ())
      else None
    in
    Resilience.Transport.config ?plan ?step_budget:watchdog_steps ()
  in
  let journal =
    match journal_path with
    | None -> Ok None
    | Some path -> (
        match Resilience.Journal.open_journal path with
        | Ok (j, recovery) -> Ok (Some (j, recovery))
        | Error e -> Error e)
  in
  match journal with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok journal ->
  let restore_from what text =
    match
      Result.bind (Report.Json.parse text)
        (Proxion.Analyzer.restore ?batch_size ?domains ~resilience ~chain
           ~source)
    with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "cannot resume from %s: %s" what e)
  in
  let fresh () =
    let config =
      Proxion.Pipeline.Config.default
      |> (match batch_size with
         | Some b -> Proxion.Pipeline.Config.with_batch_size b
         | None -> Fun.id)
      |> (match domains with
         | Some d -> Proxion.Pipeline.Config.with_domains d
         | None -> Fun.id)
    in
    let t = Proxion.Analyzer.create ~config ~resilience ~chain ~source () in
    Proxion.Analyzer.submit_all t;
    Ok t
  in
  let analyzer =
    match (journal, resume_path) with
    | Some (j, recovery), _ -> (
        match recovery.Resilience.Journal.rec_state with
        | Some text ->
            let committed = recovery.Resilience.Journal.rec_committed in
            let dropped = recovery.Resilience.Journal.rec_dropped_bytes in
            Obs.Metrics.inc registry
              (Obs.Metrics.counter registry
                 ~help:"Journal recoveries performed at startup"
                 "proxion_journal_recoveries_total");
            Obs.Metrics.set registry
              (Obs.Metrics.gauge registry
                 ~help:"Committed frames found by the last journal recovery"
                 "proxion_journal_recovered_frames")
              (float_of_int committed);
            Obs.Metrics.set registry
              (Obs.Metrics.gauge registry
                 ~help:"Torn bytes truncated by the last journal recovery"
                 "proxion_journal_torn_bytes_dropped")
              (float_of_int dropped);
            (match log with
            | Some l ->
                Obs.Log.log l ~component:"journal"
                  ~fields:
                    [
                      ("path", Report.Json.String (Resilience.Journal.path j));
                      ("committed_frames", Report.Json.Int committed);
                      ("torn_bytes_dropped", Report.Json.Int dropped);
                    ]
                  Obs.Log.Info "recovered committed journal state"
            | None ->
                Printf.eprintf
                  "journal: recovered %s (%d committed frame%s, %d torn \
                   byte%s dropped)\n\
                   %!"
                  (Resilience.Journal.path j) committed
                  (if committed = 1 then "" else "s")
                  dropped
                  (if dropped = 1 then "" else "s"));
            restore_from (Resilience.Journal.path j) text
        | None -> fresh ())
    | None, Some path ->
        Result.bind (read_checkpoint path) (fun json ->
            match
              Proxion.Analyzer.restore ?batch_size ?domains ~resilience ~chain
                ~source json
            with
            | Ok t -> Ok t
            | Error e ->
                Error (Printf.sprintf "cannot resume from %s: %s" path e))
    | None, None -> fresh ()
  in
  match analyzer with
  | Error e ->
      Option.iter (fun (j, _) -> Resilience.Journal.close j) journal;
      prerr_endline ("error: " ^ e);
      1
  | Ok analyzer -> (
      Proxion.Analyzer.instrument ?trace ?log registry analyzer;
      (* One journal record + commit per batch barrier: a kill at any
         instant re-executes at most the batch in flight. *)
      Option.iter
        (fun (j, _) ->
          Proxion.Analyzer.subscribe analyzer (function
            | Engine.Batch_finished _ -> (
                let text =
                  Report.Json.to_string (Proxion.Analyzer.checkpoint analyzer)
                in
                match Resilience.Journal.checkpoint j text with
                | Ok () ->
                    Obs.Metrics.inc registry journal_commits
                | Error e -> raise (Journal_write_error e))
            | _ -> ()))
        journal;
      match
        Proxion.Analyzer.run ?max_batches analyzer;
        if retry_skipped then
          let n =
            Proxion.Analyzer.requeue
              ~classes:
                [
                  Engine.Transient;
                  Engine.Budget_exhausted;
                  Engine.Worker_crashed;
                  Engine.Permanent;
                ]
              analyzer
          in
          if n > 0 then begin
            Printf.eprintf
              "retry-skipped: requeued %d dead-letter contract%s\n%!" n
              (if n = 1 then "" else "s");
            Proxion.Analyzer.run analyzer
          end
      with
      | exception Journal_write_error e ->
          Option.iter (fun (j, _) -> Resilience.Journal.close j) journal;
          prerr_endline ("error: journal write failed: " ^ e);
          1
      | () ->
          Option.iter (fun (j, _) -> Resilience.Journal.close j) journal;
          let write_file path f =
            match Out_channel.with_open_text path f with
            | () -> true
            | exception Sys_error e ->
                Printf.eprintf "error: cannot write %s: %s\n%!" path e;
                false
          in
          (* [--metrics-out foo.json] snapshots as JSON, anything else as
             Prometheus text exposition.  [--metrics-deterministic] drops
             the timestamp and the volatile (wall-clock-derived) families
             so snapshots diff byte-identically across --domains. *)
          let metrics_ok =
            match metrics_out with
            | None -> true
            | Some path ->
                write_file path (fun oc ->
                    if Filename.check_suffix path ".json" then begin
                      Out_channel.output_string oc
                        (Report.Json.to_string ~pretty:true
                           (Obs.Metrics.to_json ~suppress_volatile:metrics_det
                              ?timestamp:
                                (if metrics_det then None
                                 else Some (Obs.Clock.now Obs.Clock.real))
                              registry));
                      Out_channel.output_char oc '\n'
                    end
                    else
                      Out_channel.output_string oc
                        (Obs.Metrics.to_prometheus
                           ~suppress_volatile:metrics_det registry))
          in
          let trace_ok =
            match (trace_out, trace) with
            | Some path, Some tr ->
                write_file path (fun oc -> Obs.Trace.write tr oc)
            | _ -> true
          in
          let outputs_failed = not (metrics_ok && trace_ok) in
          let checkpoint_failed =
            match checkpoint_path with
            | None -> false
            | Some path -> (
                match
                  write_checkpoint path (Proxion.Analyzer.checkpoint analyzer)
                with
                | Ok () -> false
                | Error e ->
                    prerr_endline ("error: cannot write checkpoint: " ^ e);
                    true)
          in
          if checkpoint_failed || outputs_failed then 1
          else if Proxion.Analyzer.pending analyzer > 0 then begin
            Printf.eprintf "stopped with %d contracts pending%s\n%!"
              (Proxion.Analyzer.pending analyzer)
              (match (checkpoint_path, journal_path) with
              | Some p, _ -> Printf.sprintf "; resume with --resume %s" p
              | None, Some p -> Printf.sprintf "; resume with --journal %s" p
              | None, None ->
                  " (pass --checkpoint or --journal to make this resumable)");
            0
          end
          else begin
            if progress then
              prerr_string (Proxion.Analyzer.stage_totals_table analyzer);
            let t =
              Experiments.Landscape.of_parts land_
                (Proxion.Analyzer.report analyzer)
            in
            print_landscape t findings
          end)

let landscape_cmd =
  let doc =
    "Generate a synthetic landscape, run the full pipeline through the \
     staged engine, and print the section-7 figures and tables."
  in
  let findings_arg =
    Arg.(
      value & opt int 0
      & info [ "findings" ] ~docv:"N"
          ~doc:"Also print the top $(docv) security findings.")
  in
  let batch_size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch-size" ] ~docv:"N"
          ~doc:
            "Contracts per scheduler batch (default 32; on --resume, \
             overrides the checkpointed value).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains per batch (default 1 = sequential; on \
             --resume, overrides the checkpointed value).  Output is \
             byte-identical for every value.")
  in
  let progress_arg =
    Arg.(
      value & flag
      & info [ "progress" ]
          ~doc:"Print per-batch progress and stage totals on stderr.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Write the engine state to $(docv) when this run stops.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by --checkpoint (same \
             --total and --seed so the landscape regenerates identically).")
  in
  let max_batches_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-batches" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) batches, leaving the rest queued (pair \
             with --checkpoint).")
  in
  let fault_rate_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ] ~docv:"P"
          ~doc:
            "Inject transient archive faults (rate limits, timeouts, node \
             errors) on fraction $(docv) of RPC attempts.  Deterministic: \
             the figures are identical to a fault-free run, faults only \
             exercise the retry/breaker path.")
  in
  let fault_seed_arg =
    Arg.(
      value & opt int 0
      & info [ "fault-seed" ] ~docv:"SEED"
          ~doc:"Seed of the injected fault plan (with --fault-rate).")
  in
  let fault_latency_arg =
    Arg.(
      value & opt float 0.0
      & info [ "fault-latency" ] ~docv:"S"
          ~doc:
            "Mean injected per-call latency in virtual seconds (never \
             sleeps the wall clock).")
  in
  let retry_skipped_arg =
    Arg.(
      value & flag
      & info [ "retry-skipped" ]
          ~doc:
            "After the run, requeue every dead-letter contract (all fault \
             classes) and run once more.")
  in
  let journal_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "journal" ] ~docv:"FILE"
          ~doc:
            "Keep a durable CRC-framed checkpoint journal at $(docv), \
             committed at every batch boundary.  If $(docv) already holds \
             committed state (e.g. after a kill -9), the run recovers it — \
             truncating any torn tail — and resumes; at most one batch is \
             re-executed.  Use the same --total and --seed so the landscape \
             regenerates identically.")
  in
  let watchdog_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "watchdog-steps" ] ~docv:"N"
          ~doc:
            "Per-contract EVM-step budget, enforced live inside emulation: \
             a contract looping in the probe is dead-lettered as \
             budget-exhausted after $(docv) steps instead of stalling its \
             worker.")
  in
  let metrics_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the telemetry registry to $(docv) when the run stops: \
             Prometheus text exposition, or a JSON snapshot when $(docv) \
             ends in .json.")
  in
  let metrics_det_arg =
    Arg.(
      value & flag
      & info [ "metrics-deterministic" ]
          ~doc:
            "Suppress wall-clock-derived (volatile) metric families and \
             the snapshot timestamp, making --metrics-out byte-identical \
             across --domains values.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome trace-event JSON span timeline (run > batch > \
             item > stage, plus sampled RPC/EVM worker lanes) to $(docv) — \
             loadable at ui.perfetto.dev.")
  in
  let log_json_arg =
    Arg.(
      value & flag
      & info [ "log-json" ]
          ~doc:
            "Emit progress as JSONL structured-log records on stderr \
             (implies --progress).")
  in
  let log_level_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("debug", Obs.Log.Debug);
               ("info", Obs.Log.Info);
               ("warn", Obs.Log.Warn);
               ("warning", Obs.Log.Warn);
               ("error", Obs.Log.Error);
             ])
          Obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:
            "Minimum progress-log level (debug|info|warn|error).  Debug \
             adds per-attempt retry and breaker detail that info \
             summarizes per batch.")
  in
  Cmd.v (Cmd.info "landscape" ~doc)
    Term.(
      const run_landscape $ total_arg $ seed_arg $ findings_arg
      $ batch_size_arg $ domains_arg $ progress_arg $ checkpoint_arg
      $ resume_arg $ max_batches_arg $ fault_rate_arg $ fault_seed_arg
      $ fault_latency_arg $ retry_skipped_arg $ journal_arg $ watchdog_arg
      $ metrics_out_arg $ metrics_det_arg $ trace_out_arg $ log_json_arg
      $ log_level_arg)

(* --- coverage / accuracy / perf / effectiveness ------------------------- *)

let coverage_cmd =
  let doc = "Regenerate Table 1 (tool coverage matrix) by measurement." in
  Cmd.v (Cmd.info "coverage" ~doc)
    Term.(
      const (fun () ->
          print_and_exit (Experiments.Table1.render (Experiments.Table1.run ()));
          0)
      $ const ())

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let accuracy_cmd =
  let size =
    Arg.(
      value & opt int 1
      & info [ "size-factor" ] ~docv:"K" ~doc:"Corpus scale multiplier.")
  in
  let doc = "Regenerate Table 2 (collision detection accuracy)." in
  Cmd.v (Cmd.info "accuracy" ~doc)
    Term.(
      const (fun size_factor json ->
          let rows = Experiments.Table2.run ~size_factor () in
          if json then
            print_endline (Report.Json.to_string (Experiments.Table2.to_json rows))
          else print_and_exit (Experiments.Table2.render rows);
          0)
      $ size $ json_flag)

let perf_cmd =
  let doc = "Regenerate the section 6.1 performance numbers." in
  Cmd.v (Cmd.info "perf" ~doc)
    Term.(
      const (fun total seed ->
          let config = landscape_config total seed in
          print_and_exit (Experiments.Perf.render (Experiments.Perf.run ~config ()));
          0)
      $ Arg.(
          value & opt int 2_000
          & info [ "n"; "total" ] ~docv:"N" ~doc:"Population size.")
      $ seed_arg)

let effectiveness_cmd =
  let doc = "Regenerate the section 6.2 effectiveness comparisons." in
  Cmd.v (Cmd.info "effectiveness" ~doc)
    Term.(
      const (fun total seed ->
          let config = landscape_config total seed in
          print_string
            (Experiments.Effectiveness.render_sanctuary
               (Experiments.Effectiveness.run_sanctuary ~config ()));
          print_newline ();
          print_string
            (Experiments.Effectiveness.render_crush
               (Experiments.Effectiveness.run_crush ~config ()));
          0)
      $ Arg.(
          value & opt int 2_000
          & info [ "n"; "total" ] ~docv:"N" ~doc:"Population size.")
      $ seed_arg)

(* --- source: render pattern-library contracts --------------------------- *)

let pattern_table =
  [
    ("honeypot-proxy", fun () -> Minisol.Patterns.honeypot_proxy ());
    ("honeypot-logic", fun () -> Minisol.Patterns.honeypot_logic ());
    ("audius-proxy", fun () -> Minisol.Patterns.audius_proxy ());
    ("audius-logic", fun () -> Minisol.Patterns.audius_logic ());
    ("eip1967-proxy", fun () -> Minisol.Patterns.eip1967_proxy ());
    ("eip1822-proxy", fun () -> Minisol.Patterns.eip1822_proxy ());
    ("eip1822-logic", fun () -> Minisol.Patterns.eip1822_logic ());
    ("slot-proxy", fun () -> Minisol.Patterns.slot_var_proxy ());
    ("diamond-proxy", fun () -> Minisol.Patterns.diamond_proxy ());
    ("counter", fun () -> Minisol.Patterns.counter_logic ());
    ("token", fun () -> Minisol.Patterns.erc20ish_logic ());
    ("padding-proxy", fun () -> Minisol.Patterns.padding_proxy ());
    ("padding-logic", fun () -> Minisol.Patterns.padding_logic ());
  ]

let source_cmd =
  let pattern_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PATTERN"
          ~doc:"Pattern name; omit to list available patterns.")
  in
  let bytecode_flag =
    Arg.(value & flag & info [ "b"; "bytecode" ] ~doc:"Also print the compiled runtime.")
  in
  let doc = "Render a pattern-library contract as Solidity-flavoured source." in
  Cmd.v (Cmd.info "source" ~doc)
    Term.(
      const (fun pattern bytecode ->
          match pattern with
          | None ->
              List.iter (fun (n, _) -> print_endline n) pattern_table;
              0
          | Some n -> (
              match List.assoc_opt n pattern_table with
              | None ->
                  Printf.eprintf "unknown pattern %s\n" n;
                  1
              | Some mk ->
                  let c = mk () in
                  print_string (Minisol.Pretty.contract c);
                  if bytecode then begin
                    print_newline ();
                    print_endline
                      (Hexutil.to_hex (Minisol.Codegen.runtime c))
                  end;
                  0))
      $ pattern_arg $ bytecode_flag)

(* --- trace: run calldata against bytecode and dump the call tree -------- *)

let trace_cmd =
  let code_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BYTECODE" ~doc:"Runtime bytecode (hex).")
  in
  let input_arg =
    Arg.(
      value & opt string "0x"
      & info [ "i"; "input" ] ~docv:"CALLDATA" ~doc:"Transaction call data (hex).")
  in
  let doc = "Execute bytecode in a fresh world and print the call tree." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const (fun code_hex input_hex ->
          match (Hexutil.of_hex_opt code_hex, Hexutil.of_hex_opt input_hex) with
          | Some code, Some input ->
              let host = Evm.Host.in_memory () in
              let target =
                Evm.Address.of_hex "0x000000000000000000000000000000000000d000"
              in
              Evm.Host.with_code host target code;
              let caller =
                Evm.Address.of_hex "0x000000000000000000000000000000000000c000"
              in
              let result, tree = Evm.Trace.run host ~caller ~target ~input in
              print_string (Evm.Trace.to_string tree);
              Printf.printf "gas used: %d\n" result.Evm.Interp.gas_used;
              0
          | _ ->
              prerr_endline "error: invalid hex";
              1)
      $ code_arg $ input_arg)

(* --- multichain: the 8.2 survey ------------------------------------------ *)

let multichain_cmd =
  let doc = "Run the section-8.2 multichain survey (eight EVM chains)." in
  Cmd.v (Cmd.info "multichain" ~doc)
    Term.(
      const (fun base seed json ->
          let rows = Experiments.Multichain.run ~base_total:base ~seed () in
          if json then
            print_endline (Report.Json.to_string (Experiments.Multichain.to_json rows))
          else print_and_exit (Experiments.Multichain.render rows);
          0)
      $ Arg.(
          value & opt int 1_200
          & info [ "n"; "base-total" ] ~docv:"N"
              ~doc:"Ethereum population; other chains scale relatively.")
      $ seed_arg $ json_flag)

(* --- mine: selector collisions ------------------------------------------ *)

let mine_cmd =
  let count =
    Arg.(
      value & opt int 5
      & info [ "c"; "count" ] ~docv:"N" ~doc:"Number of colliding pairs.")
  in
  let target =
    Arg.(
      value & opt (some string) None
      & info [ "target" ] ~docv:"PROTO"
          ~doc:
            "Search for a prototype colliding with $(docv) (e.g. \
             'free_ether_withdrawal()') instead of mining arbitrary pairs.")
  in
  let budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "budget" ] ~docv:"N" ~doc:"Attempt budget for --target search.")
  in
  let doc = "Mine 4-byte function-selector collisions (the paper's 2.3 claim)." in
  Cmd.v (Cmd.info "mine" ~doc)
    Term.(
      const (fun count target budget ->
          (match target with
          | Some proto -> (
              Printf.printf "searching for a collision with %s (selector %s)...\n%!"
                proto
                (Keccak.selector_hex proto);
              match Dataset.Sig_mine.find_collision_for ~budget proto with
              | Some other -> Printf.printf "found: %s\n" other
              | None ->
                  Printf.printf
                    "no collision within %d attempts (the paper needed ~600M \
                     for this shape)\n"
                    budget)
          | None ->
              List.iter
                (fun p ->
                  Printf.printf "%s  ==  %s  -> %s\n" p.Dataset.Sig_mine.sig_a
                    p.Dataset.Sig_mine.sig_b
                    (Hexutil.to_hex p.Dataset.Sig_mine.selector))
                (Dataset.Sig_mine.mine ~count ()));
          0)
      $ count $ target $ budget)

let default_cmd =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "proxion" ~version:"1.0.0"
      ~doc:
        "ProxioN: uncovering hidden proxy smart contracts and their collision \
         vulnerabilities (OCaml reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:default_cmd info
          [
            analyze_cmd;
            landscape_cmd;
            coverage_cmd;
            accuracy_cmd;
            perf_cmd;
            effectiveness_cmd;
            mine_cmd;
            multichain_cmd;
            source_cmd;
            trace_cmd;
          ]))
