(* The proxion command-line tool: scan synthetic landscapes, serve the
   analysis as a resident daemon, query it over the wire, benchmark it,
   analyze raw bytecode, or mine selector collisions. *)

open Cmdliner
module Chain_spec = Cli_spec.Chain_spec
module Faults_spec = Cli_spec.Faults_spec
module Telemetry_spec = Cli_spec.Telemetry_spec
module Journal_spec = Cli_spec.Journal_spec

let print_and_exit s =
  print_string s;
  if s <> "" && s.[String.length s - 1] <> '\n' then print_newline ()

(* --- analyze: single-bytecode analysis --------------------------------- *)

let analyze_bytecode hex disasm_flag =
  match Hexutil.of_hex_opt hex with
  | None ->
      prerr_endline "error: invalid hex bytecode";
      1
  | Some code ->
      if disasm_flag then begin
        print_endline "-- disassembly --";
        print_endline (Evm.Disasm.format_listing (Evm.Disasm.disassemble code))
      end;
      let d = Proxion.Proxy_detect.detect_code code in
      (match d.Proxion.Proxy_detect.verdict with
      | Proxion.Proxy_detect.Not_proxy_no_delegatecall ->
          print_endline "verdict: NOT a proxy (no DELEGATECALL opcode)"
      | Proxion.Proxy_detect.Not_proxy_no_forward ->
          print_endline
            "verdict: NOT a proxy (DELEGATECALL present but the probe call \
             data was not forwarded)"
      | Proxion.Proxy_detect.Emulation_error msg ->
          Printf.printf "verdict: emulation error (%s)\n" msg
      | Proxion.Proxy_detect.Proxy { target; source } ->
          Printf.printf "verdict: PROXY, current logic target %s\n"
            (Evm.Address.to_hex target);
          (match source with
          | Proxion.Proxy_detect.Hardcoded ->
              print_endline "logic address: hard-coded in bytecode"
          | Proxion.Proxy_detect.Storage_slot slot ->
              Printf.printf "logic address: storage slot %s\n" (U256.to_hex slot)
          | Proxion.Proxy_detect.Computed ->
              print_endline "logic address: dynamically computed");
          Printf.printf "standard: %s\n"
            (Proxion.Standard_classify.to_string
               (Proxion.Standard_classify.classify ~code source)));
      let naive = Proxion.Selector_extract.naive_push4 code in
      let dispatch = Proxion.Selector_extract.dispatcher_selectors code in
      Printf.printf "PUSH4 constants (%d): %s\n" (List.length naive)
        (String.concat " " (List.map Hexutil.to_hex naive));
      Printf.printf "dispatcher selectors (%d): %s\n" (List.length dispatch)
        (String.concat " " (List.map Hexutil.to_hex dispatch));
      0

let analyze_cmd =
  let hex =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BYTECODE" ~doc:"Runtime bytecode as hex (0x-prefixed).")
  in
  let disasm_flag =
    Arg.(value & flag & info [ "d"; "disasm" ] ~doc:"Print the disassembly.")
  in
  let doc = "Analyze raw EVM bytecode: proxy detection and selector recovery." in
  Cmd.v (Cmd.info "analyze" ~doc) Term.(const analyze_bytecode $ hex $ disasm_flag)

(* --- scan: the batch landscape run (section 7) --------------------------- *)

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let landscape_config total seed =
  Chain_spec.config { Chain_spec.total; seed }

(* Progress reporting goes through the structured log sink
   (Engine.Telemetry.attach_log): per-batch summary lines with retry and
   breaker counts folded in, per-item detail at warn/debug — on stderr,
   leaving stdout to the figures.  [--log-json] switches the same stream
   to JSONL. *)

(* Durable plain-file checkpoint: write the whole payload under a
   temporary name, then rename into place — a crash mid-write can never
   leave a half-written checkpoint behind, and I/O failures come back as
   a clean [Error] instead of an uncaught exception. *)
let write_checkpoint path json =
  let tmp = path ^ ".tmp" in
  match
    Out_channel.with_open_text tmp (fun oc ->
        Out_channel.output_string oc (Report.Json.to_string ~pretty:true json);
        Out_channel.output_char oc '\n');
    Sys.rename tmp path
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let read_checkpoint path =
  match In_channel.with_open_text path In_channel.input_all with
  | data -> Report.Json.parse data
  | exception Sys_error msg -> Error msg

let print_landscape t findings =
  print_string (Experiments.Landscape.summary t);
  print_newline ();
  print_string (Experiments.Landscape.fig2 t);
  print_newline ();
  print_string (Experiments.Landscape.fig4 t);
  print_newline ();
  print_string (Experiments.Landscape.table3 t);
  print_newline ();
  print_string (Experiments.Landscape.fig5 t);
  print_newline ();
  print_string (Experiments.Landscape.table4 t);
  print_newline ();
  print_string (Experiments.Landscape.fig6 t);
  print_newline ();
  print_string (Experiments.Landscape.upgrade_authority t);
  (if findings > 0 then begin
     print_newline ();
     print_string
       (Proxion.Findings.render ~limit:findings
          (Proxion.Findings.of_report t.Experiments.Landscape.report))
   end);
  0

exception Journal_write_error of string

(* The bounded-RSS path: drain the dataset stream batch-by-batch, analyze
   each batch against the chain as of its boundary, fold commutative
   aggregates, and evict every non-pinned subject before generating the
   next batch — so peak RSS tracks the batch size and the pinned logic
   pools, not --total.  Output is byte-identical at any --domains (the
   engine merge is input-ordered and the aggregates commutative); the peak
   RSS self-report goes to stderr so stdout stays diffable. *)
let run_stream_scan chain faults telemetry stream_batch batch_size domains =
  let gen_config = Chain_spec.config chain in
  let stream = Dataset.Generate.open_stream gen_config in
  let chain_ = Dataset.Generate.stream_chain stream in
  let source = Dataset.Generate.stream_source_of stream in
  Chain.reset_api_call_count chain_;
  let registry = Obs.Metrics.create () in
  let trace = Telemetry_spec.trace telemetry in
  let log = Telemetry_spec.log telemetry in
  let resilience = Faults_spec.resilience faults in
  let config =
    Proxion.Pipeline.Config.default
    |> (match batch_size with
       | Some b -> Proxion.Pipeline.Config.with_batch_size b
       | None -> Fun.id)
    |> (match domains with
       | Some d -> Proxion.Pipeline.Config.with_domains d
       | None -> Fun.id)
  in
  let analyzer =
    Proxion.Analyzer.create ~config ~resilience ~chain:chain_ ~source ()
  in
  Proxion.Analyzer.instrument ?trace ?log registry analyzer;
  let agg = Experiments.Stream_scan.create () in
  let rec loop () =
    match Dataset.Generate.next_batch stream ~batch:stream_batch with
    | None -> ()
    | Some specs ->
        Proxion.Analyzer.submit analyzer
          (Array.to_list
             (Array.map
                (fun sp ->
                  sp.Dataset.Generate.sp_label.Dataset.Generate.l_address)
                specs));
        (* Generation advanced the chain; re-snapshot the emulation host so
           probes see the batch-boundary head. *)
        Proxion.Analyzer.refresh_head analyzer;
        Proxion.Analyzer.run analyzer;
        let reports = Proxion.Analyzer.drain_results analyzer in
        Experiments.Stream_scan.absorb agg specs reports;
        let evicted = ref 0 in
        Array.iter
          (fun sp ->
            if not sp.Dataset.Generate.sp_pinned then begin
              Dataset.Generate.evict stream sp;
              incr evicted
            end)
          specs;
        Experiments.Stream_scan.note_evicted agg !evicted;
        loop ()
  in
  loop ();
  Chain.compact chain_;
  Experiments.Stream_scan.note_skipped agg
    (List.length (Proxion.Analyzer.skipped analyzer));
  let outputs_failed =
    not (Telemetry_spec.write_outputs telemetry ~registry ~trace)
  in
  print_string (Experiments.Stream_scan.summary agg);
  (match Experiments.Stream_scan.peak_rss_kb () with
  | Some kb ->
      Printf.eprintf "stream-scan: %d contracts, peak RSS %d KiB\n%!"
        (Dataset.Generate.stream_emitted stream)
        kb
  | None -> ());
  if outputs_failed then 1 else 0

let run_scan ~deprecated chain faults telemetry journal_path journal_fsync
    findings batch_size domains checkpoint_path resume_path max_batches
    retry_skipped stream =
  if deprecated then
    prerr_endline
      "warning: `proxion landscape` is a deprecated alias; use `proxion scan`";
  match (batch_size, domains, Faults_spec.validate faults) with
  | Some b, _, _ when b <= 0 ->
      prerr_endline "error: --batch-size must be positive";
      1
  | _, Some d, _ when d <= 0 ->
      prerr_endline "error: --domains must be positive";
      1
  | _, _, Error e ->
      prerr_endline ("error: " ^ e);
      1
  | _ when journal_path <> None && resume_path <> None ->
      prerr_endline
        "error: --journal recovers its own state; pass either --journal or \
         --resume, not both";
      1
  | _ when (match stream with Some s -> s <= 0 | None -> false) ->
      prerr_endline "error: --stream must be positive";
      1
  | _
    when stream <> None
         && (journal_path <> None || resume_path <> None
           || checkpoint_path <> None || max_batches <> None) ->
      prerr_endline
        "error: --stream is not checkpointable; drop \
         --journal/--resume/--checkpoint/--max-batches";
      1
  | _ when stream <> None && (findings > 0 || retry_skipped) ->
      prerr_endline
        "error: --stream folds results incrementally; --findings and \
         --retry-skipped need the materialized scan";
      1
  | _ when stream <> None ->
      run_stream_scan chain faults telemetry (Option.get stream) batch_size
        domains
  | _ ->
  let land_ = Chain_spec.generate chain in
  let chain_ = land_.Dataset.Generate.chain in
  let source = land_.Dataset.Generate.source_of in
  Chain.reset_api_call_count chain_;
  (* Telemetry: the registry always exists (recording into it is cheap
     and instrument wires the engine recorders); the trace collector and
     log sink only when requested. *)
  let registry = Obs.Metrics.create () in
  let journal_commits =
    Obs.Metrics.counter registry
      ~help:"Checkpoint frames committed to the durable journal"
      "proxion_journal_commits_total"
  in
  let trace = Telemetry_spec.trace telemetry in
  let log = Telemetry_spec.log telemetry in
  (* Like --domains, the fault plan and the watchdog budget are execution
     parameters: any combination of knobs produces the same figures,
     faults only exercise the retry path and the watchdog only decides
     how fast a pathological item dies. *)
  let resilience = Faults_spec.resilience faults in
  let journal =
    match journal_path with
    | None -> Ok None
    | Some path -> (
        match Resilience.Journal.open_journal ~fsync:journal_fsync path with
        | Ok (j, recovery) -> Ok (Some (j, recovery))
        | Error e -> Error e)
  in
  match journal with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok journal ->
  let restore_from what text =
    match
      Result.bind (Report.Json.parse text)
        (Proxion.Analyzer.restore ?batch_size ?domains ~resilience
           ~chain:chain_ ~source)
    with
    | Ok t -> Ok t
    | Error e -> Error (Printf.sprintf "cannot resume from %s: %s" what e)
  in
  let fresh () =
    let config =
      Proxion.Pipeline.Config.default
      |> (match batch_size with
         | Some b -> Proxion.Pipeline.Config.with_batch_size b
         | None -> Fun.id)
      |> (match domains with
         | Some d -> Proxion.Pipeline.Config.with_domains d
         | None -> Fun.id)
    in
    let t =
      Proxion.Analyzer.create ~config ~resilience ~chain:chain_ ~source ()
    in
    Proxion.Analyzer.submit_all t;
    Ok t
  in
  let analyzer =
    match (journal, resume_path) with
    | Some (j, recovery), _ -> (
        match recovery.Resilience.Journal.rec_state with
        | Some text ->
            let committed = recovery.Resilience.Journal.rec_committed in
            let dropped = recovery.Resilience.Journal.rec_dropped_bytes in
            Obs.Metrics.inc registry
              (Obs.Metrics.counter registry
                 ~help:"Journal recoveries performed at startup"
                 "proxion_journal_recoveries_total");
            Obs.Metrics.set registry
              (Obs.Metrics.gauge registry
                 ~help:"Committed frames found by the last journal recovery"
                 "proxion_journal_recovered_frames")
              (float_of_int committed);
            Obs.Metrics.set registry
              (Obs.Metrics.gauge registry
                 ~help:"Torn bytes truncated by the last journal recovery"
                 "proxion_journal_torn_bytes_dropped")
              (float_of_int dropped);
            (match log with
            | Some l ->
                Obs.Log.log l ~component:"journal"
                  ~fields:
                    [
                      ("path", Report.Json.String (Resilience.Journal.path j));
                      ("committed_frames", Report.Json.Int committed);
                      ("torn_bytes_dropped", Report.Json.Int dropped);
                    ]
                  Obs.Log.Info "recovered committed journal state"
            | None ->
                Printf.eprintf
                  "journal: recovered %s (%d committed frame%s, %d torn \
                   byte%s dropped)\n\
                   %!"
                  (Resilience.Journal.path j) committed
                  (if committed = 1 then "" else "s")
                  dropped
                  (if dropped = 1 then "" else "s"));
            restore_from (Resilience.Journal.path j) text
        | None -> fresh ())
    | None, Some path ->
        Result.bind (read_checkpoint path) (fun json ->
            match
              Proxion.Analyzer.restore ?batch_size ?domains ~resilience
                ~chain:chain_ ~source json
            with
            | Ok t -> Ok t
            | Error e ->
                Error (Printf.sprintf "cannot resume from %s: %s" path e))
    | None, None -> fresh ()
  in
  match analyzer with
  | Error e ->
      Option.iter (fun (j, _) -> Resilience.Journal.close j) journal;
      prerr_endline ("error: " ^ e);
      1
  | Ok analyzer -> (
      Proxion.Analyzer.instrument ?trace ?log registry analyzer;
      (* One journal record + commit per batch barrier: a kill at any
         instant re-executes at most the batch in flight. *)
      Option.iter
        (fun (j, _) ->
          Proxion.Analyzer.subscribe analyzer (function
            | Engine.Batch_finished _ -> (
                let text =
                  Report.Json.to_string (Proxion.Analyzer.checkpoint analyzer)
                in
                match Resilience.Journal.checkpoint j text with
                | Ok () ->
                    Obs.Metrics.inc registry journal_commits
                | Error e -> raise (Journal_write_error e))
            | _ -> ()))
        journal;
      match
        Proxion.Analyzer.run ?max_batches analyzer;
        if retry_skipped then
          let n =
            Proxion.Analyzer.requeue
              ~classes:
                [
                  Engine.Transient;
                  Engine.Budget_exhausted;
                  Engine.Worker_crashed;
                  Engine.Permanent;
                ]
              analyzer
          in
          if n > 0 then begin
            Printf.eprintf
              "retry-skipped: requeued %d dead-letter contract%s\n%!" n
              (if n = 1 then "" else "s");
            Proxion.Analyzer.run analyzer
          end
      with
      | exception Journal_write_error e ->
          Option.iter (fun (j, _) -> Resilience.Journal.close j) journal;
          prerr_endline ("error: journal write failed: " ^ e);
          1
      | () ->
          Option.iter (fun (j, _) -> Resilience.Journal.close j) journal;
          let outputs_failed =
            not (Telemetry_spec.write_outputs telemetry ~registry ~trace)
          in
          let checkpoint_failed =
            match checkpoint_path with
            | None -> false
            | Some path -> (
                match
                  write_checkpoint path (Proxion.Analyzer.checkpoint analyzer)
                with
                | Ok () -> false
                | Error e ->
                    prerr_endline ("error: cannot write checkpoint: " ^ e);
                    true)
          in
          if checkpoint_failed || outputs_failed then 1
          else if Proxion.Analyzer.pending analyzer > 0 then begin
            Printf.eprintf "stopped with %d contracts pending%s\n%!"
              (Proxion.Analyzer.pending analyzer)
              (match (checkpoint_path, journal_path) with
              | Some p, _ -> Printf.sprintf "; resume with --resume %s" p
              | None, Some p -> Printf.sprintf "; resume with --journal %s" p
              | None, None ->
                  " (pass --checkpoint or --journal to make this resumable)");
            0
          end
          else begin
            if telemetry.Telemetry_spec.progress then
              prerr_string (Proxion.Analyzer.stage_totals_table analyzer);
            let t =
              Experiments.Landscape.of_parts land_
                (Proxion.Analyzer.report analyzer)
            in
            print_landscape t findings
          end)

let scan_term ~deprecated =
  let findings_arg =
    Arg.(
      value & opt int 0
      & info [ "findings" ] ~docv:"N"
          ~doc:"Also print the top $(docv) security findings.")
  in
  let batch_size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch-size" ] ~docv:"N"
          ~doc:
            "Contracts per scheduler batch (default 32; on --resume, \
             overrides the checkpointed value).")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N"
          ~doc:
            "Worker domains per batch (default 1 = sequential; on \
             --resume, overrides the checkpointed value).  Output is \
             byte-identical for every value.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:"Write the engine state to $(docv) when this run stops.")
  in
  let resume_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "resume" ] ~docv:"FILE"
          ~doc:
            "Resume from a checkpoint written by --checkpoint (same \
             --total and --seed so the landscape regenerates identically).")
  in
  let max_batches_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-batches" ] ~docv:"N"
          ~doc:
            "Stop after $(docv) batches, leaving the rest queued (pair \
             with --checkpoint).")
  in
  let retry_skipped_arg =
    Arg.(
      value & flag
      & info [ "retry-skipped" ]
          ~doc:
            "After the run, requeue every dead-letter contract (all fault \
             classes) and run once more.")
  in
  let journal_arg =
    Journal_spec.term
      ~doc:
        "Keep a durable CRC-framed checkpoint journal at $(docv), \
         committed at every batch boundary.  If $(docv) already holds \
         committed state (e.g. after a kill -9), the run recovers it — \
         truncating any torn tail — and resumes; at most one batch is \
         re-executed.  Use the same --total and --seed so the landscape \
         regenerates identically."
  in
  let stream_arg =
    Arg.(
      value
      & opt ~vopt:(Some 4096) (some int) None
      & info [ "stream" ] ~docv:"N"
          ~doc:
            "Bounded-RSS mode: generate, analyze and evict the landscape \
             in batches of $(docv) contracts (default 4096) instead of \
             materializing it, so peak memory tracks the batch size — not \
             --total.  Prints an incremental summary; byte-identical at \
             any --domains.")
  in
  Term.(
    const (run_scan ~deprecated)
    $ Chain_spec.term () $ Faults_spec.term $ Telemetry_spec.term
    $ journal_arg $ Journal_spec.fsync_term $ findings_arg $ batch_size_arg
    $ domains_arg $ checkpoint_arg $ resume_arg $ max_batches_arg
    $ retry_skipped_arg $ stream_arg)

let scan_cmd =
  let doc =
    "Generate a synthetic landscape, run the full pipeline through the \
     staged engine, and print the section-7 figures and tables."
  in
  Cmd.v (Cmd.info "scan" ~doc) (scan_term ~deprecated:false)

let landscape_cmd =
  let doc = "Deprecated alias of $(b,scan)." in
  Cmd.v (Cmd.info "landscape" ~doc) (scan_term ~deprecated:true)

(* --- serve: the resident analysis daemon --------------------------------- *)

let run_serve chain faults host port workers backlog max_conns queue_limit
    idle_timeout_ms request_deadline_ms drain_grace_ms journal_path
    journal_fsync advance_seed deployments upgrades reorg_depth batch_size
    domains log_json log_level slow_ms trace_out flight_capacity flight_dump
    trace_seed =
  match Faults_spec.validate faults with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok faults ->
  let analysis =
    Proxion.Pipeline.Config.default
    |> (match batch_size with
       | Some b -> Proxion.Pipeline.Config.with_batch_size b
       | None -> Fun.id)
    |> (match domains with
       | Some d -> Proxion.Pipeline.Config.with_domains d
       | None -> Fun.id)
  in
  let config =
    Serve.Config.(
      default |> with_host host |> with_port port |> with_workers workers
      |> with_backlog backlog |> with_max_conns max_conns
      |> with_queue_limit queue_limit
      |> with_idle_timeout_ms idle_timeout_ms
      |> with_request_deadline_ms request_deadline_ms
      |> with_drain_grace_ms drain_grace_ms
      |> with_journal journal_path
      |> with_journal_fsync journal_fsync
      |> with_advance_seed advance_seed
      |> with_advance_spec { Serve.Advance.deployments; upgrades; reorg_depth }
      |> with_analysis analysis
      |> with_resilience (Faults_spec.resilience faults)
      |> with_slow_ms slow_ms
      |> with_flight_capacity flight_capacity
      |> with_flight_dump flight_dump
      |> with_trace_seed trace_seed)
  in
  let registry = Obs.Metrics.create () in
  let log = Obs.Log.create ~level:log_level ~json:log_json stderr in
  let trace = Option.map (fun _ -> Obs.Trace.create ()) trace_out in
  let land_ = Chain_spec.generate chain in
  match Serve.Daemon.create ~config ~registry ~log ?trace land_ with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok d -> (
      match Serve.Daemon.start d with
      | Error e ->
          prerr_endline ("error: " ^ e);
          1
      | Ok () ->
          Printf.printf "proxion daemon listening on %s:%d (%s, %d contracts)\n%!"
            host (Serve.Daemon.port d)
            (if Serve.Daemon.recovered d then "recovered warm from journal"
             else "analyzed cold")
            (Serve.Store.size (Serve.Daemon.store d));
          (* First signal: graceful drain — finish in-flight requests,
             flush the journal, exit.  Second signal: hard stop — cut
             in-flight reads at the next poll wakeup. *)
          let signals = Atomic.make 0 in
          let stop_signal _ =
            if Atomic.fetch_and_add signals 1 = 0 then
              Serve.Daemon.request_drain d
            else Serve.Daemon.request_stop d
          in
          Sys.set_signal Sys.sigint (Sys.Signal_handle stop_signal);
          Sys.set_signal Sys.sigterm (Sys.Signal_handle stop_signal);
          Serve.Daemon.wait d;
          (match (trace, trace_out) with
          | Some tr, Some path -> (
              try
                let oc = open_out path in
                Obs.Trace.write tr oc;
                close_out oc;
                Printf.eprintf "trace: %d events -> %s\n%!" (Obs.Trace.count tr)
                  path
              with Sys_error e -> Printf.eprintf "trace: %s\n%!" e)
          | _ -> ());
          0)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind/connect address.")

let serve_cmd =
  let doc =
    "Run the resident analysis daemon: analyze a landscape once (or \
     recover it warm from --journal), hold the results hot, and answer \
     wire-protocol queries (see doc/API.md) until shutdown."
  in
  let port_arg =
    Arg.(
      value & opt int 0
      & info [ "port" ] ~docv:"PORT"
          ~doc:"Listen port (default 0 = pick an ephemeral port).")
  in
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N" ~doc:"Connection-serving worker domains.")
  in
  let backlog_arg =
    Arg.(value & opt int 16 & info [ "backlog" ] ~docv:"N" ~doc:"Listen backlog.")
  in
  let max_conns_arg =
    Arg.(
      value & opt int 64
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Open-connection cap; excess connections are shed at accept \
             with a structured overloaded error.")
  in
  let queue_limit_arg =
    Arg.(
      value & opt int 32
      & info [ "queue-limit" ] ~docv:"N"
          ~doc:
            "Accepted-but-unclaimed connection cap (reject-newest \
             load-shedding).")
  in
  let idle_timeout_arg =
    Arg.(
      value & opt int 10_000
      & info [ "idle-timeout-ms" ] ~docv:"MS"
          ~doc:
            "Close a connection whose next request frame does not complete \
             within $(docv) (slowloris defense).")
  in
  let request_deadline_arg =
    Arg.(
      value & opt int 5_000
      & info [ "request-deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request handler budget; exceeding it answers a structured \
             deadline_exceeded error.")
  in
  let drain_grace_arg =
    Arg.(
      value & opt int 5_000
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:
            "How long a drain (SIGTERM or shutdown RPC) waits for in-flight \
             requests before cutting connections.")
  in
  let journal_arg =
    Journal_spec.term
      ~doc:
        "Snapshot every increment to a durable journal at $(docv); a \
         killed daemon restarted with the same landscape flags recovers \
         warm without re-analyzing."
  in
  let advance_seed_arg =
    Arg.(
      value & opt int 7
      & info [ "advance-seed" ] ~docv:"SEED"
          ~doc:"Seed of the scripted chain advances (watch mode).")
  in
  let deployments_arg =
    Arg.(
      value & opt int 3
      & info [ "advance-deployments" ] ~docv:"N"
          ~doc:"New contracts deployed per advance.")
  in
  let upgrades_arg =
    Arg.(
      value & opt int 2
      & info [ "advance-upgrades" ] ~docv:"N"
          ~doc:"Proxy upgrade events per advance.")
  in
  let reorg_depth_arg =
    Arg.(
      value & opt int 0
      & info [ "reorg-depth" ] ~docv:"K"
          ~doc:
            "Maximum blocks a seeded chain reorganization may roll back \
             before an advance (default 0 = no reorgs).  Orphaned \
             subjects are retracted from the store and the divergent \
             suffix re-analyzed; the store stays byte-identical to a \
             cold re-run over the post-reorg chain.")
  in
  let batch_size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "batch-size" ] ~docv:"N" ~doc:"Analyzer batch size.")
  in
  let domains_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ] ~docv:"N" ~doc:"Analyzer worker domains.")
  in
  let log_json_arg =
    Arg.(
      value & flag
      & info [ "log-json" ] ~doc:"JSONL structured access log on stderr.")
  in
  let log_level_arg =
    Arg.(
      value
      & opt
          (enum
             [
               ("debug", Obs.Log.Debug);
               ("info", Obs.Log.Info);
               ("warn", Obs.Log.Warn);
               ("warning", Obs.Log.Warn);
               ("error", Obs.Log.Error);
             ])
          Obs.Log.Info
      & info [ "log-level" ] ~docv:"LEVEL" ~doc:"Minimum access-log level.")
  in
  let slow_ms_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Log requests slower than $(docv) at warn level with their \
             full span tree inline.")
  in
  let trace_out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Collect request/RPC/EVM spans and write them as Chrome \
             trace-event JSON to $(docv) on shutdown.")
  in
  let flight_capacity_arg =
    Arg.(
      value & opt int 256
      & info [ "flight-capacity" ] ~docv:"N"
          ~doc:"Flight-recorder ring size (most recent $(docv) events).")
  in
  let flight_dump_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight-dump" ] ~docv:"FILE"
          ~doc:
            "Dump the flight-recorder ring to $(docv) on drain, stop and \
             worker crash.")
  in
  let trace_seed_arg =
    Arg.(
      value & opt int 11
      & info [ "trace-seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the daemon's trace-id generator for requests that \
             carry no client trace context.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve
      $ Chain_spec.term ~default_total:2_000 ()
      $ Faults_spec.term $ host_arg $ port_arg $ workers_arg $ backlog_arg
      $ max_conns_arg $ queue_limit_arg $ idle_timeout_arg
      $ request_deadline_arg $ drain_grace_arg $ journal_arg
      $ Journal_spec.fsync_term $ advance_seed_arg $ deployments_arg
      $ upgrades_arg $ reorg_depth_arg $ batch_size_arg $ domains_arg
      $ log_json_arg $ log_level_arg $ slow_ms_arg $ trace_out_arg
      $ flight_capacity_arg $ flight_dump_arg $ trace_seed_arg)

(* --- query: the thin wire client ----------------------------------------- *)

let parse_param kv =
  match String.index_opt kv '=' with
  | None -> Error (Printf.sprintf "%S: expected KEY=VALUE" kv)
  | Some i ->
      let key = String.sub kv 0 i in
      let v = String.sub kv (i + 1) (String.length kv - i - 1) in
      let json =
        match int_of_string_opt v with
        | Some n -> Report.Json.Int n
        | None -> (
            match v with
            | "true" -> Report.Json.Bool true
            | "false" -> Report.Json.Bool false
            | _ -> Report.Json.String v)
      in
      Ok (key, json)

let run_query host port timeout_ms trace_seed meth raw_params =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | kv :: rest -> (
        match parse_param kv with
        | Ok p -> parse (p :: acc) rest
        | Error e -> Error e)
  in
  let timeout_ms = if timeout_ms <= 0 then None else Some timeout_ms in
  (* Only attach a trace context when asked: an untraced request is
     byte-identical to previous releases, keeping golden transcripts
     stable. *)
  let trace =
    Option.map
      (fun seed ->
        let ctx = Obs.Trace.next_ctx (Obs.Trace.gen ~seed) in
        {
          Serve.Wire.tc_trace_id = Obs.Trace.id_to_hex ctx.Obs.Trace.trace_id;
          tc_span_id = Obs.Trace.id_to_hex ctx.Obs.Trace.span_id;
        })
      trace_seed
  in
  match parse [] raw_params with
  | Error e ->
      prerr_endline ("error: " ^ e);
      1
  | Ok params -> (
      match Serve.Client.connect ~host ?timeout_ms ~port () with
      | Error e ->
          Printf.eprintf "error: cannot connect to %s:%d: %s\n%!" host port e;
          1
      | Ok c ->
          (match trace with
          | Some tc ->
              Printf.eprintf "trace_id=%s\n%!" tc.Serve.Wire.tc_trace_id
          | None -> ());
          let code =
            match Serve.Client.call ?trace c ~meth ~params with
            | Ok result ->
                print_endline (Report.Json.to_string ~pretty:true result);
                0
            | Error e ->
                prerr_endline ("error: " ^ e);
                1
          in
          Serve.Client.close c;
          code)

let port_arg =
  Arg.(
    required
    & opt (some int) None
    & info [ "port" ] ~docv:"PORT" ~doc:"Daemon port (printed by serve).")

let query_cmd =
  let doc =
    "Send one request to a running daemon and print the JSON result: \
     $(b,proxion query --port 7000 is_proxy address=0xabc...)."
  in
  let meth_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"METHOD"
          ~doc:
            "Wire method: get_status, is_proxy, logic_history, collisions, \
             list_findings, report, metrics, advance, query, flight, \
             reorgs, shutdown.")
  in
  let params_arg =
    Arg.(
      value & pos_right 0 string []
      & info [] ~docv:"KEY=VALUE" ~doc:"Request parameters.")
  in
  let timeout_arg =
    Arg.(
      value & opt int 10_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Connect/send/receive timeout so the query cannot hang on a \
             wedged daemon (0 disables).")
  in
  let trace_seed_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-seed" ] ~docv:"SEED"
          ~doc:
            "Attach a deterministic trace context derived from $(docv); \
             the trace_id is printed to stderr so it can be joined \
             against the daemon's trace file.")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const run_query $ host_arg $ port_arg $ timeout_arg $ trace_seed_arg
      $ meth_arg $ params_arg)

(* --- top: the live ops console ------------------------------------------- *)

let run_top host port timeout_ms interval_ms iterations no_clear =
  let timeout_ms = if timeout_ms <= 0 then None else Some timeout_ms in
  let poll () =
    match Serve.Client.connect ~host ?timeout_ms ~port () with
    | Error e ->
        Error (Printf.sprintf "cannot connect to %s:%d: %s" host port e)
    | Ok c ->
        let r =
          match
            Serve.Client.call c ~meth:"metrics"
              ~params:[ ("format", Report.Json.String "json") ]
          with
          | Error e -> Error e
          | Ok metrics -> (
              match Serve.Ops.of_metrics_json metrics with
              | Error e -> Error e
              | Ok view ->
                  (* Health and flight are best-effort garnish: a daemon
                     mid-drain still renders from metrics alone. *)
                  let view =
                    match Serve.Client.call c ~meth:"health" ~params:[] with
                    | Ok h -> Serve.Ops.with_health view h
                    | Error _ -> view
                  in
                  let view =
                    match
                      Serve.Client.call c ~meth:"flight"
                        ~params:[ ("limit", Report.Json.Int 64) ]
                    with
                    | Ok f -> Serve.Ops.with_flight view f
                    | Error _ -> view
                  in
                  Ok view)
        in
        Serve.Client.close c;
        r
  in
  let prev = ref None in
  let code = ref 0 in
  let i = ref 0 in
  let continue = ref true in
  while !continue && (iterations <= 0 || !i < iterations) do
    (match poll () with
    | Error e ->
        prerr_endline ("error: " ^ e);
        code := 1;
        continue := false
    | Ok view ->
        let dt =
          if !i = 0 then 0.0 else float_of_int interval_ms /. 1000.0
        in
        if not no_clear then print_string "\027[2J\027[H";
        print_string (Serve.Ops.render ?prev:!prev ~dt view);
        flush stdout;
        prev := Some view);
    incr i;
    if !continue && (iterations <= 0 || !i < iterations) then
      Unix.sleepf (float_of_int interval_ms /. 1000.0)
  done;
  !code

let top_cmd =
  let doc =
    "Live ops console for a running daemon: polls metrics/health/flight \
     and renders request rates, per-method latency quantiles with their \
     max-latency trace exemplars, shed/drain state, endpoint health and \
     the flight-recorder tail."
  in
  let interval_arg =
    Arg.(
      value & opt int 1_000
      & info [ "interval-ms" ] ~docv:"MS" ~doc:"Poll interval.")
  in
  let iterations_arg =
    Arg.(
      value & opt int 0
      & info [ "iterations" ] ~docv:"N"
          ~doc:"Stop after $(docv) polls (default 0 = until interrupted).")
  in
  let no_clear_arg =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:"Append frames instead of clearing the screen (for logs).")
  in
  let timeout_arg =
    Arg.(
      value & opt int 5_000
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Per-poll connect/send/receive timeout (0 disables).")
  in
  Cmd.v (Cmd.info "top" ~doc)
    Term.(
      const run_top $ host_arg $ port_arg $ timeout_arg $ interval_arg
      $ iterations_arg $ no_clear_arg)

(* --- bench: load-generate against a self-hosted daemon ------------------- *)

let run_bench chain host clients requests workers attackers hostile_seed
    target out =
  if clients <= 0 || requests <= 0 then begin
    prerr_endline "error: --clients and --requests must be positive";
    1
  end
  else if attackers < 0 then begin
    prerr_endline "error: --attackers must be non-negative";
    1
  end
  else
    (* The landscape regenerates from the chain flags even when targeting
       an existing daemon: the query mix needs its addresses, and the
       daemon must have been started with the same flags. *)
    let land_ = Chain_spec.generate chain in
    let addresses =
      List.map
        (fun l -> l.Dataset.Generate.l_address)
        land_.Dataset.Generate.labels
    in
    let daemon =
      match target with
      | Some port -> Ok (port, fun () -> ())
      | None -> (
          let config = Serve.Config.(default |> with_workers workers) in
          match Serve.Daemon.create ~config land_ with
          | Error e -> Error e
          | Ok d -> (
              match Serve.Daemon.start d with
              | Error e -> Error e
              | Ok () -> Ok (Serve.Daemon.port d, fun () -> Serve.Daemon.stop d)
              ))
    in
    match daemon with
    | Error e ->
        prerr_endline ("error: " ^ e);
        1
    | Ok (port, teardown) -> (
        let outcome =
          if attackers = 0 then
            Result.map
              (fun s -> (s, None))
              (Serve.Loadgen.run ~host ~port ~clients ~requests ~addresses ())
          else
            Result.map
              (fun (s, h) -> (s, Some h))
              (Serve.Loadgen.run_hostile ~host ~port ~clients ~requests
                 ~attackers ~seed:hostile_seed ~addresses ())
        in
        teardown ();
        match outcome with
        | Error e ->
            prerr_endline ("error: " ^ e);
            1
        | Ok (stats, hostile) ->
            Printf.printf
              "%d clients x %d requests: %.0f req/s  p50 %.3f ms  p90 %.3f \
               ms  p99 %.3f ms  (%d errors, %d shed, %d deadline)\n"
              stats.Serve.Loadgen.lg_clients requests
              stats.Serve.Loadgen.lg_rps stats.Serve.Loadgen.lg_p50_ms
              stats.Serve.Loadgen.lg_p90_ms stats.Serve.Loadgen.lg_p99_ms
              stats.Serve.Loadgen.lg_errors stats.Serve.Loadgen.lg_shed
              stats.Serve.Loadgen.lg_deadline;
            (match hostile with
            | None -> ()
            | Some h ->
                Printf.printf
                  "hostile: %d attackers, %d rounds (%d shed, %d answered, \
                   %d cut, %d connect failures)\n"
                  h.Serve.Loadgen.hs_attackers h.Serve.Loadgen.hs_rounds
                  h.Serve.Loadgen.hs_shed h.Serve.Loadgen.hs_answered
                  h.Serve.Loadgen.hs_cut h.Serve.Loadgen.hs_connect_failures);
            (match out with
            | None -> 0
            | Some path ->
                let json =
                  Report.Json.Obj
                    ([ ("well_behaved", Serve.Loadgen.to_json stats) ]
                    @
                    match hostile with
                    | None -> []
                    | Some h ->
                        [ ("hostile", Serve.Loadgen.hostile_to_json h) ])
                in
                if
                  Telemetry_spec.write_file path (fun oc ->
                      Out_channel.output_string oc
                        (Report.Json.to_string ~pretty:true json);
                      Out_channel.output_char oc '\n')
                then 0
                else 1))

let bench_cmd =
  let doc =
    "Self-host a daemon over a synthetic landscape and drive it with \
     concurrent load-generator clients (see bench/ for the full \
     BENCH_serve.json sweeps)."
  in
  let clients_arg =
    Arg.(
      value & opt int 4
      & info [ "clients" ] ~docv:"N" ~doc:"Concurrent client domains.")
  in
  let requests_arg =
    Arg.(
      value & opt int 200
      & info [ "requests" ] ~docv:"N" ~doc:"Requests per client.")
  in
  let workers_arg =
    Arg.(
      value & opt int 4
      & info [ "workers" ] ~docv:"N" ~doc:"Daemon worker domains.")
  in
  let attackers_arg =
    Arg.(
      value & opt int 0
      & info [ "attackers" ] ~docv:"N"
          ~doc:
            "Also run $(docv) hostile clients (slowloris, half-open, \
             never-reads, oversized-flooder, connect-idle personas, \
             round-robin) while measuring well-behaved goodput.")
  in
  let hostile_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "hostile-seed" ] ~docv:"SEED"
          ~doc:"Seed of the hostile clients' splitmix64 streams.")
  in
  let target_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "target-port" ] ~docv:"PORT"
          ~doc:
            "Drive an already-running daemon on $(docv) instead of \
             self-hosting one (start it with the same landscape flags).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Also write the stats as JSON.")
  in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const run_bench
      $ Chain_spec.term ~default_total:1_000 ()
      $ host_arg $ clients_arg $ requests_arg $ workers_arg $ attackers_arg
      $ hostile_seed_arg $ target_arg $ out_arg)

(* --- coverage / accuracy / perf / effectiveness ------------------------- *)

let coverage_cmd =
  let doc = "Regenerate Table 1 (tool coverage matrix) by measurement." in
  Cmd.v (Cmd.info "coverage" ~doc)
    Term.(
      const (fun () ->
          print_and_exit (Experiments.Table1.render (Experiments.Table1.run ()));
          0)
      $ const ())

let json_flag =
  Arg.(value & flag & info [ "json" ] ~doc:"Emit machine-readable JSON.")

let accuracy_cmd =
  let size =
    Arg.(
      value & opt int 1
      & info [ "size-factor" ] ~docv:"K" ~doc:"Corpus scale multiplier.")
  in
  let doc = "Regenerate Table 2 (collision detection accuracy)." in
  Cmd.v (Cmd.info "accuracy" ~doc)
    Term.(
      const (fun size_factor json ->
          let rows = Experiments.Table2.run ~size_factor () in
          if json then
            print_endline (Report.Json.to_string (Experiments.Table2.to_json rows))
          else print_and_exit (Experiments.Table2.render rows);
          0)
      $ size $ json_flag)

let perf_cmd =
  let doc = "Regenerate the section 6.1 performance numbers." in
  Cmd.v (Cmd.info "perf" ~doc)
    Term.(
      const (fun total seed ->
          let config = landscape_config total seed in
          print_and_exit (Experiments.Perf.render (Experiments.Perf.run ~config ()));
          0)
      $ Arg.(
          value & opt int 2_000
          & info [ "n"; "total" ] ~docv:"N" ~doc:"Population size.")
      $ seed_arg)

let effectiveness_cmd =
  let doc = "Regenerate the section 6.2 effectiveness comparisons." in
  Cmd.v (Cmd.info "effectiveness" ~doc)
    Term.(
      const (fun total seed ->
          let config = landscape_config total seed in
          print_string
            (Experiments.Effectiveness.render_sanctuary
               (Experiments.Effectiveness.run_sanctuary ~config ()));
          print_newline ();
          print_string
            (Experiments.Effectiveness.render_crush
               (Experiments.Effectiveness.run_crush ~config ()));
          0)
      $ Arg.(
          value & opt int 2_000
          & info [ "n"; "total" ] ~docv:"N" ~doc:"Population size.")
      $ seed_arg)

(* --- source: render pattern-library contracts --------------------------- *)

let pattern_table =
  [
    ("honeypot-proxy", fun () -> Minisol.Patterns.honeypot_proxy ());
    ("honeypot-logic", fun () -> Minisol.Patterns.honeypot_logic ());
    ("audius-proxy", fun () -> Minisol.Patterns.audius_proxy ());
    ("audius-logic", fun () -> Minisol.Patterns.audius_logic ());
    ("eip1967-proxy", fun () -> Minisol.Patterns.eip1967_proxy ());
    ("eip1822-proxy", fun () -> Minisol.Patterns.eip1822_proxy ());
    ("eip1822-logic", fun () -> Minisol.Patterns.eip1822_logic ());
    ("slot-proxy", fun () -> Minisol.Patterns.slot_var_proxy ());
    ("diamond-proxy", fun () -> Minisol.Patterns.diamond_proxy ());
    ("counter", fun () -> Minisol.Patterns.counter_logic ());
    ("token", fun () -> Minisol.Patterns.erc20ish_logic ());
    ("padding-proxy", fun () -> Minisol.Patterns.padding_proxy ());
    ("padding-logic", fun () -> Minisol.Patterns.padding_logic ());
  ]

let source_cmd =
  let pattern_arg =
    Arg.(
      value
      & pos 0 (some string) None
      & info [] ~docv:"PATTERN"
          ~doc:"Pattern name; omit to list available patterns.")
  in
  let bytecode_flag =
    Arg.(value & flag & info [ "b"; "bytecode" ] ~doc:"Also print the compiled runtime.")
  in
  let doc = "Render a pattern-library contract as Solidity-flavoured source." in
  Cmd.v (Cmd.info "source" ~doc)
    Term.(
      const (fun pattern bytecode ->
          match pattern with
          | None ->
              List.iter (fun (n, _) -> print_endline n) pattern_table;
              0
          | Some n -> (
              match List.assoc_opt n pattern_table with
              | None ->
                  Printf.eprintf "unknown pattern %s\n" n;
                  1
              | Some mk ->
                  let c = mk () in
                  print_string (Minisol.Pretty.contract c);
                  if bytecode then begin
                    print_newline ();
                    print_endline
                      (Hexutil.to_hex (Minisol.Codegen.runtime c))
                  end;
                  0))
      $ pattern_arg $ bytecode_flag)

(* --- trace: run calldata against bytecode and dump the call tree -------- *)

let trace_cmd =
  let code_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"BYTECODE" ~doc:"Runtime bytecode (hex).")
  in
  let input_arg =
    Arg.(
      value & opt string "0x"
      & info [ "i"; "input" ] ~docv:"CALLDATA" ~doc:"Transaction call data (hex).")
  in
  let doc = "Execute bytecode in a fresh world and print the call tree." in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const (fun code_hex input_hex ->
          match (Hexutil.of_hex_opt code_hex, Hexutil.of_hex_opt input_hex) with
          | Some code, Some input ->
              let host = Evm.Host.in_memory () in
              let target =
                Evm.Address.of_hex "0x000000000000000000000000000000000000d000"
              in
              Evm.Host.with_code host target code;
              let caller =
                Evm.Address.of_hex "0x000000000000000000000000000000000000c000"
              in
              let result, tree = Evm.Trace.run host ~caller ~target ~input in
              print_string (Evm.Trace.to_string tree);
              Printf.printf "gas used: %d\n" result.Evm.Interp.gas_used;
              0
          | _ ->
              prerr_endline "error: invalid hex";
              1)
      $ code_arg $ input_arg)

(* --- multichain: the 8.2 survey ------------------------------------------ *)

let multichain_cmd =
  let doc = "Run the section-8.2 multichain survey (eight EVM chains)." in
  Cmd.v (Cmd.info "multichain" ~doc)
    Term.(
      const (fun base seed json ->
          let rows = Experiments.Multichain.run ~base_total:base ~seed () in
          if json then
            print_endline (Report.Json.to_string (Experiments.Multichain.to_json rows))
          else print_and_exit (Experiments.Multichain.render rows);
          0)
      $ Arg.(
          value & opt int 1_200
          & info [ "n"; "base-total" ] ~docv:"N"
              ~doc:"Ethereum population; other chains scale relatively.")
      $ seed_arg $ json_flag)

(* --- mine: selector collisions ------------------------------------------ *)

let mine_cmd =
  let count =
    Arg.(
      value & opt int 5
      & info [ "c"; "count" ] ~docv:"N" ~doc:"Number of colliding pairs.")
  in
  let target =
    Arg.(
      value & opt (some string) None
      & info [ "target" ] ~docv:"PROTO"
          ~doc:
            "Search for a prototype colliding with $(docv) (e.g. \
             'free_ether_withdrawal()') instead of mining arbitrary pairs.")
  in
  let budget =
    Arg.(
      value & opt int 2_000_000
      & info [ "budget" ] ~docv:"N" ~doc:"Attempt budget for --target search.")
  in
  let doc = "Mine 4-byte function-selector collisions (the paper's 2.3 claim)." in
  Cmd.v (Cmd.info "mine" ~doc)
    Term.(
      const (fun count target budget ->
          (match target with
          | Some proto -> (
              Printf.printf "searching for a collision with %s (selector %s)...\n%!"
                proto
                (Keccak.selector_hex proto);
              match Dataset.Sig_mine.find_collision_for ~budget proto with
              | Some other -> Printf.printf "found: %s\n" other
              | None ->
                  Printf.printf
                    "no collision within %d attempts (the paper needed ~600M \
                     for this shape)\n"
                    budget)
          | None ->
              List.iter
                (fun p ->
                  Printf.printf "%s  ==  %s  -> %s\n" p.Dataset.Sig_mine.sig_a
                    p.Dataset.Sig_mine.sig_b
                    (Hexutil.to_hex p.Dataset.Sig_mine.selector))
                (Dataset.Sig_mine.mine ~count ()));
          0)
      $ count $ target $ budget)

let default_cmd =
  Term.(ret (const (fun () -> `Help (`Pager, None)) $ const ()))

let () =
  let info =
    Cmd.info "proxion" ~version:"1.0.0"
      ~doc:
        "ProxioN: uncovering hidden proxy smart contracts and their collision \
         vulnerabilities (OCaml reproduction)."
  in
  exit
    (Cmd.eval'
       (Cmd.group ~default:default_cmd info
          [
            analyze_cmd;
            scan_cmd;
            landscape_cmd;
            serve_cmd;
            query_cmd;
            top_cmd;
            bench_cmd;
            coverage_cmd;
            accuracy_cmd;
            perf_cmd;
            effectiveness_cmd;
            mine_cmd;
            multichain_cmd;
            source_cmd;
            trace_cmd;
          ]))
