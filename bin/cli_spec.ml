(* Shared command-line flag groups.  Every subcommand that touches a
   synthetic chain, fault injection, telemetry or the durable journal
   assembles its interface from these four specs, so flags spell and
   behave identically across `proxion scan`, `serve`, `query` and
   `bench`. *)

open Cmdliner

(* --- chain: the synthetic landscape -------------------------------------- *)

module Chain_spec = struct
  type t = { total : int; seed : int }

  let term ?(default_total = 36_000) () =
    let total =
      Arg.(
        value & opt int default_total
        & info [ "n"; "total" ] ~docv:"N"
            ~doc:
              (Printf.sprintf "Population size (default %d)." default_total))
    in
    let seed =
      Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")
    in
    Term.(const (fun total seed -> { total; seed }) $ total $ seed)

  let config t =
    {
      Dataset.Generate.default_config with
      Dataset.Generate.total = t.total;
      seed = t.seed;
    }

  let generate t = Dataset.Generate.generate (config t)
end

(* --- faults: injected archive faults and the emulation watchdog ---------- *)

module Faults_spec = struct
  type t = {
    rate : float;
    seed : int;
    latency : float;
    watchdog_steps : int option;
    endpoints : int;
    quorum : int;
  }

  let term =
    let rate =
      Arg.(
        value & opt float 0.0
        & info [ "fault-rate" ] ~docv:"P"
            ~doc:
              "Inject transient archive faults (rate limits, timeouts, node \
               errors) on fraction $(docv) of RPC attempts.  Deterministic: \
               the figures are identical to a fault-free run, faults only \
               exercise the retry/breaker path.")
    in
    let seed =
      Arg.(
        value & opt int 0
        & info [ "fault-seed" ] ~docv:"SEED"
            ~doc:"Seed of the injected fault plan (with --fault-rate).")
    in
    let latency =
      Arg.(
        value & opt float 0.0
        & info [ "fault-latency" ] ~docv:"S"
            ~doc:
              "Mean injected per-call latency in virtual seconds (never \
               sleeps the wall clock).")
    in
    let watchdog =
      Arg.(
        value
        & opt (some int) None
        & info [ "watchdog-steps" ] ~docv:"N"
            ~doc:
              "Per-contract EVM-step budget, enforced live inside emulation: \
               a contract looping in the probe is dead-lettered as \
               budget-exhausted after $(docv) steps instead of stalling its \
               worker.")
    in
    let endpoints =
      Arg.(
        value & opt int 1
        & info [ "endpoints" ] ~docv:"N"
            ~doc:
              "Size of the simulated archive endpoint pool (default 1).  \
               With N > 1 the transport fails over between endpoints and \
               can cross-validate answers (see --quorum); each endpoint \
               gets its own fault stream derived from --fault-seed.")
    in
    let quorum =
      Arg.(
        value & opt int 1
        & info [ "quorum" ] ~docv:"K"
            ~doc:
              "Require $(docv)-of-N identical answers before an RPC result \
               is consumed (default 1 = first healthy endpoint wins).  A \
               disagreeing endpoint is quarantined via its circuit \
               breaker.  Requires --endpoints >= $(docv).")
    in
    Term.(
      const (fun rate seed latency watchdog_steps endpoints quorum ->
          { rate; seed; latency; watchdog_steps; endpoints; quorum })
      $ rate $ seed $ latency $ watchdog $ endpoints $ quorum)

  let validate t =
    if t.rate < 0.0 || t.rate >= 1.0 then
      Error "--fault-rate must be in [0, 1)"
    else if t.endpoints < 1 then Error "--endpoints must be at least 1"
    else if t.quorum < 1 || t.quorum > t.endpoints then
      Error "--quorum must be in [1, --endpoints]"
    else
      match t.watchdog_steps with
      | Some w when w <= 0 -> Error "--watchdog-steps must be positive"
      | _ -> Ok t

  let resilience t =
    (* Each endpoint draws from its own fault stream; endpoint 0's seed
       is --fault-seed itself, so a single-endpoint pool reproduces the
       legacy injection stream exactly. *)
    let plan_for i =
      if t.rate > 0.0 || t.latency > 0.0 then
        Some
          (Resilience.Fault_plan.spec
             ~seed:(t.seed lxor (0x9e3779b9 * i))
             ~fault_rate:t.rate ~mean_latency:t.latency ())
      else None
    in
    if t.endpoints <= 1 then
      Resilience.Transport.config ?plan:(plan_for 0)
        ?step_budget:t.watchdog_steps ()
    else
      let eps =
        List.init t.endpoints (fun i ->
            Resilience.Transport.endpoint ?plan:(plan_for i)
              (Printf.sprintf "archive-%d" (i + 1)))
      in
      Resilience.Transport.config ?step_budget:t.watchdog_steps ()
      |> Resilience.Transport.with_endpoints eps
      |> Resilience.Transport.with_quorum t.quorum
end

(* --- telemetry: progress logging, metrics and trace outputs -------------- *)

module Telemetry_spec = struct
  type t = {
    progress : bool;
    log_json : bool;
    log_level : Obs.Log.level;
    metrics_out : string option;
    metrics_det : bool;
    trace_out : string option;
  }

  let term =
    let progress =
      Arg.(
        value & flag
        & info [ "progress" ]
            ~doc:"Print per-batch progress and stage totals on stderr.")
    in
    let log_json =
      Arg.(
        value & flag
        & info [ "log-json" ]
            ~doc:
              "Emit progress as JSONL structured-log records on stderr \
               (implies --progress).")
    in
    let log_level =
      Arg.(
        value
        & opt
            (enum
               [
                 ("debug", Obs.Log.Debug);
                 ("info", Obs.Log.Info);
                 ("warn", Obs.Log.Warn);
                 ("warning", Obs.Log.Warn);
                 ("error", Obs.Log.Error);
               ])
            Obs.Log.Info
        & info [ "log-level" ] ~docv:"LEVEL"
            ~doc:
              "Minimum progress-log level (debug|info|warn|error).  Debug \
               adds per-attempt retry and breaker detail that info \
               summarizes per batch.")
    in
    let metrics_out =
      Arg.(
        value
        & opt (some string) None
        & info [ "metrics-out" ] ~docv:"FILE"
            ~doc:
              "Write the telemetry registry to $(docv) when the run stops: \
               Prometheus text exposition, or a JSON snapshot when $(docv) \
               ends in .json.")
    in
    let metrics_det =
      Arg.(
        value & flag
        & info [ "metrics-deterministic" ]
            ~doc:
              "Suppress wall-clock-derived (volatile) metric families and \
               the snapshot timestamp, making --metrics-out byte-identical \
               across --domains values.")
    in
    let trace_out =
      Arg.(
        value
        & opt (some string) None
        & info [ "trace-out" ] ~docv:"FILE"
            ~doc:
              "Write a Chrome trace-event JSON span timeline (run > batch > \
               item > stage, plus sampled RPC/EVM worker lanes) to $(docv) — \
               loadable at ui.perfetto.dev.")
    in
    Term.(
      const (fun progress log_json log_level metrics_out metrics_det trace_out ->
          { progress; log_json; log_level; metrics_out; metrics_det; trace_out })
      $ progress $ log_json $ log_level $ metrics_out $ metrics_det $ trace_out)

  let log t =
    if t.progress || t.log_json then
      Some (Obs.Log.create ~level:t.log_level ~json:t.log_json stderr)
    else None

  let trace t = Option.map (fun _ -> Obs.Trace.create ()) t.trace_out

  let write_file path f =
    match Out_channel.with_open_text path f with
    | () -> true
    | exception Sys_error e ->
        Printf.eprintf "error: cannot write %s: %s\n%!" path e;
        false

  (* Flush --metrics-out / --trace-out; returns false when any write
     failed (after reporting it on stderr). *)
  let write_outputs t ~registry ~trace =
    let metrics_ok =
      match t.metrics_out with
      | None -> true
      | Some path ->
          write_file path (fun oc ->
              if Filename.check_suffix path ".json" then begin
                Out_channel.output_string oc
                  (Report.Json.to_string ~pretty:true
                     (Obs.Metrics.to_json ~suppress_volatile:t.metrics_det
                        ?timestamp:
                          (if t.metrics_det then None
                           else Some (Obs.Clock.now Obs.Clock.real))
                        registry));
                Out_channel.output_char oc '\n'
              end
              else
                Out_channel.output_string oc
                  (Obs.Metrics.to_prometheus ~suppress_volatile:t.metrics_det
                     registry))
    in
    let trace_ok =
      match (t.trace_out, trace) with
      | Some path, Some tr -> write_file path (fun oc -> Obs.Trace.write tr oc)
      | _ -> true
    in
    metrics_ok && trace_ok
end

(* --- journal: the durable checkpoint journal ----------------------------- *)

module Journal_spec = struct
  let term ~doc =
    Arg.(
      value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

  let fsync_term =
    Arg.(
      value & opt bool true
      & info [ "journal-fsync" ] ~docv:"BOOL"
          ~doc:
            "Fsync journal commits to stable storage (default true).  \
             $(b,--journal-fsync=false) trades crash-durability of the \
             last batch for speed — tests and benchmarks only.  The mode \
             is recorded in the journal header.")
end
