(* Validate a Prometheus text exposition file (as written by
   `proxion landscape --metrics-out` or the daemon's `metrics` method):
   name syntax, TYPE coverage, duplicate series, histogram bucket
   consistency, and `# EXEMPLAR` comment lines (name/labels must
   re-parse, the id must be 16 lowercase hex, the family must be a
   declared histogram).

   Usage: promlint [--require-exemplars] FILE...   (or `-` for stdin)
   --require-exemplars additionally fails a file carrying no valid
   exemplar line (used by CI's telemetry smoke, where a traced run must
   have recorded at least one max-latency trace_id).
   Exit 0 when every file is clean, 1 otherwise. *)

let count_exemplars text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         String.length line > 11 && String.sub line 0 11 = "# EXEMPLAR ")
  |> List.length

let lint_one ~require_exemplars path =
  let text =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  match Obs.Metrics.lint text with
  | Ok () ->
      let n = count_exemplars text in
      if require_exemplars && n = 0 then begin
        Printf.printf "%s: no exemplar lines (--require-exemplars)\n" path;
        false
      end
      else begin
        if n > 0 then Printf.printf "%s: OK (%d exemplars)\n" path n
        else Printf.printf "%s: OK\n" path;
        true
      end
  | Error problems ->
      List.iter (fun p -> Printf.printf "%s: %s\n" path p) problems;
      false

let () =
  let args =
    match Array.to_list Sys.argv with
    | _ :: rest -> rest
    | [] -> []
  in
  let require_exemplars = List.mem "--require-exemplars" args in
  let files = List.filter (fun a -> a <> "--require-exemplars") args in
  if files = [] then begin
    prerr_endline
      "usage: promlint [--require-exemplars] FILE... (use - for stdin)";
    exit 2
  end;
  let ok =
    List.fold_left
      (fun acc path ->
        match lint_one ~require_exemplars path with
        | clean -> acc && clean
        | exception Sys_error e ->
            Printf.eprintf "promlint: %s\n" e;
            false)
      true files
  in
  exit (if ok then 0 else 1)
