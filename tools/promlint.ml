(* Validate a Prometheus text exposition file (as written by
   `proxion landscape --metrics-out`): name syntax, TYPE coverage,
   duplicate series, histogram bucket consistency.

   Usage: promlint FILE...   (or `-` for stdin)
   Exit 0 when every file is clean, 1 otherwise. *)

let lint_one path =
  let text =
    if path = "-" then In_channel.input_all In_channel.stdin
    else In_channel.with_open_text path In_channel.input_all
  in
  match Obs.Metrics.lint text with
  | Ok () ->
      Printf.printf "%s: OK\n" path;
      true
  | Error problems ->
      List.iter (fun p -> Printf.printf "%s: %s\n" path p) problems;
      false

let () =
  let files =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as rest) -> rest
    | _ ->
        prerr_endline "usage: promlint FILE... (use - for stdin)";
        exit 2
  in
  let ok =
    List.fold_left
      (fun acc path ->
        match lint_one path with
        | clean -> acc && clean
        | exception Sys_error e ->
            Printf.eprintf "promlint: %s\n" e;
            false)
      true files
  in
  exit (if ok then 0 else 1)
