#!/usr/bin/env bash
# Verify the tree is ocamlformat-clean.
#
# The formatter version is pinned in .ocamlformat; when the binary is
# absent or a different version is installed, the check is skipped so
# plain builds never depend on having the formatter around — CI installs
# the pinned version and gets the real check.
set -euo pipefail

pinned=$(sed -n 's/^version *= *//p' .ocamlformat)

if ! command -v ocamlformat >/dev/null 2>&1; then
  echo "check_format: ocamlformat not installed; skipping (pinned ${pinned})"
  exit 0
fi

actual=$(ocamlformat --version)
if [ "${actual}" != "${pinned}" ]; then
  echo "check_format: ocamlformat ${actual} does not match pinned ${pinned}; skipping"
  exit 0
fi

status=0
while IFS= read -r -d '' f; do
  if ! ocamlformat --check "$f"; then
    echo "check_format: ${f} is not formatted" >&2
    status=1
  fi
done < <(find lib bin bench test examples \( -name '*.ml' -o -name '*.mli' \) -print0)

if [ "${status}" -ne 0 ]; then
  echo "check_format: run 'dune fmt' (or ocamlformat -i) and retry" >&2
fi
exit "${status}"
