(** A durable, append-only checkpoint journal.

    The store behind crash-tolerant scans: checkpoints are appended as
    CRC32-framed, length-prefixed records and made visible by an explicit
    {e commit} marker written at batch boundaries.  A process killed at
    any instant — mid-frame, mid-commit, mid-compaction — loses at most
    the work since the last commit: {!open_journal} scans the file,
    truncates the torn or uncommitted tail, and hands back the last
    payload a commit covered.

    On-disk layout: an 8-byte magic (["PXJRNL02"]) followed by one
    durability byte — ['S'] when commits are [fsync]ed to stable
    storage, ['U'] when they are not, so an operator inspecting a
    recovered file knows what crash-safety the writer promised — then
    frames.  Legacy v1 files (["PXJRNL01"], no durability byte) still
    open, and compaction upgrades them in place.  Each frame is a
    1-byte kind (['R'] record, ['C'] commit), a 4-byte big-endian payload
    length, a 4-byte big-endian CRC32 (IEEE 802.3 polynomial) of the
    payload, and the payload bytes; commit frames have an empty payload.
    Recovery accepts a frame only if its header is complete, its payload
    fits inside the file and its CRC matches — the first violation ends
    the trusted region, and the file is truncated back to the end of the
    last {e committed} frame inside it.

    Appends go through a single [write] on an open descriptor and are
    optionally [fsync]ed at commit; {!compact} rewrites the journal as
    one record + commit under a temporary name and atomically
    [Sys.rename]s it into place, so the journal never grows without
    bound and is never observable in a half-rewritten state.

    All failures (I/O errors, foreign files, corrupt magic) are returned
    as [Error message]; nothing in this module raises on bad input. *)

type t

(** What {!open_journal} found in an existing file. *)
type recovery = {
  rec_state : string option;
      (** The last committed payload, [None] for a fresh/empty journal. *)
  rec_committed : int;  (** Committed record frames retained. *)
  rec_dropped_bytes : int;
      (** Torn or uncommitted tail bytes truncated away — the work the
          crash cost, bounded by one batch when commits follow batches. *)
  rec_durable : bool option;
      (** The durability mode recorded in the file's header: [Some true]
          when the writer [fsync]ed commits, [Some false] when it did
          not, [None] for a legacy v1 file that predates the record.
          Informational — the [fsync] argument of {!open_journal}
          governs this handle regardless. *)
}

val open_journal :
  ?fsync:bool -> ?compact_bytes:int -> string -> (t * recovery, string) result
(** Open (creating if absent) the journal at a path, running recovery
    first.  [fsync] (default [true]) forces commits to stable storage —
    turn it off only for tests.  [compact_bytes] (default 64 MiB) is the
    size past which a {!commit} triggers automatic {!compact}ion. *)

val append : t -> string -> (unit, string) result
(** Append one record frame.  Invisible to recovery until {!commit}. *)

val commit : t -> (unit, string) result
(** Write a commit marker ([fsync]ing when enabled): every record
    appended so far becomes the recovery state.  May auto-compact. *)

val checkpoint : t -> string -> (unit, string) result
(** [append] + [commit] — the once-per-batch call sites use. *)

val last_committed : t -> string option
(** The payload recovery would currently return. *)

val path : t -> string

val compact : t -> (unit, string) result
(** Rewrite the journal as magic + one record holding {!last_committed}
    (+ commit) via a temporary file and an atomic rename.  A crash
    during compaction leaves either the old or the new journal intact,
    never a mix. *)

val close : t -> unit
