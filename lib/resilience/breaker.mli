(** A per-endpoint circuit breaker over the virtual clock.

    Closed -> Open after [failure_threshold] consecutive failures; Open
    fail-fasts until the cooldown elapses on the {!Vclock}, then
    Half_open admits a single probe: success closes the circuit,
    failure re-opens it with a fresh cooldown.  Because the cooldown is
    virtual, an open circuit never stalls a run — it only spaces probe
    attempts out deterministically. *)

type state = Closed | Open | Half_open

val state_name : state -> string

type config = {
  failure_threshold : int;  (** Consecutive failures that trip the circuit. *)
  cooldown : float;  (** Virtual seconds an open circuit stays open. *)
}

val default_config : config
(** Threshold 5, cooldown 5 virtual seconds. *)

val config : ?failure_threshold:int -> ?cooldown:float -> unit -> config

(** State transitions observers can subscribe to (the analyzer turns
    [Opened]/[Recovered] into engine events). *)
type transition =
  | Opened of { failures : int }  (** Tripped (also on a failed probe). *)
  | Probing  (** Cooldown elapsed; the next call is the probe. *)
  | Recovered  (** A half-open probe succeeded; circuit closed. *)

type t

val create : ?config:config -> clock:Vclock.t -> endpoint:string -> unit -> t
val state : t -> state
val endpoint : t -> string

val open_count : t -> int
(** Times the circuit tripped (including re-opens from failed probes). *)

val on_transition : t -> (transition -> unit) -> unit

val await_ready : t -> unit
(** Make the breaker admit the next call: no-op when closed or half-open;
    when open, advances the virtual clock to the cooldown deadline and
    moves to half-open. *)

val record_success : t -> unit
val record_failure : t -> unit

val quarantine : t -> unit
(** Trip the circuit immediately, regardless of the failure streak —
    used when an endpoint is caught disagreeing with the quorum, which
    is stronger evidence of a bad node than any transient failure.
    No-op when already open. *)
