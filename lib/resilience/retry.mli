(** Retry policy: capped exponential backoff with deterministic jitter.

    Delays are virtual ({!Vclock}) seconds — the transport advances the
    clock instead of sleeping — and the jitter is a pure function of
    [(seed, attempt)], so two runs with the same policy and seeds back
    off identically.  This is the piece that makes "retry until the
    transient clears" compatible with byte-identical chaos replays. *)

type policy = {
  max_attempts : int;  (** Total attempts including the first (>= 1). *)
  base_delay : float;  (** Delay before attempt 2, in virtual seconds. *)
  multiplier : float;  (** Exponential growth factor per attempt. *)
  max_delay : float;  (** Cap on any single delay. *)
  jitter : float;  (** Fractional spread: delay x (1 ± jitter). *)
}

val default : policy
(** 5 attempts, 50 ms base, x2 growth, 2 s cap, ±25% jitter. *)

val policy :
  ?max_attempts:int ->
  ?base_delay:float ->
  ?multiplier:float ->
  ?max_delay:float ->
  ?jitter:float ->
  unit ->
  policy

val delay : policy -> seed:int -> attempt:int -> float
(** Backoff before retrying after failed [attempt] (1-based).
    Deterministic: equal inputs, equal delay. *)
