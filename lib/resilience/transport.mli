(** The resilient (and deterministically unreliable) RPC transport.

    Wraps {!Chain_rpc.call}/[call_batch] with the full production client
    stack ProxioN needs against real archive nodes: seeded fault
    injection ({!Fault_plan}), capped exponential backoff with
    deterministic jitter ({!Retry}), per-endpoint circuit breakers
    ({!Breaker}), per-connection call/step budgets — and, since the
    chain side became an untrusted input, an N-endpoint provider pool
    with health-ranked deterministic failover, hedged dispatch and
    K-of-N quorum cross-validation.  All waiting happens on a
    {!Vclock}, so fault-injected runs are replayable and cost no
    wall-clock time.

    Accounting identity: faults are injected {e before} dispatching to
    the node, so an injected failure never consumes an API call, and
    the node is dispatched once per {e logical} request no matter how
    many endpoints relay the answer — the per-call counters (the
    paper's §6.1 metric) of a fault-injected run equal the fault-free
    run's once every transient is retried to success.

    Quorum safety: with [quorum >= 2] a returned answer always gathered
    at least [quorum] byte-identical endpoint votes.  A Byzantine
    endpoint's fabricated answer is a deterministic function of its own
    identity and seed, so two liars lie differently and fabrications
    can never assemble a quorum; a disagreeing endpoint is quarantined
    through its breaker on the spot.

    A transport instance models one logical connection; callers that
    analyze many subjects open one per subject (salted), which keeps
    injection independent of scheduling interleavings. *)

(** One provider in the pool: identity, its own fault stream, how many
    blocks its view of the head lags the canonical chain, and the rate
    at which it fabricates (seeded, deterministic) wrong answers. *)
type endpoint_spec = {
  ep_name : string;
  ep_plan : Fault_plan.spec option;  (** Fail-stop faults. [None]: honest. *)
  ep_lag : int;  (** Blocks behind the canonical head (0 = synced). *)
  ep_byzantine : float;  (** Wrong-answer probability per served call. *)
  ep_byz_seed : int;  (** Seed of the corruption stream. *)
}

val endpoint :
  ?plan:Fault_plan.spec ->
  ?lag:int ->
  ?byzantine:float ->
  ?byz_seed:int ->
  string ->
  endpoint_spec
(** [endpoint name]: an honest, synced endpoint unless overridden. *)

type config = {
  plan : Fault_plan.spec option;
      (** Fault plan of the implicit single ["archive"] endpoint when
          [endpoints] is empty.  [None]: nothing injected. *)
  policy : Retry.policy;
  breaker : Breaker.config;  (** Applied to every endpoint's breaker. *)
  call_budget : int option;
      (** Max node dispatches per connection; exceeding raises
          {!Budget_exhausted}. *)
  step_budget : int option;
      (** Max EVM steps per connection, enforced by the caller through
          {!check_step_budget}. *)
  endpoints : endpoint_spec list;
      (** The provider pool; [[]] means the classic single ["archive"]
          endpoint driven by [plan]. *)
  quorum : int;
      (** Identical answers required before a response is consumed
          (clamped to the pool size; default 1). *)
  hedge_after : float option;
      (** Virtual seconds after which a slow request is raced at the
          next-ranked endpoint (quorum-1 pools only; [None]: never). *)
}

val default_config : config
(** No plan, {!Retry.default}, {!Breaker.default_config}, no budgets,
    single implicit ["archive"] endpoint, quorum 1, no hedging. *)

val config :
  ?plan:Fault_plan.spec ->
  ?policy:Retry.policy ->
  ?breaker:Breaker.config ->
  ?call_budget:int ->
  ?step_budget:int ->
  ?endpoints:endpoint_spec list ->
  ?quorum:int ->
  ?hedge_after:float ->
  unit ->
  config

(** {2 Builders}

    The repo-wide config idiom ([default_config |> with_*], validated
    through {!Report.Validate}) — the same shape [Pipeline.Config] and
    [Serve.Config] expose, so batch and server paths configure
    identically. *)

val with_plan : Fault_plan.spec option -> config -> config
val with_policy : Retry.policy -> config -> config
val with_breaker : Breaker.config -> config -> config
val with_call_budget : int option -> config -> config
val with_step_budget : int option -> config -> config
val with_endpoints : endpoint_spec list -> config -> config
val with_quorum : int -> config -> config
val with_hedge_after : float option -> config -> config

val validate_config : config -> (config, Report.Validate.error) result
(** Reject non-positive attempt counts, thresholds, or budgets; a
    quorum outside [1 .. pool size]; duplicate or empty endpoint names;
    negative lag; a Byzantine rate outside [0, 1]. *)

(** Observability events, delivered synchronously to [on_event]. *)
type event =
  | Retry of { attempt : int; reason : string; delay : float }
  | Circuit_opened of { endpoint : string; failures : int }
  | Circuit_closed of { endpoint : string }
  | Dispatched of {
      endpoint : string;
      meth : string;
      fault : string option;
      latency : float;
    }
      (** One endpoint round-trip attempt completed: [fault] carries
          the injected fault kind when the attempt was swallowed before
          reaching the node, [latency] the injected virtual latency.
          Telemetry counts RPC attempts per method and endpoint from
          this. *)
  | Hedged of { meth : string; primary : string; secondary : string }
      (** A slow request was raced at a second endpoint. *)
  | Quorum_disagreement of { meth : string; endpoint : string }
      (** [endpoint]'s answer lost the quorum vote; it has been
          quarantined (its breaker tripped). *)

type stats = {
  dispatched : int;  (** Requests actually served by the node. *)
  faults_seen : int;  (** Injected faults observed. *)
  retries : int;  (** Backoff waits taken. *)
  gave_up : int;  (** Requests whose retry budget ran out. *)
  breaker_opens : int;  (** Summed across the pool. *)
  virtual_elapsed : float;  (** Total virtual seconds on the clock. *)
  disagreements : int;  (** Answers that lost a quorum vote. *)
  hedges : int;  (** Requests raced at a second endpoint. *)
  quorum_failures : int;  (** Attempts where no answer reached quorum. *)
}

(** Per-endpoint counters, in pool order. *)
type endpoint_stats = {
  eps_name : string;
  eps_served : int;  (** Answers this endpoint produced. *)
  eps_faulted : int;  (** Fail-stop faults it injected. *)
  eps_disagreed : int;  (** Quorum votes it lost. *)
  eps_opens : int;  (** Times its breaker tripped (incl. quarantines). *)
  eps_health : float;  (** Current EWMA health score in [0, 1]. *)
}

exception Rpc_error of Chain_rpc.error
(** Raised by {!call_batch_exn} on the first failed entry. *)

exception Budget_exhausted of { scope : string; budget : int; spent : int }
(** A per-connection budget ran out; the engine classifies this as a
    [Budget_exhausted] dead-letter, distinct from transient faults. *)

type t

val create :
  ?config:config ->
  ?salt:int ->
  ?on_event:(event -> unit) ->
  chain:Chain.t ->
  unit ->
  t
(** A fresh connection.  [salt] diversifies the fault streams and
    jitter across connections sharing one plan (the analyzer salts with
    the subject address). *)

val direct : Chain.t -> t
(** A pass-through connection: no faults, no budgets — behaviourally
    identical to calling {!Chain_rpc} directly. *)

val call :
  t -> meth:string -> params:string list -> (string, Chain_rpc.error) result
(** One request with retry/breaker/pool handling.  Transient failures
    are retried up to [policy.max_attempts] with backoff; within one
    attempt a quorum-1 pool fails over endpoint by endpoint in health
    rank order, while a quorum-K pool consults every admitted endpoint
    and requires K identical answers.  Permanent errors
    ([Invalid_params], [Unsupported_height], [Unknown_method]) return
    immediately — they are completed round-trips, not connection
    failures, so they also close the serving breaker's failure
    streak. *)

val call_batch :
  t -> (string * string list) list -> (string, Chain_rpc.error) result list
(** Batch semantics with partial-failure recovery: each round retries
    only the entries that failed transiently, and responses always come
    back in request order.  Entries still failing when attempts run out
    surface their last [Transient] error in place. *)

val call_batch_exn : t -> (string * string list) list -> string list
(** Like {!call_batch} but raises {!Rpc_error} on the first failed entry
    — the convenient form for callers that treat any exhausted or
    permanent error as fatal for the operation (Algorithm 1). *)

val head_height : t -> int
(** The pool's confirmed head: the [quorum]-th largest height reported
    by admitted endpoints, where a lagging endpoint reports the
    canonical head minus its lag.  Monotonic — once confirmed, a height
    is never un-reported, so a lagging majority stalls the consumer
    instead of rolling it backwards. *)

val retries : t -> int
(** Monotonic retry counter — the reader stage timings sample. *)

val last_attempts : t -> int
(** Attempts consumed by the most recent operation (>= 1), for
    dead-letter records. *)

val pool_size : t -> int
val quorum : t -> int

val check_step_budget : t -> steps:int -> unit
(** Raise {!Budget_exhausted} when [steps] exceeds the configured step
    budget (no-op otherwise). *)

val stats : t -> stats
val endpoint_stats : t -> endpoint_stats list
val clock : t -> Vclock.t
