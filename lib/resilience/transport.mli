(** The resilient (and deterministically unreliable) RPC transport.

    Wraps {!Chain_rpc.call}/[call_batch] with the full production client
    stack ProxioN needs against a real archive node: seeded fault
    injection ({!Fault_plan}), capped exponential backoff with
    deterministic jitter ({!Retry}), a per-endpoint circuit breaker
    ({!Breaker}), and per-connection call/step budgets.  All waiting
    happens on a {!Vclock}, so fault-injected runs are replayable and
    cost no wall-clock time.

    Accounting identity: faults are injected {e before} dispatching to
    the node, so an injected failure never consumes an API call and a
    retried transient costs exactly one dispatch — the per-call counters
    (the paper's §6.1 metric) of a fault-injected run equal the
    fault-free run's once every transient is retried to success.

    A transport instance models one logical connection; callers that
    analyze many subjects open one per subject (salted), which keeps
    injection independent of scheduling interleavings. *)

type config = {
  plan : Fault_plan.spec option;  (** [None]: nothing injected. *)
  policy : Retry.policy;
  breaker : Breaker.config;
  call_budget : int option;
      (** Max node dispatches per connection; exceeding raises
          {!Budget_exhausted}. *)
  step_budget : int option;
      (** Max EVM steps per connection, enforced by the caller through
          {!check_step_budget}. *)
}

val default_config : config
(** No plan, {!Retry.default}, {!Breaker.default_config}, no budgets. *)

val config :
  ?plan:Fault_plan.spec ->
  ?policy:Retry.policy ->
  ?breaker:Breaker.config ->
  ?call_budget:int ->
  ?step_budget:int ->
  unit ->
  config

(** {2 Builders}

    The repo-wide config idiom ([default_config |> with_*], validated
    through {!Report.Validate}) — the same shape [Pipeline.Config] and
    [Serve.Config] expose, so batch and server paths configure
    identically. *)

val with_plan : Fault_plan.spec option -> config -> config
val with_policy : Retry.policy -> config -> config
val with_breaker : Breaker.config -> config -> config
val with_call_budget : int option -> config -> config
val with_step_budget : int option -> config -> config

val validate_config : config -> (config, Report.Validate.error) result
(** Reject non-positive attempt counts, thresholds, or budgets. *)

(** Observability events, delivered synchronously to [on_event]. *)
type event =
  | Retry of { attempt : int; reason : string; delay : float }
  | Circuit_opened of { endpoint : string; failures : int }
  | Circuit_closed of { endpoint : string }
  | Dispatched of { meth : string; fault : string option; latency : float }
      (** One node round-trip attempt completed: [fault] carries the
          injected fault kind when the attempt was swallowed before
          reaching the node, [latency] the injected virtual latency.
          Telemetry counts RPC attempts per method from this. *)

type stats = {
  dispatched : int;  (** Requests actually served by the node. *)
  faults_seen : int;  (** Injected faults observed. *)
  retries : int;  (** Backoff waits taken. *)
  gave_up : int;  (** Requests whose retry budget ran out. *)
  breaker_opens : int;
  virtual_elapsed : float;  (** Total virtual seconds on the clock. *)
}

exception Rpc_error of Chain_rpc.error
(** Raised by {!call_batch_exn} on the first failed entry. *)

exception Budget_exhausted of { scope : string; budget : int; spent : int }
(** A per-connection budget ran out; the engine classifies this as a
    [Budget_exhausted] dead-letter, distinct from transient faults. *)

type t

val create :
  ?config:config ->
  ?salt:int ->
  ?on_event:(event -> unit) ->
  chain:Chain.t ->
  unit ->
  t
(** A fresh connection.  [salt] diversifies the fault stream and jitter
    across connections sharing one plan (the analyzer salts with the
    subject address). *)

val direct : Chain.t -> t
(** A pass-through connection: no faults, no budgets — behaviourally
    identical to calling {!Chain_rpc} directly. *)

val call :
  t -> meth:string -> params:string list -> (string, Chain_rpc.error) result
(** One request with retry/breaker handling.  Transient failures are
    retried up to [policy.max_attempts] with backoff; permanent errors
    ([Invalid_params], [Unsupported_height], [Unknown_method]) return
    immediately — they are completed round-trips, not connection
    failures, so they also close the breaker's failure streak. *)

val call_batch :
  t -> (string * string list) list -> (string, Chain_rpc.error) result list
(** Batch semantics with partial-failure recovery: each round retries
    only the entries that failed transiently, and responses always come
    back in request order.  Entries still failing when attempts run out
    surface their last [Transient] error in place. *)

val call_batch_exn : t -> (string * string list) list -> string list
(** Like {!call_batch} but raises {!Rpc_error} on the first failed entry
    — the convenient form for callers that treat any exhausted or
    permanent error as fatal for the operation (Algorithm 1). *)

val retries : t -> int
(** Monotonic retry counter — the reader stage timings sample. *)

val last_attempts : t -> int
(** Attempts consumed by the most recent operation (>= 1), for
    dead-letter records. *)

val check_step_budget : t -> steps:int -> unit
(** Raise {!Budget_exhausted} when [steps] exceeds the configured step
    budget (no-op otherwise). *)

val stats : t -> stats
val clock : t -> Vclock.t
