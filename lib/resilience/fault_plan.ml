type spec = {
  seed : int;
  fault_rate : float;
  mean_latency : float;
  drop_windows : (int * int) list;
}

let none = { seed = 0; fault_rate = 0.0; mean_latency = 0.0; drop_windows = [] }

let spec ?(seed = 0) ?(fault_rate = 0.0) ?(mean_latency = 0.0)
    ?(drop_windows = []) () =
  { seed; fault_rate; mean_latency; drop_windows }

type fault = { f_kind : Chain_rpc.transient_kind; f_detail : string }
type decision = { d_latency : float; d_fault : fault option }

type t = { plan_spec : spec; mutable state : int64; mutable index : int }

(* Splitmix64: a tiny, well-mixed, splittable PRNG.  The whole layer
   hangs determinism off this — no [Random], no wall clock. *)
let mix state =
  let open Int64 in
  let z = add state 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  (z, logxor z (shift_right_logical z 31))

let next_u01 t =
  let state, out = mix t.state in
  t.state <- state;
  (* 53 high bits -> [0, 1). *)
  Int64.to_float (Int64.shift_right_logical out 11) /. 9007199254740992.0

let instantiate ?(salt = 0) spec =
  {
    plan_spec = spec;
    state = Int64.logxor (Int64.of_int spec.seed)
        (Int64.mul (Int64.of_int salt) 0x2545F4914F6CDD1DL);
    index = 0;
  }

let in_drop_window spec i =
  List.exists (fun (start, len) -> i >= start && i < start + len)
    spec.drop_windows

let kind_of_draw u =
  if u < 0.34 then Chain_rpc.Rate_limited
  else if u < 0.67 then Chain_rpc.Timeout
  else Chain_rpc.Node_error

let next t =
  let spec = t.plan_spec in
  let i = t.index in
  t.index <- i + 1;
  (* Fixed draw schedule per attempt (latency, fault?, kind) keeps the
     stream aligned whatever the outcomes, so a decision depends only on
     (seed, salt, attempt index). *)
  let u_latency = next_u01 t in
  let u_fault = next_u01 t in
  let u_kind = next_u01 t in
  let d_latency = spec.mean_latency *. (0.5 +. u_latency) in
  let d_fault =
    if in_drop_window spec i then
      Some
        {
          f_kind = Chain_rpc.Node_error;
          f_detail = Printf.sprintf "connection dropped (call %d)" i;
        }
    else if spec.fault_rate > 0.0 && u_fault < spec.fault_rate then
      let kind = kind_of_draw u_kind in
      Some
        {
          f_kind = kind;
          f_detail =
            Printf.sprintf "injected %s (call %d)"
              (Chain_rpc.transient_kind_name kind)
              i;
        }
    else None
  in
  { d_latency; d_fault }

let calls_decided t = t.index
