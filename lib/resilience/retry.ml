type policy = {
  max_attempts : int;
  base_delay : float;
  multiplier : float;
  max_delay : float;
  jitter : float;
}

let default =
  {
    max_attempts = 5;
    base_delay = 0.05;
    multiplier = 2.0;
    max_delay = 2.0;
    jitter = 0.25;
  }

let policy ?(max_attempts = default.max_attempts)
    ?(base_delay = default.base_delay) ?(multiplier = default.multiplier)
    ?(max_delay = default.max_delay) ?(jitter = default.jitter) () =
  if max_attempts < 1 then invalid_arg "Retry.policy: max_attempts must be >= 1";
  { max_attempts; base_delay; multiplier; max_delay; jitter }

(* Deterministic jitter: a hash of (seed, attempt) folded into [-1, 1].
   Equal-spread jitter without [Random] keeps retried runs replayable —
   the delay is a pure function of the policy, the connection seed and
   the attempt number. *)
let jitter_unit ~seed ~attempt =
  let h = Hashtbl.hash (seed, attempt, 0x5eed) land 0xFFFF in
  (float_of_int h /. 32767.5) -. 1.0

let delay policy ~seed ~attempt =
  let attempt = max 1 attempt in
  let exp =
    policy.base_delay *. (policy.multiplier ** float_of_int (attempt - 1))
  in
  let capped = Float.min policy.max_delay exp in
  let jittered =
    capped *. (1.0 +. (policy.jitter *. jitter_unit ~seed ~attempt))
  in
  Float.max 0.0 jittered
