type state = Closed | Open | Half_open

let state_name = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

type config = { failure_threshold : int; cooldown : float }

let default_config = { failure_threshold = 5; cooldown = 5.0 }

let config ?(failure_threshold = default_config.failure_threshold)
    ?(cooldown = default_config.cooldown) () =
  if failure_threshold < 1 then
    invalid_arg "Breaker.config: failure_threshold must be >= 1";
  { failure_threshold; cooldown }

type transition = Opened of { failures : int } | Probing | Recovered

type t = {
  cfg : config;
  clock : Vclock.t;
  endpoint : string;
  mutable st : state;
  mutable consecutive_failures : int;
  mutable open_until : float;
  mutable opens : int;
  mutable subscribers : (transition -> unit) list;
}

let create ?(config = default_config) ~clock ~endpoint () =
  {
    cfg = config;
    clock;
    endpoint;
    st = Closed;
    consecutive_failures = 0;
    open_until = 0.0;
    opens = 0;
    subscribers = [];
  }

let state t = t.st
let endpoint t = t.endpoint
let open_count t = t.opens
let on_transition t f = t.subscribers <- t.subscribers @ [ f ]
let notify t tr = List.iter (fun f -> f tr) t.subscribers

let trip t =
  t.st <- Open;
  t.opens <- t.opens + 1;
  t.open_until <- Vclock.now t.clock +. t.cfg.cooldown;
  notify t (Opened { failures = t.consecutive_failures })

let await_ready t =
  match t.st with
  | Closed | Half_open -> ()
  | Open ->
      (* The cooldown is virtual time: fail-fast windows cost nothing on
         the wall clock, they only space out probe attempts. *)
      Vclock.advance_to t.clock t.open_until;
      t.st <- Half_open;
      notify t Probing

let record_success t =
  let was = t.st in
  t.consecutive_failures <- 0;
  t.st <- Closed;
  if was = Half_open then notify t Recovered

let record_failure t =
  t.consecutive_failures <- t.consecutive_failures + 1;
  match t.st with
  | Half_open -> trip t
  | Closed when t.consecutive_failures >= t.cfg.failure_threshold -> trip t
  | Closed | Open -> ()

let quarantine t =
  (* A quorum disagreement is stronger evidence than any failure streak:
     trip immediately regardless of state so the endpoint sits out a full
     cooldown before its next probe. *)
  t.consecutive_failures <- max t.consecutive_failures t.cfg.failure_threshold;
  match t.st with Open -> () | Closed | Half_open -> trip t
