(** A virtual clock for the resilience layer.

    Retry backoff, injected latency and circuit-breaker cooldowns all
    "wait" by advancing this counter instead of sleeping on the wall
    clock, so a fault-injected run is exactly as fast as a fault-free one
    and — more importantly — fully deterministic: tests, checkpoints and
    the chaos harness replay identically on any machine at any load.
    Times are in virtual seconds; only differences are meaningful. *)

type t

val create : ?now:float -> unit -> t
(** A clock starting at [now] (default 0). *)

val now : t -> float

val sleep : t -> float -> unit
(** Advance the clock by a non-negative duration (negative values are
    ignored).  This is the only "sleep" the resilience layer performs. *)

val advance_to : t -> float -> unit
(** Jump forward to a deadline; no-op when the deadline already passed. *)
