type t = { mutable now : float }

let create ?(now = 0.0) () = { now }
let now t = t.now
let sleep t dt = if dt > 0.0 then t.now <- t.now +. dt
let advance_to t deadline = if deadline > t.now then t.now <- deadline
