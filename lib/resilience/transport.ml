type endpoint_spec = {
  ep_name : string;
  ep_plan : Fault_plan.spec option;
  ep_lag : int;
  ep_byzantine : float;
  ep_byz_seed : int;
}

let endpoint ?plan ?(lag = 0) ?(byzantine = 0.0) ?(byz_seed = 0) name =
  {
    ep_name = name;
    ep_plan = plan;
    ep_lag = lag;
    ep_byzantine = byzantine;
    ep_byz_seed = byz_seed;
  }

type config = {
  plan : Fault_plan.spec option;
  policy : Retry.policy;
  breaker : Breaker.config;
  call_budget : int option;
  step_budget : int option;
  endpoints : endpoint_spec list;
  quorum : int;
  hedge_after : float option;
}

let default_config =
  {
    plan = None;
    policy = Retry.default;
    breaker = Breaker.default_config;
    call_budget = None;
    step_budget = None;
    endpoints = [];
    quorum = 1;
    hedge_after = None;
  }

let config ?plan ?(policy = Retry.default) ?(breaker = Breaker.default_config)
    ?call_budget ?step_budget ?(endpoints = []) ?(quorum = 1) ?hedge_after () =
  { plan; policy; breaker; call_budget; step_budget; endpoints; quorum;
    hedge_after }

let with_plan plan cfg = { cfg with plan }
let with_policy policy cfg = { cfg with policy }
let with_breaker breaker cfg = { cfg with breaker }
let with_call_budget call_budget cfg = { cfg with call_budget }
let with_step_budget step_budget cfg = { cfg with step_budget }
let with_endpoints endpoints cfg = { cfg with endpoints }
let with_quorum quorum cfg = { cfg with quorum }
let with_hedge_after hedge_after cfg = { cfg with hedge_after }

let validate_config cfg =
  let module V = Report.Validate in
  let budget field = function
    | None -> Ok ()
    | Some b -> V.positive ~field b
  in
  let pool_size = max 1 (List.length cfg.endpoints) in
  let distinct_names () =
    let names = List.map (fun e -> e.ep_name) cfg.endpoints in
    if List.length (List.sort_uniq compare names) = List.length names then
      Ok ()
    else
      Error
        (V.error ~field:"endpoints" ~value:(String.concat "," names)
           ~reason:"endpoint names must be distinct")
  in
  let per_endpoint e =
    V.all
      [
        V.non_empty ~field:"endpoint.name" e.ep_name;
        V.non_negative ~field:(e.ep_name ^ ".lag") e.ep_lag;
        V.unit_interval ~field:(e.ep_name ^ ".byzantine") e.ep_byzantine;
      ]
  in
  let quorum_fits =
    if cfg.quorum >= 1 && cfg.quorum <= pool_size then Ok ()
    else
      Error
        (V.error ~field:"quorum" ~value:(string_of_int cfg.quorum)
           ~reason:
             (Printf.sprintf "must be between 1 and the pool size (%d)"
                pool_size))
  in
  match
    V.all
      ([
         V.positive ~field:"policy.max_attempts" cfg.policy.Retry.max_attempts;
         V.positive ~field:"breaker.failure_threshold"
           cfg.breaker.Breaker.failure_threshold;
         budget "call_budget" cfg.call_budget;
         budget "step_budget" cfg.step_budget;
         quorum_fits;
         distinct_names ();
       ]
      @ List.map per_endpoint cfg.endpoints)
  with
  | Ok () -> Ok cfg
  | Error e -> Error e

type event =
  | Retry of { attempt : int; reason : string; delay : float }
  | Circuit_opened of { endpoint : string; failures : int }
  | Circuit_closed of { endpoint : string }
  | Dispatched of {
      endpoint : string;
      meth : string;
      fault : string option;
      latency : float;
    }
  | Hedged of { meth : string; primary : string; secondary : string }
  | Quorum_disagreement of { meth : string; endpoint : string }

type stats = {
  dispatched : int;
  faults_seen : int;
  retries : int;
  gave_up : int;
  breaker_opens : int;
  virtual_elapsed : float;
  disagreements : int;
  hedges : int;
  quorum_failures : int;
}

type endpoint_stats = {
  eps_name : string;
  eps_served : int;
  eps_faulted : int;
  eps_disagreed : int;
  eps_opens : int;
  eps_health : float;
}

exception Rpc_error of Chain_rpc.error
exception Budget_exhausted of { scope : string; budget : int; spent : int }

let () =
  Printexc.register_printer (function
    | Rpc_error e -> Some ("rpc error: " ^ Chain_rpc.error_to_string e)
    | Budget_exhausted { scope; budget; spent } ->
        Some
          (Printf.sprintf "budget exhausted: %d %s spent (budget %d)" spent
             scope budget)
    | _ -> None)

(* Live state of one pool member: its breaker, its fail-stop fault
   stream, its (optional) Byzantine corruption stream, and an EWMA
   health score that ranks endpoints for failover order. *)
type endpoint_state = {
  e_spec : endpoint_spec;
  e_breaker : Breaker.t;
  e_plan : Fault_plan.t option;
  e_byz : Fault_plan.t option;
  mutable e_health : float;
  mutable e_served : int;
  mutable e_faulted : int;
  mutable e_disagreed : int;
}

type t = {
  chain : Chain.t;
  cfg : config;
  clock : Vclock.t;
  pool : endpoint_state array;
  quorum : int;
  seed : int;
  on_event : event -> unit;
  mutable dispatched : int;
  mutable faults_seen : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable last_attempts : int;
  mutable disagreements : int;
  mutable hedges : int;
  mutable quorum_failures : int;
  mutable confirmed_head : int;
}

let default_endpoint_name = "archive"

let create ?(config = default_config) ?(salt = 0) ?(on_event = fun _ -> ())
    ~chain () =
  let clock = Vclock.create () in
  let specs =
    match config.endpoints with
    | [] ->
        (* The classic single-provider setup: one archive node carrying
           the connection-level fault plan. *)
        [
          {
            ep_name = default_endpoint_name;
            ep_plan = config.plan;
            ep_lag = 0;
            ep_byzantine = 0.0;
            ep_byz_seed = 0;
          };
        ]
    | eps -> eps
  in
  let make_endpoint spec =
    let breaker =
      Breaker.create ~config:config.breaker ~clock ~endpoint:spec.ep_name ()
    in
    Breaker.on_transition breaker (function
      | Breaker.Opened { failures } ->
          on_event (Circuit_opened { endpoint = spec.ep_name; failures })
      | Breaker.Recovered ->
          on_event (Circuit_closed { endpoint = spec.ep_name })
      | Breaker.Probing -> ());
    let byz =
      if spec.ep_byzantine > 0.0 then
        Some
          (Fault_plan.instantiate ~salt
             (Fault_plan.spec ~seed:spec.ep_byz_seed
                ~fault_rate:spec.ep_byzantine ()))
      else None
    in
    {
      e_spec = spec;
      e_breaker = breaker;
      e_plan = Option.map (Fault_plan.instantiate ~salt) spec.ep_plan;
      e_byz = byz;
      e_health = 1.0;
      e_served = 0;
      e_faulted = 0;
      e_disagreed = 0;
    }
  in
  let seed =
    match config.plan with Some s -> s.Fault_plan.seed lxor salt | None -> salt
  in
  {
    chain;
    cfg = config;
    clock;
    pool = Array.of_list (List.map make_endpoint specs);
    quorum = max 1 (min config.quorum (List.length specs));
    seed;
    on_event;
    dispatched = 0;
    faults_seen = 0;
    retries = 0;
    gave_up = 0;
    last_attempts = 0;
    disagreements = 0;
    hedges = 0;
    quorum_failures = 0;
    confirmed_head = 0;
  }

let direct chain = create ~chain ()

let clock t = t.clock
let retries t = t.retries
let last_attempts t = t.last_attempts
let pool_size t = Array.length t.pool
let quorum t = t.quorum

let stats t =
  {
    dispatched = t.dispatched;
    faults_seen = t.faults_seen;
    retries = t.retries;
    gave_up = t.gave_up;
    breaker_opens =
      Array.fold_left (fun n es -> n + Breaker.open_count es.e_breaker) 0 t.pool;
    virtual_elapsed = Vclock.now t.clock;
    disagreements = t.disagreements;
    hedges = t.hedges;
    quorum_failures = t.quorum_failures;
  }

let endpoint_stats t =
  Array.to_list t.pool
  |> List.map (fun es ->
         {
           eps_name = es.e_spec.ep_name;
           eps_served = es.e_served;
           eps_faulted = es.e_faulted;
           eps_disagreed = es.e_disagreed;
           eps_opens = Breaker.open_count es.e_breaker;
           eps_health = es.e_health;
         })

let no_fault = { Fault_plan.d_latency = 0.0; d_fault = None }

let ep_decide es =
  match es.e_plan with Some p -> Fault_plan.next p | None -> no_fault

let ep_corrupts es =
  match es.e_byz with
  | Some p -> (Fault_plan.next p).Fault_plan.d_fault <> None
  | None -> false

(* EWMA health: successes pull toward 1, faults decay, a quorum
   disagreement halves the score outright.  Rank order (health desc,
   then pool index) decides failover preference deterministically. *)
let health_ok es = es.e_health <- (es.e_health *. 0.9) +. 0.1
let health_fault es = es.e_health <- es.e_health *. 0.9
let health_disagree es = es.e_health <- es.e_health *. 0.5

let ranked t =
  Array.to_list (Array.mapi (fun i es -> (i, es)) t.pool)
  |> List.stable_sort (fun (i, a) (j, b) ->
         match compare b.e_health a.e_health with
         | 0 -> compare i j
         | c -> c)
  |> List.map snd

(* Admit at least [quorum] endpoints: already-admitted (closed or
   half-open) breakers are free; when too few, advance the virtual
   clock past blocked cooldowns in rank order — the pool analogue of
   the single breaker's [await_ready] before every attempt. *)
let ensure_ready t =
  let order = ranked t in
  let ready, blocked =
    List.partition (fun es -> Breaker.state es.e_breaker <> Breaker.Open) order
  in
  if List.length ready >= t.quorum then ready
  else
    let rec admit ready blocked =
      if List.length ready >= t.quorum then ready
      else
        match blocked with
        | [] -> ready
        | es :: rest ->
            Breaker.await_ready es.e_breaker;
            admit (ready @ [ es ]) rest
    in
    admit ready blocked

let check_call_budget t =
  match t.cfg.call_budget with
  | Some budget when t.dispatched >= budget ->
      raise
        (Budget_exhausted { scope = "api-calls"; budget; spent = t.dispatched })
  | _ -> ()

let check_step_budget t ~steps =
  match t.cfg.step_budget with
  | Some budget when steps > budget ->
      raise (Budget_exhausted { scope = "evm-steps"; budget; spent = steps })
  | _ -> ()

(* The node is dispatched once per logical request, no matter how many
   endpoints answer it: every honest endpoint relays the same canonical
   chain state, so per-call accounting (the §6.1 counter identity) is
   one API call per served request even under quorum fan-out. *)
let canonical t ~meth ~params cache =
  match !cache with
  | Some r -> r
  | None ->
      check_call_budget t;
      let r = Chain_rpc.call t.chain ~meth ~params in
      t.dispatched <- t.dispatched + 1;
      cache := Some r;
      r

(* A Byzantine endpoint's wrong answer: a deterministic function of the
   canonical payload, the endpoint identity and its seed — two lying
   endpoints therefore lie {e differently}, so fabricated answers can
   never assemble a quorum of their own. *)
let corrupt es s =
  Printf.sprintf "0xbad%07x"
    (Hashtbl.hash (es.e_spec.ep_byz_seed, es.e_spec.ep_name, s) land 0xfffffff)

let ep_answer t es ~meth ~params cache =
  let r = canonical t ~meth ~params cache in
  match r with
  | Ok s when ep_corrupts es -> Ok (corrupt es s)
  | r -> r

let record_fault t es ~meth (f : Fault_plan.fault) ~latency =
  t.faults_seen <- t.faults_seen + 1;
  es.e_faulted <- es.e_faulted + 1;
  health_fault es;
  Breaker.record_failure es.e_breaker;
  t.on_event
    (Dispatched
       {
         endpoint = es.e_spec.ep_name;
         meth;
         fault = Some (Chain_rpc.transient_kind_name f.Fault_plan.f_kind);
         latency;
       })

let record_served t es ~meth ~latency =
  es.e_served <- es.e_served + 1;
  health_ok es;
  Breaker.record_success es.e_breaker;
  t.on_event
    (Dispatched { endpoint = es.e_spec.ep_name; meth; fault = None; latency })

let fault_error (f : Fault_plan.fault) =
  Error (Chain_rpc.Transient (f.Fault_plan.f_kind, f.Fault_plan.f_detail))

(* Quorum 1: deterministic sequential failover.  Walk admitted
   endpoints in rank order; the first non-faulting answer wins, each
   faulting endpoint is charged on its own breaker, and a slow primary
   is hedged to the next endpoint when the pool has one. *)
let attempt_failover t ready (meth, params) cache =
  let serve es ~latency =
    let r = ep_answer t es ~meth ~params cache in
    record_served t es ~meth ~latency;
    r
  in
  let rec walk last_fault = function
    | [] -> (
        match last_fault with
        | Some f -> fault_error f
        | None ->
            Error (Chain_rpc.Transient (Chain_rpc.Node_error, "no endpoint")))
    | es :: rest -> (
        let d = ep_decide es in
        let lat = d.Fault_plan.d_latency in
        match (t.cfg.hedge_after, rest) with
        | Some h, alt :: remaining when lat > h ->
            (* Slowest-percentile request: race a second endpoint
               started [h] virtual seconds in. *)
            t.hedges <- t.hedges + 1;
            t.on_event
              (Hedged
                 {
                   meth;
                   primary = es.e_spec.ep_name;
                   secondary = alt.e_spec.ep_name;
                 });
            let d2 = ep_decide alt in
            let c1 = lat and c2 = h +. d2.Fault_plan.d_latency in
            (match (d.Fault_plan.d_fault, d2.Fault_plan.d_fault) with
            | None, None ->
                (* Both legs would answer: take the earlier completion,
                   the other leg is cancelled unobserved. *)
                if c1 <= c2 then (
                  Vclock.sleep t.clock c1;
                  serve es ~latency:lat)
                else (
                  Vclock.sleep t.clock c2;
                  serve alt ~latency:d2.Fault_plan.d_latency)
            | None, Some f2 ->
                Vclock.sleep t.clock c1;
                if c2 <= c1 then record_fault t alt ~meth f2
                    ~latency:d2.Fault_plan.d_latency;
                serve es ~latency:lat
            | Some f1, None ->
                Vclock.sleep t.clock c2;
                if c1 <= c2 then record_fault t es ~meth f1 ~latency:lat;
                serve alt ~latency:d2.Fault_plan.d_latency
            | Some f1, Some f2 ->
                Vclock.sleep t.clock (Float.max c1 c2);
                record_fault t es ~meth f1 ~latency:lat;
                record_fault t alt ~meth f2 ~latency:d2.Fault_plan.d_latency;
                walk (Some f2) remaining)
        | _ -> (
            Vclock.sleep t.clock lat;
            match d.Fault_plan.d_fault with
            | Some f ->
                record_fault t es ~meth f ~latency:lat;
                walk (Some f) rest
            | None -> serve es ~latency:lat))
  in
  walk None ready

(* Quorum >= 2: consult every admitted endpoint in parallel (virtual
   latency is the slowest consulted leg), then require [quorum]
   byte-identical answers.  An endpoint whose answer loses the vote is
   quarantined on the spot — disagreement is stronger evidence than any
   transient-failure streak. *)
let attempt_quorum t ready (meth, params) cache =
  let consults = List.map (fun es -> (es, ep_decide es)) ready in
  let lat =
    List.fold_left
      (fun a (_, d) -> Float.max a d.Fault_plan.d_latency)
      0.0 consults
  in
  Vclock.sleep t.clock lat;
  let answers, last_fault =
    List.fold_left
      (fun (answers, last_fault) (es, d) ->
        match d.Fault_plan.d_fault with
        | Some f ->
            record_fault t es ~meth f ~latency:d.Fault_plan.d_latency;
            (answers, Some f)
        | None ->
            let r = ep_answer t es ~meth ~params cache in
            record_served t es ~meth ~latency:d.Fault_plan.d_latency;
            (answers @ [ (es, r) ], last_fault))
      ([], None) consults
  in
  (* First-seen-order tally; the winner needs >= quorum identical
     votes, so a single fabricated answer can never be consumed. *)
  let tally =
    List.fold_left
      (fun tally (_, r) ->
        if List.mem_assoc r tally then
          List.map (fun (v, c) -> if v = r then (v, c + 1) else (v, c)) tally
        else tally @ [ (r, 1) ])
      [] answers
  in
  let winner =
    List.fold_left
      (fun best (v, c) ->
        match best with Some (_, bc) when bc >= c -> best | _ -> Some (v, c))
      None tally
  in
  match winner with
  | Some (value, votes) when votes >= t.quorum ->
      List.iter
        (fun (es, r) ->
          if r <> value then begin
            t.disagreements <- t.disagreements + 1;
            es.e_disagreed <- es.e_disagreed + 1;
            health_disagree es;
            t.on_event
              (Quorum_disagreement { meth; endpoint = es.e_spec.ep_name });
            Breaker.quarantine es.e_breaker
          end)
        answers;
      value
  | _ ->
      t.quorum_failures <- t.quorum_failures + 1;
      (match last_fault with
      | Some f -> fault_error f
      | None ->
          Error
            (Chain_rpc.Transient
               ( Chain_rpc.Node_error,
                 Printf.sprintf "quorum not reached (%d/%d identical answers)"
                   (match winner with Some (_, c) -> c | None -> 0)
                   t.quorum )))

let attempt_one t req cache =
  let ready = ensure_ready t in
  if t.quorum <= 1 then attempt_failover t ready req cache
  else attempt_quorum t ready req cache

let backoff t ~attempt ~reason =
  let delay = Retry.delay t.cfg.policy ~seed:t.seed ~attempt in
  t.retries <- t.retries + 1;
  t.on_event (Retry { attempt; reason; delay });
  Vclock.sleep t.clock delay

let call t ~meth ~params =
  let rec go attempt =
    match attempt_one t (meth, params) (ref None) with
    | Error (Chain_rpc.Transient _ as e)
      when attempt < t.cfg.policy.Retry.max_attempts ->
        backoff t ~attempt ~reason:(Chain_rpc.error_to_string e);
        go (attempt + 1)
    | Error (Chain_rpc.Transient _) as r ->
        t.gave_up <- t.gave_up + 1;
        t.last_attempts <- attempt;
        r
    | r ->
        t.last_attempts <- attempt;
        r
  in
  go 1

let call_batch t requests =
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let responses = Array.make n (Error (Chain_rpc.Invalid_params "unserved")) in
  (* Retry only the failed subset of each round, preserving response
     order by index — the JSON-RPC partial-batch-failure contract. *)
  let rec round attempt pending =
    let ready = ensure_ready t in
    let failed =
      List.filter
        (fun i ->
          let attempt_round =
            if t.quorum <= 1 then attempt_failover t ready reqs.(i)
            else attempt_quorum t ready reqs.(i)
          in
          match attempt_round (ref None) with
          | Error (Chain_rpc.Transient _ as e) ->
              responses.(i) <- Error e;
              true
          | r ->
              responses.(i) <- r;
              false)
        pending
    in
    t.last_attempts <- attempt;
    if failed <> [] then
      if attempt < t.cfg.policy.Retry.max_attempts then begin
        backoff t ~attempt
          ~reason:
            (Printf.sprintf "%d/%d batch entries failed" (List.length failed) n);
        round (attempt + 1) failed
      end
      else t.gave_up <- t.gave_up + List.length failed
  in
  if n > 0 then round 1 (List.init n Fun.id);
  Array.to_list responses

let call_batch_exn t requests =
  List.map
    (function Ok v -> v | Error e -> raise (Rpc_error e))
    (call_batch t requests)

(* The pool's confirmed head: the [quorum]-th largest height reported
   by admitted endpoints (a lagging endpoint reports the canonical head
   minus its lag).  Monotonic by construction — once a height is quorum
   confirmed the pool never reports below it, so analysis waits out a
   lagging majority instead of regressing. *)
let head_height t =
  let h = Chain.height t.chain in
  let reported =
    Array.to_list t.pool
    |> List.filter (fun es -> Breaker.state es.e_breaker <> Breaker.Open)
    |> List.map (fun es -> max 0 (h - es.e_spec.ep_lag))
  in
  let reported =
    match reported with
    | [] ->
        Array.to_list t.pool |> List.map (fun es -> max 0 (h - es.e_spec.ep_lag))
    | r -> r
  in
  let sorted = List.sort (fun a b -> compare b a) reported in
  let k = min t.quorum (List.length sorted) in
  let kth = List.nth sorted (k - 1) in
  if kth > t.confirmed_head then t.confirmed_head <- kth;
  t.confirmed_head
