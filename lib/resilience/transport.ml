type config = {
  plan : Fault_plan.spec option;
  policy : Retry.policy;
  breaker : Breaker.config;
  call_budget : int option;
  step_budget : int option;
}

let default_config =
  {
    plan = None;
    policy = Retry.default;
    breaker = Breaker.default_config;
    call_budget = None;
    step_budget = None;
  }

let config ?plan ?(policy = Retry.default) ?(breaker = Breaker.default_config)
    ?call_budget ?step_budget () =
  { plan; policy; breaker; call_budget; step_budget }

let with_plan plan cfg = { cfg with plan }
let with_policy policy cfg = { cfg with policy }
let with_breaker breaker cfg = { cfg with breaker }
let with_call_budget call_budget cfg = { cfg with call_budget }
let with_step_budget step_budget cfg = { cfg with step_budget }

let validate_config cfg =
  let module V = Report.Validate in
  let budget field = function
    | None -> Ok ()
    | Some b -> V.positive ~field b
  in
  match
    V.all
      [
        V.positive ~field:"policy.max_attempts" cfg.policy.Retry.max_attempts;
        V.positive ~field:"breaker.failure_threshold"
          cfg.breaker.Breaker.failure_threshold;
        budget "call_budget" cfg.call_budget;
        budget "step_budget" cfg.step_budget;
      ]
  with
  | Ok () -> Ok cfg
  | Error e -> Error e

type event =
  | Retry of { attempt : int; reason : string; delay : float }
  | Circuit_opened of { endpoint : string; failures : int }
  | Circuit_closed of { endpoint : string }
  | Dispatched of { meth : string; fault : string option; latency : float }

type stats = {
  dispatched : int;
  faults_seen : int;
  retries : int;
  gave_up : int;
  breaker_opens : int;
  virtual_elapsed : float;
}

exception Rpc_error of Chain_rpc.error
exception Budget_exhausted of { scope : string; budget : int; spent : int }

let () =
  Printexc.register_printer (function
    | Rpc_error e -> Some ("rpc error: " ^ Chain_rpc.error_to_string e)
    | Budget_exhausted { scope; budget; spent } ->
        Some
          (Printf.sprintf "budget exhausted: %d %s spent (budget %d)" spent
             scope budget)
    | _ -> None)

type t = {
  chain : Chain.t;
  cfg : config;
  clock : Vclock.t;
  plan : Fault_plan.t option;
  breaker : Breaker.t;
  seed : int;
  on_event : event -> unit;
  mutable dispatched : int;
  mutable faults_seen : int;
  mutable retries : int;
  mutable gave_up : int;
  mutable last_attempts : int;
}

let endpoint_name = "archive"

let create ?(config = default_config) ?(salt = 0) ?(on_event = fun _ -> ())
    ~chain () =
  let clock = Vclock.create () in
  let breaker = Breaker.create ~config:config.breaker ~clock
      ~endpoint:endpoint_name ()
  in
  let seed =
    match config.plan with Some s -> s.Fault_plan.seed lxor salt | None -> salt
  in
  let t =
    {
      chain;
      cfg = config;
      clock;
      plan = Option.map (Fault_plan.instantiate ~salt) config.plan;
      breaker;
      seed;
      on_event;
      dispatched = 0;
      faults_seen = 0;
      retries = 0;
      gave_up = 0;
      last_attempts = 0;
    }
  in
  Breaker.on_transition breaker (function
    | Breaker.Opened { failures } ->
        on_event (Circuit_opened { endpoint = endpoint_name; failures })
    | Breaker.Recovered -> on_event (Circuit_closed { endpoint = endpoint_name })
    | Breaker.Probing -> ());
  t

let direct chain = create ~chain ()

let clock t = t.clock
let retries t = t.retries
let last_attempts t = t.last_attempts

let stats t =
  {
    dispatched = t.dispatched;
    faults_seen = t.faults_seen;
    retries = t.retries;
    gave_up = t.gave_up;
    breaker_opens = Breaker.open_count t.breaker;
    virtual_elapsed = Vclock.now t.clock;
  }

let no_fault = { Fault_plan.d_latency = 0.0; d_fault = None }

let decide t =
  match t.plan with Some p -> Fault_plan.next p | None -> no_fault

let check_call_budget t =
  match t.cfg.call_budget with
  | Some budget when t.dispatched >= budget ->
      raise (Budget_exhausted { scope = "api-calls"; budget; spent = t.dispatched })
  | _ -> ()

let check_step_budget t ~steps =
  match t.cfg.step_budget with
  | Some budget when steps > budget ->
      raise (Budget_exhausted { scope = "evm-steps"; budget; spent = steps })
  | _ -> ()

(* One node round-trip for one request: fault-or-dispatch.  Faults are
   decided {e before} touching the node, so an injected failure never
   consumes an API call — retried runs keep the exact per-call accounting
   of a fault-free run (the §6.1 counter identity the chaos harness
   asserts). *)
let attempt_one t (meth, params) =
  let decision = decide t in
  let latency = decision.Fault_plan.d_latency in
  Vclock.sleep t.clock latency;
  match decision.Fault_plan.d_fault with
  | Some f ->
      t.faults_seen <- t.faults_seen + 1;
      Breaker.record_failure t.breaker;
      t.on_event
        (Dispatched
           {
             meth;
             fault = Some (Chain_rpc.transient_kind_name f.Fault_plan.f_kind);
             latency;
           });
      Error (Chain_rpc.Transient (f.Fault_plan.f_kind, f.Fault_plan.f_detail))
  | None ->
      check_call_budget t;
      let r = Chain_rpc.call t.chain ~meth ~params in
      t.dispatched <- t.dispatched + 1;
      (* Any answer — including a permanent error — is a completed
         round-trip: only transport-level faults count against the
         breaker. *)
      Breaker.record_success t.breaker;
      t.on_event (Dispatched { meth; fault = None; latency });
      r

let backoff t ~attempt ~reason =
  let delay = Retry.delay t.cfg.policy ~seed:t.seed ~attempt in
  t.retries <- t.retries + 1;
  t.on_event (Retry { attempt; reason; delay });
  Vclock.sleep t.clock delay

let call t ~meth ~params =
  let rec go attempt =
    Breaker.await_ready t.breaker;
    match attempt_one t (meth, params) with
    | Error (Chain_rpc.Transient _ as e)
      when attempt < t.cfg.policy.Retry.max_attempts ->
        backoff t ~attempt ~reason:(Chain_rpc.error_to_string e);
        go (attempt + 1)
    | Error (Chain_rpc.Transient _) as r ->
        t.gave_up <- t.gave_up + 1;
        t.last_attempts <- attempt;
        r
    | r ->
        t.last_attempts <- attempt;
        r
  in
  go 1

let call_batch t requests =
  let reqs = Array.of_list requests in
  let n = Array.length reqs in
  let responses = Array.make n (Error (Chain_rpc.Invalid_params "unserved")) in
  (* Retry only the failed subset of each round, preserving response
     order by index — the JSON-RPC partial-batch-failure contract. *)
  let rec round attempt pending =
    Breaker.await_ready t.breaker;
    let failed =
      List.filter
        (fun i ->
          match attempt_one t reqs.(i) with
          | Error (Chain_rpc.Transient _ as e) ->
              responses.(i) <- Error e;
              true
          | r ->
              responses.(i) <- r;
              false)
        pending
    in
    t.last_attempts <- attempt;
    if failed <> [] then
      if attempt < t.cfg.policy.Retry.max_attempts then begin
        backoff t ~attempt
          ~reason:
            (Printf.sprintf "%d/%d batch entries failed" (List.length failed) n);
        round (attempt + 1) failed
      end
      else t.gave_up <- t.gave_up + List.length failed
  in
  if n > 0 then round 1 (List.init n Fun.id);
  Array.to_list responses

let call_batch_exn t requests =
  List.map
    (function Ok v -> v | Error e -> raise (Rpc_error e))
    (call_batch t requests)
