(** Seeded, deterministic fault plans for the resilient transport.

    A {!spec} is a pure description of an unreliable provider: a
    transient-fault probability, a mean per-call virtual latency, and
    connection-drop windows (ranges of per-connection call indices during
    which every call fails).  {!instantiate} turns a spec into a decision
    stream; every decision is a pure function of [(seed, salt, attempt
    index)] — no wall clock, no global state — so a chaos run injects the
    same faults on every machine, at every worker count, on every replay.

    The transport opens one plan instance per logical connection (the
    analyzer: one per analyzed contract, salted by its address), which is
    what makes injection independent of how work interleaves across
    domains. *)

type spec = {
  seed : int;
  fault_rate : float;  (** Probability of a transient fault per attempt. *)
  mean_latency : float;
      (** Mean injected virtual latency per dispatched call (seconds on
          the {!Vclock}); actual draw is uniform in [0.5x, 1.5x]. *)
  drop_windows : (int * int) list;
      (** [(start, len)] ranges of per-connection call indices during
          which every attempt fails with a connection-drop
          [Node_error]. *)
}

val none : spec
(** No faults, no latency: the pass-through plan. *)

val spec :
  ?seed:int ->
  ?fault_rate:float ->
  ?mean_latency:float ->
  ?drop_windows:(int * int) list ->
  unit ->
  spec

type fault = { f_kind : Chain_rpc.transient_kind; f_detail : string }

type decision = {
  d_latency : float;  (** Virtual seconds to charge for this attempt. *)
  d_fault : fault option;  (** [Some] = inject instead of dispatching. *)
}

type t
(** One instantiated decision stream (a "connection"). *)

val instantiate : ?salt:int -> spec -> t
(** [salt] diversifies the stream across connections sharing a spec
    (deterministically — same salt, same stream). *)

val next : t -> decision
(** Decide the next attempt; advances the stream. *)

val calls_decided : t -> int
(** Attempts decided so far on this connection. *)
