(* See journal.mli for the format.  Invariants maintained here:
   - bytes <= [j_size] are always a valid committed prefix: magic, then
     whole frames, ending on a commit marker (or the bare magic);
   - every mutation of the file is either a single append [write] past
     [j_size] or an atomic whole-file replacement (compaction), so a kill
     at any instant leaves a file recovery can truncate back to a commit. *)

let magic = "PXJRNL02"
let legacy_magic = "PXJRNL01"
let magic_len = String.length magic

(* The v2 header records the durability mode the journal was written
   under: magic, then one byte — 'S' when commits fsync to stable
   storage, 'U' when they do not.  v1 files (bare magic) still open. *)
let header_len = magic_len + 1
let durability_byte fsync = if fsync then 'S' else 'U'
let header fsync = magic ^ String.make 1 (durability_byte fsync)
let frame_header_len = 9 (* kind byte + 4-byte length + 4-byte CRC32 *)

(* ------------------------------------------------------------------ *)
(* CRC32 (IEEE 802.3, reflected, table-driven)                         *)
(* ------------------------------------------------------------------ *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  String.iter
    (fun ch -> c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

(* ------------------------------------------------------------------ *)
(* Frames                                                              *)
(* ------------------------------------------------------------------ *)

let frame kind payload =
  let len = String.length payload in
  let b = Bytes.create (frame_header_len + len) in
  Bytes.set b 0 kind;
  Bytes.set_int32_be b 1 (Int32.of_int len);
  Bytes.set_int32_be b 5 (Int32.of_int (crc32 payload));
  Bytes.blit_string payload 0 b frame_header_len len;
  b

let u32 s off = Int32.to_int (String.get_int32_be s off) land 0xFFFFFFFF

(* Walk the frames of [data], stopping at the first sign of damage: a
   truncated header, an unknown kind, a payload running past EOF, a CRC
   mismatch, or a non-empty commit.  Returns the last payload a commit
   covers, the offset just past that commit, and how many record frames
   the commit retains. *)
let scan ~start data =
  let file_len = String.length data in
  let rec go pos last_record state end_ok count_ok records =
    if pos + frame_header_len > file_len then (state, end_ok, count_ok)
    else
      let kind = data.[pos] in
      if kind <> 'R' && kind <> 'C' then (state, end_ok, count_ok)
      else
        let len = u32 data (pos + 1) in
        let crc = u32 data (pos + 5) in
        if len > file_len - pos - frame_header_len then (state, end_ok, count_ok)
        else
          let payload = String.sub data (pos + frame_header_len) len in
          let next = pos + frame_header_len + len in
          if crc32 payload <> crc then (state, end_ok, count_ok)
          else if kind = 'C' then
            if len <> 0 then (state, end_ok, count_ok)
            else go next last_record last_record next records records
          else go next (Some payload) state end_ok count_ok (records + 1)
  in
  go start None None start 0 0

(* ------------------------------------------------------------------ *)
(* The store                                                           *)
(* ------------------------------------------------------------------ *)

type t = {
  j_path : string;
  j_fsync : bool;
  j_compact : int;
  mutable j_fd : Unix.file_descr;
  mutable j_size : int;
  mutable j_last : string option; (* most recently appended record *)
  mutable j_committed : string option;
}

type recovery = {
  rec_state : string option;
  rec_committed : int;
  rec_dropped_bytes : int;
  rec_durable : bool option;
}

let path t = t.j_path
let last_committed t = t.j_committed
let fail msg = raise (Sys_error msg)

let guard f =
  match f () with
  | v -> Ok v
  | exception Unix.Unix_error (e, fn, _) ->
      Error (Printf.sprintf "journal: %s: %s" fn (Unix.error_message e))
  | exception Sys_error m -> Error ("journal: " ^ m)

let write_all fd b =
  let n = Bytes.length b in
  let rec go off =
    if off < n then go (off + Unix.write fd b off (n - off))
  in
  go 0

let sync t = if t.j_fsync then Unix.fsync t.j_fd

let open_journal ?(fsync = true) ?(compact_bytes = 64 * 1024 * 1024) path =
  if compact_bytes <= 0 then
    invalid_arg "Journal.open_journal: compact_bytes must be > 0";
  guard (fun () ->
      if not (Sys.file_exists path) then begin
        let fd =
          Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
        in
        write_all fd (Bytes.of_string (header fsync));
        let t =
          {
            j_path = path;
            j_fsync = fsync;
            j_compact = compact_bytes;
            j_fd = fd;
            j_size = header_len;
            j_last = None;
            j_committed = None;
          }
        in
        sync t;
        ( t,
          {
            rec_state = None;
            rec_committed = 0;
            rec_dropped_bytes = 0;
            rec_durable = Some fsync;
          } )
      end
      else begin
        let data = In_channel.with_open_bin path In_channel.input_all in
        let file_len = String.length data in
        let start, durable =
          if file_len >= header_len && String.sub data 0 magic_len = magic then
            match data.[magic_len] with
            | 'S' -> (header_len, Some true)
            | 'U' -> (header_len, Some false)
            | _ -> fail (path ^ ": not a journal (bad durability byte)")
          else if
            file_len >= String.length legacy_magic
            && String.sub data 0 (String.length legacy_magic) = legacy_magic
          then (String.length legacy_magic, None)
          else fail (path ^ ": not a journal (bad magic)")
        in
        let state, valid_end, committed = scan ~start data in
        let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
        if valid_end < file_len then Unix.ftruncate fd valid_end;
        ignore (Unix.lseek fd valid_end Unix.SEEK_SET);
        let t =
          {
            j_path = path;
            j_fsync = fsync;
            j_compact = compact_bytes;
            j_fd = fd;
            j_size = valid_end;
            j_last = state;
            j_committed = state;
          }
        in
        if valid_end < file_len then sync t;
        ( t,
          {
            rec_state = state;
            rec_committed = committed;
            rec_dropped_bytes = file_len - valid_end;
            rec_durable = durable;
          } )
      end)

let append t payload =
  guard (fun () ->
      let b = frame 'R' payload in
      write_all t.j_fd b;
      t.j_size <- t.j_size + Bytes.length b;
      t.j_last <- Some payload)

(* Compaction: the whole committed state fits in one record, so rewrite
   the journal as magic + record + commit in a temporary file and rename
   it over the original — readers and crashes see either the old journal
   or the new one, never a torn middle. *)
let compact t =
  guard (fun () ->
      let tmp = t.j_path ^ ".tmp" in
      let fd =
        Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      (* Compaction rewrites the header too, so a legacy v1 journal is
         upgraded (and the recorded durability refreshed) in place. *)
      let hdr = Bytes.of_string (header t.j_fsync) in
      let body =
        match t.j_committed with
        | None -> hdr
        | Some s ->
            Bytes.concat Bytes.empty [ hdr; frame 'R' s; frame 'C' "" ]
      in
      write_all fd body;
      if t.j_fsync then Unix.fsync fd;
      Unix.close fd;
      Unix.close t.j_fd;
      Sys.rename tmp t.j_path;
      let fd = Unix.openfile t.j_path [ Unix.O_WRONLY ] 0o644 in
      ignore (Unix.lseek fd 0 Unix.SEEK_END);
      t.j_fd <- fd;
      t.j_size <- Bytes.length body;
      t.j_last <- t.j_committed)

let commit t =
  guard (fun () ->
      let b = frame 'C' "" in
      write_all t.j_fd b;
      t.j_size <- t.j_size + Bytes.length b;
      sync t;
      t.j_committed <- t.j_last)
  |> Result.map (fun () ->
         if t.j_size > t.j_compact then
           (* Best-effort: a failed auto-compaction leaves a valid (if
              large) journal behind, so it does not fail the commit. *)
           ignore (compact t))

let checkpoint t payload = Result.bind (append t payload) (fun () -> commit t)
let close t = try Unix.close t.j_fd with Unix.Unix_error _ -> ()
