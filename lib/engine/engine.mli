(** A staged, batched analysis engine with optional domain parallelism.

    The engine is the generic half of ProxioN's production pipeline: it
    owns a persistent work queue, schedules items in fixed-size batches,
    and emits structured per-stage events (start/finish/error with
    wall-clock timing and counter deltas) to any number of subscribers.
    The domain half — what the six stages actually do — is supplied as a
    [process] callback, so this library depends on nothing but the report
    substrate and can drive any per-item analysis.

    With [~domains:n] (n > 1) each batch is fanned out across a pool of
    OCaml domains through a chunked work-stealing scheduler — no
    dependency on domainslib: a lock-free fetch-and-add cursor hands each
    worker a contiguous chunk of chains (amortizing one synchronization
    over many items), per-worker deques let idle workers steal the back
    half of a busy worker's remaining chunk to balance the tail, and each
    worker buffers its events, aggregates and outcomes in shard-local
    slots.  The coordinator performs a single input-order merge at the
    batch barrier: results, skip records, per-stage aggregates, and every
    subscriber-visible event reproduce the sequential interleaving
    exactly, so reports and checkpoints are byte-identical whatever the
    worker count.
    [~domains:1] (the default) takes the plain sequential code path with
    no domain machinery at all.  An optional [~key] groups items of a
    batch into chains that are processed sequentially on one worker —
    callers whose [process] shares caches keyed by that value (the
    analyzer's bytecode-hash dedup) use this to keep cache effects
    deterministic.

    Failures are isolated and {e classified}: an [Error] or exception
    from [process] records the item in a dead-letter list with its
    failure class ([Transient], [Permanent], [Budget_exhausted] or
    [Worker_crashed]), the stage it died in and the attempts consumed,
    and the batch carries on.  Because the record keeps the original
    item, {!requeue} can push recoverable entries back onto the queue —
    the retry-skipped loop a long crawl runs between sessions.

    Workers are {e supervised}: an exception no [process] should be
    expected to survive ([Stack_overflow], [Out_of_memory], or an
    injected {!Crash_injected}) kills only the domain it escaped on.  The
    dying worker records its in-flight item as a [Worker_crashed] dead
    letter first, the supervisor respawns a fresh domain on the rest of
    the crashed worker's chain, and the input-order merge is preserved —
    a run with crashes still reports byte-identically to the sequential
    engine given the same kill decisions.  A per-subject failure counter
    (persisted in checkpoints) backs an optional {e attempt ceiling} so a
    deterministically-crashing item is eventually left dead-lettered
    instead of being requeued forever.

    Runs are resumable: {!checkpoint} serializes the pending queue, the
    completed results and the dead-letter list (items included) through
    caller-supplied JSON converters, and {!restore} rebuilds an engine
    that continues exactly where the serialized one stopped. *)

(** The six analysis stages of the ProxioN pipeline, in execution order
    (§4–§5 of the paper): bytecode-hash dedup lookup, emulation probe,
    Algorithm-1 logic resolution, standard classification, and the two
    per-pair collision checks. *)
type stage =
  | Dedup_check
  | Proxy_probe
  | Logic_resolve
  | Classify
  | Func_collision
  | Storage_collision

val stage_name : stage -> string
val stage_of_name : string -> stage option
val all_stages : stage list

(** Wall-clock and counter deltas measured across one stage execution. *)
type timing = {
  t_elapsed : float;  (** Seconds. *)
  t_api_calls : int;  (** getStorageAt-style API calls spent. *)
  t_steps : int;  (** EVM instructions interpreted. *)
  t_retries : int;  (** Transport retries taken during the stage. *)
}

(** {1 Skip classification}

    Why an item failed decides what happens to it next: [Transient]
    failures (rate limits, timeouts, node errors that outlived the retry
    budget) and [Budget_exhausted] ones (a per-item call/step budget ran
    out) are recoverable — {!requeue_transients} sends them around again;
    [Permanent] failures (malformed input, logic errors) are not.
    [Worker_crashed] marks an item whose worker domain died under it
    (fatal exception or injected kill); it is recoverable — the crash is
    attributed to the worker, not the item — but counts toward the
    attempt ceiling. *)
type skip_class = Transient | Permanent | Budget_exhausted | Worker_crashed

val skip_class_name : skip_class -> string
(** ["transient"], ["permanent"], ["budget-exhausted"],
    ["worker-crashed"] — the checkpoint encoding. *)

val skip_class_of_name : string -> skip_class option

(** {1 Crash injection}

    The deterministic stand-in for a worker death, used by the crash
    harness: a plan decides — as a pure function of (seed, subject) —
    which items' workers die the instant the item is picked up, raising
    {!Crash_injected} from inside the worker.  Each subject is killed at
    most once per plan, so a {!requeue} after the run re-processes every
    casualty successfully and the final figures converge to the
    fault-free run's.  Because decisions depend only on the subject, the
    same plan produces the same casualties at every [domains] count. *)

type crash_plan

exception Crash_injected of string
(** Raised inside a worker by an armed {!crash_plan}; carries the
    subject.  Treated exactly like [Stack_overflow]/[Out_of_memory] by
    the supervisor. *)

val crash_plan :
  ?seed:int -> ?rate:float -> ?subjects:string list -> unit -> crash_plan
(** [crash_plan ~seed ~rate ~subjects ()] kills the worker holding any
    subject listed in [subjects], plus a pseudo-random [rate] fraction of
    all other subjects (seeded by [seed], default 1; [rate] defaults to
    0).  Raises [Invalid_argument] if [rate] is outside [0, 1]. *)

(** What a [process] callback returns in its [Error] case. *)
type skip_reason = {
  sr_message : string;
  sr_stage : stage option;  (** Stage the failure is attributed to. *)
  sr_attempts : int;  (** Transport attempts consumed (>= 1). *)
  sr_class : skip_class;
}

val permanent : ?stage:stage -> ?attempts:int -> string -> skip_reason
val transient : ?stage:stage -> ?attempts:int -> string -> skip_reason
val budget_exhausted : ?stage:stage -> ?attempts:int -> string -> skip_reason
(** Constructors; [attempts] defaults to 1. *)

(** A dead-letter entry: the skip reason plus the original item, so the
    entry can be requeued and survives a checkpoint round-trip. *)
type 'item skip_record = {
  sk_item : 'item;
  sk_subject : string;
  sk_message : string;
  sk_stage : stage option;
  sk_attempts : int;
  sk_class : skip_class;
}

(** Events carry the id of the worker that ran the work: 0 is the
    coordinator (and the only id seen with [domains:1]); helper domains
    are 1..domains-1.  Worker-side events are buffered and delivered from
    the coordinator at the batch barrier, in input order — subscribers
    never run concurrently. *)
type event =
  | Run_started of { pending : int; batch_size : int; domains : int }
  | Batch_started of { index : int; size : int }
  | Batch_finished of { index : int; size : int; elapsed : float }
  | Stage_started of { stage : stage; subject : string; worker : int }
  | Stage_finished of {
      stage : stage;
      subject : string;
      timing : timing;
      worker : int;
    }
  | Stage_errored of {
      stage : stage;
      subject : string;
      message : string;
      worker : int;
    }
      (** The stage raised; the item is about to be skipped. *)
  | Retry_attempted of {
      subject : string;
      attempt : int;
      reason : string;
      delay : float;  (** Virtual seconds of backoff. *)
      worker : int;
    }
      (** The resilient transport is retrying a transient failure. *)
  | Circuit_opened of {
      endpoint : string;
      subject : string;
      failures : int;
      worker : int;
    }
      (** A connection's circuit breaker tripped. *)
  | Circuit_closed of { endpoint : string; subject : string; worker : int }
      (** A half-open probe succeeded; the circuit recovered. *)
  | Item_skipped of {
      subject : string;
      message : string;
      fault_class : skip_class;
      attempts : int;
      worker : int;
    }
      (** Error isolation: the item moved to the dead-letter list, the
          batch continues. *)
  | Run_finished of { processed : int; skipped : int; elapsed : float }

type ('item, 'res) t

type ('item, 'res) ctx
(** What a [process] callback receives: a handle identifying the engine
    and the worker executing the item.  Stage timing and custom events
    routed through the ctx are delivered directly on the sequential path
    and buffered for the deterministic merge on worker domains. *)

val create :
  ?batch_size:int ->
  ?domains:int ->
  ?key:('item -> string) ->
  ?crash_plan:crash_plan ->
  ?attempt_ceiling:int ->
  ?clock:Obs.Clock.t ->
  subject:('item -> string) ->
  process:(('item, 'res) ctx -> 'item -> ('res, skip_reason) result) ->
  unit ->
  ('item, 'res) t
(** A fresh engine with an empty queue.  [batch_size] defaults to 32;
    [domains] (default 1) sizes the per-batch worker pool; [key] groups
    same-key items of a batch into one sequential chain (see the module
    docs); [crash_plan] arms seeded worker kills (tests only);
    [attempt_ceiling] caps how many dead-letter entries a single subject
    may accumulate before {!requeue} refuses to recycle it (default:
    unlimited; raises [Invalid_argument] when <= 0); [clock] (default
    {!Obs.Clock.real}) is the source of every stage/batch/run timing —
    tests pass a virtual clock to pin timings; [subject] renders an item
    for event reporting; [process] analyzes one item (typically calling
    {!timed_stage} for each stage it runs).  [process] must touch shared
    mutable state only in ways that are safe under the declared [domains]
    count. *)

val clock : ('item, 'res) t -> Obs.Clock.t
(** The clock timings are taken from. *)

(** {1 Events} *)

val subscribe : ('item, 'res) t -> (event -> unit) -> unit
(** Register a subscriber.  Subscribers are invoked synchronously, in
    registration order, for every subsequent event, always from the
    coordinator thread. *)

val emit : ('item, 'res) t -> event -> unit
(** Deliver an event to every subscriber (used by [process] callbacks for
    domain-specific events; the engine emits the scheduling ones).  Only
    safe from the coordinator; worker-side [process] code must use
    {!emit_from}. *)

val emit_from : ('item, 'res) ctx -> event -> unit
(** Deliver an event through the ctx: directly on the sequential path,
    buffered for the input-order merge when running on a worker domain.
    This is how the analyzer surfaces transport events
    ([Retry_attempted], [Circuit_opened]...) without breaking the
    determinism of the merged stream. *)

val engine : ('item, 'res) ctx -> ('item, 'res) t
(** The engine the ctx belongs to. *)

val on_merged : ('item, 'res) ctx -> (unit -> unit) -> unit
(** Run a thunk at this item's deterministic-merge point: immediately on
    the sequential path, buffered — and replayed in input order at the
    batch barrier, after the item's events — on a worker domain.  The
    telemetry layer uses this to absorb per-item metric shards into the
    root registry in sequential order, which keeps even float sums
    byte-identical across [domains] counts. *)

val worker_id : ('item, 'res) ctx -> int
(** Id of the worker running this item: 0 on the sequential path and the
    coordinator, 1..domains-1 on helper domains. *)

val current_stage : ('item, 'res) ctx -> stage option
(** The stage the item is currently inside (set by {!timed_stage} on
    entry, cleared on success) — what exception-path skip records are
    attributed to. *)

val timed_stage :
  ('item, 'res) ctx ->
  stage:stage ->
  subject:string ->
  ?api_calls:(unit -> int) ->
  ?steps:(unit -> int) ->
  ?retries:(unit -> int) ->
  (unit -> 'a) ->
  'a
(** [timed_stage ctx ~stage ~subject f] runs [f] bracketed by
    [Stage_started]/[Stage_finished] events.  [api_calls], [steps] and
    [retries] are monotonic counter readers sampled before and after [f];
    their deltas land in the event's {!timing} and in the per-stage
    aggregates.  When [f] raises, a [Stage_errored] event is emitted and
    the exception is re-raised (the scheduler then dead-letters the
    item).  Under parallel execution the readers must observe
    worker-local counters (the analyzer passes each worker's private
    chain-view and transport counters), and the events/aggregates are
    buffered for the ordered merge. *)

(** {1 Scheduling} *)

val submit : ('item, 'res) t -> 'item list -> unit
(** Append items to the work queue (FIFO). *)

val pending : ('item, 'res) t -> int
val batch_size : ('item, 'res) t -> int
val domains : ('item, 'res) t -> int
val batches_done : ('item, 'res) t -> int

val step_batch : ('item, 'res) t -> bool
(** Process one batch from the queue head.  [false] when the queue was
    empty.  Items whose [process] raises or returns [Error] are recorded
    in the dead-letter list — with [Stage_errored]/[Item_skipped] events
    — instead of aborting the batch.  With [domains > 1] the batch is
    fanned across the worker pool and merged in input order before this
    returns; the batch boundary is therefore also the parallel barrier,
    and checkpoints taken between batches are identical to sequential
    ones. *)

val run : ?max_batches:int -> ('item, 'res) t -> unit
(** Drain the queue ([max_batches] bounds how many batches this call may
    process — the interruption point a checkpoint naturally follows). *)

val results : ('item, 'res) t -> 'res list
(** Completed results in completion order (= submission order). *)

val drain_results : ('item, 'res) t -> 'res list
(** Like {!results}, but also clears the engine's result buffer: each
    completed result is returned exactly once across successive drains.
    Long-lived callers (the query daemon) drain after every [run] so
    the engine — and the checkpoints {!checkpoint} serializes — stay
    bounded regardless of how many increments have been processed.
    [processed_count] is unaffected. *)

val processed_count : ('item, 'res) t -> int

(** {1 Dead letters} *)

val skipped : ('item, 'res) t -> 'item skip_record list
(** Every item dropped by error isolation, in occurrence order, with its
    classification and the original item. *)

val skipped_pairs : ('item, 'res) t -> (string * string) list
(** [(subject, message)] projection of {!skipped} — the compact form
    reports print. *)

val skipped_by_class : ('item, 'res) t -> (skip_class * int) list
(** Dead-letter counts per class, omitting empty classes, in declaration
    order — what a live progress display prints. *)

val crashes : ('item, 'res) t -> int
(** How many worker deaths the supervisor has absorbed (injected kills,
    stack overflows...) since this engine was created.  Not serialized. *)

val failure_count : ('item, 'res) t -> string -> int
(** Cumulative dead-letter entries recorded for a subject, across
    requeues — the counter the attempt ceiling consults. *)

val requeue : ?classes:skip_class list -> ('item, 'res) t -> int
(** Move dead-letter entries whose class is in [classes] (default
    [[Transient; Budget_exhausted; Worker_crashed]] — the recoverable
    ones) back onto the work queue, preserving their original relative
    order, and return how many moved.  Entries whose subject has reached
    the engine's attempt ceiling are left in the dead-letter list
    regardless of class.  A subsequent {!run} retries the moved ones;
    entries that fail again are re-recorded (with fresh attempt
    counts). *)

val requeue_transients : ('item, 'res) t -> int
(** [requeue t] with the default classes. *)

(** {1 Per-stage aggregates} *)

val stage_totals : ('item, 'res) t -> (stage * int * timing) list
(** [(stage, invocations, summed timing)] for every stage observed so
    far, in {!all_stages} order. *)

val stage_totals_table : ('item, 'res) t -> string
(** The aggregates as an aligned report table. *)

(** {1 Checkpointing} *)

val checkpoint_version : int
(** Current checkpoint format version (3: version 2's classified
    dead-letter records plus the per-subject failure counters backing the
    attempt ceiling).  {!restore} also accepts version 2, reconstructing
    the counters from the dead-letter list. *)

val checkpoint :
  item_to_json:('item -> Report.Json.t) ->
  res_to_json:('res -> Report.Json.t) ->
  ?extra:Report.Json.t ->
  ('item, 'res) t ->
  Report.Json.t
(** Serialize queue, results, dead-letter list, batch counter and [extra]
    (an opaque client payload: dedup caches, stat counters...).  Each
    dead-letter entry embeds its item (via [item_to_json]), so a restored
    engine can still {!requeue} it.  The worker count and any resilience
    configuration are deliberately not serialized — they are execution
    parameters, not state, and a checkpoint written under any
    [domains]/fault plan restores and resumes identically under any
    other. *)

val restore :
  ?batch_size:int ->
  ?domains:int ->
  ?key:('item -> string) ->
  ?crash_plan:crash_plan ->
  ?attempt_ceiling:int ->
  ?clock:Obs.Clock.t ->
  subject:('item -> string) ->
  process:(('item, 'res) ctx -> 'item -> ('res, skip_reason) result) ->
  item_of_json:(Report.Json.t -> ('item, string) result) ->
  res_of_json:(Report.Json.t -> ('res, string) result) ->
  Report.Json.t ->
  (('item, 'res) t * Report.Json.t, string) result
(** Rebuild an engine from a {!checkpoint} value (version 2 or 3);
    returns it together with the [extra] payload ([Report.Json.Null] when
    absent).  [batch_size] overrides the checkpointed one when given;
    [domains], [key], [crash_plan] and [attempt_ceiling] configure the
    resumed engine exactly as in {!create}. *)

val of_json :
  ?batch_size:int ->
  ?domains:int ->
  ?key:('item -> string) ->
  ?crash_plan:crash_plan ->
  ?attempt_ceiling:int ->
  ?clock:Obs.Clock.t ->
  subject:('item -> string) ->
  process:(('item, 'res) ctx -> 'item -> ('res, skip_reason) result) ->
  item_of_json:(Report.Json.t -> ('item, string) result) ->
  res_of_json:(Report.Json.t -> ('res, string) result) ->
  Report.Json.t ->
  (('item, 'res) t * Report.Json.t, string) result
(** {!restore} under its hardening-contract name: total over arbitrary
    JSON input.  Every truncation or corruption of a checkpoint —
    missing fields, wrong types, unknown stage/class names, unsupported
    versions — comes back as [Error _]; no input makes it raise.
    (Caller-supplied [item_of_json]/[res_of_json] must uphold the same
    contract for their fragments.) *)

(** {1 Task channel}

    A multi-producer/multi-consumer closeable channel for long-lived
    domain-parallel accept loops (the query daemon feeds client
    connections to worker domains through one; the batch scheduler
    itself now dispatches through a lock-free chunk cursor instead).
    [pop] blocks until an element arrives or the channel has been closed
    {e and} drained: a close never drops queued elements — consumers
    drain everything in flight before their [pop] returns [None].

    Waking is deliberately minimal: [push] signals exactly one sleeping
    consumer (one element can satisfy at most one of them — a broadcast
    would stampede the whole idle pool through the mutex), [push_many]
    coalesces the wakeups for a burst, and only [close] broadcasts,
    because every blocked consumer must observe it. *)
module Task_channel : sig
  type 'a t

  val create : unit -> 'a t
  val push : 'a t -> 'a -> unit

  val push_many : 'a t -> 'a list -> unit
  (** Enqueue a burst under one lock acquisition; wakes one sleeper per
      element, coalesced into a single broadcast when several arrive. *)

  val close : 'a t -> unit
  (** Idempotent; wakes every blocked [pop]. *)

  val pop : 'a t -> 'a option
  (** Block for the next element; [None] once closed and empty. *)

  val pop_opt : 'a t -> 'a option
  (** Non-blocking variant: [None] when currently empty. *)

  val length : 'a t -> int
end

(** {1 Telemetry}

    Adapters from the engine {!event} stream to the obs layer.  All three
    subscribe on the coordinator, where the deterministic merge has
    already serialized worker-side events into input order — so metric
    updates (including float backoff sums) happen in the exact order a
    sequential run would produce, and registry snapshots are
    byte-identical across [domains] counts once volatile (wall-clock)
    families are suppressed. *)
module Telemetry : sig
  val instrument : Obs.Metrics.t -> ('item, 'res) t -> unit
  (** Register the [proxion_*] metric families (stage runs/latency/API
      calls/steps, retries, backoff, breaker transitions, dead-letter
      classes, batch/run timings, worker crashes) in [registry] and
      subscribe a recorder for them.  Wall-clock-derived families are
      registered volatile. *)

  val attach_trace : Obs.Trace.t -> ('item, 'res) t -> unit
  (** Subscribe a span builder: a run > batch > item > stage tree on
      track 0, timestamped by a synthetic cursor advanced with
      event-payload durations (worker ids appear as span args — the
      merged stream no longer reflects real concurrency), plus instant
      events for retries, breaker flips, stage errors and skips. *)

  val attach_log : Obs.Log.t -> ('item, 'res) t -> unit
  (** Subscribe the structured progress backend: run/batch lines at
      [Info], item skips and stage errors at [Warn], per-stage and
      per-retry detail at [Debug].  Retry and breaker events are
      summarized once per batch (count + total backoff) instead of one
      line per attempt, so a high fault rate cannot flood the sink. *)
end
