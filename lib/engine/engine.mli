(** A staged, batched analysis engine.

    The engine is the generic half of ProxioN's production pipeline: it
    owns a persistent work queue, schedules items in fixed-size batches,
    and emits structured per-stage events (start/finish/error with
    wall-clock timing and counter deltas) to any number of subscribers.
    The domain half — what the six stages actually do — is supplied as a
    [process] callback, so this library depends on nothing but the report
    substrate and can drive any per-item analysis.

    Runs are resumable: {!checkpoint} serializes the pending queue, the
    completed results and the skipped list through caller-supplied JSON
    converters, and {!restore} rebuilds an engine that continues exactly
    where the serialized one stopped.  Failures are isolated: an exception
    or [Error] from [process] records the item as skipped and the batch
    carries on. *)

(** The six analysis stages of the ProxioN pipeline, in execution order
    (§4–§5 of the paper): bytecode-hash dedup lookup, emulation probe,
    Algorithm-1 logic resolution, standard classification, and the two
    per-pair collision checks. *)
type stage =
  | Dedup_check
  | Proxy_probe
  | Logic_resolve
  | Classify
  | Func_collision
  | Storage_collision

val stage_name : stage -> string
val stage_of_name : string -> stage option
val all_stages : stage list

(** Wall-clock and counter deltas measured across one stage execution. *)
type timing = {
  t_elapsed : float;  (** Seconds. *)
  t_api_calls : int;  (** getStorageAt-style API calls spent. *)
  t_steps : int;  (** EVM instructions interpreted. *)
}

type event =
  | Run_started of { pending : int; batch_size : int }
  | Batch_started of { index : int; size : int }
  | Batch_finished of { index : int; size : int; elapsed : float }
  | Stage_started of { stage : stage; subject : string }
  | Stage_finished of { stage : stage; subject : string; timing : timing }
  | Stage_errored of { stage : stage; subject : string; message : string }
      (** The stage raised; the item is about to be skipped. *)
  | Item_skipped of { subject : string; message : string }
      (** Error isolation: the item is dropped, the batch continues. *)
  | Run_finished of { processed : int; skipped : int; elapsed : float }

type ('item, 'res) t

val create :
  ?batch_size:int ->
  subject:('item -> string) ->
  process:(('item, 'res) t -> 'item -> ('res, string) result) ->
  unit ->
  ('item, 'res) t
(** A fresh engine with an empty queue.  [batch_size] defaults to 32;
    [subject] renders an item for event reporting; [process] analyzes one
    item (typically calling {!timed_stage} for each stage it runs). *)

(** {1 Events} *)

val subscribe : ('item, 'res) t -> (event -> unit) -> unit
(** Register a subscriber.  Subscribers are invoked synchronously, in
    registration order, for every subsequent event. *)

val emit : ('item, 'res) t -> event -> unit
(** Deliver an event to every subscriber (used by [process] callbacks for
    domain-specific events; the engine emits the scheduling ones). *)

val timed_stage :
  ('item, 'res) t ->
  stage:stage ->
  subject:string ->
  ?api_calls:(unit -> int) ->
  ?steps:(unit -> int) ->
  (unit -> 'a) ->
  'a
(** [timed_stage t ~stage ~subject f] runs [f] bracketed by
    [Stage_started]/[Stage_finished] events.  [api_calls] and [steps] are
    monotonic counter readers sampled before and after [f]; their deltas
    land in the event's {!timing} and in the per-stage aggregates.  When
    [f] raises, a [Stage_errored] event is emitted and the exception is
    re-raised (the scheduler then skips the item). *)

(** {1 Scheduling} *)

val submit : ('item, 'res) t -> 'item list -> unit
(** Append items to the work queue (FIFO). *)

val pending : ('item, 'res) t -> int
val batch_size : ('item, 'res) t -> int
val batches_done : ('item, 'res) t -> int

val step_batch : ('item, 'res) t -> bool
(** Process one batch from the queue head.  [false] when the queue was
    empty.  Items whose [process] raises or returns [Error] are recorded
    as skipped — with [Stage_errored]/[Item_skipped] events — instead of
    aborting the batch. *)

val run : ?max_batches:int -> ('item, 'res) t -> unit
(** Drain the queue ([max_batches] bounds how many batches this call may
    process — the interruption point a checkpoint naturally follows). *)

val results : ('item, 'res) t -> 'res list
(** Completed results in completion order (= submission order). *)

val processed_count : ('item, 'res) t -> int

val skipped : ('item, 'res) t -> (string * string) list
(** [(subject, message)] for every item dropped by error isolation, in
    occurrence order. *)

(** {1 Per-stage aggregates} *)

val stage_totals : ('item, 'res) t -> (stage * int * timing) list
(** [(stage, invocations, summed timing)] for every stage observed so
    far, in {!all_stages} order. *)

val stage_totals_table : ('item, 'res) t -> string
(** The aggregates as an aligned report table. *)

(** {1 Checkpointing} *)

val checkpoint :
  item_to_json:('item -> Report.Json.t) ->
  res_to_json:('res -> Report.Json.t) ->
  ?extra:Report.Json.t ->
  ('item, 'res) t ->
  Report.Json.t
(** Serialize queue, results, skip list, batch counter and [extra] (an
    opaque client payload: dedup caches, stat counters...). *)

val restore :
  ?batch_size:int ->
  subject:('item -> string) ->
  process:(('item, 'res) t -> 'item -> ('res, string) result) ->
  item_of_json:(Report.Json.t -> ('item, string) result) ->
  res_of_json:(Report.Json.t -> ('res, string) result) ->
  Report.Json.t ->
  (('item, 'res) t * Report.Json.t, string) result
(** Rebuild an engine from a {!checkpoint} value; returns it together
    with the [extra] payload ([Report.Json.Null] when absent).
    [batch_size] overrides the checkpointed one when given. *)
