module Json = Report.Json

type stage =
  | Dedup_check
  | Proxy_probe
  | Logic_resolve
  | Classify
  | Func_collision
  | Storage_collision

let all_stages =
  [
    Dedup_check;
    Proxy_probe;
    Logic_resolve;
    Classify;
    Func_collision;
    Storage_collision;
  ]

let stage_name = function
  | Dedup_check -> "dedup-check"
  | Proxy_probe -> "proxy-probe"
  | Logic_resolve -> "logic-resolve"
  | Classify -> "classify"
  | Func_collision -> "func-collision"
  | Storage_collision -> "storage-collision"

let stage_of_name s =
  List.find_opt (fun st -> stage_name st = s) all_stages

type timing = {
  t_elapsed : float;
  t_api_calls : int;
  t_steps : int;
  t_retries : int;
}

(* ------------------------------------------------------------------ *)
(* Skip classification and dead-letter records                         *)
(* ------------------------------------------------------------------ *)

type skip_class = Transient | Permanent | Budget_exhausted | Worker_crashed

let skip_class_name = function
  | Transient -> "transient"
  | Permanent -> "permanent"
  | Budget_exhausted -> "budget-exhausted"
  | Worker_crashed -> "worker-crashed"

let skip_class_of_name = function
  | "transient" -> Some Transient
  | "permanent" -> Some Permanent
  | "budget-exhausted" -> Some Budget_exhausted
  | "worker-crashed" -> Some Worker_crashed
  | _ -> None

type skip_reason = {
  sr_message : string;
  sr_stage : stage option;
  sr_attempts : int;
  sr_class : skip_class;
}

let skip_reason ?stage ?(attempts = 1) cls message =
  { sr_message = message; sr_stage = stage; sr_attempts = attempts;
    sr_class = cls }

let permanent ?stage ?attempts message =
  skip_reason ?stage ?attempts Permanent message

let transient ?stage ?attempts message =
  skip_reason ?stage ?attempts Transient message

let budget_exhausted ?stage ?attempts message =
  skip_reason ?stage ?attempts Budget_exhausted message

(* ------------------------------------------------------------------ *)
(* Crash injection and fatal-exception classification                  *)
(* ------------------------------------------------------------------ *)

exception Crash_injected of string

(* A seeded kill plan: decides, per subject, whether the worker holding
   that item dies the instant it picks the item up.  Decisions are a pure
   function of (seed, subject) — independent of scheduling, worker count
   and batch boundaries — and each subject is killed at most once, so a
   [requeue] after the run converges to the fault-free figures.  The
   killed-set is shared across domains behind a mutex. *)
type crash_plan = {
  cp_seed : int;
  cp_rate : float;
  cp_subjects : string list;
  cp_killed : (string, unit) Hashtbl.t;
  cp_lock : Mutex.t;
}

let crash_plan ?(seed = 1) ?(rate = 0.0) ?(subjects = []) () =
  if rate < 0.0 || rate > 1.0 then
    invalid_arg "Engine.crash_plan: rate must be within [0, 1]";
  {
    cp_seed = seed;
    cp_rate = rate;
    cp_subjects = subjects;
    cp_killed = Hashtbl.create 16;
    cp_lock = Mutex.create ();
  }

let crash_decision plan subject =
  List.mem subject plan.cp_subjects
  || plan.cp_rate > 0.0
     && float_of_int (Hashtbl.hash (plan.cp_seed, subject) land 0xFFFFFF)
        /. 16777216.0
        < plan.cp_rate

(* True exactly once per doomed subject. *)
let crash_armed plan subject =
  crash_decision plan subject
  && begin
       Mutex.lock plan.cp_lock;
       let fresh = not (Hashtbl.mem plan.cp_killed subject) in
       if fresh then Hashtbl.replace plan.cp_killed subject ();
       Mutex.unlock plan.cp_lock;
       fresh
     end

(* Exceptions a worker cannot be expected to survive: the supervisor
   treats these as the death of the worker itself, not a failure [process]
   chose to report.  [Crash_injected] is the test harness's stand-in. *)
let is_fatal = function
  | Crash_injected _ | Stack_overflow | Out_of_memory -> true
  | _ -> false

type 'item skip_record = {
  sk_item : 'item;
  sk_subject : string;
  sk_message : string;
  sk_stage : stage option;
  sk_attempts : int;
  sk_class : skip_class;
}

type event =
  | Run_started of { pending : int; batch_size : int; domains : int }
  | Batch_started of { index : int; size : int }
  | Batch_finished of { index : int; size : int; elapsed : float }
  | Stage_started of { stage : stage; subject : string; worker : int }
  | Stage_finished of {
      stage : stage;
      subject : string;
      timing : timing;
      worker : int;
    }
  | Stage_errored of {
      stage : stage;
      subject : string;
      message : string;
      worker : int;
    }
  | Retry_attempted of {
      subject : string;
      attempt : int;
      reason : string;
      delay : float;
      worker : int;
    }
  | Circuit_opened of {
      endpoint : string;
      subject : string;
      failures : int;
      worker : int;
    }
  | Circuit_closed of { endpoint : string; subject : string; worker : int }
  | Item_skipped of {
      subject : string;
      message : string;
      fault_class : skip_class;
      attempts : int;
      worker : int;
    }
  | Run_finished of { processed : int; skipped : int; elapsed : float }

(* Mutable per-stage aggregate. *)
type agg = {
  mutable a_count : int;
  mutable a_elapsed : float;
  mutable a_api_calls : int;
  mutable a_steps : int;
  mutable a_retries : int;
}

(* Shard-local result slot.  A worker allocates one as it picks an item
   up, appends it to its private buffer, and fills it while processing
   off the coordinator thread: stage events, aggregate contributions,
   merge thunks and the outcome all land here.  Nothing is shared while
   the batch runs — the coordinator reassembles the slots into input
   order at the batch barrier (the [Domain.join] provides the
   happens-before edge) and replays them, so subscribers and totals
   observe exactly the sequential interleaving. *)
type 'res slot = {
  s_index : int; (* input position within the batch *)
  s_worker : int;
  mutable s_events : event list; (* reverse order *)
  mutable s_aggs : (stage * timing) list; (* reverse order *)
  mutable s_thunks : (unit -> unit) list; (* reverse order *)
  mutable s_outcome : ('res, skip_reason) result option;
}

type ('item, 'res) t = {
  queue : 'item Queue.t;
  mutable results_rev : 'res list;
  mutable processed : int;
  mutable skipped_rev : 'item skip_record list;
  mutable subscribers : (event -> unit) list;
  mutable batches : int;
  bsize : int;
  n_domains : int;
  group_key : ('item -> string) option;
  subject_of : 'item -> string;
  process : ('item, 'res) ctx -> 'item -> ('res, skip_reason) result;
  totals : (stage, agg) Hashtbl.t;
  plan : crash_plan option;
  ceiling : int option;
  (* Cumulative dead-letter count per subject, across requeues; the
     attempt ceiling consults it so a repeatedly dying item is eventually
     left in the dead-letter list instead of being requeued forever. *)
  fail_counts : (string, int) Hashtbl.t;
  mutable crashes : int;
  clk : Obs.Clock.t;
}

(* What [process] sees: the engine, the id of the worker running the item
   (0 = the coordinator, also the sequential path), the buffer standing in
   for direct event/aggregate delivery when running on a worker, and the
   last stage entered — the attribution default for exceptions that escape
   [process]. *)
and ('item, 'res) ctx = {
  eng : ('item, 'res) t;
  worker : int;
  sink : 'res slot option; (* [None]: deliver directly (sequential path) *)
  mutable last_stage : stage option;
}

let create ?(batch_size = 32) ?(domains = 1) ?key ?crash_plan ?attempt_ceiling
    ?(clock = Obs.Clock.real) ~subject ~process () =
  if batch_size <= 0 then invalid_arg "Engine.create: batch_size must be > 0";
  if domains <= 0 then invalid_arg "Engine.create: domains must be > 0";
  (match attempt_ceiling with
  | Some c when c <= 0 ->
      invalid_arg "Engine.create: attempt_ceiling must be > 0"
  | _ -> ());
  {
    queue = Queue.create ();
    results_rev = [];
    processed = 0;
    skipped_rev = [];
    subscribers = [];
    batches = 0;
    bsize = batch_size;
    n_domains = domains;
    group_key = key;
    subject_of = subject;
    process;
    totals = Hashtbl.create 8;
    plan = crash_plan;
    ceiling = attempt_ceiling;
    fail_counts = Hashtbl.create 16;
    crashes = 0;
    clk = clock;
  }

let subscribe t f = t.subscribers <- t.subscribers @ [ f ]
let emit t ev = List.iter (fun f -> f ev) t.subscribers
let engine ctx = ctx.eng
let worker_id ctx = ctx.worker
let current_stage ctx = ctx.last_stage
let clock t = t.clk

(* Run [f] at the deterministic-merge point for this item: immediately on
   the sequential path, buffered in the item's slot — and replayed in
   input order at the batch barrier — on a worker domain.  This is how
   per-item telemetry shards are absorbed into the root registry in the
   same order a sequential run would have produced. *)
let on_merged ctx f =
  match ctx.sink with
  | None -> f ()
  | Some slot -> slot.s_thunks <- f :: slot.s_thunks

let emit_from ctx ev =
  match ctx.sink with
  | None -> emit ctx.eng ev
  | Some slot -> slot.s_events <- ev :: slot.s_events

let agg_of t stage =
  match Hashtbl.find_opt t.totals stage with
  | Some a -> a
  | None ->
      let a =
        {
          a_count = 0;
          a_elapsed = 0.0;
          a_api_calls = 0;
          a_steps = 0;
          a_retries = 0;
        }
      in
      Hashtbl.replace t.totals stage a;
      a

let apply_agg t stage timing =
  let a = agg_of t stage in
  a.a_count <- a.a_count + 1;
  a.a_elapsed <- a.a_elapsed +. timing.t_elapsed;
  a.a_api_calls <- a.a_api_calls + timing.t_api_calls;
  a.a_steps <- a.a_steps + timing.t_steps;
  a.a_retries <- a.a_retries + timing.t_retries

let timed_stage ctx ~stage ~subject ?api_calls ?steps ?retries f =
  let sample = function Some reader -> reader () | None -> 0 in
  let worker = ctx.worker in
  ctx.last_stage <- Some stage;
  emit_from ctx (Stage_started { stage; subject; worker });
  let api0 = sample api_calls
  and steps0 = sample steps
  and retries0 = sample retries in
  let t0 = Obs.Clock.now ctx.eng.clk in
  match f () with
  | v ->
      let timing =
        {
          t_elapsed = Obs.Clock.now ctx.eng.clk -. t0;
          t_api_calls = sample api_calls - api0;
          t_steps = sample steps - steps0;
          t_retries = sample retries - retries0;
        }
      in
      (match ctx.sink with
      | None -> apply_agg ctx.eng stage timing
      | Some slot -> slot.s_aggs <- (stage, timing) :: slot.s_aggs);
      emit_from ctx (Stage_finished { stage; subject; timing; worker });
      ctx.last_stage <- None;
      v
  | exception e ->
      emit_from ctx
        (Stage_errored { stage; subject; message = Printexc.to_string e; worker });
      raise e

let submit t items = List.iter (fun i -> Queue.add i t.queue) items
let pending t = Queue.length t.queue
let batch_size t = t.bsize
let domains t = t.n_domains
let batches_done t = t.batches
let results t = List.rev t.results_rev

let drain_results t =
  let r = List.rev t.results_rev in
  t.results_rev <- [];
  r

let processed_count t = t.processed
let skipped t = List.rev t.skipped_rev

let skipped_pairs t =
  List.rev_map (fun r -> (r.sk_subject, r.sk_message)) t.skipped_rev
  |> List.rev

let crashes t = t.crashes

let failure_count t subject =
  Option.value ~default:0 (Hashtbl.find_opt t.fail_counts subject)

let note_failure t subject =
  Hashtbl.replace t.fail_counts subject (failure_count t subject + 1)

let skipped_by_class t =
  let count cls =
    List.length (List.filter (fun r -> r.sk_class = cls) t.skipped_rev)
  in
  List.filter_map
    (fun cls ->
      match count cls with 0 -> None | n -> Some (cls, n))
    [ Transient; Permanent; Budget_exhausted; Worker_crashed ]

(* ------------------------------------------------------------------ *)
(* Dead-letter requeue                                                 *)
(* ------------------------------------------------------------------ *)

let requeue ?(classes = [ Transient; Budget_exhausted; Worker_crashed ]) t =
  let under_ceiling r =
    match t.ceiling with
    | None -> true
    | Some c -> failure_count t r.sk_subject < c
  in
  let take, keep =
    List.partition
      (fun r -> List.mem r.sk_class classes && under_ceiling r)
      (List.rev t.skipped_rev)
  in
  t.skipped_rev <- List.rev keep;
  List.iter (fun r -> Queue.add r.sk_item t.queue) take;
  List.length take

let requeue_transients t = requeue t

(* An exception that escapes [process] without its own classification is a
   permanent failure of whatever stage the item last entered. *)
let reason_of_exn ctx e =
  {
    sr_message = Printexc.to_string e;
    sr_stage = ctx.last_stage;
    sr_attempts = 1;
    sr_class = Permanent;
  }

(* A fatal exception is attributed to the worker, not the item's logic:
   the in-flight item becomes a [Worker_crashed] dead letter pinned to the
   stage it last entered. *)
let crash_reason ctx e =
  {
    sr_message = "worker crashed: " ^ Printexc.to_string e;
    sr_stage = ctx.last_stage;
    sr_attempts = 1;
    sr_class = Worker_crashed;
  }

let maybe_kill t subject =
  match t.plan with
  | Some plan when crash_armed plan subject -> raise (Crash_injected subject)
  | _ -> ()

let record_of ~subject reason item =
  {
    sk_item = item;
    sk_subject = subject;
    sk_message = reason.sr_message;
    sk_stage = reason.sr_stage;
    sk_attempts = reason.sr_attempts;
    sk_class = reason.sr_class;
  }

(* ------------------------------------------------------------------ *)
(* Sequential batch (domains = 1): the reference code path              *)
(* ------------------------------------------------------------------ *)

let sequential_batch t n =
  for _ = 1 to n do
    let item = Queue.pop t.queue in
    let subject = t.subject_of item in
    let ctx = { eng = t; worker = 0; sink = None; last_stage = None } in
    let skip reason =
      t.skipped_rev <- record_of ~subject reason item :: t.skipped_rev;
      note_failure t subject;
      emit t
        (Item_skipped
           {
             subject;
             message = reason.sr_message;
             fault_class = reason.sr_class;
             attempts = reason.sr_attempts;
             worker = 0;
           })
    in
    match
      maybe_kill t subject;
      t.process ctx item
    with
    | Ok res ->
        t.results_rev <- res :: t.results_rev;
        t.processed <- t.processed + 1
    | Error reason -> skip reason
    | exception e when is_fatal e ->
        (* The sequential path is its own supervisor: the "worker" is the
           coordinator, so the crash demotes to a dead letter in place and
           the loop moves on — the same observable outcome the parallel
           supervisor produces. *)
        t.crashes <- t.crashes + 1;
        skip (crash_reason ctx e)
    | exception e -> skip (reason_of_exn ctx e)
  done

(* ------------------------------------------------------------------ *)
(* The closeable task channel (service work queues, e.g. the daemon)    *)
(* ------------------------------------------------------------------ *)

(* A multi-producer/multi-consumer closeable channel.  [pop] blocks until
   an element is available or the channel is closed and drained.  The
   batch scheduler below no longer consumes this — its handoff is a
   lock-free chunk dispenser — but long-lived consumer pools (the serve
   daemon's connection workers) still do.

   Waking strategy: [push] wakes exactly one sleeper ([Condition.signal]
   — one new element can satisfy at most one consumer, and a broadcast
   would stampede every idle worker through the mutex for a single
   element); [push_many] wakes one sleeper per element, coalesced into a
   broadcast when several arrive at once; only [close] broadcasts, since
   every blocked consumer must observe the close and give up. *)
module Chan = struct
  type 'a t = {
    mutex : Mutex.t;
    nonempty : Condition.t;
    q : 'a Queue.t;
    mutable closed : bool;
  }

  let create () =
    {
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      q = Queue.create ();
      closed = false;
    }

  let push t x =
    Mutex.lock t.mutex;
    Queue.add x t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.mutex

  let push_many t xs =
    match xs with
    | [] -> ()
    | [ x ] -> push t x
    | _ ->
        Mutex.lock t.mutex;
        List.iter (fun x -> Queue.add x t.q) xs;
        Condition.broadcast t.nonempty;
        Mutex.unlock t.mutex

  let close t =
    Mutex.lock t.mutex;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex

  let pop t =
    Mutex.lock t.mutex;
    let rec await () =
      if not (Queue.is_empty t.q) then Some (Queue.pop t.q)
      else if t.closed then None
      else begin
        Condition.wait t.nonempty t.mutex;
        await ()
      end
    in
    let r = await () in
    Mutex.unlock t.mutex;
    r

  let pop_opt t =
    Mutex.lock t.mutex;
    let r = if Queue.is_empty t.q then None else Some (Queue.pop t.q) in
    Mutex.unlock t.mutex;
    r

  let length t =
    Mutex.lock t.mutex;
    let n = Queue.length t.q in
    Mutex.unlock t.mutex;
    n
end

module Task_channel = Chan

(* Partition the batch's item indices into ordered chains.  Items sharing a
   group key form one chain, processed sequentially by a single worker in
   input order; distinct chains run in parallel.  The analyzer keys on the
   bytecode hash, which is exactly the granularity of its dedup and pair
   caches — so cache hits and misses replay in the sequential order and the
   merged output is byte-identical. *)
let group_indices t items n =
  match t.group_key with
  | None -> List.init n (fun i -> [ i ])
  | Some key ->
      let order = ref [] in
      let buckets : (string, int list ref) Hashtbl.t = Hashtbl.create 16 in
      for i = 0 to n - 1 do
        let k = key items.(i) in
        match Hashtbl.find_opt buckets k with
        | Some r -> r := i :: !r
        | None ->
            let r = ref [ i ] in
            Hashtbl.replace buckets k r;
            order := r :: !order
      done;
      List.rev_map (fun r -> List.rev !r) !order

let run_item t slot item =
  let ctx =
    { eng = t; worker = slot.s_worker; sink = Some slot; last_stage = None }
  in
  match
    maybe_kill t (t.subject_of item);
    t.process ctx item
  with
  | r -> slot.s_outcome <- Some r
  | exception e when is_fatal e ->
      (* The dying worker files its own death certificate: outcome and
         stage attribution land in the slot before the exception tears the
         domain down, so the supervisor only has to respawn a domain and
         reschedule the rest of the chain. *)
      slot.s_outcome <- Some (Error (crash_reason ctx e));
      raise e
  | exception e -> slot.s_outcome <- Some (Error (reason_of_exn ctx e))

(* ------------------------------------------------------------------ *)
(* Parallel batch: chunked dispenser + per-worker stealing deques       *)
(* ------------------------------------------------------------------ *)

(* Per-worker deque of chain ids, guarded by a tiny mutex.  The owner
   pops single chains from the front; thieves take the back half in one
   operation.  A deque holds at most one dispenser chunk (plus stolen
   spillover), so every critical section is a handful of cons cells and
   the lock is effectively uncontended — the expensive sleeping handoff
   of the old condvar channel is gone entirely: workers never block
   while a batch runs, they either hold work or exit. *)
module Deque = struct
  type t = { m : Mutex.t; mutable chains : int list (* front first *) }

  let create () = { m = Mutex.create (); chains = [] }

  let pop_front d =
    Mutex.lock d.m;
    let r =
      match d.chains with
      | [] -> None
      | c :: rest ->
          d.chains <- rest;
          Some c
    in
    Mutex.unlock d.m;
    r

  let push_list d cs =
    Mutex.lock d.m;
    d.chains <- cs @ d.chains;
    Mutex.unlock d.m

  (* Thief side: take the back half (at least one when nonempty),
     leaving the front — the owner's end — in place. *)
  let steal_back d =
    Mutex.lock d.m;
    let stolen =
      match d.chains with
      | [] -> []
      | l ->
          let keep = List.length l / 2 in
          let rec split i acc rest =
            if i = 0 then (List.rev acc, rest)
            else
              match rest with
              | [] -> (List.rev acc, [])
              | x :: tl -> split (i - 1) (x :: acc) tl
          in
          let kept, taken = split keep [] l in
          d.chains <- kept;
          taken
    in
    Mutex.unlock d.m;
    stolen
end

(* Per-run helper pool.  Spawning a domain costs on the order of a
   millisecond — per batch that dwarfs the work at small batch sizes — so
   [run] spawns the helpers once and parks them on a channel of batch
   thunks between barriers.  Thunks are self-supervising (a fatal
   exception never reaches the pool loop: the "crashed" worker resumes
   its chain suffix in place, exactly what a respawned domain would have
   done), so pool domains live for the whole run. *)
type pool = {
  pl_work : (unit -> unit) Chan.t;
  pl_done : unit Chan.t;
  pl_domains : unit Domain.t list;
}

let create_pool k =
  let pl_work = Chan.create () in
  let pl_done = Chan.create () in
  let rec worker () =
    match Chan.pop pl_work with
    | None -> ()
    | Some thunk ->
        thunk ();
        Chan.push pl_done ();
        worker ()
  in
  { pl_work; pl_done; pl_domains = List.init k (fun _ -> Domain.spawn worker) }

let destroy_pool pool =
  Chan.close pool.pl_work;
  List.iter Domain.join pool.pl_domains

let parallel_batch t pool n =
  let items = Array.init n (fun _ -> Queue.pop t.queue) in
  let chains = Array.of_list (group_indices t items n) in
  let nchains = Array.length chains in
  (* Chunked handoff: a lock-free fetch-and-add cursor over the chains
     array.  One claim hands a worker a contiguous run of chains, so the
     per-item synchronization of the old channel (one mutex/condvar
     round trip per chain) amortizes to a few atomic adds per worker per
     batch.  Chunks are sized so each worker claims a handful of times,
     leaving enough unclaimed tail for late stealing to balance. *)
  let cursor = Atomic.make 0 in
  let chunk = max 1 ((nchains + (t.n_domains * 4) - 1) / (t.n_domains * 4)) in
  let claim () =
    let lo = Atomic.fetch_and_add cursor chunk in
    if lo >= nchains then None else Some (lo, min nchains (lo + chunk))
  in
  (* Shard-local state, one slot per worker, written only by that worker
     while the batch runs and read by the coordinator after the joins:
     [buffers.(w)] accumulates the result slots worker [w] produced;
     [inflight.(w)] is the suffix of the chain worker [w] is currently
     running, crashed/current item at the head. *)
  let buffers = Array.make t.n_domains [] in
  let deques = Array.init t.n_domains (fun _ -> Deque.create ()) in
  let inflight = Array.make t.n_domains [] in
  let run_chain wid idxs =
    let rec go = function
      | [] -> inflight.(wid) <- []
      | i :: rest ->
          inflight.(wid) <- i :: rest;
          let slot =
            {
              s_index = i;
              s_worker = wid;
              s_events = [];
              s_aggs = [];
              s_thunks = [];
              s_outcome = None;
            }
          in
          (* Published before the item runs, so a crash mid-item leaves
             the death certificate reachable from the worker's buffer. *)
          buffers.(wid) <- slot :: buffers.(wid);
          run_item t slot items.(i);
          go rest
    in
    go idxs
  in
  (* Steal scan: visit the other deques round-robin starting after our
     own id, taking the first nonempty victim's back half. *)
  let try_steal wid =
    let rec scan k =
      if k >= t.n_domains - 1 then None
      else
        let v = (wid + 1 + k) mod t.n_domains in
        match Deque.steal_back deques.(v) with
        | [] -> scan (k + 1)
        | stolen -> Some stolen
    in
    scan 0
  in
  (* A worker drains its own deque, claims a fresh chunk from the
     dispenser when the deque runs dry, and turns thief once the
     dispenser is exhausted.  It exits only when every deque it can see
     is empty — any chains still in flight at that point belong to live
     workers that will finish them. *)
  let worker_loop wid =
    let d = deques.(wid) in
    let rec loop () =
      match Deque.pop_front d with
      | Some c ->
          run_chain wid chains.(c);
          loop ()
      | None -> (
          match claim () with
          | Some (lo, hi) ->
              Deque.push_list d (List.init (hi - lo) (fun k -> lo + k));
              loop ()
          | None -> (
              match try_steal wid with
              | Some stolen ->
                  Deque.push_list d stolen;
                  loop ()
              | None -> ()))
    in
    loop ()
  in
  (* The coordinator is worker 0 and works alongside the helpers, so a
     batch of [nchains] chains dispatches at most [nchains - 1] thunks to
     the parked pool.  Every worker supervises itself: a fatal exception
     has already been recorded in the crashed item's slot by [run_item],
     so resume with the rest of the chain — the crashed worker's own
     deque is still intact — then fall back into the loop.  Crash counts
     are shard-local while the batch runs and folded in at the barrier so
     no two workers ever race on [t.crashes]. *)
  let helper_count = min (t.n_domains - 1) (max 0 (nchains - 1)) in
  let crash_counts = Array.make t.n_domains 0 in
  let self_supervised wid =
    let rec attempt suffix =
      match
        (match suffix with [] -> () | s -> run_chain wid s);
        worker_loop wid
      with
      | () -> ()
      | exception e when is_fatal e ->
          crash_counts.(wid) <- crash_counts.(wid) + 1;
          let rest =
            match inflight.(wid) with [] -> [] | _crashed :: s -> s
          in
          inflight.(wid) <- [];
          attempt rest
    in
    attempt []
  in
  Chan.push_many pool.pl_work
    (List.init helper_count (fun k () -> self_supervised (k + 1)));
  self_supervised 0;
  (* Batch barrier: every dispatched thunk acknowledges completion, so
     once the loop exits no worker can still be touching the shard-local
     buffers. *)
  for _ = 1 to helper_count do
    ignore (Chan.pop pool.pl_done)
  done;
  t.crashes <- t.crashes + Array.fold_left ( + ) 0 crash_counts;
  (* Single deterministic merge at the batch barrier: reassemble the
     input-order slot table from the shard-local buffers, then replay
     every item's buffered events, aggregate contributions and merge
     thunks, and apply its outcome — byte-for-byte the order the
     sequential path would have produced.  Stage aggregates are applied
     here rather than summed shard-side because float accumulation is
     order-sensitive; replaying in input order keeps totals bit-equal. *)
  let slots = Array.make n None in
  Array.iter
    (fun buf -> List.iter (fun s -> slots.(s.s_index) <- Some s) buf)
    buffers;
  Array.iteri
    (fun i entry ->
      match entry with
      | None ->
          (* Unreachable: every chain is claimed exactly once and every
             claimed chain fills a slot per item before the joins. *)
          assert false
      | Some slot -> (
          List.iter (emit t) (List.rev slot.s_events);
          List.iter
            (fun (stage, tm) -> apply_agg t stage tm)
            (List.rev slot.s_aggs);
          List.iter (fun f -> f ()) (List.rev slot.s_thunks);
          match slot.s_outcome with
          | Some (Ok res) ->
              t.results_rev <- res :: t.results_rev;
              t.processed <- t.processed + 1
          | Some (Error reason) ->
              let subject = t.subject_of items.(i) in
              t.skipped_rev <-
                record_of ~subject reason items.(i) :: t.skipped_rev;
              note_failure t subject;
              emit t
                (Item_skipped
                   {
                     subject;
                     message = reason.sr_message;
                     fault_class = reason.sr_class;
                     attempts = reason.sr_attempts;
                     worker = slot.s_worker;
                   })
          | None -> assert false))
    slots

let step_batch_with ?pool t =
  if Queue.is_empty t.queue then false
  else begin
    let n = min t.bsize (Queue.length t.queue) in
    let index = t.batches in
    emit t (Batch_started { index; size = n });
    let t0 = Obs.Clock.now t.clk in
    (if t.n_domains <= 1 then sequential_batch t n
     else
       match pool with
       | Some p -> parallel_batch t p n
       | None ->
           (* Standalone single-batch step: a short-lived pool of our
              own.  [run] amortizes this spawn cost across the whole
              run by passing a persistent pool instead. *)
           let p = create_pool (t.n_domains - 1) in
           Fun.protect
             ~finally:(fun () -> destroy_pool p)
             (fun () -> parallel_batch t p n));
    t.batches <- t.batches + 1;
    emit t
      (Batch_finished { index; size = n; elapsed = Obs.Clock.now t.clk -. t0 });
    true
  end

let step_batch t = step_batch_with t

let run ?max_batches t =
  emit t
    (Run_started
       { pending = pending t; batch_size = t.bsize; domains = t.n_domains });
  let t0 = Obs.Clock.now t.clk in
  let continue = function None -> true | Some n -> n > 0 in
  let pool =
    if t.n_domains > 1 then Some (create_pool (t.n_domains - 1)) else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter destroy_pool pool)
    (fun () ->
      let rec loop budget =
        if continue budget && step_batch_with ?pool t then
          loop (Option.map (fun n -> n - 1) budget)
      in
      loop max_batches);
  emit t
    (Run_finished
       {
         processed = t.processed;
         skipped = List.length t.skipped_rev;
         elapsed = Obs.Clock.now t.clk -. t0;
       })

let stage_totals t =
  List.filter_map
    (fun stage ->
      match Hashtbl.find_opt t.totals stage with
      | None -> None
      | Some a ->
          Some
            ( stage,
              a.a_count,
              {
                t_elapsed = a.a_elapsed;
                t_api_calls = a.a_api_calls;
                t_steps = a.a_steps;
                t_retries = a.a_retries;
              } ))
    all_stages

let stage_totals_table t =
  Report.table ~title:"Engine: per-stage totals"
    ~header:[ "stage"; "runs"; "wall-clock"; "API calls"; "EVM steps"; "retries" ]
    (List.map
       (fun (stage, count, tm) ->
         [
           stage_name stage;
           string_of_int count;
           Printf.sprintf "%.3f s" tm.t_elapsed;
           string_of_int tm.t_api_calls;
           string_of_int tm.t_steps;
           string_of_int tm.t_retries;
         ])
       (stage_totals t))

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let checkpoint_version = 3

let checkpoint ~item_to_json ~res_to_json ?(extra = Json.Null) t =
  let failures =
    Hashtbl.fold (fun subject n acc -> (subject, n) :: acc) t.fail_counts []
    |> List.sort compare
    |> List.map (fun (subject, n) ->
           Json.Obj [ ("subject", Json.String subject); ("count", Json.Int n) ])
  in
  Json.Obj
    [
      ("version", Json.Int checkpoint_version);
      ("batch_size", Json.Int t.bsize);
      ("batches_done", Json.Int t.batches);
      ("failures", Json.List failures);
      ( "queue",
        Json.List
          (Queue.fold (fun acc i -> item_to_json i :: acc) [] t.queue
          |> List.rev) );
      ("results", Json.List (List.rev_map res_to_json t.results_rev));
      ( "skipped",
        Json.List
          (List.rev_map
             (fun r ->
               Json.Obj
                 [
                   ("item", item_to_json r.sk_item);
                   ("subject", Json.String r.sk_subject);
                   ("message", Json.String r.sk_message);
                   ( "stage",
                     match r.sk_stage with
                     | Some s -> Json.String (stage_name s)
                     | None -> Json.Null );
                   ("attempts", Json.Int r.sk_attempts);
                   ("class", Json.String (skip_class_name r.sk_class));
                 ])
             t.skipped_rev) );
      ("extra", extra);
    ]

let ( let* ) = Result.bind

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "checkpoint: missing field %S" name))
  | _ -> Error "checkpoint: expected an object"

let as_int name = function
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be an int" name)

let as_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a list" name)

let as_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a string" name)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let skip_record_of_json ~item_of_json entry =
  let* item_json = field "item" entry in
  let* item = item_of_json item_json in
  let* subject = Result.bind (field "subject" entry) (as_string "subject") in
  let* message = Result.bind (field "message" entry) (as_string "message") in
  let* stage =
    match field "stage" entry with
    | Ok Json.Null | Error _ -> Ok None
    | Ok (Json.String s) -> (
        match stage_of_name s with
        | Some st -> Ok (Some st)
        | None -> Error (Printf.sprintf "checkpoint: unknown stage %S" s))
    | Ok _ -> Error "checkpoint: field \"stage\" must be a string or null"
  in
  let* attempts = Result.bind (field "attempts" entry) (as_int "attempts") in
  let* cls =
    let* s = Result.bind (field "class" entry) (as_string "class") in
    match skip_class_of_name s with
    | Some c -> Ok c
    | None -> Error (Printf.sprintf "checkpoint: unknown skip class %S" s)
  in
  Ok
    {
      sk_item = item;
      sk_subject = subject;
      sk_message = message;
      sk_stage = stage;
      sk_attempts = attempts;
      sk_class = cls;
    }

(* A version-2 checkpoint (no "failures" table) reconstructs the failure
   counters from the dead-letter list itself: every record represents at
   least one failed attempt of its subject. *)
let failures_of_json ~skipped json =
  match field "failures" json with
  | Error _ ->
      Ok
        (List.map (fun r -> (r.sk_subject, r.sk_attempts)) skipped
        |> List.fold_left
             (fun acc (s, n) ->
               let prev =
                 Option.value ~default:0 (List.assoc_opt s acc)
               in
               (s, prev + max 1 n) :: List.remove_assoc s acc)
             [])
  | Ok v ->
      let* entries = as_list "failures" v in
      map_result
        (fun entry ->
          let* subject =
            Result.bind (field "subject" entry) (as_string "subject")
          in
          let* count = Result.bind (field "count" entry) (as_int "count") in
          Ok (subject, count))
        entries

let restore ?batch_size ?domains ?key ?crash_plan ?attempt_ceiling ?clock
    ~subject ~process ~item_of_json ~res_of_json json =
  let* version = Result.bind (field "version" json) (as_int "version") in
  if version <> checkpoint_version && version <> 2 then
    Error (Printf.sprintf "checkpoint: unsupported version %d" version)
  else
    let* saved_bsize =
      Result.bind (field "batch_size" json) (as_int "batch_size")
    in
    let* batches = Result.bind (field "batches_done" json) (as_int "batches_done") in
    let* queue_json = Result.bind (field "queue" json) (as_list "queue") in
    let* items = map_result item_of_json queue_json in
    let* results_json = Result.bind (field "results" json) (as_list "results") in
    let* results = map_result res_of_json results_json in
    let* skipped_json = Result.bind (field "skipped" json) (as_list "skipped") in
    let* skipped = map_result (skip_record_of_json ~item_of_json) skipped_json in
    let* failures = failures_of_json ~skipped json in
    let extra =
      match field "extra" json with Ok v -> v | Error _ -> Json.Null
    in
    let bsize = match batch_size with Some b -> b | None -> saved_bsize in
    let t =
      create ~batch_size:bsize ?domains ?key ?crash_plan ?attempt_ceiling
        ?clock ~subject ~process ()
    in
    submit t items;
    t.results_rev <- List.rev results;
    t.processed <- List.length results;
    t.skipped_rev <- List.rev skipped;
    t.batches <- batches;
    List.iter (fun (s, n) -> Hashtbl.replace t.fail_counts s n) failures;
    Ok (t, extra)

(* [restore] under its hardening-contract name: total over arbitrary JSON,
   every malformed shape comes back as [Error _], never an exception. *)
let of_json ?batch_size ?domains ?key ?crash_plan ?attempt_ceiling ?clock
    ~subject ~process ~item_of_json ~res_of_json json =
  restore ?batch_size ?domains ?key ?crash_plan ?attempt_ceiling ?clock
    ~subject ~process ~item_of_json ~res_of_json json

(* ------------------------------------------------------------------ *)
(* Telemetry: event-stream adapters for the obs layer                   *)
(* ------------------------------------------------------------------ *)

module Telemetry = struct
  (* Since every event is delivered from the coordinator in input order
     (the deterministic merge replays worker-side buffers), these
     subscribers can record straight into the root registry: counter
     and float additions happen in the same order a sequential run
     would produce. *)

  let seconds_buckets =
    [ 1e-6; 1e-5; 1e-4; 1e-3; 0.01; 0.1; 0.5; 1.0; 5.0; 10.0; 60.0 ]

  let api_buckets = [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ]
  let step_buckets = [ 10.; 100.; 1000.; 1e4; 1e5; 1e6; 1e7 ]

  let instrument registry t =
    let m = registry in
    let stage_runs =
      Obs.Metrics.counter m ~help:"Stage executions" "proxion_stage_runs_total"
    and stage_seconds =
      Obs.Metrics.histogram m ~volatile:true ~buckets:seconds_buckets
        ~help:"Wall-clock seconds per stage execution" "proxion_stage_seconds"
    and stage_api_calls =
      Obs.Metrics.histogram m ~buckets:api_buckets
        ~help:"Chain API calls per stage execution" "proxion_stage_api_calls"
    and stage_steps =
      Obs.Metrics.histogram m ~buckets:step_buckets
        ~help:"EVM steps interpreted per stage execution" "proxion_stage_steps"
    and stage_errors =
      Obs.Metrics.counter m ~help:"Stages that raised"
        "proxion_stage_errors_total"
    and retries =
      Obs.Metrics.counter m ~help:"Transport retry attempts"
        "proxion_retries_total"
    and backoff =
      Obs.Metrics.counter m ~help:"Summed virtual backoff seconds"
        "proxion_backoff_seconds_total"
    and circuit =
      Obs.Metrics.counter m ~help:"Circuit breaker state transitions"
        "proxion_circuit_transitions_total"
    and skipped =
      Obs.Metrics.counter m ~help:"Items moved to the dead-letter list"
        "proxion_items_skipped_total"
    and processed =
      Obs.Metrics.gauge m ~help:"Items completed successfully"
        "proxion_items_processed"
    and crashes_g =
      Obs.Metrics.gauge m ~help:"Worker deaths absorbed by the supervisor"
        "proxion_worker_crashes"
    and batches =
      Obs.Metrics.counter m ~help:"Batches completed" "proxion_batches_total"
    and batch_seconds =
      Obs.Metrics.histogram m ~volatile:true ~buckets:seconds_buckets
        ~help:"Wall-clock seconds per batch" "proxion_batch_seconds"
    and run_seconds =
      Obs.Metrics.gauge m ~volatile:true ~help:"Wall-clock seconds of the run"
        "proxion_run_seconds"
    in
    (* Stage_finished fires once per stage execution — the hottest event
       stream — so its four series are resolved once per stage through
       pre-bound handles instead of a label lookup per observation. *)
    let h ?labels fam = Obs.Metrics.handle ?labels m fam in
    let batches_h = h batches
    and batch_seconds_h = h batch_seconds
    and retries_h = h retries
    and backoff_h = h backoff
    and circuit_open_h = h ~labels:[ ("state", "open") ] circuit
    and circuit_closed_h = h ~labels:[ ("state", "closed") ] circuit
    and processed_h = h processed
    and crashes_h = h crashes_g
    and run_seconds_h = h run_seconds in
    let stage_handles = Hashtbl.create 8 in
    let handles_for stage =
      match Hashtbl.find_opt stage_handles stage with
      | Some hs -> hs
      | None ->
          let labels = [ ("stage", stage_name stage) ] in
          let hs =
            ( h ~labels stage_runs,
              h ~labels stage_seconds,
              h ~labels stage_api_calls,
              h ~labels stage_steps )
          in
          Hashtbl.replace stage_handles stage hs;
          hs
    in
    subscribe t (function
      | Run_started _ -> ()
      | Batch_started _ -> ()
      | Batch_finished { elapsed; _ } ->
          Obs.Metrics.hinc batches_h;
          Obs.Metrics.hobserve batch_seconds_h elapsed;
          Obs.Metrics.hset crashes_h (float_of_int (crashes t));
          Obs.Metrics.hset processed_h (float_of_int (processed_count t))
      | Stage_started _ -> ()
      | Stage_finished { stage; timing; _ } ->
          let runs_h, seconds_h, api_h, steps_h = handles_for stage in
          Obs.Metrics.hinc runs_h;
          Obs.Metrics.hobserve seconds_h timing.t_elapsed;
          Obs.Metrics.hobserve api_h (float_of_int timing.t_api_calls);
          Obs.Metrics.hobserve steps_h (float_of_int timing.t_steps)
      | Stage_errored { stage; _ } ->
          Obs.Metrics.inc ~labels:[ ("stage", stage_name stage) ] m stage_errors
      | Retry_attempted { delay; _ } ->
          Obs.Metrics.hinc retries_h;
          Obs.Metrics.hinc ~by:delay backoff_h
      | Circuit_opened _ -> Obs.Metrics.hinc circuit_open_h
      | Circuit_closed _ -> Obs.Metrics.hinc circuit_closed_h
      | Item_skipped { fault_class; _ } ->
          Obs.Metrics.inc
            ~labels:[ ("class", skip_class_name fault_class) ]
            m skipped
      | Run_finished { elapsed; processed = p; _ } ->
          Obs.Metrics.hset run_seconds_h elapsed;
          Obs.Metrics.hset crashes_h (float_of_int (crashes t));
          Obs.Metrics.hset processed_h (float_of_int p))

  (* Coordinator-lane span tree on tid 0, driven by a synthetic cursor
     advanced by event-payload durations: run > batch > item > stage.
     The tree's *shape* is deterministic across DOMAINS (events arrive in
     input order); only the durations carry wall-clock noise.  Worker ids
     surface as span args, not separate tracks, precisely because the
     merged stream no longer reflects real concurrency. *)
  let attach_trace tr t =
    let cursor = ref 0.0 in
    let run_start = ref 0.0 in
    let batch_start = ref 0.0 in
    let item_start = ref 0.0 in
    let current_item = ref None in
    let flush_item () =
      match !current_item with
      | None -> ()
      | Some subject ->
          Obs.Trace.complete tr ~cat:"item" ~name:subject ~ts:!item_start
            ~dur:(!cursor -. !item_start);
          current_item := None
    in
    let open_item subject =
      match !current_item with
      | Some s when s = subject -> ()
      | _ ->
          flush_item ();
          current_item := Some subject;
          item_start := !cursor
    in
    subscribe t (function
      | Run_started { pending; batch_size; domains } ->
          run_start := !cursor;
          Obs.Trace.instant tr ~cat:"run" ~name:"run-started" ~ts:!cursor
            ~args:
              [
                ("pending", Json.Int pending);
                ("batch_size", Json.Int batch_size);
                ("domains", Json.Int domains);
              ]
      | Batch_started _ -> batch_start := !cursor
      | Batch_finished { index; size; elapsed } ->
          flush_item ();
          Obs.Trace.complete tr ~cat:"batch"
            ~name:(Printf.sprintf "batch-%d" index)
            ~ts:!batch_start
            ~dur:(!cursor -. !batch_start)
            ~args:
              [ ("size", Json.Int size); ("wall_elapsed", Json.Float elapsed) ]
      | Stage_started { subject; _ } -> open_item subject
      | Stage_finished { stage; subject; timing; worker } ->
          open_item subject;
          Obs.Trace.complete tr ~cat:"stage" ~name:(stage_name stage)
            ~ts:!cursor ~dur:timing.t_elapsed
            ~args:
              [
                ("subject", Json.String subject);
                ("worker", Json.Int worker);
                ("api_calls", Json.Int timing.t_api_calls);
                ("steps", Json.Int timing.t_steps);
                ("retries", Json.Int timing.t_retries);
              ];
          cursor := !cursor +. timing.t_elapsed
      | Stage_errored { stage; subject; message; _ } ->
          Obs.Trace.instant tr ~cat:"stage" ~name:(stage_name stage ^ "-error")
            ~ts:!cursor
            ~args:
              [
                ("subject", Json.String subject);
                ("message", Json.String message);
              ]
      | Retry_attempted { subject; attempt; reason; delay; _ } ->
          Obs.Trace.instant tr ~cat:"rpc" ~name:"retry" ~ts:!cursor
            ~args:
              [
                ("subject", Json.String subject);
                ("attempt", Json.Int attempt);
                ("reason", Json.String reason);
                ("delay", Json.Float delay);
              ]
      | Circuit_opened { endpoint; failures; _ } ->
          Obs.Trace.instant tr ~cat:"rpc" ~name:"circuit-opened" ~ts:!cursor
            ~args:
              [
                ("endpoint", Json.String endpoint);
                ("failures", Json.Int failures);
              ]
      | Circuit_closed { endpoint; _ } ->
          Obs.Trace.instant tr ~cat:"rpc" ~name:"circuit-closed" ~ts:!cursor
            ~args:[ ("endpoint", Json.String endpoint) ]
      | Item_skipped { subject; fault_class; attempts; _ } ->
          flush_item ();
          Obs.Trace.instant tr ~cat:"item" ~name:"skipped" ~ts:!cursor
            ~args:
              [
                ("subject", Json.String subject);
                ("class", Json.String (skip_class_name fault_class));
                ("attempts", Json.Int attempts);
              ]
      | Run_finished { processed; skipped; elapsed } ->
          flush_item ();
          Obs.Trace.complete tr ~cat:"run" ~name:"run" ~ts:!run_start
            ~dur:(!cursor -. !run_start)
            ~args:
              [
                ("processed", Json.Int processed);
                ("skipped", Json.Int skipped);
                ("wall_elapsed", Json.Float elapsed);
              ])

  (* Structured progress backend.  Retry and breaker events are counted
     and summarized once per batch — one stderr line per attempt floods
     the output under a high fault rate — with the per-attempt detail
     still available at [Debug]. *)
  let attach_log log t =
    let retries = ref 0 in
    let backoff = ref 0.0 in
    let opened = ref 0 in
    let closed = ref 0 in
    let lg ?subject ?fields level msg =
      Obs.Log.log log ~component:"engine" ?subject ?fields level msg
    in
    subscribe t (function
      | Run_started { pending; batch_size; domains } ->
          lg Obs.Log.Info "run started"
            ~fields:
              [
                ("pending", Json.Int pending);
                ("batch_size", Json.Int batch_size);
                ("domains", Json.Int domains);
              ]
      | Batch_started { index; size } ->
          lg Obs.Log.Debug "batch started"
            ~fields:[ ("index", Json.Int index); ("size", Json.Int size) ]
      | Batch_finished { index; size; elapsed } ->
          let fields =
            [
              ("index", Json.Int index);
              ("size", Json.Int size);
              ("elapsed_s", Json.Float elapsed);
            ]
            @ (if !retries > 0 then
                 [
                   ("retries", Json.Int !retries);
                   ("backoff_s", Json.Float !backoff);
                 ]
               else [])
            @
            if !opened > 0 || !closed > 0 then
              [
                ("circuit_opened", Json.Int !opened);
                ("circuit_closed", Json.Int !closed);
              ]
            else []
          in
          retries := 0;
          backoff := 0.0;
          opened := 0;
          closed := 0;
          lg Obs.Log.Info "batch finished" ~fields
      | Stage_started _ -> ()
      | Stage_finished { stage; subject; timing; worker } ->
          if Obs.Log.enabled log Obs.Log.Debug then
            lg Obs.Log.Debug "stage finished" ~subject
              ~fields:
                [
                  ("stage", Json.String (stage_name stage));
                  ("worker", Json.Int worker);
                  ("elapsed_s", Json.Float timing.t_elapsed);
                  ("api_calls", Json.Int timing.t_api_calls);
                  ("steps", Json.Int timing.t_steps);
                ]
          else Obs.Log.note_suppressed log
      | Stage_errored { stage; subject; message; _ } ->
          lg Obs.Log.Warn "stage errored" ~subject
            ~fields:
              [
                ("stage", Json.String (stage_name stage));
                ("message", Json.String message);
              ]
      | Retry_attempted { subject; attempt; reason; delay; _ } ->
          incr retries;
          backoff := !backoff +. delay;
          if Obs.Log.enabled log Obs.Log.Debug then
            lg Obs.Log.Debug "retry" ~subject
              ~fields:
                [
                  ("attempt", Json.Int attempt);
                  ("reason", Json.String reason);
                  ("delay_s", Json.Float delay);
                ]
          else Obs.Log.note_suppressed log
      | Circuit_opened { endpoint; subject; failures; _ } ->
          incr opened;
          if Obs.Log.enabled log Obs.Log.Debug then
            lg Obs.Log.Debug "circuit opened" ~subject
              ~fields:
                [
                  ("endpoint", Json.String endpoint);
                  ("failures", Json.Int failures);
                ]
          else Obs.Log.note_suppressed log
      | Circuit_closed { endpoint; subject; _ } ->
          incr closed;
          if Obs.Log.enabled log Obs.Log.Debug then
            lg Obs.Log.Debug "circuit closed" ~subject
              ~fields:[ ("endpoint", Json.String endpoint) ]
          else Obs.Log.note_suppressed log
      | Item_skipped { subject; message; fault_class; attempts; _ } ->
          lg Obs.Log.Warn "item skipped" ~subject
            ~fields:
              [
                ("class", Json.String (skip_class_name fault_class));
                ("attempts", Json.Int attempts);
                ("message", Json.String message);
              ]
      | Run_finished { processed; skipped; elapsed } ->
          lg Obs.Log.Info "run finished"
            ~fields:
              [
                ("processed", Json.Int processed);
                ("skipped", Json.Int skipped);
                ("elapsed_s", Json.Float elapsed);
              ])
end
