module Generate = Dataset.Generate
module Pipeline = Proxion.Pipeline
module Address = Evm.Address

type sanctuary = {
  sa_contracts : int;
  sa_uschunt_failures : int;
  sa_uschunt_proxies : int;
  sa_proxion_proxies : int;
  sa_proxion_errors : int;
  sa_collisions_proxion_only : int;
}

type crush_cmp = {
  cr_contracts : int;
  cr_crush_proxies : int;
  cr_crush_library_fps : int;
  cr_proxion_proxies : int;
  cr_proxion_only : int;
  cr_crush_storage_pairs : int;
  cr_proxion_storage_pairs : int;
}

let run_sanctuary ?(config = Generate.quick_config) () =
  let land_ = Generate.generate config in
  let chain = land_.Generate.chain in
  let source = land_.Generate.source_of in
  (* The Sanctuary analogue: contracts with published source. *)
  let verified =
    List.filter (fun l -> l.Generate.l_has_source) land_.Generate.labels
  in
  let uschunt_failures = ref 0 in
  let uschunt_proxies = ref 0 in
  List.iter
    (fun l ->
      match source l.Generate.l_address with
      | None -> ()
      | Some ast -> (
          match
            Baselines.Uschunt_like.analyze ~address:l.Generate.l_address ast
          with
          | Baselines.Uschunt_like.Compile_error -> incr uschunt_failures
          | Baselines.Uschunt_like.Analyzed { is_proxy } ->
              if is_proxy then incr uschunt_proxies))
    verified;
  let addresses = List.map (fun l -> l.Generate.l_address) verified in
  let report = Pipeline.analyze ~addresses ~chain ~source () in
  (* Function collisions USCHunt misses: pairs whose proxy failed to
     compile or was not detected. *)
  let uschunt_sees addr =
    match source addr with
    | None -> false
    | Some ast -> (
        match Baselines.Uschunt_like.analyze ~address:addr ast with
        | Baselines.Uschunt_like.Analyzed { is_proxy } -> is_proxy
        | Baselines.Uschunt_like.Compile_error -> false)
  in
  let proxion_only =
    List.fold_left
      (fun acc r ->
        acc
        + List.length
            (List.filter
               (fun p ->
                 p.Pipeline.p_func_collisions <> []
                 && not (uschunt_sees p.Pipeline.p_proxy))
               r.Pipeline.r_pairs))
      0 report.Pipeline.contracts
  in
  {
    sa_contracts = List.length verified;
    sa_uschunt_failures = !uschunt_failures;
    sa_uschunt_proxies = !uschunt_proxies;
    sa_proxion_proxies = report.Pipeline.stats.Pipeline.s_proxies;
    sa_proxion_errors = report.Pipeline.stats.Pipeline.s_emulation_errors;
    sa_collisions_proxion_only = proxion_only;
  }

let run_crush ?(config = Generate.quick_config) () =
  let land_ = Generate.generate config in
  let chain = land_.Generate.chain in
  let report = Pipeline.analyze ~chain ~source:land_.Generate.source_of () in
  let crush_proxies = Baselines.Crush_like.detected_proxies chain in
  let label_of =
    let table = Hashtbl.create 1024 in
    List.iter (fun l -> Hashtbl.replace table l.Generate.l_address l) land_.Generate.labels;
    Hashtbl.find_opt table
  in
  let library_fps =
    List.length
      (List.filter
         (fun a ->
           match label_of a with
           | Some l -> not l.Generate.l_is_proxy
           | None -> false)
         crush_proxies)
  in
  let crush_set = Hashtbl.create 1024 in
  List.iter (fun a -> Hashtbl.replace crush_set a ()) crush_proxies;
  let proxion_only =
    List.length
      (List.filter
         (fun r ->
           Pipeline.is_proxy_report r
           && not (Hashtbl.mem crush_set r.Pipeline.r_address))
         report.Pipeline.contracts)
  in
  (* Storage collisions each tool reports on its own pair set. *)
  let crush_storage =
    List.length
      (List.filter
         (fun (proxy, logic) ->
           Chain.code_at chain logic <> ""
           && Baselines.Crush_like.storage_collisions ~chain ~proxy ~logic <> [])
         (Baselines.Crush_like.proxy_pairs chain))
  in
  {
    cr_contracts = List.length land_.Generate.labels;
    cr_crush_proxies = List.length crush_proxies;
    cr_crush_library_fps = library_fps;
    cr_proxion_proxies = report.Pipeline.stats.Pipeline.s_proxies;
    cr_proxion_only = proxion_only;
    cr_crush_storage_pairs = crush_storage;
    cr_proxion_storage_pairs =
      report.Pipeline.stats.Pipeline.s_storage_colliding_pairs;
  }

let render_sanctuary s =
  Report.table ~title:"Section 6.2a: Sanctuary-style comparison (source-available)"
    ~header:[ "Metric"; "Value" ]
    [
      [ "verified contracts"; string_of_int s.sa_contracts ];
      [ "USCHunt compile failures"; string_of_int s.sa_uschunt_failures ];
      [ "USCHunt proxies"; string_of_int s.sa_uschunt_proxies ];
      [ "ProxioN proxies"; string_of_int s.sa_proxion_proxies ];
      [ "ProxioN emulation errors"; string_of_int s.sa_proxion_errors ];
      [
        "function collisions USCHunt misses";
        string_of_int s.sa_collisions_proxion_only;
      ];
    ]

let render_crush c =
  Report.table ~title:"Section 6.2b: CRUSH-style comparison (full population)"
    ~header:[ "Metric"; "Value" ]
    [
      [ "contracts"; string_of_int c.cr_contracts ];
      [ "CRUSH proxies (tx-history)"; string_of_int c.cr_crush_proxies ];
      [
        "  of which library-call false positives";
        string_of_int c.cr_crush_library_fps;
      ];
      [ "ProxioN proxies (emulation)"; string_of_int c.cr_proxion_proxies ];
      [
        "  hidden proxies only ProxioN finds";
        string_of_int c.cr_proxion_only;
      ];
      [ "CRUSH storage-colliding pairs"; string_of_int c.cr_crush_storage_pairs ];
      [
        "ProxioN storage-colliding pairs";
        string_of_int c.cr_proxion_storage_pairs;
      ];
    ]
