module Generate = Dataset.Generate
module Spec = Dataset.Spec
module Pipeline = Proxion.Pipeline
module Address = Evm.Address

type t = {
  land_ : Generate.t;
  report : Pipeline.report;
}

let of_parts land_ report = { land_; report }

let prepare ?(config = Generate.default_config)
    ?(pipeline = Pipeline.Config.default) () =
  let land_ = Generate.generate config in
  let report =
    Pipeline.analyze ~config:pipeline ~chain:land_.Generate.chain
      ~source:land_.Generate.source_of ()
  in
  of_parts land_ report

let label_index t =
  let table = Hashtbl.create 1024 in
  List.iter
    (fun l -> Hashtbl.replace table l.Generate.l_address l)
    t.land_.Generate.labels;
  table

let cumulative rows =
  (* rows: (year, a, b, c, d) -> running sums. *)
  let acc = Array.make 4 0 in
  List.map
    (fun (year, values) ->
      Array.iteri (fun i v -> acc.(i) <- acc.(i) + v) values;
      (year, Array.copy acc))
    rows

let fig2 t =
  let per_year =
    List.map
      (fun (year, labels) ->
        let count f = List.length (List.filter f labels) in
        ( year,
          [|
            count (fun l -> l.Generate.l_has_source && not l.Generate.l_has_tx);
            count (fun l -> l.Generate.l_has_source && l.Generate.l_has_tx);
            count (fun l -> (not l.Generate.l_has_source) && l.Generate.l_has_tx);
            count (fun l ->
                (not l.Generate.l_has_source) && not l.Generate.l_has_tx);
          |] ))
      (Generate.by_year t.land_)
  in
  let rows =
    List.map
      (fun (year, acc) ->
        [
          string_of_int year;
          string_of_int acc.(0);
          string_of_int acc.(1);
          string_of_int acc.(2);
          string_of_int acc.(3);
          string_of_int (Array.fold_left ( + ) 0 acc);
        ])
      (cumulative per_year)
  in
  Report.table
    ~title:"Figure 2: cumulative alive contracts by source/tx availability"
    ~header:[ "Year"; "only-source"; "source+tx"; "only-tx"; "hidden"; "total" ]
    rows

let fig4 t =
  let labels = label_index t in
  let source = t.land_.Generate.source_of in
  let year_of addr =
    match Hashtbl.find_opt labels addr with
    | Some l -> Some l.Generate.l_year
    | None -> None
  in
  let pair_class p =
    let proxy_src = source p.Pipeline.p_proxy <> None in
    let logic_src = source p.Pipeline.p_logic <> None in
    match (proxy_src, logic_src) with
    | true, true -> 0
    | false, true -> 1
    | true, false -> 2
    | false, false -> 3
  in
  let per_year =
    List.map
      (fun (year, _) ->
        let counts = Array.make 4 0 in
        List.iter
          (fun r ->
            List.iter
              (fun p ->
                if year_of p.Pipeline.p_proxy = Some year then
                  counts.(pair_class p) <- counts.(pair_class p) + 1)
              r.Pipeline.r_pairs)
          t.report.Pipeline.contracts;
        (year, counts))
      (Generate.by_year t.land_)
  in
  let rows =
    List.map
      (fun (year, acc) ->
        [
          string_of_int year;
          string_of_int acc.(0);
          string_of_int acc.(1);
          string_of_int acc.(2);
          string_of_int acc.(3);
        ])
      (cumulative per_year)
  in
  Report.table
    ~title:"Figure 4: cumulative proxy/logic pairs by source availability"
    ~header:[ "Year"; "both-src"; "logic-src"; "proxy-src"; "no-src" ] rows

let table3 t =
  let labels = label_index t in
  let boost = t.land_.Generate.config.Generate.storage_boost in
  let total = t.land_.Generate.config.Generate.total in
  let upscale = float_of_int Spec.mainnet_total_alive /. float_of_int total in
  let per_year year =
    let func = ref 0 and storage = ref 0 in
    List.iter
      (fun r ->
        match Hashtbl.find_opt labels r.Pipeline.r_address with
        | Some l when l.Generate.l_year = year ->
            if List.exists (fun p -> p.Pipeline.p_func_collisions <> []) r.Pipeline.r_pairs
            then incr func;
            if
              List.exists
                (fun p -> p.Pipeline.p_storage_collisions <> [])
                r.Pipeline.r_pairs
            then incr storage
        | _ -> ())
      t.report.Pipeline.contracts;
    (!func, !storage)
  in
  let rows =
    Array.to_list Spec.years
    |> List.map (fun year ->
           let func, storage = per_year year in
           let est_storage =
             float_of_int storage /. boost *. upscale
           in
           [
             string_of_int year;
             string_of_int func;
             string_of_int storage;
             Printf.sprintf "%.0f" (float_of_int func *. upscale);
             Printf.sprintf "%.0f" est_storage;
           ])
  in
  Report.table
    ~title:
      "Table 3: collisions per deployment year (detected; mainnet-scale estimates)"
    ~header:[ "Year"; "func"; "storage"; "est-func@36M"; "est-storage@36M" ]
    rows

let fig5 t =
  let chain = t.land_.Generate.chain in
  let proxies =
    List.filter_map
      (fun r ->
        if Pipeline.is_proxy_report r then Some r.Pipeline.r_address else None)
      t.report.Pipeline.contracts
  in
  let logics =
    List.concat_map
      (fun r -> List.map (fun p -> p.Pipeline.p_logic) r.Pipeline.r_pairs)
      t.report.Pipeline.contracts
    |> List.sort_uniq Address.compare
  in
  let dist addrs = Proxion.Dedup.duplicate_distribution ~code_of:(Chain.code_at chain) addrs in
  let proxy_dist = dist proxies in
  let logic_dist = dist logics in
  let top n l = List.filteri (fun i _ -> i < n) l in
  Report.histogram ~title:"Figure 5a: proxy clone counts (top 12 unique bytecodes)"
    (List.mapi (fun i c -> (Printf.sprintf "#%d" (i + 1), c)) (top 12 proxy_dist))
  ^ Printf.sprintf "unique proxy bytecodes: %d of %d proxies\n\n"
      (List.length proxy_dist) (List.length proxies)
  ^ Report.histogram ~title:"Figure 5b: logic clone counts (top 12 unique bytecodes)"
      (List.mapi (fun i c -> (Printf.sprintf "#%d" (i + 1), c)) (top 12 logic_dist))
  ^ Printf.sprintf "unique logic bytecodes: %d of %d logic contracts\n"
      (List.length logic_dist) (List.length logics)

let table4 t =
  let counts = Hashtbl.create 4 in
  let bump std =
    Hashtbl.replace counts std (1 + Option.value ~default:0 (Hashtbl.find_opt counts std))
  in
  List.iter
    (fun r ->
      match r.Pipeline.r_standard with Some std -> bump std | None -> ())
    t.report.Pipeline.contracts;
  let total =
    Hashtbl.fold (fun _ c acc -> c + acc) counts 0
  in
  let row std =
    let c = Option.value ~default:0 (Hashtbl.find_opt counts std) in
    [
      Proxion.Standard_classify.to_string std;
      string_of_int c;
      Report.pct (if total = 0 then 0.0 else float_of_int c /. float_of_int total);
    ]
  in
  Report.table ~title:"Table 4: proxy design standards"
    ~header:[ "Standard"; "# proxies"; "ratio" ]
    [
      row Proxion.Standard_classify.Eip1167;
      row Proxion.Standard_classify.Eip1822;
      row Proxion.Standard_classify.Eip1967;
      row Proxion.Standard_classify.Other;
    ]

let fig6 t =
  let buckets = Hashtbl.create 8 in
  List.iter
    (fun r ->
      match r.Pipeline.r_resolution with
      | Some res ->
          let u = res.Proxion.Logic_resolve.upgrade_count in
          Hashtbl.replace buckets u
            (1 + Option.value ~default:0 (Hashtbl.find_opt buckets u))
      | None -> ())
    t.report.Pipeline.contracts;
  let bins =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) buckets []
    |> List.sort compare
    |> List.map (fun (k, v) -> (string_of_int k, v))
  in
  let upgraded =
    Hashtbl.fold (fun k v acc -> if k > 0 then acc + v else acc) buckets 0
  in
  let events =
    Hashtbl.fold (fun k v acc -> acc + (k * v)) buckets 0
  in
  Report.histogram ~title:"Figure 6: upgrades per proxy (log-scale in paper)" bins
  ^ Printf.sprintf
      "upgraded proxies: %d; upgrade events: %d; mean events per upgraded: %.2f\n"
      upgraded events
      (if upgraded = 0 then 0.0 else float_of_int events /. float_of_int upgraded)

let summary t =
  let stats = t.report.Pipeline.stats in
  let labels = t.land_.Generate.labels in
  let total = List.length labels in
  let gt_proxies = List.length (Generate.proxies t.land_) in
  let hidden_proxies =
    List.length
      (List.filter
         (fun l ->
           l.Generate.l_is_proxy && (not l.Generate.l_has_source)
           && not l.Generate.l_has_tx)
         labels)
  in
  let detected_hidden =
    let idx = label_index t in
    List.length
      (List.filter
         (fun r ->
           Pipeline.is_proxy_report r
           &&
           match Hashtbl.find_opt idx r.Pipeline.r_address with
           | Some l ->
               (not l.Generate.l_has_source) && not l.Generate.l_has_tx
           | None -> false)
         t.report.Pipeline.contracts)
  in
  Report.table ~title:"Landscape summary (paper section 7.2)"
    ~header:[ "Metric"; "Value" ]
    [
      [ "contracts analyzed"; string_of_int stats.Pipeline.s_analyzed ];
      [ "ground-truth proxies"; string_of_int gt_proxies ];
      [
        "detected proxies";
        Printf.sprintf "%d (%s of all)" stats.Pipeline.s_proxies
          (Report.pct (float_of_int stats.Pipeline.s_proxies /. float_of_int total));
      ];
      [
        "emulation errors";
        Printf.sprintf "%d (%s)" stats.Pipeline.s_emulation_errors
          (Report.pct
             (float_of_int stats.Pipeline.s_emulation_errors /. float_of_int total));
      ];
      [ "hidden proxies (no src, no tx)"; string_of_int hidden_proxies ];
      [ "hidden proxies detected"; string_of_int detected_hidden ];
      [ "proxy/logic pairs"; string_of_int stats.Pipeline.s_pairs ];
      [ "pairs with function collisions"; string_of_int stats.Pipeline.s_func_colliding_pairs ];
      [ "pairs with storage collisions"; string_of_int stats.Pipeline.s_storage_colliding_pairs ];
      [ "verified storage exploits"; string_of_int stats.Pipeline.s_verified_storage_pairs ];
      [ "honeypot-shaped pairs"; string_of_int stats.Pipeline.s_honeypot_pairs ];
      [ "unique bytecodes"; string_of_int stats.Pipeline.s_unique_codes ];
      [ "dedup cache hits"; string_of_int stats.Pipeline.s_dedup_hits ];
      [ "getStorageAt calls"; string_of_int stats.Pipeline.s_api_calls ];
    ]

let upgrade_authority t =
  let chain = t.land_.Generate.chain in
  let counts = Hashtbl.create 4 in
  let bump key =
    Hashtbl.replace counts key (1 + Option.value ~default:0 (Hashtbl.find_opt counts key))
  in
  List.iter
    (fun r ->
      match r.Pipeline.r_detection.Proxion.Proxy_detect.verdict with
      | Proxion.Proxy_detect.Proxy { source; _ } -> (
          match Proxion.Upgrade_auth.analyze chain r.Pipeline.r_address source with
          | Proxion.Upgrade_auth.Immutable -> bump "immutable"
          | Proxion.Upgrade_auth.Gated -> bump "gated"
          | Proxion.Upgrade_auth.Open_to_anyone _ -> bump "OPEN to anyone"
          | Proxion.Upgrade_auth.No_upgrade_path -> bump "no visible path")
      | _ -> ())
    t.report.Pipeline.contracts;
  let row key =
    [ key; string_of_int (Option.value ~default:0 (Hashtbl.find_opt counts key)) ]
  in
  Report.table
    ~title:"Upgrade authority (Salehi-style ownership-of-upgradeability survey)"
    ~header:[ "Authority"; "# proxies" ]
    [ row "immutable"; row "gated"; row "OPEN to anyone"; row "no visible path" ]

let summary_json t =
  let stats = t.report.Pipeline.stats in
  Report.Json.Obj
    [
      ("contracts", Report.Json.Int stats.Pipeline.s_analyzed);
      ("proxies", Report.Json.Int stats.Pipeline.s_proxies);
      ("emulation_errors", Report.Json.Int stats.Pipeline.s_emulation_errors);
      ("pairs", Report.Json.Int stats.Pipeline.s_pairs);
      ("function_colliding_pairs", Report.Json.Int stats.Pipeline.s_func_colliding_pairs);
      ("storage_colliding_pairs", Report.Json.Int stats.Pipeline.s_storage_colliding_pairs);
      ("verified_storage_pairs", Report.Json.Int stats.Pipeline.s_verified_storage_pairs);
      ("honeypot_pairs", Report.Json.Int stats.Pipeline.s_honeypot_pairs);
      ("unique_bytecodes", Report.Json.Int stats.Pipeline.s_unique_codes);
      ("dedup_hits", Report.Json.Int stats.Pipeline.s_dedup_hits);
      ("get_storage_at_calls", Report.Json.Int stats.Pipeline.s_api_calls);
    ]
