module Generate = Dataset.Generate
module Pipeline = Proxion.Pipeline

type chain_row = {
  mc_name : string;
  mc_chain_id : int;
  mc_contracts : int;
  mc_proxies : int;
  mc_proxy_share : float;
  mc_func_collisions : int;
  mc_storage_collisions : int;
  mc_hidden_detected : int;
}

(* Relative scales are rough contract-population ratios; absolute sizes do
   not matter for the shares the survey compares. *)
let chains =
  [
    ("Ethereum", 1, 1.0);
    ("BSC", 56, 0.8);
    ("Polygon", 137, 0.7);
    ("Arbitrum", 42161, 0.35);
    ("Optimism", 10, 0.3);
    ("Avalanche", 43114, 0.25);
    ("Fantom", 250, 0.2);
    ("Celo", 42220, 0.1);
  ]

let run ?(base_total = 1_200) ?(seed = 42) () =
  List.map
    (fun (name, chain_id, scale) ->
      let config =
        {
          Generate.quick_config with
          Generate.total = max 200 (int_of_float (float_of_int base_total *. scale));
          seed = seed + chain_id;
          chain_id;
        }
      in
      let land_ = Generate.generate config in
      let report =
        Pipeline.analyze ~chain:land_.Generate.chain
          ~source:land_.Generate.source_of ()
      in
      let stats = report.Pipeline.stats in
      let hidden_detected =
        let idx = Hashtbl.create 256 in
        List.iter
          (fun l -> Hashtbl.replace idx l.Generate.l_address l)
          land_.Generate.labels;
        List.length
          (List.filter
             (fun r ->
               Pipeline.is_proxy_report r
               &&
               match Hashtbl.find_opt idx r.Pipeline.r_address with
               | Some l -> (not l.Generate.l_has_source) && not l.Generate.l_has_tx
               | None -> false)
             report.Pipeline.contracts)
      in
      {
        mc_name = name;
        mc_chain_id = chain_id;
        mc_contracts = stats.Pipeline.s_analyzed;
        mc_proxies = stats.Pipeline.s_proxies;
        mc_proxy_share =
          float_of_int stats.Pipeline.s_proxies /. float_of_int stats.Pipeline.s_analyzed;
        mc_func_collisions = stats.Pipeline.s_func_colliding_pairs;
        mc_storage_collisions = stats.Pipeline.s_storage_colliding_pairs;
        mc_hidden_detected = hidden_detected;
      })
    chains

let render rows =
  Report.table ~title:"Section 8.2: multichain survey (one landscape per chain)"
    ~header:
      [ "Chain"; "id"; "contracts"; "proxies"; "share"; "func-coll"; "storage-coll"; "hidden" ]
    (List.map
       (fun r ->
         [
           r.mc_name;
           string_of_int r.mc_chain_id;
           string_of_int r.mc_contracts;
           string_of_int r.mc_proxies;
           Report.pct r.mc_proxy_share;
           string_of_int r.mc_func_collisions;
           string_of_int r.mc_storage_collisions;
           string_of_int r.mc_hidden_detected;
         ])
       rows)

let to_json rows =
  Report.Json.List
    (List.map
       (fun r ->
         Report.Json.Obj
           [
             ("chain", Report.Json.String r.mc_name);
             ("chain_id", Report.Json.Int r.mc_chain_id);
             ("contracts", Report.Json.Int r.mc_contracts);
             ("proxies", Report.Json.Int r.mc_proxies);
             ("proxy_share", Report.Json.Float r.mc_proxy_share);
             ("function_collisions", Report.Json.Int r.mc_func_collisions);
             ("storage_collisions", Report.Json.Int r.mc_storage_collisions);
             ("hidden_proxies_detected", Report.Json.Int r.mc_hidden_detected);
           ])
       rows)
