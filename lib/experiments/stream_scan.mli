(** Incremental aggregates for streamed bounded-RSS scans.

    A streamed scan ({!Dataset.Generate.open_stream} + eviction) never
    holds the full landscape or the full report, so the §7 experiment
    modules — which want both in memory — do not apply.  This folds the
    headline landscape/detection numbers batch-by-batch instead: labels
    come from the drained specs, detections from the per-batch
    {!Proxion.Analyzer.drain_results} reports.

    Semantics note: a streamed scan analyzes each subject against the chain
    as of its {e batch boundary}, not the final chain.  The subject's own
    code, storage history and delegate targets are complete by then, so
    proxy-detection and collision verdicts match a materialized run; only
    aggregates that observe {e later} traffic (a shared logic's incoming
    delegate transactions, archive-query call counts) can differ.  Within
    the streamed path itself everything stays deterministic and
    DOMAINS-independent. *)

type t

val create : unit -> t

val absorb :
  t -> Dataset.Generate.spec array -> Proxion.Pipeline.contract_report list ->
  unit
(** Fold one batch: the specs drained from the stream and the per-contract
    reports the analyzer completed for them.  Commutative counters only, so
    the aggregate is identical at any DOMAINS. *)

val note_evicted : t -> int -> unit
val note_skipped : t -> int -> unit

val summary : t -> string
(** Rendered metric table (deterministic; safe to diff across runs). *)

val summary_json : t -> Report.Json.t

val peak_rss_kb : unit -> int option
(** This process's peak resident set size (VmHWM) in KiB, from
    [/proc/self/status]; [None] where unsupported.  A flat value across
    growing [--total]s is the bounded-RSS acceptance signal. *)
