module Generate = Dataset.Generate
module Pipeline = Proxion.Pipeline

type numbers = {
  contracts_checked : int;
  probe_ms_per_contract : float;
  probe_contracts_per_sec : float;
  algo1_proxies : int;
  algo1_avg_api_calls : float;
  naive_api_calls : int;
  func_check_ms : float;
  storage_check_ms : float;
  pipeline_s_with_dedup : float;
  pipeline_s_without_dedup : float;
  parallel_domains : int;
  pipeline_s_parallel : float;
}

let time clk f =
  let t0 = Obs.Clock.now clk in
  let result = f () in
  (result, Obs.Clock.now clk -. t0)

let run ?(config = Generate.quick_config) ?(domains = 4)
    ?(clock = Obs.Clock.real) () =
  let time f = time clock f in
  let land_ = Generate.generate config in
  let chain = land_.Generate.chain in
  let host = Chain.host_at_head chain in
  let addresses =
    List.map (fun l -> l.Generate.l_address) land_.Generate.labels
  in
  (* Probe throughput, no dedup: every contract emulated individually. *)
  let detections, probe_elapsed =
    time (fun () ->
        List.map (fun a -> Proxion.Proxy_detect.detect ~host a) addresses)
  in
  let n = List.length addresses in
  (* Algorithm 1 cost per slot-based proxy. *)
  let slot_proxies =
    List.filter_map
      (fun (d : Proxion.Proxy_detect.t) ->
        match d.Proxion.Proxy_detect.verdict with
        | Proxion.Proxy_detect.Proxy
            { source = Proxion.Proxy_detect.Storage_slot slot; _ } ->
            Some (d.Proxion.Proxy_detect.address, slot)
        | _ -> None)
      detections
  in
  let api_calls =
    List.map
      (fun (addr, slot) ->
        let r = Proxion.Logic_resolve.resolve_slot chain addr ~slot in
        r.Proxion.Logic_resolve.api_calls)
      slot_proxies
  in
  let algo1_avg =
    if api_calls = [] then 0.0
    else
      float_of_int (List.fold_left ( + ) 0 api_calls)
      /. float_of_int (List.length api_calls)
  in
  (* Collision-check latency on a representative pair set. *)
  let patterns_pairs =
    let p = Minisol.Codegen.runtime (Minisol.Patterns.honeypot_proxy ()) in
    let l = Minisol.Codegen.runtime (Minisol.Patterns.honeypot_logic ()) in
    let ap = Minisol.Codegen.runtime (Minisol.Patterns.audius_proxy ()) in
    let al = Minisol.Codegen.runtime (Minisol.Patterns.audius_logic ()) in
    [ (p, l); (ap, al) ]
  in
  let reps = 50 in
  let _, func_elapsed =
    time (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun (p, l) ->
              ignore
                (Proxion.Func_collision.detect
                   ~proxy:(Proxion.Func_collision.Bytecode p)
                   ~logic:(Proxion.Func_collision.Bytecode l)))
            patterns_pairs
        done)
  in
  let _, storage_elapsed =
    time (fun () ->
        for _ = 1 to reps do
          List.iter
            (fun (p, l) ->
              ignore
                (Proxion.Storage_collision.detect
                   ~proxy:(Proxion.Storage_collision.Bytecode p)
                   ~logic:(Proxion.Storage_collision.Bytecode l)))
            patterns_pairs
        done)
  in
  (* Full pipeline, with and without dedup (the §6.1 bottleneck fix). *)
  let _, with_dedup =
    time (fun () ->
        ignore (Pipeline.analyze ~chain ~source:land_.Generate.source_of ()))
  in
  let no_dedup = Pipeline.Config.(default |> with_dedup false) in
  let _, without_dedup =
    time (fun () ->
        ignore
          (Pipeline.analyze ~config:no_dedup ~chain
             ~source:land_.Generate.source_of ()))
  in
  (* Domain-parallel pipeline: same work, fanned across worker domains.
     Identical output by construction; only wall-clock changes. *)
  let par = Pipeline.Config.(default |> with_domains domains) in
  let _, parallel_elapsed =
    time (fun () ->
        ignore
          (Pipeline.analyze ~config:par ~chain ~source:land_.Generate.source_of
             ()))
  in
  {
    contracts_checked = n;
    probe_ms_per_contract = probe_elapsed /. float_of_int n *. 1000.0;
    probe_contracts_per_sec = float_of_int n /. probe_elapsed;
    algo1_proxies = List.length slot_proxies;
    algo1_avg_api_calls = algo1_avg;
    naive_api_calls = Chain.height chain;
    func_check_ms = func_elapsed /. float_of_int (reps * 2) *. 1000.0;
    storage_check_ms = storage_elapsed /. float_of_int (reps * 2) *. 1000.0;
    pipeline_s_with_dedup = with_dedup;
    pipeline_s_without_dedup = without_dedup;
    parallel_domains = domains;
    pipeline_s_parallel = parallel_elapsed;
  }

let render p =
  Report.table ~title:"Section 6.1: performance"
    ~header:[ "Metric"; "Measured"; "Paper" ]
    [
      [
        "proxy check latency";
        Printf.sprintf "%.3f ms/contract" p.probe_ms_per_contract;
        "6.4 ms";
      ];
      [
        "proxy check throughput";
        Printf.sprintf "%.0f contracts/s" p.probe_contracts_per_sec;
        "156.3 contracts/s";
      ];
      [
        "getStorageAt per slot proxy (Algorithm 1)";
        Printf.sprintf "%.1f calls (over %d proxies)" p.algo1_avg_api_calls
          p.algo1_proxies;
        "26 calls";
      ];
      [
        "naive per-block scan would need";
        Printf.sprintf "%d calls" p.naive_api_calls;
        "15M blocks";
      ];
      [
        "function collision check";
        Printf.sprintf "%.3f ms/pair" p.func_check_ms;
        "6.7 ms";
      ];
      [
        "storage collision check";
        Printf.sprintf "%.3f ms/pair" p.storage_check_ms;
        "1.3 min (incl. symbolic exec + verify)";
      ];
      [
        "pipeline with bytecode dedup";
        Printf.sprintf "%.2f s" p.pipeline_s_with_dedup;
        "65 h for 36M contracts";
      ];
      [
        "pipeline without dedup";
        Printf.sprintf "%.2f s" p.pipeline_s_without_dedup;
        "(48 days for storage checks)";
      ];
      [
        Printf.sprintf "pipeline with dedup, %d domains" p.parallel_domains;
        Printf.sprintf "%.2f s (%.2fx vs 1 domain)" p.pipeline_s_parallel
          (if p.pipeline_s_parallel > 0.0 then
             p.pipeline_s_with_dedup /. p.pipeline_s_parallel
           else 0.0);
        "(embarrassingly parallel per contract)";
      ];
    ]
