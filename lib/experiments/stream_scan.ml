module Generate = Dataset.Generate
module Pipeline = Proxion.Pipeline
module Address = Evm.Address

type t = {
  mutable sc_batches : int;
  mutable sc_drained : int;
  mutable sc_evicted : int;
  mutable sc_pinned : int;
  mutable sc_gt_proxies : int;
  mutable sc_gt_hidden : int;
  mutable sc_analyzed : int;
  mutable sc_detected_proxies : int;
  mutable sc_detected_hidden : int;
  mutable sc_pairs : int;
  mutable sc_func_colliding : int;
  mutable sc_storage_colliding : int;
  mutable sc_honeypots : int;
  mutable sc_dedup_hits : int;
  mutable sc_skipped : int;
}

let create () =
  {
    sc_batches = 0;
    sc_drained = 0;
    sc_evicted = 0;
    sc_pinned = 0;
    sc_gt_proxies = 0;
    sc_gt_hidden = 0;
    sc_analyzed = 0;
    sc_detected_proxies = 0;
    sc_detected_hidden = 0;
    sc_pairs = 0;
    sc_func_colliding = 0;
    sc_storage_colliding = 0;
    sc_honeypots = 0;
    sc_dedup_hits = 0;
    sc_skipped = 0;
  }

let absorb t (specs : Generate.spec array)
    (reports : Pipeline.contract_report list) =
  t.sc_batches <- t.sc_batches + 1;
  t.sc_drained <- t.sc_drained + Array.length specs;
  let by_addr = Hashtbl.create (2 * Array.length specs) in
  Array.iter
    (fun sp ->
      let l = sp.Generate.sp_label in
      Hashtbl.replace by_addr l.Generate.l_address l;
      if sp.Generate.sp_pinned then t.sc_pinned <- t.sc_pinned + 1;
      if l.Generate.l_is_proxy then begin
        t.sc_gt_proxies <- t.sc_gt_proxies + 1;
        if (not l.Generate.l_has_source) && not l.Generate.l_has_tx then
          t.sc_gt_hidden <- t.sc_gt_hidden + 1
      end)
    specs;
  List.iter
    (fun (r : Pipeline.contract_report) ->
      t.sc_analyzed <- t.sc_analyzed + 1;
      if r.Pipeline.r_dedup_hit then t.sc_dedup_hits <- t.sc_dedup_hits + 1;
      if Pipeline.is_proxy_report r then begin
        t.sc_detected_proxies <- t.sc_detected_proxies + 1;
        (match Hashtbl.find_opt by_addr r.Pipeline.r_address with
        | Some l
          when (not l.Generate.l_has_source) && not l.Generate.l_has_tx ->
            t.sc_detected_hidden <- t.sc_detected_hidden + 1
        | _ -> ())
      end;
      List.iter
        (fun (p : Pipeline.pair_report) ->
          t.sc_pairs <- t.sc_pairs + 1;
          if p.Pipeline.p_func_collisions <> [] then
            t.sc_func_colliding <- t.sc_func_colliding + 1;
          if p.Pipeline.p_storage_collisions <> [] then
            t.sc_storage_colliding <- t.sc_storage_colliding + 1;
          if p.Pipeline.p_honeypot then t.sc_honeypots <- t.sc_honeypots + 1)
        r.Pipeline.r_pairs)
    reports

let note_evicted t n = t.sc_evicted <- t.sc_evicted + n
let note_skipped t n = t.sc_skipped <- t.sc_skipped + n

let rows t =
  [
    ("contracts streamed", t.sc_drained);
    ("batches", t.sc_batches);
    ("contracts analyzed", t.sc_analyzed);
    ("skipped (dead letters)", t.sc_skipped);
    ("ground-truth proxies", t.sc_gt_proxies);
    ("ground-truth hidden proxies", t.sc_gt_hidden);
    ("detected proxies", t.sc_detected_proxies);
    ("detected hidden proxies", t.sc_detected_hidden);
    ("proxy/logic pairs", t.sc_pairs);
    ("function-colliding pairs", t.sc_func_colliding);
    ("storage-colliding pairs", t.sc_storage_colliding);
    ("honeypot pairs", t.sc_honeypots);
    ("dedup hits", t.sc_dedup_hits);
    ("evicted after analysis", t.sc_evicted);
    ("pinned (resident)", t.sc_pinned);
  ]

let summary t =
  Report.table ~title:"Streamed scan summary"
    ~header:[ "Metric"; "Value" ]
    (List.map (fun (k, v) -> [ k; string_of_int v ]) (rows t))

let summary_json t =
  Report.Json.Obj (List.map (fun (k, v) -> (k, Report.Json.Int v)) (rows t))

(* Peak resident set size self-report: VmHWM from /proc/self/status.
   Linux-only by construction; callers treat [None] as "unsupported". *)
let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let rec scan () =
        match input_line ic with
        | exception End_of_file -> None
        | line ->
            if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
              String.sub line 6 (String.length line - 6)
              |> String.trim
              |> String.split_on_char ' '
              |> fun parts -> int_of_string_opt (List.hd parts)
            else scan ()
      in
      let r = scan () in
      close_in ic;
      r
