(** §6.1 — performance of the pipeline stages, measured on a landscape:
    proxy-check latency and throughput (paper: 6.4 ms, 156 contracts/s),
    getStorageAt calls per slot proxy under Algorithm 1 vs the naive
    per-block scan (paper: 26 calls on average), function-collision check
    latency (paper: 6.7 ms), storage-collision check latency, and the
    speedup from bytecode-hash deduplication. *)

type numbers = {
  contracts_checked : int;
  probe_ms_per_contract : float;
  probe_contracts_per_sec : float;
  algo1_proxies : int;
  algo1_avg_api_calls : float;
  naive_api_calls : int;  (** One per block: the scan Algorithm 1 replaces. *)
  func_check_ms : float;
  storage_check_ms : float;
  pipeline_s_with_dedup : float;
  pipeline_s_without_dedup : float;
  parallel_domains : int;  (** Worker count used for the parallel row. *)
  pipeline_s_parallel : float;
      (** Dedup pipeline fanned across [parallel_domains] domains;
          identical output, different wall-clock. *)
}

val run :
  ?config:Dataset.Generate.config ->
  ?domains:int ->
  ?clock:Obs.Clock.t ->
  unit ->
  numbers
(** [clock] (default {!Obs.Clock.real}) is the timing source for every
    wall-clock figure — a {!Obs.Clock.virtual_} clock makes the numbers
    deterministic for tests. *)

val render : numbers -> string
