(** The §7 landscape experiments: Figure 2 (availability), Figure 4
    (proxy/logic pairs by source availability), Table 3 (collisions per
    year), Figure 5 (clone skew), Table 4 (standards), Figure 6
    (upgrades).  All are computed by running the full ProxioN pipeline
    over a generated landscape and aggregating its output against the
    deployment-year labels. *)

type t = {
  land_ : Dataset.Generate.t;
  report : Proxion.Pipeline.report;
}

val of_parts : Dataset.Generate.t -> Proxion.Pipeline.report -> t
(** Pair a generated landscape with a pipeline report produced
    separately — e.g. by a checkpointed {!Proxion.Analyzer} run driven
    from the CLI — so every figure below can read from it. *)

val prepare :
  ?config:Dataset.Generate.config ->
  ?pipeline:Proxion.Pipeline.Config.t ->
  unit ->
  t
(** Generate the landscape (default {!Dataset.Generate.default_config})
    and run the pipeline once under [pipeline] (default
    {!Proxion.Pipeline.Config.default}); every figure below reads from
    this. *)

val fig2 : t -> string
(** Cumulative alive contracts per year split by {source?} x {tx?}. *)

val fig4 : t -> string
(** Cumulative detected proxy/logic pairs per year split by which side has
    source available. *)

val table3 : t -> string
(** Function and storage collisions per deployment year as detected by the
    pipeline, with the mainnet-scale estimates obtained by undoing the
    storage-boost factor. *)

val fig5 : t -> string
(** Duplicate distribution of detected proxies and of their logic
    contracts (clone counts, descending). *)

val table4 : t -> string
(** Detected proxies per design standard, with Table 4's percentages. *)

val fig6 : t -> string
(** Histogram of per-proxy upgrade counts from logic resolution. *)

val summary : t -> string
(** Headline §7.2 numbers: proxy share, hidden proxies, analysis success
    rate, pair counts. *)

val upgrade_authority : t -> string
(** Who can upgrade each detected proxy (Salehi et al.'s question, §9.1),
    answered dynamically by {!Proxion.Upgrade_auth}: immutable minimal
    proxies, access-gated upgrades, and the dangerous open-to-anyone
    setters the dataset injects. *)

val summary_json : t -> Report.Json.t
(** The summary headline numbers as JSON. *)
