module Json = Report.Json

type t = { fd : Unix.file_descr; mutable next_id : int }

(* Connect with a bound: non-blocking connect(2) + select(2) + SO_ERROR.
   A plain blocking connect against a wedged host can hang for the
   kernel's SYN-retry budget (minutes). *)
let connect_bounded fd addr timeout_ms =
  let timeout_s = float_of_int timeout_ms /. 1000.0 in
  Unix.set_nonblock fd;
  let finish () = Unix.clear_nonblock fd in
  match Unix.connect fd addr with
  | () ->
      finish ();
      Ok ()
  | exception Unix.Unix_error (Unix.EINPROGRESS, _, _) -> (
      match Unix.select [] [ fd ] [] timeout_s with
      | [], [], [] ->
          finish ();
          Error "connect timed out"
      | _ -> (
          match Unix.getsockopt_error fd with
          | None ->
              finish ();
              Ok ()
          | Some e ->
              finish ();
              Error (Unix.error_message e)))
  | exception Unix.Unix_error (e, _, _) ->
      finish ();
      Error (Unix.error_message e)

let connect ?(host = "127.0.0.1") ?timeout_ms ~port () =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "bad host %S" host)
  | addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let sockaddr = Unix.ADDR_INET (addr, port) in
      let connected =
        match timeout_ms with
        | None -> (
            match Unix.connect fd sockaddr with
            | () -> Ok ()
            | exception Unix.Unix_error (e, _, _) ->
                Error (Unix.error_message e))
        | Some ms when ms <= 0 -> Error "timeout_ms must be positive"
        | Some ms -> connect_bounded fd sockaddr ms
      in
      match connected with
      | Error e ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error e
      | Ok () ->
          (match timeout_ms with
          | None -> ()
          | Some ms -> (
              let s = float_of_int ms /. 1000.0 in
              try
                Unix.setsockopt_float fd Unix.SO_RCVTIMEO s;
                Unix.setsockopt_float fd Unix.SO_SNDTIMEO s
              with Unix.Unix_error _ -> ()));
          Ok { fd; next_id = 1 })

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call_result ?trace t ~meth ~params =
  let id = t.next_id in
  t.next_id <- id + 1;
  match
    Wire.write_frame t.fd (Wire.request_to_string ?trace ~id ~meth ~params ())
  with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      Error "send timed out"
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
      match Wire.read_frame t.fd with
      | Error e -> Error (Wire.read_error_to_string e)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error "receive timed out"
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | Ok payload -> (
          match Wire.response_of_string payload with
          | Error e -> Error e
          | Ok resp -> (
              match resp.Wire.rs_id with
              | Json.Int got when got <> id ->
                  Error (Printf.sprintf "response id %d for request %d" got id)
              | _ -> Ok resp.Wire.rs_result)))

let call ?trace t ~meth ~params =
  match call_result ?trace t ~meth ~params with
  | Error e -> Error e
  | Ok (Ok result) -> Ok result
  | Ok (Error { Wire.code; message }) ->
      Error (Printf.sprintf "error %d: %s" code message)
