module Json = Report.Json

type t = { fd : Unix.file_descr; mutable next_id : int }

let connect ?(host = "127.0.0.1") ~port () =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> Error (Printf.sprintf "bad host %S" host)
  | addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      try
        Unix.connect fd (Unix.ADDR_INET (addr, port));
        Ok { fd; next_id = 1 }
      with Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Unix.error_message e))

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let call_result t ~meth ~params =
  let id = t.next_id in
  t.next_id <- id + 1;
  match Wire.write_frame t.fd (Wire.request_to_string ~id ~meth ~params) with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | () -> (
      match Wire.read_frame t.fd with
      | Error e -> Error (Wire.read_error_to_string e)
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | Ok payload -> (
          match Wire.response_of_string payload with
          | Error e -> Error e
          | Ok resp -> (
              match resp.Wire.rs_id with
              | Json.Int got when got <> id ->
                  Error (Printf.sprintf "response id %d for request %d" got id)
              | _ -> Ok resp.Wire.rs_result)))

let call t ~meth ~params =
  match call_result t ~meth ~params with
  | Error e -> Error e
  | Ok (Ok result) -> Ok result
  | Ok (Error { Wire.code; message }) ->
      Error (Printf.sprintf "error %d: %s" code message)
