module Address = Evm.Address
module Ast = Minisol.Ast
module Patterns = Minisol.Patterns
module Prng = Dataset.Prng
module Generate = Dataset.Generate

type spec = { deployments : int; upgrades : int; reorg_depth : int }

let default_spec = { deployments = 3; upgrades = 2; reorg_depth = 0 }

type reorg = {
  rg_depth : int;
  rg_rollback_to : int;
  rg_orphaned : Address.t list;
  rg_reverted_writes : Address.t list;
}

type summary = {
  a_index : int;
  a_new_contracts : Address.t list;
  a_writes : Address.t list;
  a_height : int;
  a_reorg : reorg option;
}

type t = {
  seed : int;
  spec : spec;
  landscape : Generate.t;
  base_height : int;  (* reorg floor: the initial landscape is canonical *)
  upgradeable : (Address.t * U256.t) array;
      (* label-order slot proxies and their logic slots *)
  clone_source : string option;  (* runtime bytes of the first plain label *)
  mutable applied : int;
  mutable last_plain : Address.t option;
      (* most recent plain logic deployed by an advance *)
}

let create ?(seed = 7) ?(spec = default_spec) (landscape : Generate.t) =
  let upgradeable =
    List.filter_map
      (fun (l : Generate.label) ->
        match l.Generate.l_kind with
        | Generate.K_slot_proxy -> Some (l.Generate.l_address, U256.one)
        | Generate.K_eip1967_proxy ->
            Some (l.Generate.l_address, Patterns.eip1967_implementation_slot)
        | _ -> None)
      landscape.Generate.labels
    |> Array.of_list
  in
  let clone_source =
    List.find_map
      (fun (l : Generate.label) ->
        match l.Generate.l_kind with
        | Generate.K_plain ->
            let code =
              Chain.code_at landscape.Generate.chain l.Generate.l_address
            in
            if code = "" then None else Some code
        | _ -> None)
      landscape.Generate.labels
  in
  {
    seed;
    spec;
    landscape;
    base_height = Chain.height landscape.Generate.chain;
    upgradeable;
    clone_source;
    applied = 0;
    last_plain = None;
  }

let applied t = t.applied

(* A fresh logic contract whose bytecode is unique to (index, tag). *)
let logic_variant index tag =
  let base = Patterns.counter_logic () in
  {
    base with
    Ast.c_funcs =
      base.Ast.c_funcs
      @ [ Ast.func (Printf.sprintf "adv%d_%d" index tag) [ Ast.Stop ] ];
  }

let proxy_variant index tag =
  let base = Patterns.eip1967_proxy () in
  {
    base with
    Ast.c_funcs =
      base.Ast.c_funcs
      @ [ Ast.func (Printf.sprintf "mark%d_%d" index tag) [ Ast.Stop ] ];
  }

(* A honeypot pair: the proxy's mangled selector collides with the
   logic's withdrawal function (the paper's Listing-1 shape), so this is
   the one scripted deployment that carries *findings* — a reorg that
   orphans it exercises the store's finding-retraction path, not just
   subject removal. *)
let honeypot_pair_variant index tag =
  let proxy =
    let base = Patterns.honeypot_proxy () in
    {
      base with
      Ast.c_funcs =
        base.Ast.c_funcs
        @ [ Ast.func (Printf.sprintf "hp%d_%d" index tag) [ Ast.Stop ] ];
    }
  in
  (proxy, Patterns.honeypot_logic ())

let install t ast =
  Chain.install_contract t.landscape.Generate.chain
    ~runtime:(Minisol.Codegen.runtime ast) ()

let apply t =
  let chain = t.landscape.Generate.chain in
  let index = t.applied + 1 in
  (* Seed each advance independently of its predecessors so recovery can
     replay advance i without re-deriving i-1's stream. *)
  let rng = Prng.create (t.seed + (0x9e3779b9 * index)) in
  (* Seeded reorg: with a positive depth, a seeded coin decides whether
     this advance begins by orphaning the chain's newest blocks; the
     rollback never reaches below the initial landscape (the base is
     canonical by construction), and the advance's own deployments then
     re-mine a divergent suffix — the rewound installer nonce makes the
     fork reuse the orphaned addresses with different bytecode, exactly
     the hard case for a verdict store.  With [reorg_depth = 0] not even
     the coin is drawn, so legacy advance streams replay untouched. *)
  let reorg =
    if t.spec.reorg_depth <= 0 then None
    else if Prng.int rng 2 = 0 then None
    else begin
      let head = Chain.height chain in
      let k = 1 + Prng.int rng t.spec.reorg_depth in
      let target = max t.base_height (head - k) in
      if target >= head then None
      else begin
        let rw = Chain.rewind_to chain ~height:target in
        (match t.last_plain with
        | Some a when List.exists (Address.equal a) rw.Chain.rw_orphaned ->
            t.last_plain <- None
        | _ -> ());
        Some
          {
            rg_depth = head - target;
            rg_rollback_to = target;
            rg_orphaned = rw.Chain.rw_orphaned;
            rg_reverted_writes = rw.Chain.rw_reverted_writes;
          }
      end
    end
  in
  let new_rev = ref [] in
  let writes_rev = ref [] in
  let deployed addr = new_rev := addr :: !new_rev in
  (* Deployments: cycle through shapes.  Specs with [deployments <= 4]
     (including the default) never reach the honeypot shape, so legacy
     advance streams are byte-identical to before it existed. *)
  for j = 0 to t.spec.deployments - 1 do
    match j mod 5 with
    | 0 ->
        let addr = install t (logic_variant index j) in
        t.last_plain <- Some addr;
        deployed addr
    | 1 ->
        (* A fresh EIP-1967 proxy pointed at the newest advance logic
           (or a scripted fresh one when none exists yet). *)
        let target =
          match t.last_plain with
          | Some a -> a
          | None ->
              let a = install t (logic_variant index (100 + j)) in
              t.last_plain <- Some a;
              deployed a;
              a
        in
        let addr = install t (proxy_variant index j) in
        Chain.set_storage_direct chain addr
          Patterns.eip1967_implementation_slot
          (Address.to_u256 target);
        deployed addr
    | 2 -> (
        (* A byte-identical clone of an existing plain contract — a
           guaranteed dedup hit for the incremental analyzer. *)
        match t.clone_source with
        | Some runtime ->
            deployed (Chain.install_contract chain ~runtime ())
        | None ->
            let addr = install t (logic_variant index j) in
            t.last_plain <- Some addr;
            deployed addr)
    | 3 ->
        (* A canonical EIP-1167 minimal proxy to the newest logic. *)
        let target =
          match t.last_plain with
          | Some a -> a
          | None ->
              let a = install t (logic_variant index (200 + j)) in
              t.last_plain <- Some a;
              deployed a;
              a
        in
        deployed
          (Chain.install_contract chain
             ~runtime:(Patterns.eip1167_runtime target)
             ())
    | _ ->
        (* The finding-bearing honeypot pair: logic, proxy, then the
           hidden-slot wiring (slot 1 is the proxy's [logic] variable). *)
        let proxy_ast, logic_ast = honeypot_pair_variant index j in
        let logic = install t logic_ast in
        deployed logic;
        let addr = install t proxy_ast in
        Chain.set_storage_direct chain addr U256.one (Address.to_u256 logic);
        deployed addr
  done;
  (* Upgrade events: point scripted slot proxies at fresh logic. *)
  let n_up = Array.length t.upgradeable in
  if n_up > 0 then
    for j = 0 to t.spec.upgrades - 1 do
      let proxy, slot = t.upgradeable.(Prng.int rng n_up) in
      let logic = install t (logic_variant index (1000 + j)) in
      deployed logic;
      Chain.advance_blocks chain (1 + Prng.int rng 8);
      Chain.set_storage_direct chain proxy slot (Address.to_u256 logic);
      writes_rev := proxy :: !writes_rev
    done;
  t.applied <- index;
  {
    a_index = index;
    a_new_contracts = List.rev !new_rev;
    a_writes = List.rev !writes_rev;
    a_height = Chain.height chain;
    a_reorg = reorg;
  }

let replay t n =
  for _ = 1 to n do
    ignore (apply t)
  done
