(** The live ops console behind [proxion top]: digests a daemon's
    [metrics] JSON snapshot (plus [health] and [flight] responses) into
    a terminal dashboard — request throughput and per-method latency
    quantiles with their max-latency trace exemplars, shed/drain state,
    dirty-set and retraction counters, per-endpoint transport health,
    and the flight-recorder tail.

    Pure (no sockets): the CLI polls over a {!Client} connection and
    feeds the JSON here, which keeps every piece testable offline. *)

type histo = {
  h_labels : (string * string) list;
  h_buckets : (float * float) list;
      (** Upper bound ([infinity] for +Inf), cumulative count. *)
  h_sum : float;
  h_count : float;
  h_exemplar : (string * float) option;  (** (trace_id, seconds). *)
}

type view = {
  v_scalars : (string * ((string * string) list * float) list) list;
      (** Family name -> (labels, value) series; counters and gauges. *)
  v_histos : (string * histo list) list;
  v_draining : bool;  (** From [health]; defaults false. *)
  v_flight : (string * int) list;  (** Event-kind counts in the ring. *)
  v_flight_tail : string list;  (** Newest events, one line each. *)
}

val of_metrics_json : Report.Json.t -> (view, string) result
(** Parse a [metrics {"format": "json"}] response body. *)

val with_health : view -> Report.Json.t -> view
(** Fold a [health] response into the view (draining flag). *)

val with_flight : ?tail:int -> view -> Report.Json.t -> view
(** Fold a [flight] response into the view: per-kind counts plus the
    newest [tail] (default 8) events rendered one per line. *)

val scalar_total : view -> string -> float
(** Sum of a family's series across all label sets (0 when absent). *)

val quantile : histo -> float -> float
(** Prometheus-style estimate: locate the target rank's bucket and
    interpolate linearly inside it ([+Inf] clamps to the last finite
    bound). *)

val rate : prev:view option -> dt:float -> view -> string -> float
(** Per-second increase of a counter family between two polls; 0 when
    no previous poll (or [dt] <= 0). *)

val render : ?prev:view -> ?dt:float -> view -> string
(** The dashboard text.  [prev]/[dt] (seconds between polls) enable the
    req/s rate line. *)
