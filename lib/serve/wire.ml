module Json = Report.Json

let protocol_version = 1
let default_max_frame = 4 * 1024 * 1024

(* ------------------------------------------------------------------ *)
(* Framing                                                              *)
(* ------------------------------------------------------------------ *)

let encode_frame ?(max_frame = default_max_frame) payload =
  let n = String.length payload in
  if n > max_frame then
    invalid_arg (Printf.sprintf "Wire.encode_frame: %d bytes > max %d" n max_frame);
  let b = Bytes.create (4 + n) in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.blit_string payload 0 b 4 n;
  Bytes.to_string b

type read_error =
  | Closed
  | Torn of { wanted : int; got : int }
  | Oversized of int
  | Timed_out

let read_error_to_string = function
  | Closed -> "connection closed"
  | Torn { wanted; got } ->
      Printf.sprintf "torn frame: wanted %d bytes, got %d" wanted got
  | Oversized n -> Printf.sprintf "oversized frame: %d bytes" n
  | Timed_out -> "receive deadline exceeded"

(* A signal interrupting a blocking read/write (e.g. SIGTERM arriving on
   the serving thread) must never tear a frame: retry the syscall. *)
let rec write_all fd s sent n =
  if sent < n then
    match Unix.write_substring fd s sent (n - sent) with
    | k -> write_all fd s (sent + k) n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all fd s sent n

let write_frame fd payload =
  let s = encode_frame payload in
  write_all fd s 0 (String.length s)

(* Read exactly [n] bytes; [got] counts what arrived before EOF.
   [deadline] is an absolute time on [clock]: a read that would block
   past it fails with `Timeout instead of waiting forever (the fd needs
   SO_RCVTIMEO set for the poll granularity).  [should_abort] is checked
   at every poll wakeup so a draining server can cut a half-written
   frame without waiting out the deadline. *)
let read_exact ?clock ?deadline ?should_abort fd n =
  let clock = Option.value ~default:Obs.Clock.real clock in
  let expired () =
    match deadline with Some d -> Obs.Clock.now clock >= d | None -> false
  in
  let aborted () =
    match should_abort with Some f -> f () | None -> false
  in
  let b = Bytes.create n in
  let rec go off =
    if off = n then Ok (Bytes.to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> Error (`Eof off)
      | k -> if aborted () || expired () then Error `Timeout else go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
        when deadline <> None || should_abort <> None ->
          if aborted () || expired () then Error `Timeout else go off
  in
  go 0

let read_frame ?(max_frame = default_max_frame) ?clock ?deadline ?should_abort
    fd =
  match read_exact ?clock ?deadline ?should_abort fd 4 with
  | Error (`Eof 0) -> Error Closed
  | Error (`Eof got) -> Error (Torn { wanted = 4; got })
  | Error `Timeout -> Error Timed_out
  | Ok header ->
      let n =
        (Char.code header.[0] lsl 24)
        lor (Char.code header.[1] lsl 16)
        lor (Char.code header.[2] lsl 8)
        lor Char.code header.[3]
      in
      if n > max_frame then Error (Oversized n)
      else if n = 0 then Ok ""
      else (
        match read_exact ?clock ?deadline ?should_abort fd n with
        | Ok payload -> Ok payload
        | Error (`Eof got) -> Error (Torn { wanted = n; got })
        | Error `Timeout -> Error Timed_out)

(* ------------------------------------------------------------------ *)
(* Errors                                                               *)
(* ------------------------------------------------------------------ *)

type error = { code : int; message : string }

let err_parse = -32700
let err_invalid_request = -32600
let err_method_not_found = -32601
let err_invalid_params = -32602
let err_internal = -32000
let err_unknown_address = 1000
let err_oversized = 1001
let err_overloaded = 1002
let err_deadline_exceeded = 1003

(* ------------------------------------------------------------------ *)
(* Messages                                                             *)
(* ------------------------------------------------------------------ *)

type trace_ctx = { tc_trace_id : string; tc_span_id : string }

type request = {
  rq_id : Json.t;
  rq_method : string;
  rq_params : Json.t;
  rq_trace : trace_ctx option;
}

let is_trace_id s =
  String.length s = 16
  && String.for_all
       (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
       s

let request_to_string ?trace ~id ~meth ~params () =
  Json.to_string ~pretty:false
    (Json.Obj
       ([
          ("proxion_rpc", Json.Int protocol_version);
          ("id", Json.Int id);
          ("method", Json.String meth);
          ("params", Json.Obj params);
        ]
       @
       match trace with
       | None -> []
       | Some tc ->
           [
             ( "trace",
               Json.Obj
                 [
                   ("trace_id", Json.String tc.tc_trace_id);
                   ("span_id", Json.String tc.tc_span_id);
                 ] );
           ]))

(* The trace field is strictly optional but, when present, strictly
   validated: a malformed context is an invalid request, never a crash
   and never a silently dropped correlation id. *)
let trace_of_json = function
  | None -> Ok None
  | Some (Json.Obj kvs) -> (
      match (List.assoc_opt "trace_id" kvs, List.assoc_opt "span_id" kvs) with
      | Some (Json.String t), Some (Json.String s)
        when is_trace_id t && is_trace_id s ->
          Ok (Some { tc_trace_id = t; tc_span_id = s })
      | _ -> Error "malformed trace context (want 16-hex trace_id/span_id)")
  | Some _ -> Error "trace must be an object"

let request_of_string payload =
  match Json.parse payload with
  | Error e -> Error { code = err_parse; message = "parse error: " ^ e }
  | Ok (Json.Obj kvs) -> (
      let bad message = Error { code = err_invalid_request; message } in
      match List.assoc_opt "proxion_rpc" kvs with
      | Some (Json.Int v) when v = protocol_version -> (
          match List.assoc_opt "method" kvs with
          | Some (Json.String m) -> (
              let rq_id = Option.value ~default:Json.Null (List.assoc_opt "id" kvs) in
              let rq_params =
                Option.value ~default:Json.Null (List.assoc_opt "params" kvs)
              in
              match trace_of_json (List.assoc_opt "trace" kvs) with
              | Ok rq_trace -> Ok { rq_id; rq_method = m; rq_params; rq_trace }
              | Error e -> bad e)
          | _ -> bad "missing method")
      | Some _ -> bad "unsupported proxion_rpc version"
      | None -> bad "missing proxion_rpc marker")
  | Ok _ -> Error { code = err_invalid_request; message = "request must be an object" }

let envelope ~id rest =
  Json.Obj
    ([
       ("proxion_rpc", Json.Int protocol_version);
       ("schema_version", Json.Int Report.Schema.version);
       ("id", id);
     ]
    @ rest)

let response_ok ~id result =
  Json.to_string ~pretty:false (envelope ~id [ ("result", result) ])

let response_error ~id { code; message } =
  Json.to_string ~pretty:false
    (envelope ~id
       [
         ( "error",
           Json.Obj
             [ ("code", Json.Int code); ("message", Json.String message) ] );
       ])

type response = {
  rs_id : Json.t;
  rs_schema_version : int option;
  rs_result : (Json.t, error) result;
}

let response_of_string payload =
  match Json.parse payload with
  | Error e -> Error ("response parse error: " ^ e)
  | Ok (Json.Obj kvs) -> (
      let rs_id = Option.value ~default:Json.Null (List.assoc_opt "id" kvs) in
      let rs_schema_version =
        match List.assoc_opt "schema_version" kvs with
        | Some (Json.Int v) -> Some v
        | _ -> None
      in
      match (List.assoc_opt "result" kvs, List.assoc_opt "error" kvs) with
      | Some r, None -> Ok { rs_id; rs_schema_version; rs_result = Ok r }
      | None, Some (Json.Obj e) -> (
          match (List.assoc_opt "code" e, List.assoc_opt "message" e) with
          | Some (Json.Int code), Some (Json.String message) ->
              Ok { rs_id; rs_schema_version; rs_result = Error { code; message } }
          | _ -> Error "malformed error object")
      | None, Some _ -> Error "malformed error object"
      | Some _, Some _ -> Error "response carries both result and error"
      | None, None -> Error "response carries neither result nor error")
  | Ok _ -> Error "response must be an object"
