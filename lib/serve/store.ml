module Analysis = Proxion.Analysis
module Address = Evm.Address
module Json = Report.Json

type entry = {
  e_report : Analysis.contract_report;
  e_api_calls : int;
  e_steps : int;
}

type t = {
  lock : Mutex.t;
  tbl : (Address.t, entry) Hashtbl.t;
  mutable order_rev : Address.t list;  (* deployment order, newest first *)
  mutable generation : int;
  mutable report_cache : (int * Analysis.report) option;
      (* keyed by the unique_codes it was computed with *)
  mutable findings_cache : (int * Proxion.Findings.finding list) option;
}

let create () =
  {
    lock = Mutex.create ();
    tbl = Hashtbl.create 1024;
    order_rev = [];
    generation = 0;
    report_cache = None;
    findings_cache = None;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let size t = locked t (fun () -> Hashtbl.length t.tbl)
let generation t = locked t (fun () -> t.generation)
let bump_generation t = locked t (fun () -> t.generation <- t.generation + 1)
let set_generation t g = locked t (fun () -> t.generation <- g)
let find t addr = locked t (fun () -> Hashtbl.find_opt t.tbl addr)
let mem t addr = locked t (fun () -> Hashtbl.mem t.tbl addr)

let upsert t entry =
  locked t (fun () ->
      let addr = entry.e_report.Analysis.r_address in
      if not (Hashtbl.mem t.tbl addr) then t.order_rev <- addr :: t.order_rev;
      Hashtbl.replace t.tbl addr entry;
      t.report_cache <- None;
      t.findings_cache <- None)

let remove t addr =
  locked t (fun () ->
      if Hashtbl.mem t.tbl addr then begin
        Hashtbl.remove t.tbl addr;
        t.order_rev <-
          List.filter (fun a -> not (Address.equal a addr)) t.order_rev;
        t.report_cache <- None;
        t.findings_cache <- None;
        true
      end
      else false)

let entries_locked t =
  List.rev_map (fun addr -> Hashtbl.find t.tbl addr) t.order_rev

let reports t =
  locked t (fun () -> List.map (fun e -> e.e_report) (entries_locked t))

let entries t = locked t (fun () -> entries_locked t)

let report_locked t ~unique_codes =
  match t.report_cache with
  | Some (uc, r) when uc = unique_codes -> r
  | _ ->
      let entries = entries_locked t in
      let contracts = List.map (fun e -> e.e_report) entries in
      let dedup_hits =
        List.length
          (List.filter (fun e -> e.e_report.Analysis.r_dedup_hit) entries)
      in
      let api_calls =
        List.fold_left (fun acc e -> acc + e.e_api_calls) 0 entries
      in
      let emulation_steps =
        List.fold_left (fun acc e -> acc + e.e_steps) 0 entries
      in
      let stats =
        Analysis.compute_stats ~dedup_hits ~unique_codes ~api_calls
          ~emulation_steps contracts
      in
      let r = { Analysis.contracts; stats } in
      t.report_cache <- Some (unique_codes, r);
      r

let report t ~unique_codes = locked t (fun () -> report_locked t ~unique_codes)

let findings t ~unique_codes =
  locked t (fun () ->
      match t.findings_cache with
      | Some (uc, fs) when uc = unique_codes -> fs
      | _ ->
          let fs = Proxion.Findings.of_report (report_locked t ~unique_codes) in
          t.findings_cache <- Some (unique_codes, fs);
          fs)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let entry_to_json e =
  Json.Obj
    [
      ("report", Proxion.Serialize.contract_report_to_json e.e_report);
      ("api_calls", Json.Int e.e_api_calls);
      ("steps", Json.Int e.e_steps);
    ]

let ( let* ) = Result.bind

let entry_of_json json =
  match json with
  | Json.Obj kvs ->
      let get name =
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "store entry: missing %S" name)
      in
      let int name =
        match List.assoc_opt name kvs with
        | Some (Json.Int n) -> Ok n
        | _ -> Error (Printf.sprintf "store entry: bad %S" name)
      in
      let* rj = get "report" in
      let* e_report = Proxion.Serialize.contract_report_of_json rj in
      let* e_api_calls = int "api_calls" in
      let* e_steps = int "steps" in
      Ok { e_report; e_api_calls; e_steps }
  | _ -> Error "store entry: expected an object"
