(** A thin wire-protocol client — the [proxion query] command, the load
    generator, and the server tests all speak through this. *)

type t

val connect : ?host:string -> ?timeout_ms:int -> port:int -> unit -> (t, string) result
(** Open one TCP connection (default host 127.0.0.1).  [timeout_ms]
    bounds the connect itself {e and} every subsequent send/receive on
    the connection ([SO_RCVTIMEO]/[SO_SNDTIMEO]); without it both block
    indefinitely against a wedged server.  A timed-out {!call} returns
    ["connect timed out" | "send timed out" | "receive timed out"]. *)

val close : t -> unit

val call :
  ?trace:Wire.trace_ctx ->
  t ->
  meth:string ->
  params:(string * Report.Json.t) list ->
  (Report.Json.t, string) result
(** One request/response round-trip.  Error responses are rendered as
    ["error <code>: <message>"]; wire failures as their own message.
    [trace] attaches a trace context the daemon adopts, so its spans
    join the client's trace. *)

val call_result :
  ?trace:Wire.trace_ctx ->
  t ->
  meth:string ->
  params:(string * Report.Json.t) list ->
  ((Report.Json.t, Wire.error) result, string) result
(** Like {!call} but keeps server-side errors structured (outer [Error]
    is a transport/protocol failure). *)
