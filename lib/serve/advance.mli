(** Scripted chain advances — the daemon's synthetic "watch mode" feed.

    Models the paper's longitudinal observation (Fig. 6): the chain
    keeps moving under the analysis — new contracts are deployed (plain
    logic, fresh EIP-1967 proxies, byte-identical clones, minimal
    proxies) and existing slot-based proxies are upgraded to freshly
    deployed logic.

    Every advance is a pure function of [(seed, index)] and the
    landscape's ground-truth labels — {e never} of analysis results —
    so replaying [k] advances over a regenerated landscape reproduces
    the chain state bit-for-bit.  That is what lets a recovering daemon
    rebuild its chain deterministically, and what makes "incremental
    result = cold full re-run" a testable identity. *)

type spec = {
  deployments : int;  (** New contracts per advance (shape cycles). *)
  upgrades : int;  (** Upgrade events per advance. *)
}

val default_spec : spec
(** 3 deployments, 2 upgrades. *)

type summary = {
  a_index : int;  (** 1-based advance number. *)
  a_new_contracts : Evm.Address.t list;  (** Deployment order. *)
  a_writes : Evm.Address.t list;
      (** Existing subjects whose storage an upgrade wrote. *)
  a_height : int;  (** Chain head after the advance. *)
}

type t

val create : ?seed:int -> ?spec:spec -> Dataset.Generate.t -> t
(** Default seed 7. *)

val applied : t -> int

val apply : t -> summary
(** Mutate the landscape's chain with the next scripted advance. *)

val replay : t -> int -> unit
(** Apply the next [n] advances, discarding summaries — journal
    recovery uses this to bring a regenerated chain back to the state
    the snapshot was taken at. *)
