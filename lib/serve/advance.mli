(** Scripted chain advances — the daemon's synthetic "watch mode" feed.

    Models the paper's longitudinal observation (Fig. 6): the chain
    keeps moving under the analysis — new contracts are deployed (plain
    logic, fresh EIP-1967 proxies, byte-identical clones, minimal
    proxies) and existing slot-based proxies are upgraded to freshly
    deployed logic.

    Every advance is a pure function of [(seed, index)] and the
    landscape's ground-truth labels — {e never} of analysis results —
    so replaying [k] advances over a regenerated landscape reproduces
    the chain state bit-for-bit.  That is what lets a recovering daemon
    rebuild its chain deterministically, and what makes "incremental
    result = cold full re-run" a testable identity. *)

type spec = {
  deployments : int;  (** New contracts per advance (shape cycles). *)
  upgrades : int;  (** Upgrade events per advance. *)
  reorg_depth : int;
      (** Max blocks a seeded reorg may roll back before an advance
          (0 = the chain only moves forward; legacy streams replay
          unchanged). *)
}

val default_spec : spec
(** 3 deployments, 2 upgrades, no reorgs. *)

(** A reorg that preceded an advance's new blocks. *)
type reorg = {
  rg_depth : int;  (** Blocks actually rolled back. *)
  rg_rollback_to : int;  (** Head height after the rollback. *)
  rg_orphaned : Evm.Address.t list;
      (** Contracts whose deployment was orphaned (deployment order). *)
  rg_reverted_writes : Evm.Address.t list;
      (** Surviving contracts whose storage rolled back (sorted). *)
}

type summary = {
  a_index : int;  (** 1-based advance number. *)
  a_new_contracts : Evm.Address.t list;  (** Deployment order. *)
  a_writes : Evm.Address.t list;
      (** Existing subjects whose storage an upgrade wrote. *)
  a_height : int;  (** Chain head after the advance. *)
  a_reorg : reorg option;
      (** The reorg that opened this advance, when one fired. *)
}

type t

val create : ?seed:int -> ?spec:spec -> Dataset.Generate.t -> t
(** Default seed 7. *)

val applied : t -> int

val apply : t -> summary
(** Mutate the landscape's chain with the next scripted advance. *)

val replay : t -> int -> unit
(** Apply the next [n] advances, discarding summaries — journal
    recovery uses this to bring a regenerated chain back to the state
    the snapshot was taken at. *)
