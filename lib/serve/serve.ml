(** Analysis-as-a-service: the resident query daemon.

    - {!Wire}: length-prefixed JSON-RPC framing, methods, error codes.
    - {!Store}: the indexed in-memory result store with per-subject
      cost attribution.
    - {!Tracker}: the dirty-set model behind incremental re-analysis.
    - {!Advance}: deterministic scripted chain advances (watch mode's
      synthetic feed).
    - {!Daemon}: the server itself — accept loop, worker domains,
      incremental increments, journal snapshots, Obs wiring.
    - {!Client}/{!Loadgen}: the thin client and the benchmark driver.

    See doc/API.md for the wire protocol specification. *)

module Wire = Wire
module Store = Store
module Tracker = Tracker
module Advance = Advance
module Daemon = Daemon
module Client = Client
module Loadgen = Loadgen
module Ops = Ops

module Config = Daemon.Config
(** Re-export: [Serve.Config] is the daemon's builder-style config. *)
