module Json = Report.Json
module Address = Evm.Address
module Analysis = Proxion.Analysis
module Analyzer = Proxion.Analyzer
module Serialize = Proxion.Serialize
module Findings = Proxion.Findings
module Generate = Dataset.Generate
module Journal = Resilience.Journal
module Metrics = Obs.Metrics

let snapshot_kind = "proxion.serve.snapshot"

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)
(* ------------------------------------------------------------------ *)

module Config = struct
  type t = {
    host : string;
    port : int;
    backlog : int;
    workers : int;
    max_frame : int;
    journal : string option;
    advance_seed : int;
    advance_spec : Advance.spec;
    analysis : Proxion.Pipeline.Config.t;
  }

  let default =
    {
      host = "127.0.0.1";
      port = 0;
      backlog = 16;
      workers = 2;
      max_frame = Wire.default_max_frame;
      journal = None;
      advance_seed = 7;
      advance_spec = Advance.default_spec;
      analysis = Proxion.Pipeline.Config.default;
    }

  let with_host host t = { t with host }
  let with_port port t = { t with port }
  let with_backlog backlog t = { t with backlog }
  let with_workers workers t = { t with workers }
  let with_max_frame max_frame t = { t with max_frame }
  let with_journal journal t = { t with journal }
  let with_advance_seed advance_seed t = { t with advance_seed }
  let with_advance_spec advance_spec t = { t with advance_spec }
  let with_analysis analysis t = { t with analysis }

  let validate t =
    let module V = Report.Validate in
    match
      V.all
        [
          V.non_empty ~field:"host" t.host;
          V.non_negative ~field:"port" t.port;
          V.positive ~field:"backlog" t.backlog;
          V.positive ~field:"workers" t.workers;
          V.at_least ~field:"max_frame" ~min:1024 t.max_frame;
          V.non_negative ~field:"advance_spec.deployments"
            t.advance_spec.Advance.deployments;
          V.non_negative ~field:"advance_spec.upgrades"
            t.advance_spec.Advance.upgrades;
        ]
    with
    | Ok () -> (
        match Proxion.Pipeline.Config.validate t.analysis with
        | Ok _ -> Ok t
        | Error e -> Error e)
    | Error e -> Error e
end

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

type t = {
  cfg : Config.t;
  landscape : Generate.t;
  analyzer : Analyzer.t;
  store : Store.t;
  advancer : Advance.t;
  journal : Journal.t option;
  registry : Metrics.t;
  log : Obs.Log.t option;
  m_requests : Metrics.family;
  m_errors : Metrics.family;
  m_latency : Metrics.family;
  m_inflight : Metrics.family;
  m_connections : Metrics.family;
  m_increments : Metrics.family;
  m_dirty : Metrics.family;
  obs_lock : Mutex.t;
  advance_lock : Mutex.t;
  counters : (string, int * int) Hashtbl.t;  (* subject hex -> api, steps *)
  uc : int Atomic.t;  (* cached Analyzer.unique_codes *)
  inflight : int Atomic.t;
  mutable was_recovered : bool;
  (* server *)
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int;
  chan : Unix.file_descr Engine.Task_channel.t;
  mutable listener : unit Domain.t option;
  mutable workers : unit Domain.t list;
  stop_requested : bool Atomic.t;
  mutable stopped : bool;
  lifecycle : Mutex.t;
  lifecycle_cond : Condition.t;
}

let store t = t.store
let registry t = t.registry
let recovered t = t.was_recovered
let advances_applied t = Advance.applied t.advancer
let unique_codes t = Atomic.get t.uc

let logf t level msg =
  match t.log with
  | None -> ()
  | Some log ->
      Mutex.lock t.obs_lock;
      Obs.Log.log log ~component:"serve" level msg;
      Mutex.unlock t.obs_lock

(* ------------------------------------------------------------------ *)
(* Per-subject cost attribution                                         *)
(* ------------------------------------------------------------------ *)

(* Stage subjects are either "0xaddr" or "0xproxy->0xlogic"; costs of a
   pair stage belong to the proxy. *)
let subject_address s =
  match String.index_opt s '-' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '>' -> String.sub s 0 i
  | _ -> s

let subscribe_counters daemon_counters analyzer =
  Analyzer.subscribe analyzer (function
    | Engine.Stage_finished { subject; timing; _ } ->
        let key = subject_address subject in
        let api0, steps0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt daemon_counters key)
        in
        Hashtbl.replace daemon_counters key
          ( api0 + timing.Engine.t_api_calls,
            steps0 + timing.Engine.t_steps )
    | _ -> ())

let drain_into_store t =
  let results = Analyzer.drain_results t.analyzer in
  List.iter
    (fun (r : Analysis.contract_report) ->
      let key = Address.to_hex r.Analysis.r_address in
      let api, steps =
        Option.value ~default:(0, 0) (Hashtbl.find_opt t.counters key)
      in
      Store.upsert t.store
        { Store.e_report = r; e_api_calls = api; e_steps = steps })
    results;
  Hashtbl.reset t.counters;
  List.length results

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_json t =
  Report.Schema.stamp ~kind:snapshot_kind
    (Json.Obj
       [
         ("advances", Json.Int (Advance.applied t.advancer));
         ("height", Json.Int (Chain.height t.landscape.Generate.chain));
         ("analyzer", Analyzer.checkpoint t.analyzer);
         ( "entries",
           Json.List (List.map Store.entry_to_json (Store.entries t.store)) );
       ])

let commit_snapshot t =
  match t.journal with
  | None -> ()
  | Some j -> (
      let payload = Json.to_string ~pretty:false (snapshot_json t) in
      match Journal.checkpoint j payload with
      | Ok () -> ()
      | Error e -> failwith ("journal checkpoint failed: " ^ e))

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let make_metrics registry =
  ( Metrics.counter registry ~help:"Requests served, by method"
      "proxion_serve_requests_total",
    Metrics.counter registry ~help:"Error responses, by method"
      "proxion_serve_errors_total",
    Metrics.histogram registry ~volatile:true
      ~help:"Request handling latency (seconds), by method"
      ~buckets:[ 0.0001; 0.0005; 0.001; 0.005; 0.025; 0.1; 0.5; 2.0 ]
      "proxion_serve_request_seconds",
    Metrics.gauge registry ~volatile:true ~help:"Requests currently in flight"
      "proxion_serve_inflight_requests",
    Metrics.counter registry ~help:"Connections accepted"
      "proxion_serve_connections_total",
    Metrics.counter registry ~help:"Incremental advances applied"
      "proxion_serve_increments_total",
    Metrics.counter registry ~help:"Subjects re-analyzed by increments"
      "proxion_serve_dirty_subjects_total" )

let ( let* ) = Result.bind

let parse_snapshot payload =
  let* json = Json.parse payload in
  let* json = Report.Schema.check ~kind:snapshot_kind json in
  let get name =
    match json with
    | Json.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "snapshot: missing %S" name))
    | _ -> Error "snapshot: expected an object"
  in
  let int name =
    match get name with
    | Ok (Json.Int n) -> Ok n
    | Ok _ -> Error (Printf.sprintf "snapshot: bad %S" name)
    | Error e -> Error e
  in
  let* advances = int "advances" in
  let* height = int "height" in
  let* analyzer = get "analyzer" in
  let* entries =
    match get "entries" with
    | Ok (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | e :: rest ->
              let* entry = Store.entry_of_json e in
              go (entry :: acc) rest
        in
        go [] l
    | Ok _ -> Error "snapshot: bad \"entries\""
    | Error e -> Error e
  in
  Ok (advances, height, analyzer, entries)

let create ?(config = Config.default) ?registry ?log landscape =
  let* config =
    Result.map_error Report.Validate.to_string (Config.validate config)
  in
  let registry = match registry with Some r -> r | None -> Metrics.create () in
  let chain = landscape.Generate.chain in
  let source = landscape.Generate.source_of in
  let advancer =
    Advance.create ~seed:config.Config.advance_seed
      ~spec:config.Config.advance_spec landscape
  in
  let* journal_and_state =
    match config.Config.journal with
    | None -> Ok (None, None)
    | Some path ->
        let* j, recovery = Journal.open_journal path in
        Ok (Some j, recovery.Journal.rec_state)
  in
  let journal, rec_state = journal_and_state in
  let m_requests, m_errors, m_latency, m_inflight, m_connections, m_increments,
      m_dirty =
    make_metrics registry
  in
  let finish analyzer store was_recovered =
    let t =
      {
        cfg = config;
        landscape;
        analyzer;
        store;
        advancer;
        journal;
        registry;
        log;
        m_requests;
        m_errors;
        m_latency;
        m_inflight;
        m_connections;
        m_increments;
        m_dirty;
        obs_lock = Mutex.create ();
        advance_lock = Mutex.create ();
        counters = Hashtbl.create 1024;
        uc = Atomic.make 0;
        inflight = Atomic.make 0;
        was_recovered;
        listen_fd = None;
        bound_port = 0;
        chan = Engine.Task_channel.create ();
        listener = None;
        workers = [];
        stop_requested = Atomic.make false;
        stopped = false;
        lifecycle = Mutex.create ();
        lifecycle_cond = Condition.create ();
      }
    in
    Atomic.set t.uc (Analyzer.unique_codes analyzer);
    t
  in
  match rec_state with
  | Some payload ->
      (* Warm start: replay the scripted advances onto the regenerated
         landscape, then restore analyzer and store from the snapshot —
         no re-analysis. *)
      let* advances, height, analyzer_json, entries = parse_snapshot payload in
      Advance.replay advancer advances;
      if Chain.height chain <> height then
        Error
          (Printf.sprintf
             "journal snapshot height %d does not match replayed chain \
              height %d (different landscape?)"
             height (Chain.height chain))
      else
        let* analyzer = Analyzer.restore ~chain ~source analyzer_json in
        let store = Store.create () in
        List.iter (Store.upsert store) entries;
        Store.set_generation store advances;
        let t = finish analyzer store true in
        subscribe_counters t.counters analyzer;
        Analyzer.refresh_head analyzer;
        ignore (Analyzer.drain_results analyzer);
        logf t Obs.Log.Info
          (Printf.sprintf "recovered warm: %d subjects, %d advances"
             (Store.size store) advances);
        Ok t
  | None ->
      (* Cold start: full landscape analysis on the resident analyzer. *)
      let analyzer =
        Analyzer.create ~config:config.Config.analysis ~chain ~source ()
      in
      let store = Store.create () in
      let t = finish analyzer store false in
      subscribe_counters t.counters analyzer;
      Analyzer.submit_all analyzer;
      Analyzer.run analyzer;
      let n = drain_into_store t in
      Atomic.set t.uc (Analyzer.unique_codes analyzer);
      logf t Obs.Log.Info
        (Printf.sprintf "initial analysis complete: %d subjects" n);
      commit_snapshot t;
      Ok t

(* ------------------------------------------------------------------ *)
(* Incremental advances                                                 *)
(* ------------------------------------------------------------------ *)

type advance_result = {
  adv_summary : Advance.summary;
  adv_dirty : int;
  adv_new : int;
}

let advance t =
  Mutex.lock t.advance_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.advance_lock)
    (fun () ->
      let summary = Advance.apply t.advancer in
      Analyzer.refresh_head t.analyzer;
      let reports = Store.reports t.store in
      let dirty =
        Tracker.dirty ~reports ~writes:summary.Advance.a_writes
      in
      List.iter
        (Analyzer.invalidate_code_hash t.analyzer)
        (Tracker.invalidation_hashes ~dirty);
      let dirty_addrs =
        List.map (fun (r : Analysis.contract_report) -> r.Analysis.r_address) dirty
      in
      Analyzer.submit t.analyzer
        (dirty_addrs @ summary.Advance.a_new_contracts);
      Analyzer.run t.analyzer;
      ignore (drain_into_store t);
      Atomic.set t.uc (Analyzer.unique_codes t.analyzer);
      Store.bump_generation t.store;
      commit_snapshot t;
      Metrics.inc t.registry t.m_increments;
      Metrics.inc
        ~by:(float_of_int (List.length dirty_addrs))
        t.registry t.m_dirty;
      logf t Obs.Log.Info
        (Printf.sprintf "advance %d: %d dirty, %d new, height %d"
           summary.Advance.a_index (List.length dirty_addrs)
           (List.length summary.Advance.a_new_contracts)
           summary.Advance.a_height);
      {
        adv_summary = summary;
        adv_dirty = List.length dirty_addrs;
        adv_new = List.length summary.Advance.a_new_contracts;
      })

(* ------------------------------------------------------------------ *)
(* Query dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let param params name =
  match params with
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let int_param ?default params name =
  match param params name with
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ ->
      Error
        {
          Wire.code = Wire.err_invalid_params;
          message = Printf.sprintf "%s must be an integer" name;
        }
  | None -> Ok default

let address_param params =
  match param params "address" with
  | Some (Json.String s) -> (
      match Hexutil.of_hex_opt s with
      | Some b when String.length b = 20 -> Ok (Address.of_hex s)
      | _ ->
          Error
            {
              Wire.code = Wire.err_invalid_params;
              message = "address must be 20 bytes of 0x-hex";
            })
  | Some _ | None ->
      Error
        {
          Wire.code = Wire.err_invalid_params;
          message = "missing string parameter \"address\"";
        }

let entry_for t params =
  let* addr = address_param params in
  match Store.find t.store addr with
  | Some e -> Ok (addr, e)
  | None ->
      Error
        {
          Wire.code = Wire.err_unknown_address;
          message = "address not in the analyzed population";
        }

let severity_of_string s =
  let open Findings in
  match String.lowercase_ascii s with
  | "critical" -> Some Critical
  | "high" -> Some High
  | "medium" -> Some Medium
  | "info" -> Some Info
  | _ -> None

let severity_rank = function
  | Findings.Critical -> 3
  | Findings.High -> 2
  | Findings.Medium -> 1
  | Findings.Info -> 0

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

let handle_get_status t =
  let report = Store.report t.store ~unique_codes:(unique_codes t) in
  let stats = report.Analysis.stats in
  Ok
    (Json.Obj
       [
         ("contracts", Json.Int stats.Analysis.s_analyzed);
         ("proxies", Json.Int stats.Analysis.s_proxies);
         ("unique_codes", Json.Int stats.Analysis.s_unique_codes);
         ("height", Json.Int (Chain.height t.landscape.Generate.chain));
         ("advances", Json.Int (advances_applied t));
         ("generation", Json.Int (Store.generation t.store));
         ("recovered", Json.Bool t.was_recovered);
       ])

let handle_is_proxy t params =
  let* addr, e = entry_for t params in
  let r = e.Store.e_report in
  Ok
    (Json.Obj
       [
         ("address", Json.String (Address.to_hex addr));
         ( "is_proxy",
           Json.Bool (Proxion.Proxy_detect.is_proxy r.Analysis.r_detection) );
         ("detection", Serialize.detection_to_json r.Analysis.r_detection);
         ( "standard",
           match r.Analysis.r_standard with
           | Some s ->
               Json.String (Proxion.Standard_classify.to_string s)
           | None -> Json.Null );
         ("dedup_hit", Json.Bool r.Analysis.r_dedup_hit);
       ])

let handle_logic_history t params =
  let* addr, e = entry_for t params in
  let r = e.Store.e_report in
  Ok
    (Json.Obj
       [
         ("address", Json.String (Address.to_hex addr));
         ( "resolution",
           match r.Analysis.r_resolution with
           | Some res -> Serialize.resolution_to_json res
           | None -> Json.Null );
       ])

let handle_collisions t params =
  let* addr, e = entry_for t params in
  let r = e.Store.e_report in
  Ok
    (Json.Obj
       [
         ("address", Json.String (Address.to_hex addr));
         ( "pairs",
           Json.List
             (List.map Serialize.pair_report_to_json r.Analysis.r_pairs) );
       ])

let handle_list_findings t params =
  let* offset = int_param ~default:0 params "offset" in
  let* limit = int_param ~default:50 params "limit" in
  let offset = max 0 (Option.value ~default:0 offset) in
  let limit = min 500 (max 0 (Option.value ~default:50 limit)) in
  let* sev_filter =
    match param params "severity" with
    | Some (Json.String s) -> (
        match severity_of_string s with
        | Some sev -> Ok (Some (`Exact sev))
        | None ->
            Error
              {
                Wire.code = Wire.err_invalid_params;
                message = "severity must be critical|high|medium|info";
              })
    | Some _ ->
        Error
          {
            Wire.code = Wire.err_invalid_params;
            message = "severity must be a string";
          }
    | None -> (
        match param params "min_severity" with
        | Some (Json.String s) -> (
            match severity_of_string s with
            | Some sev -> Ok (Some (`Min sev))
            | None ->
                Error
                  {
                    Wire.code = Wire.err_invalid_params;
                    message = "min_severity must be critical|high|medium|info";
                  })
        | Some _ ->
            Error
              {
                Wire.code = Wire.err_invalid_params;
                message = "min_severity must be a string";
              }
        | None -> Ok None)
  in
  let all = Store.findings t.store ~unique_codes:(unique_codes t) in
  let filtered =
    match sev_filter with
    | None -> all
    | Some (`Exact sev) ->
        List.filter (fun f -> f.Findings.f_severity = sev) all
    | Some (`Min sev) ->
        List.filter
          (fun f -> severity_rank f.Findings.f_severity >= severity_rank sev)
          all
  in
  let page = take limit (drop offset filtered) in
  Ok
    (Json.Obj
       [
         ("total", Json.Int (List.length filtered));
         ("offset", Json.Int offset);
         ("count", Json.Int (List.length page));
         ("findings", Findings.to_json page);
       ])

let handle_report t =
  Ok (Serialize.report_to_json (Store.report t.store ~unique_codes:(unique_codes t)))

let handle_metrics t params =
  match param params "format" with
  | None | Some (Json.String "prometheus") ->
      Ok (Json.String (Metrics.to_prometheus t.registry))
  | Some (Json.String "json") -> Ok (Metrics.to_json t.registry)
  | Some _ ->
      Error
        {
          Wire.code = Wire.err_invalid_params;
          message = "format must be \"prometheus\" or \"json\"";
        }

let request_stop t =
  Atomic.set t.stop_requested true;
  Mutex.lock t.lifecycle;
  (* shutdown, not close: close(2) does not wake a thread blocked in
     accept(2), shutdown(2) does.  The listener closes the descriptor
     itself when its loop exits. *)
  (match t.listen_fd with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ());
  Condition.broadcast t.lifecycle_cond;
  Mutex.unlock t.lifecycle

let handle_advance t params =
  let* count = int_param ~default:1 params "count" in
  let count = min 64 (max 1 (Option.value ~default:1 count)) in
  let dirty = ref 0 and fresh = ref 0 and last = ref None in
  for _ = 1 to count do
    let r = advance t in
    dirty := !dirty + r.adv_dirty;
    fresh := !fresh + r.adv_new;
    last := Some r
  done;
  let height =
    match !last with
    | Some r -> r.adv_summary.Advance.a_height
    | None -> Chain.height t.landscape.Generate.chain
  in
  Ok
    (Json.Obj
       [
         ("applied", Json.Int count);
         ("advances", Json.Int (advances_applied t));
         ("height", Json.Int height);
         ("dirty", Json.Int !dirty);
         ("new_contracts", Json.Int !fresh);
       ])

let dispatch t meth params =
  match meth with
  | "get_status" -> handle_get_status t
  | "is_proxy" -> handle_is_proxy t params
  | "logic_history" -> handle_logic_history t params
  | "collisions" -> handle_collisions t params
  | "list_findings" -> handle_list_findings t params
  | "report" -> handle_report t
  | "metrics" -> handle_metrics t params
  | "advance" -> handle_advance t params
  | "shutdown" ->
      request_stop t;
      Ok (Json.Obj [ ("stopping", Json.Bool true) ])
  | _ ->
      Error
        {
          Wire.code = Wire.err_method_not_found;
          message = Printf.sprintf "unknown method %S" meth;
        }

let handle t payload =
  match Wire.request_of_string payload with
  | Error err -> (None, Wire.response_error ~id:Json.Null err)
  | Ok req -> (
      let id = req.Wire.rq_id in
      match dispatch t req.Wire.rq_method req.Wire.rq_params with
      | Ok result -> (Some req.Wire.rq_method, Wire.response_ok ~id result)
      | Error err -> (Some req.Wire.rq_method, Wire.response_error ~id err)
      | exception e ->
          ( Some req.Wire.rq_method,
            Wire.response_error ~id
              {
                Wire.code = Wire.err_internal;
                message = Printexc.to_string e;
              } ))

(* ------------------------------------------------------------------ *)
(* Serving                                                              *)
(* ------------------------------------------------------------------ *)

let access_log t meth ~ok ~bytes_in ~bytes_out ~elapsed =
  match t.log with
  | None -> ()
  | Some log ->
      Mutex.lock t.obs_lock;
      Obs.Log.log log ~component:"serve"
        ~fields:
          [
            ("method", Json.String (Option.value ~default:"?" meth));
            ("ok", Json.Bool ok);
            ("bytes_in", Json.Int bytes_in);
            ("bytes_out", Json.Int bytes_out);
            ("seconds", Json.Float elapsed);
          ]
        Obs.Log.Info "request";
      Mutex.unlock t.obs_lock

let observe_request t meth ~ok ~bytes_in ~bytes_out ~elapsed =
  let labels = [ ("method", Option.value ~default:"invalid" meth) ] in
  Metrics.inc ~labels t.registry t.m_requests;
  if not ok then Metrics.inc ~labels t.registry t.m_errors;
  Metrics.observe ~labels t.registry t.m_latency elapsed;
  access_log t meth ~ok ~bytes_in ~bytes_out ~elapsed

let response_is_error payload =
  match Wire.response_of_string payload with
  | Ok { Wire.rs_result = Error _; _ } -> true
  | _ -> false

let serve_connection t fd =
  Metrics.inc t.registry t.m_connections;
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5
   with Unix.Unix_error _ -> ());
  let closed = ref false in
  while not !closed do
    match Wire.read_frame ~max_frame:t.cfg.Config.max_frame fd with
    | Ok payload -> (
        try
          let up = Atomic.fetch_and_add t.inflight 1 + 1 in
          Metrics.set t.registry t.m_inflight (float_of_int up);
          let t0 = Unix.gettimeofday () in
          let meth, response = handle t payload in
          let elapsed = Unix.gettimeofday () -. t0 in
          let down = Atomic.fetch_and_add t.inflight (-1) - 1 in
          Metrics.set t.registry t.m_inflight (float_of_int down);
          (try Wire.write_frame fd response
           with Unix.Unix_error _ -> closed := true);
          observe_request t meth
            ~ok:(not (response_is_error response))
            ~bytes_in:(String.length payload)
            ~bytes_out:(String.length response) ~elapsed
        with _ ->
          (* A crash in the observability path must not kill the worker
             domain; drop the connection instead. *)
          closed := true)
    | Error Wire.Closed -> closed := true
    | Error (Wire.Oversized n) ->
        (try
           Wire.write_frame fd
             (Wire.response_error ~id:Json.Null
                {
                  Wire.code = Wire.err_oversized;
                  message =
                    Printf.sprintf "frame of %d bytes exceeds limit %d" n
                      t.cfg.Config.max_frame;
                })
         with Unix.Unix_error _ -> ());
        closed := true
    | Error (Wire.Torn _) -> closed := true
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        (* Receive timeout: poll the stop flag, then keep waiting. *)
        if Atomic.get t.stop_requested then closed := true
    | exception Unix.Unix_error _ -> closed := true
  done;
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker_loop t =
  let rec go () =
    match Engine.Task_channel.pop t.chan with
    | None -> ()
    | Some fd ->
        serve_connection t fd;
        go ()
  in
  go ()

let accept_loop t fd =
  let continue = ref true in
  while !continue do
    match Unix.accept fd with
    | client, _ -> Engine.Task_channel.push t.chan client
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Engine.Task_channel.close t.chan

let port t = t.bound_port

let start t =
  match t.listen_fd with
  | Some _ -> Error "already started"
  | None -> (
      match Unix.inet_addr_of_string t.cfg.Config.host with
      | exception Failure _ ->
          Error (Printf.sprintf "bad host %S" t.cfg.Config.host)
      | addr -> (
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, t.cfg.Config.port));
            Unix.listen fd t.cfg.Config.backlog;
            (match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> t.bound_port <- p
            | _ -> ());
            t.listen_fd <- Some fd;
            t.workers <-
              List.init t.cfg.Config.workers (fun _ ->
                  Domain.spawn (fun () -> worker_loop t));
            t.listener <- Some (Domain.spawn (fun () -> accept_loop t fd));
            logf t Obs.Log.Info
              (Printf.sprintf "listening on %s:%d (%d workers)"
                 t.cfg.Config.host t.bound_port t.cfg.Config.workers);
            Ok ()
          with Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error (Unix.error_message e)))

let stop t =
  request_stop t;
  Mutex.lock t.lifecycle;
  let already = t.stopped in
  if not already then t.stopped <- true;
  Mutex.unlock t.lifecycle;
  if not already then begin
    (match t.listener with
    | Some d ->
        Domain.join d;
        t.listener <- None;
        t.listen_fd <- None
    | None -> Engine.Task_channel.close t.chan);
    List.iter Domain.join t.workers;
    t.workers <- [];
    (match t.journal with Some j -> Journal.close j | None -> ());
    logf t Obs.Log.Info "stopped"
  end

let wait t =
  Mutex.lock t.lifecycle;
  while not (Atomic.get t.stop_requested) do
    Condition.wait t.lifecycle_cond t.lifecycle
  done;
  Mutex.unlock t.lifecycle;
  stop t
