module Json = Report.Json
module Address = Evm.Address
module Analysis = Proxion.Analysis
module Analyzer = Proxion.Analyzer
module Serialize = Proxion.Serialize
module Findings = Proxion.Findings
module Generate = Dataset.Generate
module Journal = Resilience.Journal
module Metrics = Obs.Metrics

let snapshot_kind = "proxion.serve.snapshot"

(* ------------------------------------------------------------------ *)
(* Configuration                                                        *)
(* ------------------------------------------------------------------ *)

module Config = struct
  type t = {
    host : string;
    port : int;
    backlog : int;
    workers : int;
    max_frame : int;
    max_conns : int;
    queue_limit : int;
    idle_timeout_ms : int;
    request_deadline_ms : int;
    drain_grace_ms : int;
    clock : Obs.Clock.t;
    journal : string option;
    journal_fsync : bool;
    advance_seed : int;
    advance_spec : Advance.spec;
    analysis : Proxion.Pipeline.Config.t;
    resilience : Resilience.Transport.config;
    slow_ms : int option;
    flight_capacity : int;
    flight_dump : string option;
    trace_seed : int;
  }

  let default =
    {
      host = "127.0.0.1";
      port = 0;
      backlog = 16;
      workers = 2;
      max_frame = Wire.default_max_frame;
      max_conns = 64;
      queue_limit = 32;
      idle_timeout_ms = 10_000;
      request_deadline_ms = 5_000;
      drain_grace_ms = 5_000;
      clock = Obs.Clock.real;
      journal = None;
      journal_fsync = true;
      advance_seed = 7;
      advance_spec = Advance.default_spec;
      analysis = Proxion.Pipeline.Config.default;
      resilience = Resilience.Transport.default_config;
      slow_ms = None;
      flight_capacity = 256;
      flight_dump = None;
      trace_seed = 11;
    }

  let with_host host t = { t with host }
  let with_port port t = { t with port }
  let with_backlog backlog t = { t with backlog }
  let with_workers workers t = { t with workers }
  let with_max_frame max_frame t = { t with max_frame }
  let with_max_conns max_conns t = { t with max_conns }
  let with_queue_limit queue_limit t = { t with queue_limit }
  let with_idle_timeout_ms idle_timeout_ms t = { t with idle_timeout_ms }

  let with_request_deadline_ms request_deadline_ms t =
    { t with request_deadline_ms }

  let with_drain_grace_ms drain_grace_ms t = { t with drain_grace_ms }
  let with_clock clock t = { t with clock }
  let with_journal journal t = { t with journal }
  let with_journal_fsync journal_fsync t = { t with journal_fsync }
  let with_advance_seed advance_seed t = { t with advance_seed }
  let with_advance_spec advance_spec t = { t with advance_spec }
  let with_analysis analysis t = { t with analysis }
  let with_resilience resilience t = { t with resilience }
  let with_slow_ms slow_ms t = { t with slow_ms }
  let with_flight_capacity flight_capacity t = { t with flight_capacity }
  let with_flight_dump flight_dump t = { t with flight_dump }
  let with_trace_seed trace_seed t = { t with trace_seed }

  let validate t =
    let module V = Report.Validate in
    match
      V.all
        [
          V.non_empty ~field:"host" t.host;
          V.non_negative ~field:"port" t.port;
          V.positive ~field:"backlog" t.backlog;
          V.positive ~field:"workers" t.workers;
          V.at_least ~field:"max_frame" ~min:1024 t.max_frame;
          V.positive ~field:"max_conns" t.max_conns;
          V.positive ~field:"queue_limit" t.queue_limit;
          V.positive ~field:"idle_timeout_ms" t.idle_timeout_ms;
          V.positive ~field:"request_deadline_ms" t.request_deadline_ms;
          V.non_negative ~field:"drain_grace_ms" t.drain_grace_ms;
          V.non_negative ~field:"advance_spec.deployments"
            t.advance_spec.Advance.deployments;
          V.non_negative ~field:"advance_spec.upgrades"
            t.advance_spec.Advance.upgrades;
          V.non_negative ~field:"advance_spec.reorg_depth"
            t.advance_spec.Advance.reorg_depth;
          V.positive ~field:"flight_capacity" t.flight_capacity;
          (match t.slow_ms with
          | None -> Ok ()
          | Some n -> V.positive ~field:"slow_ms" n);
        ]
    with
    | Ok () -> (
        match Resilience.Transport.validate_config t.resilience with
        | Error e -> Error e
        | Ok _ -> (
            match Proxion.Pipeline.Config.validate t.analysis with
            | Ok _ -> Ok t
            | Error e -> Error e))
    | Error e -> Error e
end

(* ------------------------------------------------------------------ *)
(* State                                                                *)
(* ------------------------------------------------------------------ *)

type families = {
  m_requests : Metrics.family;
  m_errors : Metrics.family;
  m_latency : Metrics.family;
  m_inflight : Metrics.family;
  m_connections : Metrics.family;
  m_increments : Metrics.family;
  m_dirty : Metrics.family;
  m_reorgs : Metrics.family;
  m_retracted : Metrics.family;
  m_open : Metrics.family;
  m_shed_conns : Metrics.family;
  m_shed_reqs : Metrics.family;
  m_deadline : Metrics.family;
  m_ready : Metrics.family;
  m_draining : Metrics.family;
}

type t = {
  cfg : Config.t;
  landscape : Generate.t;
  analyzer : Analyzer.t;
  store : Store.t;
  advancer : Advance.t;
  journal : Journal.t option;
  registry : Metrics.t;
  log : Obs.Log.t option;
  trace : Obs.Trace.t option;
  flight : Obs.Flight.t;
  trace_gen : Obs.Trace.gen;
  fams : families;
  obs_lock : Mutex.t;
  advance_lock : Mutex.t;
  counters : (string, int * int) Hashtbl.t;  (* subject hex -> api, steps *)
  mutable reorg_log : (int * Advance.reorg) list;
      (* newest first, guarded by advance_lock; rebuilt on warm start *)
  uc : int Atomic.t;  (* cached Analyzer.unique_codes *)
  inflight : int Atomic.t;
  open_conns : int Atomic.t;
  workers_done : int Atomic.t;
  mutable was_recovered : bool;
  (* server *)
  mutable listen_fd : Unix.file_descr option;
  mutable bound_port : int;
  chan : Unix.file_descr Engine.Task_channel.t;
  mutable listener : unit Domain.t option;
  mutable workers : unit Domain.t list;
  stop_requested : bool Atomic.t;
  draining : bool Atomic.t;
  mutable stopped : bool;
  lifecycle : Mutex.t;
}

let store t = t.store
let registry t = t.registry
let recovered t = t.was_recovered
let advances_applied t = Advance.applied t.advancer

let reorgs t =
  Mutex.lock t.advance_lock;
  let log = t.reorg_log in
  Mutex.unlock t.advance_lock;
  List.rev log
let unique_codes t = Atomic.get t.uc
let is_draining t = Atomic.get t.draining
let open_connections t = Atomic.get t.open_conns

let logf t level msg =
  match t.log with
  | None -> ()
  | Some log ->
      Mutex.lock t.obs_lock;
      Obs.Log.log log ~component:"serve" level msg;
      Mutex.unlock t.obs_lock

let flight t = t.flight

(* Atomic (tmp + rename) so a dump racing a reader — or a crash mid
   write — never leaves a truncated file at the published path. *)
let dump_flight t =
  match t.cfg.Config.flight_dump with
  | None -> ()
  | Some path -> (
      try
        let tmp = path ^ ".tmp" in
        let oc = open_out tmp in
        Obs.Flight.write t.flight oc;
        close_out oc;
        Sys.rename tmp path
      with Sys_error _ -> ())

(* Every admission-gate shed leaves three agreeing records: the
   [reason]-labelled counter, a flight-recorder event, and a structured
   access-log line — a connection turned away with 1002 is never
   invisible to any one of the three surfaces. *)
let note_shed t ~reason =
  Metrics.inc ~labels:[ ("reason", reason) ] t.registry t.fams.m_shed_conns;
  Obs.Flight.record t.flight "shed" ~fields:[ ("reason", Json.String reason) ];
  match t.log with
  | None -> ()
  | Some log ->
      Mutex.lock t.obs_lock;
      Obs.Log.log log ~component:"serve"
        ~fields:
          [
            ("reason", Json.String reason);
            ("code", Json.Int Wire.err_overloaded);
          ]
        Obs.Log.Warn "connection shed";
      Mutex.unlock t.obs_lock

(* ------------------------------------------------------------------ *)
(* Per-subject cost attribution                                         *)
(* ------------------------------------------------------------------ *)

(* Stage subjects are either "0xaddr" or "0xproxy->0xlogic"; costs of a
   pair stage belong to the proxy. *)
let subject_address s =
  match String.index_opt s '-' with
  | Some i when i + 1 < String.length s && s.[i + 1] = '>' -> String.sub s 0 i
  | _ -> s

let subscribe_counters daemon_counters analyzer =
  Analyzer.subscribe analyzer (function
    | Engine.Stage_finished { subject; timing; _ } ->
        let key = subject_address subject in
        let api0, steps0 =
          Option.value ~default:(0, 0) (Hashtbl.find_opt daemon_counters key)
        in
        Hashtbl.replace daemon_counters key
          ( api0 + timing.Engine.t_api_calls,
            steps0 + timing.Engine.t_steps )
    | _ -> ())

let drain_into_store t =
  let results = Analyzer.drain_results t.analyzer in
  List.iter
    (fun (r : Analysis.contract_report) ->
      let key = Address.to_hex r.Analysis.r_address in
      let api, steps =
        Option.value ~default:(0, 0) (Hashtbl.find_opt t.counters key)
      in
      Store.upsert t.store
        { Store.e_report = r; e_api_calls = api; e_steps = steps })
    results;
  Hashtbl.reset t.counters;
  List.length results

(* ------------------------------------------------------------------ *)
(* Snapshots                                                            *)
(* ------------------------------------------------------------------ *)

let snapshot_json t =
  Report.Schema.stamp ~kind:snapshot_kind
    (Json.Obj
       [
         ("advances", Json.Int (Advance.applied t.advancer));
         ("height", Json.Int (Chain.height t.landscape.Generate.chain));
         ("analyzer", Analyzer.checkpoint t.analyzer);
         ( "entries",
           Json.List (List.map Store.entry_to_json (Store.entries t.store)) );
       ])

let commit_snapshot t =
  match t.journal with
  | None -> ()
  | Some j -> (
      let payload = Json.to_string ~pretty:false (snapshot_json t) in
      match Journal.checkpoint j payload with
      | Ok () ->
          Obs.Flight.record t.flight "journal_commit"
            ~fields:
              [
                ("advances", Json.Int (Advance.applied t.advancer));
                ("bytes", Json.Int (String.length payload));
              ]
      | Error e -> failwith ("journal checkpoint failed: " ^ e))

(* ------------------------------------------------------------------ *)
(* Construction                                                         *)
(* ------------------------------------------------------------------ *)

let make_metrics registry =
  {
    m_requests =
      Metrics.counter registry ~help:"Requests served, by method"
        "proxion_serve_requests_total";
    m_errors =
      Metrics.counter registry ~help:"Error responses, by method"
        "proxion_serve_errors_total";
    m_latency =
      Metrics.histogram registry ~volatile:true
        ~help:"Request handling latency (seconds), by method"
        ~buckets:[ 0.0001; 0.0005; 0.001; 0.005; 0.025; 0.1; 0.5; 2.0 ]
        "proxion_serve_request_seconds";
    m_inflight =
      Metrics.gauge registry ~volatile:true
        ~help:"Requests currently in flight" "proxion_serve_inflight_requests";
    m_connections =
      Metrics.counter registry ~help:"Connections accepted"
        "proxion_serve_connections_total";
    m_increments =
      Metrics.counter registry ~help:"Incremental advances applied"
        "proxion_serve_increments_total";
    m_dirty =
      Metrics.counter registry ~help:"Subjects re-analyzed by increments"
        "proxion_serve_dirty_subjects_total";
    m_reorgs =
      Metrics.counter registry ~help:"Chain reorganizations rolled back"
        "proxion_serve_reorgs_total";
    m_retracted =
      Metrics.counter registry
        ~help:"Findings retracted because their deployment was orphaned"
        "proxion_serve_retracted_findings_total";
    m_open =
      Metrics.gauge registry ~volatile:true
        ~help:"Client connections currently open"
        "proxion_serve_open_connections";
    m_shed_conns =
      Metrics.counter registry
        ~help:"Connections shed by the admission gate, by reason"
        "proxion_serve_shed_connections_total";
    m_shed_reqs =
      Metrics.counter registry
        ~help:"Requests shed after parse, by method and reason"
        "proxion_serve_shed_requests_total";
    m_deadline =
      Metrics.counter registry
        ~help:"Requests that exceeded their deadline budget, by method"
        "proxion_serve_deadline_exceeded_total";
    m_ready =
      Metrics.gauge registry
        ~help:"Readiness: 1 when the store is loaded and not draining"
        "proxion_serve_ready";
    m_draining =
      Metrics.gauge registry ~help:"1 while the daemon is draining"
        "proxion_serve_draining";
  }

let ( let* ) = Result.bind

let parse_snapshot payload =
  let* json = Json.parse payload in
  let* json = Report.Schema.check ~kind:snapshot_kind json in
  let get name =
    match json with
    | Json.Obj kvs -> (
        match List.assoc_opt name kvs with
        | Some v -> Ok v
        | None -> Error (Printf.sprintf "snapshot: missing %S" name))
    | _ -> Error "snapshot: expected an object"
  in
  let int name =
    match get name with
    | Ok (Json.Int n) -> Ok n
    | Ok _ -> Error (Printf.sprintf "snapshot: bad %S" name)
    | Error e -> Error e
  in
  let* advances = int "advances" in
  let* height = int "height" in
  let* analyzer = get "analyzer" in
  let* entries =
    match get "entries" with
    | Ok (Json.List l) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | e :: rest ->
              let* entry = Store.entry_of_json e in
              go (entry :: acc) rest
        in
        go [] l
    | Ok _ -> Error "snapshot: bad \"entries\""
    | Error e -> Error e
  in
  Ok (advances, height, analyzer, entries)

(* Breaker flips and quorum quarantines reach the flight recorder
   straight from the transport layer, whatever worker domain produced
   them — the ring's lock is the only synchronization needed. *)
let transport_flight flight (ev : Resilience.Transport.event) =
  match ev with
  | Resilience.Transport.Circuit_opened { endpoint; failures } ->
      Obs.Flight.record flight "breaker_open"
        ~fields:
          [
            ("endpoint", Json.String endpoint);
            ("failures", Json.Int failures);
          ]
  | Resilience.Transport.Circuit_closed { endpoint } ->
      Obs.Flight.record flight "breaker_close"
        ~fields:[ ("endpoint", Json.String endpoint) ]
  | Resilience.Transport.Quorum_disagreement { meth; endpoint } ->
      Obs.Flight.record flight "quorum_quarantine"
        ~fields:
          [ ("method", Json.String meth); ("endpoint", Json.String endpoint) ]
  | Resilience.Transport.Hedged { meth; primary; secondary } ->
      Obs.Flight.record flight "hedge"
        ~fields:
          [
            ("method", Json.String meth);
            ("primary", Json.String primary);
            ("secondary", Json.String secondary);
          ]
  | Resilience.Transport.Retry _ | Resilience.Transport.Dispatched _ -> ()

let create ?(config = Config.default) ?registry ?log ?trace landscape =
  let* config =
    Result.map_error Report.Validate.to_string (Config.validate config)
  in
  let registry = match registry with Some r -> r | None -> Metrics.create () in
  let chain = landscape.Generate.chain in
  let source = landscape.Generate.source_of in
  let advancer =
    Advance.create ~seed:config.Config.advance_seed
      ~spec:config.Config.advance_spec landscape
  in
  let* journal_and_state =
    match config.Config.journal with
    | None -> Ok (None, None)
    | Some path ->
        let* j, recovery =
          Journal.open_journal ~fsync:config.Config.journal_fsync path
        in
        Ok (Some j, recovery.Journal.rec_state)
  in
  let journal, rec_state = journal_and_state in
  let fams = make_metrics registry in
  let finish analyzer store was_recovered =
    let t =
      {
        cfg = config;
        landscape;
        analyzer;
        store;
        advancer;
        journal;
        registry;
        log;
        trace;
        flight =
          Obs.Flight.create ~clock:config.Config.clock
            ~capacity:config.Config.flight_capacity ();
        trace_gen = Obs.Trace.gen ~seed:config.Config.trace_seed;
        fams;
        obs_lock = Mutex.create ();
        advance_lock = Mutex.create ();
        counters = Hashtbl.create 1024;
        reorg_log = [];
        uc = Atomic.make 0;
        inflight = Atomic.make 0;
        open_conns = Atomic.make 0;
        workers_done = Atomic.make 0;
        was_recovered;
        listen_fd = None;
        bound_port = 0;
        chan = Engine.Task_channel.create ();
        listener = None;
        workers = [];
        stop_requested = Atomic.make false;
        draining = Atomic.make false;
        stopped = false;
        lifecycle = Mutex.create ();
      }
    in
    Atomic.set t.uc (Analyzer.unique_codes analyzer);
    Analyzer.set_transport_observer analyzer (Some (transport_flight t.flight));
    Metrics.set registry fams.m_ready 1.0;
    Metrics.set registry fams.m_draining 0.0;
    t
  in
  match rec_state with
  | Some payload ->
      (* Warm start: replay the scripted advances onto the regenerated
         landscape — capturing any seeded reorgs they carry, so the
         rollback history survives a crash — then restore analyzer and
         store from the snapshot, no re-analysis. *)
      let* advances, height, analyzer_json, entries = parse_snapshot payload in
      let replayed_reorgs = ref [] in
      for _ = 1 to advances do
        let s = Advance.apply advancer in
        match s.Advance.a_reorg with
        | Some rg -> replayed_reorgs := (s.Advance.a_index, rg) :: !replayed_reorgs
        | None -> ()
      done;
      if Chain.height chain <> height then
        Error
          (Printf.sprintf
             "journal snapshot height %d does not match replayed chain \
              height %d (different landscape?)"
             height (Chain.height chain))
      else
        let* analyzer =
          Analyzer.restore ~resilience:config.Config.resilience ~chain ~source
            analyzer_json
        in
        let store = Store.create () in
        List.iter (Store.upsert store) entries;
        Store.set_generation store advances;
        let t = finish analyzer store true in
        t.reorg_log <- !replayed_reorgs;
        subscribe_counters t.counters analyzer;
        Analyzer.instrument ?trace t.registry analyzer;
        Analyzer.refresh_head analyzer;
        ignore (Analyzer.drain_results analyzer);
        logf t Obs.Log.Info
          (Printf.sprintf "recovered warm: %d subjects, %d advances"
             (Store.size store) advances);
        Ok t
  | None ->
      (* Cold start: full landscape analysis on the resident analyzer. *)
      let analyzer =
        Analyzer.create ~config:config.Config.analysis
          ~resilience:config.Config.resilience ~chain ~source ()
      in
      let store = Store.create () in
      let t = finish analyzer store false in
      subscribe_counters t.counters analyzer;
      Analyzer.instrument ?trace t.registry analyzer;
      Analyzer.submit_all analyzer;
      Analyzer.run analyzer;
      let n = drain_into_store t in
      Atomic.set t.uc (Analyzer.unique_codes analyzer);
      logf t Obs.Log.Info
        (Printf.sprintf "initial analysis complete: %d subjects" n);
      commit_snapshot t;
      Ok t

(* ------------------------------------------------------------------ *)
(* Incremental advances                                                 *)
(* ------------------------------------------------------------------ *)

type advance_result = {
  adv_summary : Advance.summary;
  adv_dirty : int;
  adv_new : int;
  adv_retracted : int;
}

let advance ?ctx t =
  Mutex.lock t.advance_lock;
  Analyzer.set_request_ctx t.analyzer ctx;
  Fun.protect
    ~finally:(fun () ->
      Analyzer.set_request_ctx t.analyzer None;
      Mutex.unlock t.advance_lock)
    (fun () ->
      let summary = Advance.apply t.advancer in
      Analyzer.refresh_head t.analyzer;
      let reports = Store.reports t.store in
      let orphaned, reverted =
        match summary.Advance.a_reorg with
        | None -> ([], [])
        | Some rg -> (rg.Advance.rg_orphaned, rg.Advance.rg_reverted_writes)
      in
      (* Dirtiness is computed over the PRE-retraction report set: an
         orphaned deployment may have been the dedup owner of a code
         hash shared with surviving twins, and only its still-stored
         report can propagate that hash into the dirty set. *)
      let writes = summary.Advance.a_writes @ reverted @ orphaned in
      let dirty = Tracker.dirty ~reports ~writes in
      List.iter
        (Analyzer.invalidate_code_hash t.analyzer)
        (Tracker.invalidation_hashes ~dirty);
      (* Retract orphans: their deployments are no longer canonical.
         Findings retracted = the verdict-count delta of the removals. *)
      let retracted =
        if orphaned = [] then 0
        else begin
          let uc = unique_codes t in
          let before = List.length (Store.findings t.store ~unique_codes:uc) in
          List.iter (fun a -> ignore (Store.remove t.store a)) orphaned;
          let after = List.length (Store.findings t.store ~unique_codes:uc) in
          max 0 (before - after)
        end
      in
      let is_orphan a = List.exists (Address.equal a) orphaned in
      let dirty_addrs =
        List.filter_map
          (fun (r : Analysis.contract_report) ->
            if is_orphan r.Analysis.r_address then None
            else Some r.Analysis.r_address)
          dirty
      in
      Analyzer.submit t.analyzer
        (dirty_addrs @ summary.Advance.a_new_contracts);
      Analyzer.run t.analyzer;
      ignore (drain_into_store t);
      Atomic.set t.uc (Analyzer.unique_codes t.analyzer);
      Store.bump_generation t.store;
      commit_snapshot t;
      Metrics.inc t.registry t.fams.m_increments;
      Metrics.inc
        ~by:(float_of_int (List.length dirty_addrs))
        t.registry t.fams.m_dirty;
      (match summary.Advance.a_reorg with
      | None -> ()
      | Some rg ->
          t.reorg_log <- (summary.Advance.a_index, rg) :: t.reorg_log;
          Obs.Flight.record t.flight "reorg"
            ~fields:
              [
                ("advance", Json.Int summary.Advance.a_index);
                ("depth", Json.Int rg.Advance.rg_depth);
                ("rollback_to", Json.Int rg.Advance.rg_rollback_to);
                ("orphaned", Json.Int (List.length rg.Advance.rg_orphaned));
                ("retracted", Json.Int retracted);
              ];
          Metrics.inc t.registry t.fams.m_reorgs;
          Metrics.inc
            ~by:(float_of_int retracted)
            t.registry t.fams.m_retracted;
          logf t Obs.Log.Warn
            (Printf.sprintf
               "reorg at advance %d: depth %d, rolled back to height %d, %d \
                orphaned, %d findings retracted"
               summary.Advance.a_index rg.Advance.rg_depth
               rg.Advance.rg_rollback_to
               (List.length rg.Advance.rg_orphaned)
               retracted));
      Obs.Flight.record t.flight "advance"
        ~fields:
          [
            ("index", Json.Int summary.Advance.a_index);
            ("height", Json.Int summary.Advance.a_height);
            ("dirty", Json.Int (List.length dirty_addrs));
            ("new", Json.Int (List.length summary.Advance.a_new_contracts));
          ];
      logf t Obs.Log.Info
        (Printf.sprintf "advance %d: %d dirty, %d new, height %d"
           summary.Advance.a_index (List.length dirty_addrs)
           (List.length summary.Advance.a_new_contracts)
           summary.Advance.a_height);
      {
        adv_summary = summary;
        adv_dirty = List.length dirty_addrs;
        adv_new = List.length summary.Advance.a_new_contracts;
        adv_retracted = retracted;
      })

(* ------------------------------------------------------------------ *)
(* Query dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let param params name =
  match params with
  | Json.Obj kvs -> List.assoc_opt name kvs
  | _ -> None

let int_param ?default params name =
  match param params name with
  | Some (Json.Int n) -> Ok (Some n)
  | Some _ ->
      Error
        {
          Wire.code = Wire.err_invalid_params;
          message = Printf.sprintf "%s must be an integer" name;
        }
  | None -> Ok default

let address_param params =
  match param params "address" with
  | Some (Json.String s) -> (
      match Hexutil.of_hex_opt s with
      | Some b when String.length b = 20 -> Ok (Address.of_hex s)
      | _ ->
          Error
            {
              Wire.code = Wire.err_invalid_params;
              message = "address must be 20 bytes of 0x-hex";
            })
  | Some _ | None ->
      Error
        {
          Wire.code = Wire.err_invalid_params;
          message = "missing string parameter \"address\"";
        }

let entry_for t params =
  let* addr = address_param params in
  match Store.find t.store addr with
  | Some e -> Ok (addr, e)
  | None ->
      Error
        {
          Wire.code = Wire.err_unknown_address;
          message = "address not in the analyzed population";
        }

let severity_of_string s =
  let open Findings in
  match String.lowercase_ascii s with
  | "critical" -> Some Critical
  | "high" -> Some High
  | "medium" -> Some Medium
  | "info" -> Some Info
  | _ -> None

let severity_rank = function
  | Findings.Critical -> 3
  | Findings.High -> 2
  | Findings.Medium -> 1
  | Findings.Info -> 0

let rec take n = function
  | [] -> []
  | _ when n <= 0 -> []
  | x :: rest -> x :: take (n - 1) rest

let rec drop n = function
  | l when n <= 0 -> l
  | [] -> []
  | _ :: rest -> drop (n - 1) rest

(* Deadline budgets: [deadline] is an absolute time on the config clock;
   [None] (direct library calls) means no budget. *)
let deadline_passed t = function
  | None -> false
  | Some d -> Obs.Clock.now t.cfg.Config.clock >= d

let deadline_error =
  {
    Wire.code = Wire.err_deadline_exceeded;
    message = "request deadline exceeded";
  }

let handle_get_status t =
  let report = Store.report t.store ~unique_codes:(unique_codes t) in
  let stats = report.Analysis.stats in
  Ok
    (Json.Obj
       [
         ("contracts", Json.Int stats.Analysis.s_analyzed);
         ("proxies", Json.Int stats.Analysis.s_proxies);
         ("unique_codes", Json.Int stats.Analysis.s_unique_codes);
         ("height", Json.Int (Chain.height t.landscape.Generate.chain));
         ("advances", Json.Int (advances_applied t));
         ("generation", Json.Int (Store.generation t.store));
         ("recovered", Json.Bool t.was_recovered);
       ])

let handle_health t =
  Ok
    (Json.Obj
       [
         ("status", Json.String "ok");
         ("draining", Json.Bool (Atomic.get t.draining));
       ])

let handle_ready t =
  let loaded = Store.size t.store > 0 in
  let ready = loaded && not (Atomic.get t.draining) in
  Ok
    (Json.Obj
       [
         ("ready", Json.Bool ready);
         ("store_loaded", Json.Bool loaded);
         ("draining", Json.Bool (Atomic.get t.draining));
         ("subjects", Json.Int (Store.size t.store));
       ])

let handle_is_proxy t params =
  let* addr, e = entry_for t params in
  let r = e.Store.e_report in
  Ok
    (Json.Obj
       [
         ("address", Json.String (Address.to_hex addr));
         ( "is_proxy",
           Json.Bool (Proxion.Proxy_detect.is_proxy r.Analysis.r_detection) );
         ("detection", Serialize.detection_to_json r.Analysis.r_detection);
         ( "standard",
           match r.Analysis.r_standard with
           | Some s ->
               Json.String (Proxion.Standard_classify.to_string s)
           | None -> Json.Null );
         ("dedup_hit", Json.Bool r.Analysis.r_dedup_hit);
       ])

let handle_logic_history t params =
  let* addr, e = entry_for t params in
  let r = e.Store.e_report in
  Ok
    (Json.Obj
       [
         ("address", Json.String (Address.to_hex addr));
         ( "resolution",
           match r.Analysis.r_resolution with
           | Some res -> Serialize.resolution_to_json res
           | None -> Json.Null );
       ])

let handle_collisions t params =
  let* addr, e = entry_for t params in
  let r = e.Store.e_report in
  Ok
    (Json.Obj
       [
         ("address", Json.String (Address.to_hex addr));
         ( "pairs",
           Json.List
             (List.map Serialize.pair_report_to_json r.Analysis.r_pairs) );
       ])

let handle_list_findings t params =
  let* offset = int_param ~default:0 params "offset" in
  let* limit = int_param ~default:50 params "limit" in
  let offset = max 0 (Option.value ~default:0 offset) in
  let limit = min 500 (max 0 (Option.value ~default:50 limit)) in
  let* sev_filter =
    match param params "severity" with
    | Some (Json.String s) -> (
        match severity_of_string s with
        | Some sev -> Ok (Some (`Exact sev))
        | None ->
            Error
              {
                Wire.code = Wire.err_invalid_params;
                message = "severity must be critical|high|medium|info";
              })
    | Some _ ->
        Error
          {
            Wire.code = Wire.err_invalid_params;
            message = "severity must be a string";
          }
    | None -> (
        match param params "min_severity" with
        | Some (Json.String s) -> (
            match severity_of_string s with
            | Some sev -> Ok (Some (`Min sev))
            | None ->
                Error
                  {
                    Wire.code = Wire.err_invalid_params;
                    message = "min_severity must be critical|high|medium|info";
                  })
        | Some _ ->
            Error
              {
                Wire.code = Wire.err_invalid_params;
                message = "min_severity must be a string";
              }
        | None -> Ok None)
  in
  let all = Store.findings t.store ~unique_codes:(unique_codes t) in
  let filtered =
    match sev_filter with
    | None -> all
    | Some (`Exact sev) ->
        List.filter (fun f -> f.Findings.f_severity = sev) all
    | Some (`Min sev) ->
        List.filter
          (fun f -> severity_rank f.Findings.f_severity >= severity_rank sev)
          all
  in
  let page = take limit (drop offset filtered) in
  Ok
    (Json.Obj
       [
         ("total", Json.Int (List.length filtered));
         ("offset", Json.Int offset);
         ("count", Json.Int (List.length page));
         ("findings", Findings.to_json page);
       ])

let handle_report t =
  Ok (Serialize.report_to_json (Store.report t.store ~unique_codes:(unique_codes t)))

let handle_metrics t params =
  match param params "format" with
  | None | Some (Json.String "prometheus") ->
      Ok (Json.String (Metrics.to_prometheus t.registry))
  | Some (Json.String "json") -> Ok (Metrics.to_json t.registry)
  | Some _ ->
      Error
        {
          Wire.code = Wire.err_invalid_params;
          message = "format must be \"prometheus\" or \"json\"";
        }

(* shutdown, not close: close(2) does not wake a thread blocked in
   accept(2), shutdown(2) does.  The listener closes the descriptor
   itself when its loop exits. *)
let wake_listener t =
  match t.listen_fd with
  | Some fd -> (
      try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
  | None -> ()

(* Drain: readiness flips before anything else, so an orchestrator
   watching [ready] reroutes traffic before connections start bouncing.
   The listener keeps accepting but sheds every connection with the
   structured overloaded error until {!stop} tears it down.  Idempotent
   and safe from a signal handler. *)
let request_drain t =
  if not (Atomic.exchange t.draining true) then begin
    Metrics.set t.registry t.fams.m_ready 0.0;
    Metrics.set t.registry t.fams.m_draining 1.0;
    Obs.Flight.record t.flight "drain";
    logf t Obs.Log.Info "draining: refusing new work, finishing in-flight";
    dump_flight t
  end

let request_stop t =
  Atomic.set t.stop_requested true;
  request_drain t;
  wake_listener t

let reorg_to_json (index, rg) =
  let addrs l = Json.List (List.map (fun a -> Json.String (Address.to_hex a)) l) in
  Json.Obj
    [
      ("advance", Json.Int index);
      ("depth", Json.Int rg.Advance.rg_depth);
      ("rollback_to", Json.Int rg.Advance.rg_rollback_to);
      ("orphaned", addrs rg.Advance.rg_orphaned);
      ("reverted_writes", addrs rg.Advance.rg_reverted_writes);
    ]

let handle_reorgs t =
  Mutex.lock t.advance_lock;
  let log = t.reorg_log in
  Mutex.unlock t.advance_lock;
  Ok
    (Json.Obj
       [
         ("count", Json.Int (List.length log));
         ("reorgs", Json.List (List.rev_map reorg_to_json log));
       ])

let handle_advance t ~deadline ?ctx params =
  let* count = int_param ~default:1 params "count" in
  let count = min 64 (max 1 (Option.value ~default:1 count)) in
  let dirty = ref 0 and fresh = ref 0 and last = ref None in
  let reorgs = ref 0 and retracted = ref 0 in
  let applied = ref 0 in
  (try
     for _ = 1 to count do
       if deadline_passed t deadline then raise Exit;
       let r = advance ?ctx t in
       incr applied;
       dirty := !dirty + r.adv_dirty;
       fresh := !fresh + r.adv_new;
       retracted := !retracted + r.adv_retracted;
       (match r.adv_summary.Advance.a_reorg with
       | Some _ -> incr reorgs
       | None -> ());
       last := Some r
     done
   with Exit -> ());
  if !applied < count then
    Error
      {
        Wire.code = Wire.err_deadline_exceeded;
        message =
          Printf.sprintf
            "deadline exceeded after %d of %d advances (the %d applied are \
             committed)"
            !applied count !applied;
      }
  else
    let height =
      match !last with
      | Some r -> r.adv_summary.Advance.a_height
      | None -> Chain.height t.landscape.Generate.chain
    in
    Ok
      (Json.Obj
         [
           ("applied", Json.Int count);
           ("advances", Json.Int (advances_applied t));
           ("height", Json.Int height);
           ("dirty", Json.Int !dirty);
           ("new_contracts", Json.Int !fresh);
           ("reorgs", Json.Int !reorgs);
           ("retracted_findings", Json.Int !retracted);
         ])

(* Live re-analysis of one subject under the request's trace context.
   The subject's dedup entry is dropped first so detection actually
   re-runs — archive endpoint attempts (quorum votes, hedges) and EVM
   frames all execute inside the request span instead of short-circuiting
   on the cache.  The fresh report is returned to the caller and then
   DISCARDED: the resident store must stay byte-identical to a daemon
   that never saw this query (a dedup twin's fresh report would
   otherwise flip its [r_dedup_hit]), so queries are observably
   side-effect-free. *)
let handle_query t ~deadline ?ctx params =
  let* addr, e = entry_for t params in
  if deadline_passed t deadline then Error deadline_error
  else begin
    Mutex.lock t.advance_lock;
    Analyzer.set_request_ctx t.analyzer ctx;
    Fun.protect
      ~finally:(fun () ->
        Analyzer.set_request_ctx t.analyzer None;
        Mutex.unlock t.advance_lock)
      (fun () ->
        Analyzer.invalidate_code_hash t.analyzer
          e.Store.e_report.Analysis.r_code_hash;
        Analyzer.submit t.analyzer [ addr ];
        Analyzer.run t.analyzer;
        let fresh =
          List.find_opt
            (fun (r : Analysis.contract_report) ->
              Address.equal r.Analysis.r_address addr)
            (Analyzer.drain_results t.analyzer)
        in
        Hashtbl.reset t.counters;
        Atomic.set t.uc (Analyzer.unique_codes t.analyzer);
        match fresh with
        | None ->
            Error
              {
                Wire.code = Wire.err_internal;
                message = "live re-analysis produced no report";
              }
        | Some r ->
            Ok
              (Json.Obj
                 ([
                    ("address", Json.String (Address.to_hex addr));
                    ("live", Json.Bool true);
                    ("report", Serialize.contract_report_to_json r);
                  ]
                 @
                 match ctx with
                 | None -> []
                 | Some c ->
                     [
                       ( "trace_id",
                         Json.String (Obs.Trace.id_to_hex c.Obs.Trace.trace_id)
                       );
                     ])))
  end

let handle_flight t params =
  let* limit = int_param params "limit" in
  Ok (Obs.Flight.to_json ?limit t.flight)

(* Methods a draining daemon still answers: the health surface (so
   orchestrators can watch the drain), metrics scrapes, the flight
   recorder (post-incident triage is exactly when it is wanted), and a
   repeated shutdown.  Everything else is shed with a structured
   error. *)
let allowed_while_draining = function
  | "health" | "ready" | "metrics" | "flight" | "shutdown" -> true
  | _ -> false

let dispatch t ~deadline ?ctx meth params =
  if Atomic.get t.draining && not (allowed_while_draining meth) then
    Error
      {
        Wire.code = Wire.err_overloaded;
        message = "daemon is draining; request shed";
      }
  else if deadline_passed t deadline then Error deadline_error
  else
    match meth with
    | "get_status" -> handle_get_status t
    | "health" -> handle_health t
    | "ready" -> handle_ready t
    | "is_proxy" -> handle_is_proxy t params
    | "logic_history" -> handle_logic_history t params
    | "collisions" -> handle_collisions t params
    | "list_findings" -> handle_list_findings t params
    | "report" -> handle_report t
    | "metrics" -> handle_metrics t params
    | "advance" -> handle_advance t ~deadline ?ctx params
    | "query" -> handle_query t ~deadline ?ctx params
    | "flight" -> handle_flight t params
    | "reorgs" -> handle_reorgs t
    | "shutdown" ->
        request_drain t;
        Ok
          (Json.Obj
             [ ("stopping", Json.Bool true); ("draining", Json.Bool true) ])
    | _ ->
        Error
          {
            Wire.code = Wire.err_method_not_found;
            message = Printf.sprintf "unknown method %S" meth;
          }

(* Every request gets a trace context: either adopted from the wire
   (the server span becomes a child of the client's, so cross-process
   traces join on trace_id) or drawn from the daemon's seeded
   generator.  The context exists even when no trace collector is
   attached — it still names the request in the flight recorder, the
   access log and the latency exemplars. *)
let request_span_ctx t (req : Wire.request) =
  match req.Wire.rq_trace with
  | Some tc -> (
      match
        ( Obs.Trace.id_of_hex tc.Wire.tc_trace_id,
          Obs.Trace.id_of_hex tc.Wire.tc_span_id )
      with
      | Some trace_id, Some span_id ->
          let client = { Obs.Trace.trace_id; span_id } in
          (Obs.Trace.child client ~index:0, Some client)
      | _ -> (Obs.Trace.next_ctx t.trace_gen, None))
  | None -> (Obs.Trace.next_ctx t.trace_gen, None)

let handle_traced ?deadline t payload =
  match Wire.request_of_string payload with
  | Error err -> (None, None, Wire.response_error ~id:Json.Null err)
  | Ok req -> (
      let id = req.Wire.rq_id in
      let meth = req.Wire.rq_method in
      let ctx, parent_ctx = request_span_ctx t req in
      let sp =
        match t.trace with
        | None -> None
        | Some tr ->
            Some (Obs.Trace.start_span ~cat:"request" ?parent_ctx ~ctx tr meth)
      in
      let finish ~ok response =
        (match sp with
        | None -> ()
        | Some sp ->
            Obs.Trace.finish_span
              ~args:[ ("method", Json.String meth); ("ok", Json.Bool ok) ]
              sp);
        ( Some meth,
          Some (Obs.Trace.id_to_hex ctx.Obs.Trace.trace_id),
          response )
      in
      match dispatch t ~deadline ~ctx meth req.Wire.rq_params with
      | Ok result -> finish ~ok:true (Wire.response_ok ~id result)
      | Error err -> finish ~ok:false (Wire.response_error ~id err)
      | exception e ->
          finish ~ok:false
            (Wire.response_error ~id
               {
                 Wire.code = Wire.err_internal;
                 message = Printexc.to_string e;
               }))

let handle ?deadline t payload =
  let meth, _trace_id, response = handle_traced ?deadline t payload in
  (meth, response)

(* ------------------------------------------------------------------ *)
(* Serving                                                              *)
(* ------------------------------------------------------------------ *)

let access_log t meth ?trace_id ~ok ~bytes_in ~bytes_out ~elapsed () =
  match t.log with
  | None -> ()
  | Some log ->
      Mutex.lock t.obs_lock;
      Obs.Log.log log ~component:"serve"
        ~fields:
          ([
             ("method", Json.String (Option.value ~default:"?" meth));
             ("ok", Json.Bool ok);
             ("bytes_in", Json.Int bytes_in);
             ("bytes_out", Json.Int bytes_out);
             ("seconds", Json.Float elapsed);
           ]
          @
          match trace_id with
          | None -> []
          | Some id -> [ ("trace_id", Json.String id) ])
        Obs.Log.Info "request";
      Mutex.unlock t.obs_lock

let response_error_code payload =
  match Wire.response_of_string payload with
  | Ok { Wire.rs_result = Error e; _ } -> Some e.Wire.code
  | _ -> None

let observe_request t meth ~trace_id ~err ~bytes_in ~bytes_out ~elapsed =
  let name = Option.value ~default:"invalid" meth in
  let labels = [ ("method", name) ] in
  Metrics.inc ~labels t.registry t.fams.m_requests;
  (match err with
  | None -> ()
  | Some code ->
      Metrics.inc ~labels t.registry t.fams.m_errors;
      if code = Wire.err_deadline_exceeded then
        Metrics.inc ~labels t.registry t.fams.m_deadline
      else if code = Wire.err_overloaded then
        Metrics.inc
          ~labels:[ ("method", name); ("reason", "draining") ]
          t.registry t.fams.m_shed_reqs);
  (* The exemplar: the max-latency observation per method keeps its
     trace_id, so the p99 spike in a dashboard names the exact trace to
     pull from the daemon's trace file. *)
  Metrics.observe ~labels ?exemplar:trace_id t.registry t.fams.m_latency
    elapsed;
  Obs.Flight.record t.flight "request"
    ~fields:
      ([
         ("method", Json.String name);
         ("ok", Json.Bool (err = None));
         ("seconds", Json.Float elapsed);
       ]
      @
      match trace_id with
      | None -> []
      | Some id -> [ ("trace_id", Json.String id) ]);
  (match (t.cfg.Config.slow_ms, t.log) with
  | Some slow_ms, Some log when elapsed *. 1000.0 >= float_of_int slow_ms ->
      (* Slow request: emit the full span tree inline, so the log line
         alone is enough to see where the time went. *)
      let spans =
        match (t.trace, trace_id) with
        | Some tr, Some tid ->
            [ ("spans", Obs.Trace.span_tree_json tr ~trace_id:tid) ]
        | _ -> []
      in
      Mutex.lock t.obs_lock;
      Obs.Log.log log ~component:"serve"
        ~fields:
          ([
             ("method", Json.String name);
             ("seconds", Json.Float elapsed);
             ("slow_ms", Json.Int slow_ms);
           ]
          @ (match trace_id with
            | None -> []
            | Some id -> [ ("trace_id", Json.String id) ])
          @ spans)
        Obs.Log.Warn "slow request";
      Mutex.unlock t.obs_lock
  | _ -> ());
  access_log t meth ?trace_id ~ok:(err = None) ~bytes_in ~bytes_out ~elapsed ()

let close_connection t fd =
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let n = Atomic.fetch_and_add t.open_conns (-1) - 1 in
  Metrics.set t.registry t.fams.m_open (float_of_int n)

let serve_connection t fd =
  Metrics.inc t.registry t.fams.m_connections;
  let clock = t.cfg.Config.clock in
  let idle_s = float_of_int t.cfg.Config.idle_timeout_ms /. 1000.0 in
  (* SO_RCVTIMEO is the poll granularity of the idle sweep, the drain
     abort and the stop flag — not the deadline itself.  SO_SNDTIMEO is
     the write deadline: a client that never reads its responses blocks
     our write in the kernel; the timeout turns that into a dropped
     connection instead of a wedged worker. *)
  let poll_s = Float.max 0.02 (Float.min 0.25 (idle_s /. 4.0)) in
  (try
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO poll_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO idle_s
   with Unix.Unix_error _ -> ());
  let should_abort () =
    Atomic.get t.stop_requested || Atomic.get t.draining
  in
  let closed = ref false in
  while not !closed do
    (* The whole next frame — first byte to last — must arrive within
       the idle window: a slowloris trickling one byte per poll cannot
       hold the worker past it. *)
    let idle_deadline = Obs.Clock.now clock +. idle_s in
    match
      Wire.read_frame ~max_frame:t.cfg.Config.max_frame ~clock
        ~deadline:idle_deadline ~should_abort fd
    with
    | Ok payload -> (
        let up = Atomic.fetch_and_add t.inflight 1 + 1 in
        Metrics.set t.registry t.fams.m_inflight (float_of_int up);
        (* The config clock, not gettimeofday: under a virtual clock the
           measured latency — and with it the flight recorder and the
           exemplars — is deterministic. *)
        let t0 = Obs.Clock.now clock in
        let req_deadline =
          t0 +. (float_of_int t.cfg.Config.request_deadline_ms /. 1000.0)
        in
        let meth, trace_id, response =
          handle_traced ~deadline:req_deadline t payload
        in
        let elapsed = Obs.Clock.now clock -. t0 in
        let down = Atomic.fetch_and_add t.inflight (-1) - 1 in
        Metrics.set t.registry t.fams.m_inflight (float_of_int down);
        (try Wire.write_frame fd response
         with Unix.Unix_error _ -> closed := true);
        (try
           observe_request t meth ~trace_id
             ~err:(response_error_code response)
             ~bytes_in:(String.length payload)
             ~bytes_out:(String.length response) ~elapsed
         with _ ->
           (* A crash in the observability path must not kill the worker
              domain; drop the connection instead. *)
           closed := true);
        (* Draining: that response was the last on this connection. *)
        if Atomic.get t.draining then closed := true)
    | Error Wire.Closed -> closed := true
    | Error (Wire.Oversized n) ->
        (try
           Wire.write_frame fd
             (Wire.response_error ~id:Json.Null
                {
                  Wire.code = Wire.err_oversized;
                  message =
                    Printf.sprintf "frame of %d bytes exceeds limit %d" n
                      t.cfg.Config.max_frame;
                })
         with Unix.Unix_error _ -> ());
        closed := true
    | Error (Wire.Torn _) -> closed := true
    | Error Wire.Timed_out ->
        (* Idle sweep, slowloris cut, or drain/stop abort. *)
        closed := true
    | exception Unix.Unix_error _ -> closed := true
  done;
  close_connection t fd

let worker_loop t =
  let rec go () =
    match Engine.Task_channel.pop t.chan with
    | None -> ()
    | Some fd ->
        (if Atomic.get t.draining then begin
           (* Admitted before the drain flipped but never claimed by a
              worker: shed with the structured error, never silently. *)
           note_shed t ~reason:"draining";
           (try
              Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.1;
              Wire.write_frame fd
                (Wire.response_error ~id:Json.Null
                   {
                     Wire.code = Wire.err_overloaded;
                     message = "overloaded: draining";
                   })
            with Unix.Unix_error _ -> ());
           close_connection t fd
         end
         else
           try serve_connection t fd
           with e ->
             (* A worker domain must survive anything a connection
                throws at it; the flight dump preserves the events
                leading up to the crash. *)
             Obs.Flight.record t.flight "worker_crash"
               ~fields:[ ("exn", Json.String (Printexc.to_string e)) ];
             dump_flight t;
             close_connection t fd);
        go ()
  in
  go ();
  Atomic.incr t.workers_done

(* The admission gate: every shed is counted and answered with a
   structured [overloaded] error — never a silent drop.  The policy is
   reject-newest: connections already accepted keep their place; the
   arriving one is turned away, which is deterministic in arrival
   order. *)
let shed_connection t fd ~reason =
  note_shed t ~reason;
  (try
     (* Best effort, and never blocking the listener: the reply is a few
        hundred bytes (fits any socket buffer) and the send timeout
        bounds a pathological peer. *)
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.1;
     Wire.write_frame fd
       (Wire.response_error ~id:Json.Null
          {
            Wire.code = Wire.err_overloaded;
            message = "overloaded: " ^ reason;
          })
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t fd =
  let continue = ref true in
  while !continue do
    match Unix.accept fd with
    | client, _ ->
        if Atomic.get t.draining then
          shed_connection t client ~reason:"draining"
        else if Atomic.get t.open_conns >= t.cfg.Config.max_conns then
          shed_connection t client ~reason:"max_conns"
        else if
          Engine.Task_channel.length t.chan >= t.cfg.Config.queue_limit
        then shed_connection t client ~reason:"queue_full"
        else begin
          let n = Atomic.fetch_and_add t.open_conns 1 + 1 in
          Metrics.set t.registry t.fams.m_open (float_of_int n);
          Engine.Task_channel.push t.chan client
        end
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ -> continue := false
  done;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Engine.Task_channel.close t.chan

let port t = t.bound_port

let start t =
  match t.listen_fd with
  | Some _ -> Error "already started"
  | None -> (
      match Unix.inet_addr_of_string t.cfg.Config.host with
      | exception Failure _ ->
          Error (Printf.sprintf "bad host %S" t.cfg.Config.host)
      | addr -> (
          (* A client closing mid-response turns the write into EPIPE —
             an error we catch — only if SIGPIPE cannot kill the process
             first. *)
          (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
           with Invalid_argument _ | Sys_error _ -> ());
          let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          try
            Unix.setsockopt fd Unix.SO_REUSEADDR true;
            Unix.bind fd (Unix.ADDR_INET (addr, t.cfg.Config.port));
            Unix.listen fd t.cfg.Config.backlog;
            (match Unix.getsockname fd with
            | Unix.ADDR_INET (_, p) -> t.bound_port <- p
            | _ -> ());
            t.listen_fd <- Some fd;
            t.workers <-
              List.init t.cfg.Config.workers (fun _ ->
                  Domain.spawn (fun () -> worker_loop t));
            t.listener <- Some (Domain.spawn (fun () -> accept_loop t fd));
            logf t Obs.Log.Info
              (Printf.sprintf "listening on %s:%d (%d workers)"
                 t.cfg.Config.host t.bound_port t.cfg.Config.workers);
            Ok ()
          with Unix.Unix_error (e, _, _) ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            Error (Unix.error_message e)))

let stop t =
  request_drain t;
  wake_listener t;
  Mutex.lock t.lifecycle;
  let already = t.stopped in
  if not already then t.stopped <- true;
  Mutex.unlock t.lifecycle;
  if not already then begin
    (match t.listener with
    | Some d ->
        Domain.join d;
        t.listener <- None;
        t.listen_fd <- None
    | None -> Engine.Task_channel.close t.chan);
    (* Grace window: workers finish (or deadline-out) their in-flight
       requests and drain any queued connections, each answered with a
       structured shed error.  Past the grace, the hard stop flag cuts
       even a half-read frame at the next poll wakeup, so the joins
       below are bounded. *)
    let nworkers = List.length t.workers in
    let grace_s = float_of_int t.cfg.Config.drain_grace_ms /. 1000.0 in
    let t0 = Unix.gettimeofday () in
    while
      Atomic.get t.workers_done < nworkers
      && Unix.gettimeofday () -. t0 < grace_s
      && not (Atomic.get t.stop_requested)
    do
      ignore (Unix.select [] [] [] 0.02)
    done;
    Atomic.set t.stop_requested true;
    List.iter Domain.join t.workers;
    t.workers <- [];
    (match t.journal with Some j -> Journal.close j | None -> ());
    (* Final dump: includes everything the drain-window dump missed —
       in-flight requests finishing, queued connections shed. *)
    dump_flight t;
    logf t Obs.Log.Info "stopped"
  end

(* Polling, not a condition wait: signal handlers only run at safepoints
   on this domain, and a thread parked in [Condition.wait] never reaches
   one — a SIGTERM handler calling {!request_drain} on the main thread
   would deadlock against its own wait.  Short interruptible sleeps let
   the handler run; worker-path drains (the [shutdown] method) are
   picked up within one tick. *)
let wait t =
  while not (Atomic.get t.stop_requested || Atomic.get t.draining) do
    try ignore (Unix.select [] [] [] 0.05) with Unix.Unix_error _ -> ()
  done;
  stop t
