module Json = Report.Json

(* ------------------------------------------------------------------ *)
(* Snapshot model                                                       *)
(* ------------------------------------------------------------------ *)

type histo = {
  h_labels : (string * string) list;
  h_buckets : (float * float) list;  (* upper bound (infinity = +Inf), cumulative count *)
  h_sum : float;
  h_count : float;
  h_exemplar : (string * float) option;
}

type view = {
  v_scalars : (string * ((string * string) list * float) list) list;
      (* family -> series, counters and gauges alike *)
  v_histos : (string * histo list) list;
  v_draining : bool;
  v_flight : (string * int) list;  (* flight event kind -> count in ring *)
  v_flight_tail : string list;  (* newest-last one-line renderings *)
}

let number = function
  | Json.Int n -> Some (float_of_int n)
  | Json.Float f -> Some f
  | _ -> None

let obj_field kvs name = List.assoc_opt name kvs

let labels_of = function
  | Some (Json.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with Json.String s -> Some (k, s) | _ -> None)
        kvs
  | _ -> []

let bucket_of = function
  | Json.Obj kvs -> (
      let le =
        match obj_field kvs "le" with
        | Some (Json.String "+Inf") -> Some infinity
        | Some v -> number v
        | None -> None
      in
      match (le, Option.bind (obj_field kvs "count") number) with
      | Some le, Some count -> Some (le, count)
      | _ -> None)
  | _ -> None

let series_of_json kind json =
  match json with
  | Json.Obj kvs -> (
      let labels = labels_of (obj_field kvs "labels") in
      match kind with
      | "histogram" ->
          let buckets =
            match obj_field kvs "buckets" with
            | Some (Json.List l) -> List.filter_map bucket_of l
            | _ -> []
          in
          let num name =
            Option.value ~default:0.0
              (Option.bind (obj_field kvs name) number)
          in
          let exemplar =
            match obj_field kvs "exemplar" with
            | Some (Json.Obj ex) -> (
                match
                  (obj_field ex "trace_id", Option.bind (obj_field ex "value") number)
                with
                | Some (Json.String id), Some v -> Some (id, v)
                | _ -> None)
            | _ -> None
          in
          `Histo
            {
              h_labels = labels;
              h_buckets = buckets;
              h_sum = num "sum";
              h_count = num "count";
              h_exemplar = exemplar;
            }
      | _ ->
          let value =
            Option.value ~default:0.0
              (Option.bind (obj_field kvs "value") number)
          in
          `Scalar (labels, value))
  | _ -> `Skip

let of_metrics_json json =
  match json with
  | Json.Obj top -> (
      match obj_field top "metrics" with
      | Some (Json.List fams) ->
          let scalars = ref [] and histos = ref [] in
          List.iter
            (fun fam ->
              match fam with
              | Json.Obj kvs -> (
                  match (obj_field kvs "name", obj_field kvs "kind") with
                  | Some (Json.String name), Some (Json.String kind) ->
                      let series =
                        match obj_field kvs "series" with
                        | Some (Json.List l) -> l
                        | _ -> []
                      in
                      let parsed = List.map (series_of_json kind) series in
                      let ss =
                        List.filter_map
                          (function `Scalar s -> Some s | _ -> None)
                          parsed
                      in
                      let hs =
                        List.filter_map
                          (function `Histo h -> Some h | _ -> None)
                          parsed
                      in
                      if ss <> [] then scalars := (name, ss) :: !scalars;
                      if hs <> [] then histos := (name, hs) :: !histos
                  | _ -> ())
              | _ -> ())
            fams;
          Ok
            {
              v_scalars = List.rev !scalars;
              v_histos = List.rev !histos;
              v_draining = false;
              v_flight = [];
              v_flight_tail = [];
            }
      | _ -> Error "metrics snapshot: missing \"metrics\" list")
  | _ -> Error "metrics snapshot: expected an object"

let with_health view json =
  match json with
  | Json.Obj kvs -> (
      match obj_field kvs "draining" with
      | Some (Json.Bool d) -> { view with v_draining = d }
      | _ -> view)
  | _ -> view

let flight_line = function
  | Json.Obj kvs ->
      let kind =
        match obj_field kvs "kind" with Some (Json.String k) -> k | _ -> "?"
      in
      let fields =
        match obj_field kvs "fields" with
        | Some (Json.Obj fs) ->
            String.concat " "
              (List.map
                 (fun (k, v) -> k ^ "=" ^ Json.to_string ~pretty:false v)
                 fs)
        | _ -> ""
      in
      Some (kind, Printf.sprintf "%-18s %s" kind fields)
  | _ -> None

let with_flight ?(tail = 8) view json =
  match json with
  | Json.Obj kvs -> (
      match obj_field kvs "events" with
      | Some (Json.List evs) ->
          let lines = List.filter_map flight_line evs in
          let counts = Hashtbl.create 16 in
          List.iter
            (fun (kind, _) ->
              Hashtbl.replace counts kind
                (1 + Option.value ~default:0 (Hashtbl.find_opt counts kind)))
            lines;
          let n = List.length lines in
          let tail_lines =
            List.filteri (fun i _ -> i >= n - tail) (List.map snd lines)
          in
          {
            view with
            v_flight =
              List.sort compare
                (Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []);
            v_flight_tail = tail_lines;
          }
      | _ -> view)
  | _ -> view

(* ------------------------------------------------------------------ *)
(* Derived quantities                                                   *)
(* ------------------------------------------------------------------ *)

let scalar_series view name =
  Option.value ~default:[] (List.assoc_opt name view.v_scalars)

let histo_series view name =
  Option.value ~default:[] (List.assoc_opt name view.v_histos)

let scalar_total view name =
  List.fold_left (fun acc (_, v) -> acc +. v) 0.0 (scalar_series view name)

let label_value labels key = List.assoc_opt key labels

(* Standard Prometheus-style quantile estimation: find the bucket the
   target rank falls in, interpolate linearly inside it. *)
let quantile h q =
  if h.h_count <= 0.0 then 0.0
  else
    let rank = q *. h.h_count in
    let rec go prev_le prev_cum = function
      | [] -> prev_le
      | (le, cum) :: rest ->
          if cum >= rank then
            if le = infinity then prev_le
            else
              let in_bucket = cum -. prev_cum in
              if in_bucket <= 0.0 then le
              else
                prev_le
                +. ((le -. prev_le) *. ((rank -. prev_cum) /. in_bucket))
          else go le cum rest
    in
    go 0.0 0.0 h.h_buckets

(* ------------------------------------------------------------------ *)
(* Rendering                                                            *)
(* ------------------------------------------------------------------ *)

let fmt_rate = function
  | r when r >= 100.0 -> Printf.sprintf "%.0f" r
  | r when r >= 1.0 -> Printf.sprintf "%.1f" r
  | r -> Printf.sprintf "%.2f" r

(* Rate of a counter between two polls; zero without a previous poll. *)
let rate ~prev ~dt view name =
  match prev with
  | Some p when dt > 0.0 ->
      Float.max 0.0 ((scalar_total view name -. scalar_total p name) /. dt)
  | _ -> 0.0

let render ?prev ?(dt = 0.0) view =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let req_rate = rate ~prev ~dt view "proxion_serve_requests_total" in
  line "proxion top — daemon %s"
    (if view.v_draining then "DRAINING" else "serving");
  line "  requests  total %.0f  rate %s/s  inflight %.0f  open conns %.0f"
    (scalar_total view "proxion_serve_requests_total")
    (fmt_rate req_rate)
    (scalar_total view "proxion_serve_inflight_requests")
    (scalar_total view "proxion_serve_open_connections");
  line "  increments %.0f  dirty %.0f  reorgs %.0f  retracted %.0f"
    (scalar_total view "proxion_serve_increments_total")
    (scalar_total view "proxion_serve_dirty_subjects_total")
    (scalar_total view "proxion_serve_reorgs_total")
    (scalar_total view "proxion_serve_retracted_findings_total");
  let sheds = scalar_series view "proxion_serve_shed_connections_total" in
  if sheds <> [] then
    line "  sheds     %s"
      (String.concat "  "
         (List.map
            (fun (labels, v) ->
              Printf.sprintf "%s=%.0f"
                (Option.value ~default:"?" (label_value labels "reason"))
                v)
            sheds));
  (* Per-method table from the latency histogram. *)
  let latency = histo_series view "proxion_serve_request_seconds" in
  if latency <> [] then begin
    line "";
    line "  %-16s %10s %9s %9s %9s  %s" "method" "count" "p50 ms" "p99 ms"
      "err" "max-latency trace";
    let errors = scalar_series view "proxion_serve_errors_total" in
    List.iter
      (fun h ->
        let meth = Option.value ~default:"?" (label_value h.h_labels "method") in
        let errs =
          List.fold_left
            (fun acc (labels, v) ->
              if label_value labels "method" = Some meth then acc +. v else acc)
            0.0 errors
        in
        line "  %-16s %10.0f %9.2f %9.2f %9.0f  %s" meth h.h_count
          (1000.0 *. quantile h 0.50)
          (1000.0 *. quantile h 0.99)
          errs
          (match h.h_exemplar with
          | Some (id, v) -> Printf.sprintf "%s (%.1f ms)" id (1000.0 *. v)
          | None -> "-"))
      latency
  end;
  (* Endpoint health from the transport counters. *)
  let attempts = scalar_series view "proxion_chain_endpoint_attempts_total" in
  if attempts <> [] then begin
    line "";
    line "  endpoints:";
    let endpoints =
      List.sort_uniq compare
        (List.filter_map
           (fun (labels, _) -> label_value labels "endpoint")
           attempts)
    in
    let sum_for name ep =
      List.fold_left
        (fun acc (labels, v) ->
          if label_value labels "endpoint" = Some ep then acc +. v else acc)
        0.0
        (scalar_series view name)
    in
    List.iter
      (fun ep ->
        line "    %-14s attempts %.0f  disagreements %.0f  hedges %.0f" ep
          (sum_for "proxion_chain_endpoint_attempts_total" ep)
          (sum_for "proxion_chain_endpoint_disagreements_total" ep)
          (sum_for "proxion_chain_endpoint_hedges_total" ep))
      endpoints
  end;
  if view.v_flight <> [] then begin
    line "";
    line "  flight ring: %s"
      (String.concat "  "
         (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) view.v_flight));
    List.iter (fun l -> line "    %s" l) view.v_flight_tail
  end;
  Buffer.contents buf
