module Json = Report.Json
module Address = Evm.Address

type stats = {
  lg_clients : int;
  lg_requests : int;
  lg_errors : int;
  lg_elapsed : float;
  lg_rps : float;
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
}

(* One client's work: a deterministic query mix keyed by (client, i). *)
let request_for ~addresses ~client i =
  let n_addr = Array.length addresses in
  match (client + i) mod 5 with
  | 0 -> ("get_status", [])
  | 1 ->
      ( "list_findings",
        [ ("offset", Json.Int (i mod 97)); ("limit", Json.Int 20) ] )
  | k ->
      let addr = addresses.((client + (31 * i)) mod n_addr) in
      let meth =
        match k with
        | 2 -> "is_proxy"
        | 3 -> "logic_history"
        | _ -> "collisions"
      in
      (meth, [ ("address", Json.String (Address.to_hex addr)) ])

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

let run ?(host = "127.0.0.1") ~port ~clients ~requests ~addresses () =
  if clients <= 0 || requests <= 0 then Error "clients and requests must be positive"
  else if addresses = [] then Error "no addresses to query"
  else begin
    let addresses = Array.of_list addresses in
    let t0 = Unix.gettimeofday () in
    let worker client () =
      match Client.connect ~host ~port () with
      | Error e -> Error e
      | Ok c ->
          let latencies = Array.make requests 0.0 in
          let errors = ref 0 in
          for i = 0 to requests - 1 do
            let meth, params = request_for ~addresses ~client i in
            let q0 = Unix.gettimeofday () in
            (match Client.call c ~meth ~params with
            | Ok _ -> ()
            | Error _ -> incr errors);
            latencies.(i) <- Unix.gettimeofday () -. q0
          done;
          Client.close c;
          Ok (latencies, !errors)
    in
    let domains =
      List.init clients (fun client -> Domain.spawn (worker client))
    in
    let outcomes = List.map Domain.join domains in
    let elapsed = Unix.gettimeofday () -. t0 in
    match
      List.find_map (function Error e -> Some e | Ok _ -> None) outcomes
    with
    | Some e -> Error ("client failed: " ^ e)
    | None ->
        let all =
          List.concat_map
            (function
              | Ok (lat, _) -> Array.to_list lat
              | Error _ -> [])
            outcomes
        in
        let errors =
          List.fold_left
            (fun acc -> function Ok (_, e) -> acc + e | Error _ -> acc)
            0 outcomes
        in
        let sorted = Array.of_list all in
        Array.sort compare sorted;
        let total = Array.length sorted in
        let ms p = 1000.0 *. percentile sorted p in
        Ok
          {
            lg_clients = clients;
            lg_requests = total;
            lg_errors = errors;
            lg_elapsed = elapsed;
            lg_rps =
              (if elapsed > 0.0 then float_of_int total /. elapsed else 0.0);
            lg_p50_ms = ms 0.50;
            lg_p90_ms = ms 0.90;
            lg_p99_ms = ms 0.99;
          }
  end

let to_json s =
  Json.Obj
    [
      ("clients", Json.Int s.lg_clients);
      ("requests", Json.Int s.lg_requests);
      ("errors", Json.Int s.lg_errors);
      ("elapsed_seconds", Json.Float s.lg_elapsed);
      ("requests_per_second", Json.Float s.lg_rps);
      ("p50_ms", Json.Float s.lg_p50_ms);
      ("p90_ms", Json.Float s.lg_p90_ms);
      ("p99_ms", Json.Float s.lg_p99_ms);
    ]
