module Json = Report.Json
module Address = Evm.Address
module Prng = Dataset.Prng

type stats = {
  lg_clients : int;
  lg_requests : int;
  lg_errors : int;
  lg_shed : int;
  lg_deadline : int;
  lg_elapsed : float;
  lg_rps : float;
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
}

(* The load generator writes to sockets the server may close under it;
   that must surface as EPIPE, not kill the benchmarking process. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

(* One client's work: a deterministic query mix keyed by (client, i). *)
let request_for ~addresses ~client i =
  let n_addr = Array.length addresses in
  match (client + i) mod 5 with
  | 0 -> ("get_status", [])
  | 1 ->
      ( "list_findings",
        [ ("offset", Json.Int (i mod 97)); ("limit", Json.Int 20) ] )
  | k ->
      let addr = addresses.((client + (31 * i)) mod n_addr) in
      let meth =
        match k with
        | 2 -> "is_proxy"
        | 3 -> "logic_history"
        | _ -> "collisions"
      in
      (meth, [ ("address", Json.String (Address.to_hex addr)) ])

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else
    let idx = int_of_float (ceil (p *. float_of_int n)) - 1 in
    sorted.(max 0 (min (n - 1) idx))

(* A well-behaved client under overload: a shed ([err_overloaded]) means
   the server closed the connection right after the reply, so back off
   briefly and retry on a fresh one, up to a bounded attempt budget. *)
let max_attempts = 64

let well_behaved_worker ~host ~port ~timeout_ms ~addresses ~requests ~client
    ~trace_gen () =
  let latencies = ref [] in
  let errors = ref 0 and sheds = ref 0 and deadlines = ref 0 in
  let conn = ref None in
  let drop_conn () =
    (match !conn with Some c -> Client.close c | None -> ());
    conn := None
  in
  let ensure () =
    match !conn with
    | Some c -> Some c
    | None -> (
        match Client.connect ~host ~timeout_ms ~port () with
        | Ok c ->
            conn := Some c;
            Some c
        | Error _ -> None)
  in
  for i = 0 to requests - 1 do
    let meth, params = request_for ~addresses ~client i in
    (* One context per logical request, drawn before any attempt: shed
       retries reuse it, so the daemon's trace shows every server-side
       span of the same request under one trace_id. *)
    let trace =
      match trace_gen with
      | None -> None
      | Some g ->
          let c = Obs.Trace.next_ctx g in
          Some
            {
              Wire.tc_trace_id = Obs.Trace.id_to_hex c.Obs.Trace.trace_id;
              tc_span_id = Obs.Trace.id_to_hex c.Obs.Trace.span_id;
            }
    in
    let rec attempt tries =
      if tries >= max_attempts then incr errors
      else
        match ensure () with
        | None ->
            Unix.sleepf 0.002;
            attempt (tries + 1)
        | Some c -> (
            let q0 = Unix.gettimeofday () in
            match Client.call_result ?trace c ~meth ~params with
            | Ok (Ok _) ->
                latencies := (Unix.gettimeofday () -. q0) :: !latencies
            | Ok (Error { Wire.code; _ }) when code = Wire.err_overloaded ->
                incr sheds;
                drop_conn ();
                Unix.sleepf 0.002;
                attempt (tries + 1)
            | Ok (Error { Wire.code; _ })
              when code = Wire.err_deadline_exceeded ->
                incr deadlines;
                incr errors
            | Ok (Error _) -> incr errors
            | Error _ ->
                drop_conn ();
                Unix.sleepf 0.002;
                attempt (tries + 1))
    in
    attempt 0
  done;
  drop_conn ();
  (Array.of_list !latencies, !errors, !sheds, !deadlines)

let run ?(host = "127.0.0.1") ?(timeout_ms = 10_000) ?trace_seed ~port ~clients
    ~requests ~addresses () =
  if clients <= 0 || requests <= 0 then
    Error "clients and requests must be positive"
  else if addresses = [] then Error "no addresses to query"
  else begin
    ignore_sigpipe ();
    let addresses = Array.of_list addresses in
    let t0 = Unix.gettimeofday () in
    let domains =
      List.init clients (fun client ->
          (* Per-client generator, offset by client index: the full set
             of trace_ids a sweep sends is a pure function of
             (trace_seed, clients, requests). *)
          let trace_gen =
            Option.map
              (fun seed -> Obs.Trace.gen ~seed:(seed + (1009 * client)))
              trace_seed
          in
          Domain.spawn
            (well_behaved_worker ~host ~port ~timeout_ms ~addresses ~requests
               ~client ~trace_gen))
    in
    let outcomes = List.map Domain.join domains in
    let elapsed = Unix.gettimeofday () -. t0 in
    let all =
      List.concat_map (fun (lat, _, _, _) -> Array.to_list lat) outcomes
    in
    let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
    let sorted = Array.of_list all in
    Array.sort compare sorted;
    let total = Array.length sorted in
    let ms p = 1000.0 *. percentile sorted p in
    Ok
      {
        lg_clients = clients;
        lg_requests = total;
        lg_errors = sum (fun (_, e, _, _) -> e);
        lg_shed = sum (fun (_, _, s, _) -> s);
        lg_deadline = sum (fun (_, _, _, d) -> d);
        lg_elapsed = elapsed;
        lg_rps = (if elapsed > 0.0 then float_of_int total /. elapsed else 0.0);
        lg_p50_ms = ms 0.50;
        lg_p90_ms = ms 0.90;
        lg_p99_ms = ms 0.99;
      }
  end

let to_json s =
  Json.Obj
    [
      ("clients", Json.Int s.lg_clients);
      ("requests", Json.Int s.lg_requests);
      ("errors", Json.Int s.lg_errors);
      ("shed", Json.Int s.lg_shed);
      ("deadline_exceeded", Json.Int s.lg_deadline);
      ("elapsed_seconds", Json.Float s.lg_elapsed);
      ("requests_per_second", Json.Float s.lg_rps);
      ("p50_ms", Json.Float s.lg_p50_ms);
      ("p90_ms", Json.Float s.lg_p90_ms);
      ("p99_ms", Json.Float s.lg_p99_ms);
    ]

(* ------------------------------------------------------------------ *)
(* Hostile personas                                                     *)
(* ------------------------------------------------------------------ *)

type persona =
  | Slow_writer
  | Half_open
  | Never_reads
  | Oversized_flooder
  | Connect_idle

let persona_name = function
  | Slow_writer -> "slow_writer"
  | Half_open -> "half_open"
  | Never_reads -> "never_reads"
  | Oversized_flooder -> "oversized_flooder"
  | Connect_idle -> "connect_idle"

let all_personas =
  [| Slow_writer; Half_open; Never_reads; Oversized_flooder; Connect_idle |]

type hostile_stats = {
  hs_attackers : int;
  hs_rounds : int;
  hs_shed : int;  (** Rounds answered with a structured [overloaded]. *)
  hs_answered : int;  (** Rounds answered with any other structured reply. *)
  hs_cut : int;  (** Rounds where the server cut (or timed out) the attack. *)
  hs_connect_failures : int;
}

let hostile_to_json h =
  Json.Obj
    [
      ("attackers", Json.Int h.hs_attackers);
      ("rounds", Json.Int h.hs_rounds);
      ("shed", Json.Int h.hs_shed);
      ("answered", Json.Int h.hs_answered);
      ("cut", Json.Int h.hs_cut);
      ("connect_failures", Json.Int h.hs_connect_failures);
    ]

(* How one attack round ended, from the attacker's point of view. *)
type round_end = R_shed | R_answered | R_cut | R_connect_failed

let read_reply fd =
  match Wire.read_frame fd with
  | Ok payload -> (
      match Wire.response_of_string payload with
      | Ok { Wire.rs_result = Error e; _ } when e.Wire.code = Wire.err_overloaded
        ->
          R_shed
      | Ok _ -> R_answered
      | Error _ -> R_cut)
  | Error _ -> R_cut
  | exception Unix.Unix_error _ -> R_cut

let write_some fd s off len =
  match Unix.write_substring fd s off len with
  | n -> Some n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> Some 0
  | exception Unix.Unix_error _ -> None

let raw_header n =
  let b = Bytes.create 4 in
  Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
  Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
  Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
  Bytes.set_uint8 b 3 (n land 0xff);
  Bytes.to_string b

(* One bounded attack round (a second or so at most: the attacker's own
   socket timeouts stop it from hanging on its victim). *)
let attack_round ~host ~port prng persona =
  match Unix.inet_addr_of_string host with
  | exception Failure _ -> R_connect_failed
  | addr -> (
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      let finish r =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        r
      in
      match Unix.connect fd (Unix.ADDR_INET (addr, port)) with
      | exception Unix.Unix_error _ -> finish R_connect_failed
      | () ->
          (try
             Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.5;
             Unix.setsockopt_float fd Unix.SO_SNDTIMEO 0.5
           with Unix.Unix_error _ -> ());
          finish
            (match persona with
            | Slow_writer ->
                (* A valid request trickled a byte at a time: without an
                   idle deadline this parks a worker for as long as the
                   attacker cares to drip. *)
                let s =
                  Wire.encode_frame
                    (Wire.request_to_string
                       ~id:(1 + Prng.int prng 1000)
                       ~meth:"get_status" ~params:[] ())
                in
                let n = String.length s in
                let rec drip i =
                  if i >= n then read_reply fd
                  else begin
                    Unix.sleepf (0.004 +. (Prng.float prng *. 0.012));
                    match write_some fd s i 1 with
                    | Some k -> drip (i + k)
                    | None -> R_cut
                  end
                in
                drip 0
            | Half_open ->
                (* Declare a frame, send a fragment, then go silent with
                   the connection open — the idle sweep must reap it. *)
                let declared = 512 + Prng.int prng 512 in
                let junk = String.make (8 + Prng.int prng 56) 'x' in
                (match write_some fd (raw_header declared) 0 4 with
                | None -> R_cut
                | Some _ -> (
                    ignore (write_some fd junk 0 (String.length junk));
                    match Wire.read_frame fd with
                    | _ -> R_cut
                    | exception Unix.Unix_error _ -> R_cut))
            | Never_reads ->
                (* Pipeline requests without ever reading a response:
                   the server's reply buffer fills and its write
                   deadline must cut us, not wedge the worker. *)
                let s =
                  Wire.encode_frame
                    (Wire.request_to_string ~id:1 ~meth:"report" ~params:[] ())
                in
                let n = String.length s in
                let rec flood k off =
                  if k >= 512 then R_cut
                  else
                    match write_some fd s off (n - off) with
                    | None -> R_cut
                    | Some w ->
                        if off + w >= n then flood (k + 1) 0
                        else flood k (off + w)
                in
                flood 0 0
            | Oversized_flooder ->
                (* Declare a frame beyond any configured ceiling; the
                   server must answer with the structured oversized
                   error and close, never allocate the declared size. *)
                let declared =
                  Wire.default_max_frame + 1 + Prng.int prng 100_000
                in
                (match write_some fd (raw_header declared) 0 4 with
                | None -> R_cut
                | Some _ ->
                    let junk = String.make 64 'z' in
                    ignore (write_some fd junk 0 64);
                    read_reply fd)
            | Connect_idle -> (
                (* Occupy a connection slot and say nothing. *)
                match Wire.read_frame fd with
                | _ -> R_cut
                | exception Unix.Unix_error _ -> R_cut)))

type attacker_tally = {
  a_rounds : int;
  a_shed : int;
  a_answered : int;
  a_cut : int;
  a_cfail : int;
}

let attacker ~host ~port ~seed ~stop index () =
  (* Persona fixed per attacker (index-robin over the five), timing and
     sizes drawn from the attacker's own splitmix64 stream: a given
     (seed, attackers) pair replays the same schedule of abuse. *)
  let prng = Prng.create (seed + (7919 * (index + 1))) in
  let persona = all_personas.(index mod Array.length all_personas) in
  let rounds = ref 0
  and shed = ref 0
  and answered = ref 0
  and cut = ref 0
  and cfail = ref 0 in
  while not (Atomic.get stop) do
    incr rounds;
    match attack_round ~host ~port prng persona with
    | R_shed -> incr shed
    | R_answered -> incr answered
    | R_cut -> incr cut
    | R_connect_failed -> incr cfail
  done;
  {
    a_rounds = !rounds;
    a_shed = !shed;
    a_answered = !answered;
    a_cut = !cut;
    a_cfail = !cfail;
  }

let run_hostile ?(host = "127.0.0.1") ?(timeout_ms = 10_000) ~port ~clients
    ~requests ~attackers ~seed ~addresses () =
  if attackers <= 0 then Error "attackers must be positive"
  else begin
    ignore_sigpipe ();
    let stop = Atomic.make false in
    let attack_domains =
      List.init attackers (fun i ->
          Domain.spawn (attacker ~host ~port ~seed ~stop i))
    in
    let result = run ~host ~timeout_ms ~port ~clients ~requests ~addresses () in
    Atomic.set stop true;
    let tallies = List.map Domain.join attack_domains in
    let sum f = List.fold_left (fun acc t -> acc + f t) 0 tallies in
    match result with
    | Error e -> Error e
    | Ok stats ->
        Ok
          ( stats,
            {
              hs_attackers = attackers;
              hs_rounds = sum (fun t -> t.a_rounds);
              hs_shed = sum (fun t -> t.a_shed);
              hs_answered = sum (fun t -> t.a_answered);
              hs_cut = sum (fun t -> t.a_cut);
              hs_connect_failures = sum (fun t -> t.a_cfail);
            } )
  end
