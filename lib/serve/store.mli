(** The daemon's hot result store.

    Holds one {!entry} per analyzed subject — the per-contract report
    plus the per-subject cost counters the analyzer's stage events
    attributed to it — indexed by address, while preserving deployment
    order so {!report} reconstructs exactly the document a cold batch
    run would produce.  Incremental re-analysis {!upsert}s patched
    entries in place; aggregates (the full report, the findings list)
    are cached and recomputed lazily after any patch.

    All operations are serialized by an internal lock, so server worker
    domains may query while the coordinator patches. *)

type entry = {
  e_report : Proxion.Analysis.contract_report;
  e_api_calls : int;  (** getStorageAt calls attributed to this subject. *)
  e_steps : int;  (** EVM steps attributed to this subject. *)
}

type t

val create : unit -> t
val size : t -> int

val generation : t -> int
(** Number of increments applied ({!bump_generation}); 0 after the
    initial load. *)

val bump_generation : t -> unit
val set_generation : t -> int -> unit
val find : t -> Evm.Address.t -> entry option
val mem : t -> Evm.Address.t -> bool

val upsert : t -> entry -> unit
(** Insert (appending to deployment order) or replace in place. *)

val remove : t -> Evm.Address.t -> bool
(** Retract a subject's entry (reorg rollback: its deployment was
    orphaned).  Drops it from the deployment order and invalidates the
    aggregate caches; [false] when the address was not stored. *)

val reports : t -> Proxion.Analysis.contract_report list
(** Per-contract reports in deployment order. *)

val entries : t -> entry list
(** Entries in deployment order (snapshot serialization). *)

val report : t -> unique_codes:int -> Proxion.Analysis.report
(** The full report: contracts in deployment order, statistics
    recomputed from the stored counters ([unique_codes] comes from the
    live analyzer's dedup cache).  Byte-identical to a cold full run
    over the same chain state. *)

val findings : t -> unique_codes:int -> Proxion.Findings.finding list
(** Severity-ordered findings over {!report}, cached per generation. *)

(** {1 Snapshots} *)

val entry_to_json : entry -> Report.Json.t
val entry_of_json : Report.Json.t -> (entry, string) result
(** Round-trip for journal snapshots. *)
