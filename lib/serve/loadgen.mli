(** The concurrent-client load generator behind [proxion bench] and the
    BENCH_serve.json sweeps: N client domains each fire a deterministic
    mix of queries over their own connection and record per-request
    wall-clock latency.

    {b Hostile mode.}  {!run_hostile} additionally spawns seeded
    misbehaving clients — slowloris writers, half-open fragments,
    never-read-the-response flooders, oversized-frame declarations, and
    connect-and-idle squatters — and measures the {e goodput} the
    well-behaved clients still get while the attack runs.  Each
    attacker draws its timing and sizes from its own splitmix64 stream,
    so a given [(seed, attackers)] pair replays the same schedule of
    abuse. *)

type stats = {
  lg_clients : int;
  lg_requests : int;  (** Completed round-trips (goodput numerator). *)
  lg_errors : int;  (** Requests abandoned after errors. *)
  lg_shed : int;
      (** Structured {!Wire.err_overloaded} replies observed (each was
          retried on a fresh connection). *)
  lg_deadline : int;  (** {!Wire.err_deadline_exceeded} replies. *)
  lg_elapsed : float;  (** Wall-clock seconds for the whole sweep. *)
  lg_rps : float;  (** Completed requests per second. *)
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
}

val run :
  ?host:string ->
  ?timeout_ms:int ->
  ?trace_seed:int ->
  port:int ->
  clients:int ->
  requests:int ->
  addresses:Evm.Address.t list ->
  unit ->
  (stats, string) result
(** [requests] per client; [addresses] seeds the per-address query mix
    (is_proxy / logic_history / collisions interleaved with get_status
    and list_findings pages).  [timeout_ms] (default 10000) bounds
    every connect/send/receive so the generator cannot hang on a
    wedged server; a shed or transport failure is retried on a fresh
    connection up to a bounded attempt budget, then counted in
    [lg_errors].  [trace_seed] attaches a deterministic trace context
    to every request (one per logical request, stable across shed
    retries; per-client splitmix64 streams offset by client index), so
    a traced daemon's spans join the sweep's ids. *)

val to_json : stats -> Report.Json.t

(** {1 Hostile personas} *)

type persona =
  | Slow_writer  (** Valid frame, trickled one byte at a time. *)
  | Half_open  (** Declares a frame, sends a fragment, goes silent. *)
  | Never_reads  (** Pipelines requests, never reads a response. *)
  | Oversized_flooder  (** Declares frames beyond the ceiling. *)
  | Connect_idle  (** Occupies a connection slot and says nothing. *)

val persona_name : persona -> string

type hostile_stats = {
  hs_attackers : int;
  hs_rounds : int;  (** Attack rounds completed across all attackers. *)
  hs_shed : int;  (** Rounds answered with a structured [overloaded]. *)
  hs_answered : int;  (** Rounds answered with any other structured reply. *)
  hs_cut : int;  (** Rounds the server cut (or the attacker timed out). *)
  hs_connect_failures : int;
}

val hostile_to_json : hostile_stats -> Report.Json.t

val run_hostile :
  ?host:string ->
  ?timeout_ms:int ->
  port:int ->
  clients:int ->
  requests:int ->
  attackers:int ->
  seed:int ->
  addresses:Evm.Address.t list ->
  unit ->
  (stats * hostile_stats, string) result
(** Run {!run}'s well-behaved sweep while [attackers] hostile clients
    (persona round-robin by index, streams derived from [seed]) abuse
    the same daemon; attackers stop once the well-behaved sweep
    finishes.  The returned {!stats} is the goodput under attack. *)
