(** The concurrent-client load generator behind [proxion bench] and the
    BENCH_serve.json sweeps: N client domains each fire a deterministic
    mix of queries over their own connection and record per-request
    wall-clock latency. *)

type stats = {
  lg_clients : int;
  lg_requests : int;  (** Completed round-trips. *)
  lg_errors : int;  (** Transport failures or error responses. *)
  lg_elapsed : float;  (** Wall-clock seconds for the whole sweep. *)
  lg_rps : float;  (** Completed requests per second. *)
  lg_p50_ms : float;
  lg_p90_ms : float;
  lg_p99_ms : float;
}

val run :
  ?host:string ->
  port:int ->
  clients:int ->
  requests:int ->
  addresses:Evm.Address.t list ->
  unit ->
  (stats, string) result
(** [requests] per client; [addresses] seeds the per-address query mix
    (is_proxy / logic_history / collisions interleaved with get_status
    and list_findings pages). *)

val to_json : stats -> Report.Json.t
