module Analysis = Proxion.Analysis
module Proxy_detect = Proxion.Proxy_detect
module Address = Evm.Address

let height_sensitive (r : Analysis.contract_report) =
  match r.Analysis.r_detection.Proxy_detect.verdict with
  | Proxy_detect.Proxy { source = Proxy_detect.Storage_slot _; _ }
  | Proxy_detect.Proxy { source = Proxy_detect.Computed; _ } ->
      true
  | Proxy_detect.Proxy { source = Proxy_detect.Hardcoded; _ }
  | Proxy_detect.Not_proxy_no_delegatecall | Proxy_detect.Not_proxy_no_forward
  | Proxy_detect.Emulation_error _ ->
      false

let partner_addresses (r : Analysis.contract_report) =
  List.map (fun (p : Analysis.pair_report) -> p.Analysis.p_logic) r.Analysis.r_pairs

module Addr_set = Set.Make (struct
  type t = Address.t

  let compare = Address.compare
end)

let dirty ~reports ~writes =
  let written = Addr_set.of_list writes in
  let touched (r : Analysis.contract_report) =
    Addr_set.mem r.Analysis.r_address written
    || List.exists (fun a -> Addr_set.mem a written) (partner_addresses r)
  in
  (* Pass 1: directly dirty subjects. *)
  let direct = List.filter (fun r -> height_sensitive r || touched r) reports in
  (* Pass 2: a write-touched subject invalidates its shared probe
     verdict, so every holder of the same code hash follows it. *)
  let dirty_hashes = Hashtbl.create 64 in
  List.iter
    (fun (r : Analysis.contract_report) ->
      if touched r then Hashtbl.replace dirty_hashes r.Analysis.r_code_hash ())
    direct;
  List.filter
    (fun (r : Analysis.contract_report) ->
      height_sensitive r || touched r
      || Hashtbl.mem dirty_hashes r.Analysis.r_code_hash)
    reports

let invalidation_hashes ~dirty =
  let seen = Hashtbl.create 64 in
  List.filter_map
    (fun (r : Analysis.contract_report) ->
      let h = r.Analysis.r_code_hash in
      if Hashtbl.mem seen h then None
      else begin
        Hashtbl.add seen h ();
        Some h
      end)
    dirty
