(** The daemon's wire protocol: length-prefixed JSON-RPC over TCP.

    Framing: each message is a 4-byte big-endian payload length followed
    by that many bytes of UTF-8 JSON.  A frame longer than the
    negotiated maximum ({!default_max_frame} unless the server was
    configured otherwise) is a protocol violation — the server answers
    with {!err_oversized} and closes the connection.

    Requests: [{"proxion_rpc": 1, "id": <int>, "method": <string>,
    "params": <object>}].  Responses echo the [id] and carry either
    [result] or [error {code, message}], plus the report
    [schema_version] so clients can reject documents they do not
    understand.  One request is answered per frame, in order; clients
    may pipeline.  See doc/API.md for the method catalogue. *)

val protocol_version : int
(** The [proxion_rpc] marker value, 1. *)

val default_max_frame : int
(** 4 MiB. *)

(** {1 Framing} *)

val encode_frame : ?max_frame:int -> string -> string
(** Prefix a payload with its 4-byte big-endian length.  Raises
    [Invalid_argument] when the payload exceeds [max_frame]. *)

type read_error =
  | Closed  (** Clean EOF at a frame boundary. *)
  | Torn of { wanted : int; got : int }
      (** EOF mid-header or mid-payload. *)
  | Oversized of int  (** Declared length above the maximum. *)
  | Timed_out
      (** The receive deadline expired (or the caller's abort check
          fired) before the frame completed — the slowloris defense. *)

val read_error_to_string : read_error -> string

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling short writes and retrying [EINTR].
    Raises [Unix.Unix_error] on I/O failure and [Invalid_argument] on
    oversized payloads. *)

val read_frame :
  ?max_frame:int ->
  ?clock:Obs.Clock.t ->
  ?deadline:float ->
  ?should_abort:(unit -> bool) ->
  Unix.file_descr ->
  (string, read_error) result
(** Read one frame, handling short reads and retrying [EINTR].  Raises
    [Unix.Unix_error] on I/O failure; returns [Error _] for EOF and
    protocol violations.

    [deadline] is an {e absolute} time on [clock] (default
    {!Obs.Clock.real}) by which the whole frame — header and payload —
    must have arrived; a trickling writer cannot hold the reader past
    it.  [should_abort] is consulted at every poll wakeup and after
    every partial read, so a draining server can cut a half-received
    frame immediately.  Both are only effective when the descriptor has
    [SO_RCVTIMEO] set (the poll granularity); both report as
    {!Timed_out}.  Without either option, a blocking read behaves as
    before and [EAGAIN] propagates as [Unix.Unix_error]. *)

(** {1 Errors} *)

type error = { code : int; message : string }

val err_parse : int
(** -32700: payload is not valid JSON. *)

val err_invalid_request : int
(** -32600: not a well-formed request. *)

val err_method_not_found : int
(** -32601. *)

val err_invalid_params : int
(** -32602. *)

val err_internal : int
(** -32000. *)

val err_unknown_address : int
(** 1000: address not in the store. *)

val err_oversized : int
(** 1001: frame above the size limit. *)

val err_overloaded : int
(** 1002: the daemon shed this connection or request — admission cap,
    full work queue, or draining for shutdown.  Retry against another
    replica or after backoff. *)

val err_deadline_exceeded : int
(** 1003: the per-request deadline budget expired before the handler
    finished. *)

(** {1 Messages} *)

type trace_ctx = { tc_trace_id : string; tc_span_id : string }
(** A request's trace context: 16-lowercase-hex-char splitmix64 ids
    ({!Obs.Trace.id_to_hex}).  Optional on the wire; the daemon adopts
    it so its spans join the client's trace. *)

type request = {
  rq_id : Report.Json.t;  (** Echoed verbatim; conventionally an int. *)
  rq_method : string;
  rq_params : Report.Json.t;  (** [Obj]; [Null] when omitted. *)
  rq_trace : trace_ctx option;  (** [trace] field, when present. *)
}

val is_trace_id : string -> bool
(** Exactly 16 lowercase hex characters. *)

val request_to_string :
  ?trace:trace_ctx ->
  id:int ->
  meth:string ->
  params:(string * Report.Json.t) list ->
  unit ->
  string
(** Serialize a request payload (the client side).  [trace] attaches a
    trace context as the [trace] field. *)

val request_of_string : string -> (request, error) result
(** Parse and validate a request payload (the server side).  A [trace]
    field, when present, must be an object with 16-hex-char
    [trace_id]/[span_id] strings — anything else is
    {!err_invalid_request} (totality: arbitrary trace payloads parse
    or reject, never crash). *)

val response_ok : id:Report.Json.t -> Report.Json.t -> string
(** A [result] response payload, stamped with the schema version. *)

val response_error : id:Report.Json.t -> error -> string

type response = {
  rs_id : Report.Json.t;
  rs_schema_version : int option;
  rs_result : (Report.Json.t, error) result;
}

val response_of_string : string -> (response, string) result
(** Parse a response payload (the client side). *)
