(** The incremental dirty-set tracker.

    Derives, from each stored per-subject report, the dependencies its
    analysis has on chain state — and from a chain advance (mined
    blocks + direct storage writes), the deployment-ordered set of
    subjects whose stored results can no longer be trusted.  The
    contract: re-analyzing exactly the dirty set against the advanced
    chain, with the dedup cache invalidated per {!invalidation_hashes},
    patches the store into byte-identity with a cold full re-run.

    Dependency model (per subject):
    - {b Height}: a resolved [Storage_slot] proxy's logic history comes
      from Algorithm 1's binary search over [0, head] — its API-call
      accounting (and possibly its history) changes whenever the head
      moves, so slot-source proxies are dirty on {e every} advance.
      [Computed]-source proxies (beacons, diamonds) read other
      contracts' storage the report does not enumerate; they are
      conservatively height-dirty too.
    - {b Own storage}: the emulation probe loads the subject's own
      slots, so any direct write to the subject dirties it — and,
      because probe verdicts are shared across identical bytecodes,
      dirties {e every} holder of the same code hash (keeping the dedup
      cache's owner semantics aligned with a cold run).
    - {b Pair partners}: collision verification executes against the
      live proxy/logic pair, so a write to either side dirties the
      proxy.

    [Hardcoded]-source proxies and non-proxies with untouched storage
    stay clean — in the synthetic landscape that is the bulk of the
    population, which is where the incremental speedup comes from. *)

val dirty :
  reports:Proxion.Analysis.contract_report list ->
  writes:Evm.Address.t list ->
  Proxion.Analysis.contract_report list
(** The dirty subset of [reports] (deployment order preserved) after an
    advance that mined at least one block and wrote the storage of
    [writes]. *)

val invalidation_hashes :
  dirty:Proxion.Analysis.contract_report list -> string list
(** The raw code hashes whose dedup-cache entries must be dropped
    before re-analysis: every hash held by a dirty subject.  The dirty
    rules guarantee all holders of such a hash are dirty, so the
    deployment-order owner re-probes first and repopulates the entry
    exactly as a cold run would. *)
