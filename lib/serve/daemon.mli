(** The resident analysis daemon.

    Performs (or recovers) a full landscape analysis at startup, holds
    the results hot in a {!Store}, and answers wire-protocol queries
    ({!Wire}, doc/API.md) over TCP at interactive latency: a listener
    domain accepts connections and feeds them through an
    {!Engine.Task_channel} to a pool of worker domains, each serving
    its connection request-by-request.

    {b Incremental watch mode.}  {!advance} applies the next scripted
    chain advance ({!Advance}), computes the dirty set ({!Tracker}),
    invalidates the affected dedup-cache entries, re-analyzes only the
    dirty + new subjects on the resident analyzer, and patches the
    store — producing a store byte-identical to a cold full re-run over
    the advanced chain.  Each increment is checkpointed to the
    journal (when configured), so a SIGKILL'd daemon restarts warm:
    the landscape and advances are replayed deterministically, the
    analyzer and store are restored from the snapshot, and no
    re-analysis runs.

    {b Observability.}  Per-method request counters and latency
    histograms, an in-flight gauge, and a structured access log are
    maintained on the supplied registry/log ({!Obs}). *)

module Config : sig
  type t = {
    host : string;  (** Bind address (default 127.0.0.1). *)
    port : int;  (** 0 picks an ephemeral port (see {!val-port}). *)
    backlog : int;
    workers : int;  (** Worker domains serving connections. *)
    max_frame : int;  (** Per-frame byte ceiling. *)
    journal : string option;  (** Snapshot journal path. *)
    advance_seed : int;
    advance_spec : Advance.spec;
    analysis : Proxion.Pipeline.Config.t;  (** Resident analyzer config. *)
  }

  val default : t
  val with_host : string -> t -> t
  val with_port : int -> t -> t
  val with_backlog : int -> t -> t
  val with_workers : int -> t -> t
  val with_max_frame : int -> t -> t
  val with_journal : string option -> t -> t
  val with_advance_seed : int -> t -> t
  val with_advance_spec : Advance.spec -> t -> t
  val with_analysis : Proxion.Pipeline.Config.t -> t -> t

  val validate : t -> (t, Report.Validate.error) result
  (** The shared config gate ({!Report.Validate}). *)
end

type t

val create :
  ?config:Config.t ->
  ?registry:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  Dataset.Generate.t ->
  (t, string) result
(** Load the daemon: validate the config, open the journal (when
    configured), then either recover warm from the last committed
    snapshot or run the initial full analysis and commit it.  The
    landscape must be freshly generated from the same generation config
    across restarts — recovery replays the snapshot's advances onto it
    to reproduce the chain state. *)

val recovered : t -> bool
(** Whether {!create} restored from a journal snapshot instead of
    analyzing cold. *)

val store : t -> Store.t
val registry : t -> Obs.Metrics.t
val advances_applied : t -> int

val unique_codes : t -> int
(** Dedup-cache size of the resident analyzer (serialized against
    concurrent increments). *)

type advance_result = {
  adv_summary : Advance.summary;
  adv_dirty : int;  (** Existing subjects re-analyzed. *)
  adv_new : int;  (** New subjects analyzed. *)
}

val advance : t -> advance_result
(** Apply one scripted advance and incrementally patch the store;
    commits a snapshot to the journal when configured. *)

val handle : t -> string -> string option * string
(** [handle t request_payload] is [(method, response_payload)] — the
    full dispatch path minus the socket, exposed for in-process tests
    and for instrumentation ([method] is [None] when the request did
    not parse far enough to name one). *)

(** {1 Serving} *)

val start : t -> (unit, string) result
(** Bind, listen, and spawn the listener + worker domains. *)

val port : t -> int
(** The bound port (after {!start}); useful with [port = 0]. *)

val request_stop : t -> unit
(** Ask the daemon to stop without blocking: wakes the listener and
    {!wait}.  Safe from a signal handler or an RPC worker. *)

val stop : t -> unit
(** Close the listening socket, drain the task channel, join all
    domains, and close the journal.  Idempotent. *)

val wait : t -> unit
(** Block until {!stop} is called (from a [shutdown] request or another
    thread). *)
