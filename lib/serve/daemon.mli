(** The resident analysis daemon.

    Performs (or recovers) a full landscape analysis at startup, holds
    the results hot in a {!Store}, and answers wire-protocol queries
    ({!Wire}, doc/API.md) over TCP at interactive latency: a listener
    domain accepts connections and feeds them through an
    {!Engine.Task_channel} to a pool of worker domains, each serving
    its connection request-by-request.

    {b Incremental watch mode.}  {!advance} applies the next scripted
    chain advance ({!Advance}), computes the dirty set ({!Tracker}),
    invalidates the affected dedup-cache entries, re-analyzes only the
    dirty + new subjects on the resident analyzer, and patches the
    store — producing a store byte-identical to a cold full re-run over
    the advanced chain.  Each increment is checkpointed to the
    journal (when configured), so a SIGKILL'd daemon restarts warm:
    the landscape and advances are replayed deterministically, the
    analyzer and store are restored from the snapshot, and no
    re-analysis runs.

    {b Overload robustness.}  An admission gate at the listener sheds
    connections beyond [max_conns] (or beyond [queue_limit] waiting in
    the work queue, reject-newest) with a structured
    {!Wire.err_overloaded} reply instead of queueing unbounded.  Every
    connection carries an idle deadline (the whole next frame must
    arrive within [idle_timeout_ms] — slowloris defense) and every
    request a deadline budget ([request_deadline_ms], reported as
    {!Wire.err_deadline_exceeded}).  SIGTERM/[shutdown] flips the
    daemon to {e draining}: readiness drops first, the listener sheds,
    in-flight requests finish (or deadline out) within
    [drain_grace_ms], the journal is flushed, and {!wait} returns.
    All deadline decisions read the injectable [clock], so tests can
    drive them deterministically.

    {b Observability.}  Per-method request counters and latency
    histograms, in-flight/open-connection gauges, shed and
    deadline-exceeded counters, readiness/draining gauges, and a
    structured access log are maintained on the supplied registry/log
    ({!Obs}).

    {b Request-scoped tracing.}  Every request is handled under a trace
    context ({!Obs.Trace.ctx}): adopted from the wire [trace] field
    when the client sent one (the daemon's request span joins the
    client's trace), otherwise drawn from a seeded deterministic
    generator ([trace_seed]).  With a trace collector attached
    ({!create}'s [?trace]) the request span, the archive endpoint
    attempts it caused (quorum votes, hedges) and the EVM emulation
    frames all carry the same [trace_id]; the max-latency exemplar on
    the request histogram names that id, and requests slower than
    [slow_ms] log their full span tree.  An always-on flight recorder
    ({!Obs.Flight}) keeps the last [flight_capacity] notable events
    (requests, advances, reorgs, breaker flips, quorum quarantines,
    sheds, journal commits) and dumps them to [flight_dump] on drain,
    stop and worker crash — see doc/OBSERVABILITY.md. *)

module Config : sig
  type t = {
    host : string;  (** Bind address (default 127.0.0.1). *)
    port : int;  (** 0 picks an ephemeral port (see {!val-port}). *)
    backlog : int;
    workers : int;  (** Worker domains serving connections. *)
    max_frame : int;  (** Per-frame byte ceiling. *)
    max_conns : int;
        (** Open-connection cap; excess connections are shed at accept
            with {!Wire.err_overloaded} (default 64). *)
    queue_limit : int;
        (** Accepted-but-unclaimed connection cap (reject-newest,
            default 32). *)
    idle_timeout_ms : int;
        (** A connection whose next frame does not complete within this
            window is closed (default 10000). *)
    request_deadline_ms : int;
        (** Per-request handler budget; exceeding it answers
            {!Wire.err_deadline_exceeded} (default 5000). *)
    drain_grace_ms : int;
        (** How long {!stop} waits for in-flight work before cutting
            connections (default 5000). *)
    clock : Obs.Clock.t;
        (** Clock for idle/deadline decisions (default
            {!Obs.Clock.real}); inject a virtual clock for
            deterministic tests. *)
    journal : string option;  (** Snapshot journal path. *)
    journal_fsync : bool;
        (** Fsync journal commits to stable storage (default [true]);
            turn off only for tests and benchmarks.  The mode is
            recorded in the journal header. *)
    advance_seed : int;
    advance_spec : Advance.spec;
    analysis : Proxion.Pipeline.Config.t;  (** Resident analyzer config. *)
    resilience : Resilience.Transport.config;
        (** Chain-transport config for the resident analyzer: endpoint
            pool, quorum, fault plans, budgets (default
            {!Resilience.Transport.default_config} — single implicit
            endpoint, no injection). *)
    slow_ms : int option;
        (** Requests slower than this log their full span tree at
            [Warn] (default [None]: disabled). *)
    flight_capacity : int;
        (** Flight-recorder ring size (default 256). *)
    flight_dump : string option;
        (** Dump the flight ring to this path (atomically, tmp+rename)
            on drain, stop and worker crash (default [None]). *)
    trace_seed : int;
        (** Seed for the daemon's root trace-context generator; requests
            that carry no wire context draw from this stream (default
            11). *)
  }

  val default : t
  val with_host : string -> t -> t
  val with_port : int -> t -> t
  val with_backlog : int -> t -> t
  val with_workers : int -> t -> t
  val with_max_frame : int -> t -> t
  val with_max_conns : int -> t -> t
  val with_queue_limit : int -> t -> t
  val with_idle_timeout_ms : int -> t -> t
  val with_request_deadline_ms : int -> t -> t
  val with_drain_grace_ms : int -> t -> t
  val with_clock : Obs.Clock.t -> t -> t
  val with_journal : string option -> t -> t
  val with_journal_fsync : bool -> t -> t
  val with_advance_seed : int -> t -> t
  val with_advance_spec : Advance.spec -> t -> t
  val with_analysis : Proxion.Pipeline.Config.t -> t -> t
  val with_resilience : Resilience.Transport.config -> t -> t
  val with_slow_ms : int option -> t -> t
  val with_flight_capacity : int -> t -> t
  val with_flight_dump : string option -> t -> t
  val with_trace_seed : int -> t -> t

  val validate : t -> (t, Report.Validate.error) result
  (** The shared config gate ({!Report.Validate}). *)
end

type t

val create :
  ?config:Config.t ->
  ?registry:Obs.Metrics.t ->
  ?log:Obs.Log.t ->
  ?trace:Obs.Trace.t ->
  Dataset.Generate.t ->
  (t, string) result
(** Load the daemon: validate the config, open the journal (when
    configured), then either recover warm from the last committed
    snapshot or run the initial full analysis and commit it.  The
    landscape must be freshly generated from the same generation config
    across restarts — recovery replays the snapshot's advances onto it
    to reproduce the chain state.  [trace] attaches a span collector:
    request spans plus the RPC/EVM worker-lane detail of traced
    analyses land in it (write it out with {!Obs.Trace.write}). *)

val recovered : t -> bool
(** Whether {!create} restored from a journal snapshot instead of
    analyzing cold. *)

val store : t -> Store.t
val registry : t -> Obs.Metrics.t
val advances_applied : t -> int

val reorgs : t -> (int * Advance.reorg) list
(** Reorgs rolled back so far, oldest first, each tagged with the
    1-based advance number that carried it.  Rebuilt deterministically
    on warm recovery (the [reorgs] wire method serves this list). *)

val unique_codes : t -> int
(** Dedup-cache size of the resident analyzer (serialized against
    concurrent increments). *)

val is_draining : t -> bool
(** Whether the daemon has entered its drain phase. *)

val open_connections : t -> int
(** Client connections currently open (admission-gate view). *)

val flight : t -> Obs.Flight.t
(** The always-on flight recorder (the [flight] wire method serves its
    contents). *)

type advance_result = {
  adv_summary : Advance.summary;
  adv_dirty : int;  (** Existing subjects re-analyzed. *)
  adv_new : int;  (** New subjects analyzed. *)
  adv_retracted : int;
      (** Findings retracted because a reorg orphaned their subject. *)
}

val advance : ?ctx:Obs.Trace.ctx -> t -> advance_result
(** Apply one scripted advance and incrementally patch the store;
    commits a snapshot to the journal when configured.  [ctx] is the
    request-scoped trace context of the [advance] wire request driving
    this increment: while set, every re-analyzed item's RPC and EVM
    spans carry its [trace_id].

    When the advance opens with a seeded reorg
    ({!Advance.spec.reorg_depth} > 0), the rollback path runs first:
    the dirty set is computed over the pre-retraction store (so a
    retracted dedup owner still propagates its code hash to surviving
    twins), orphaned subjects are removed from the store and their
    findings counted as retracted, reverted and orphaned addresses are
    treated as writes for invalidation, and only surviving dirty
    subjects plus the re-mined contracts are re-analyzed.  The
    resulting store is byte-identical to a cold full re-run over the
    post-reorg chain, and the reorg is committed to the journal as part
    of the snapshot's advance count — a SIGKILL mid-rollback recovers
    warm to the same bytes. *)

val handle : ?deadline:float -> t -> string -> string option * string
(** [handle t request_payload] is [(method, response_payload)] — the
    full dispatch path minus the socket, exposed for in-process tests
    and for instrumentation ([method] is [None] when the request did
    not parse far enough to name one).  [deadline] is an absolute time
    on the config clock bounding the handler; past it the response is
    {!Wire.err_deadline_exceeded} (multi-step [advance] requests check
    between steps — completed steps stay committed). *)

val handle_traced :
  ?deadline:float -> t -> string -> string option * string option * string
(** {!handle} plus the trace id: [(method, trace_id, response)].
    [trace_id] (16 lowercase hex) is the request's context — adopted
    from the wire [trace] field or generated — and is [None] only when
    the payload did not parse.  The socket path uses this to feed the
    latency exemplar, the flight recorder and the slow-request log. *)

(** {1 Serving} *)

val start : t -> (unit, string) result
(** Bind, listen, spawn the listener + worker domains, and ignore
    [SIGPIPE] (a client closing mid-response must surface as [EPIPE],
    not kill the process). *)

val port : t -> int
(** The bound port (after {!start}); useful with [port = 0]. *)

val request_drain : t -> unit
(** Flip to draining without blocking: readiness drops {e first}, then
    the listener sheds every new connection with
    {!Wire.err_overloaded}; in-flight requests finish normally and
    non-health requests are refused.  Idempotent; safe from a signal
    handler.  {!wait} then performs the actual shutdown. *)

val request_stop : t -> unit
(** {!request_drain} plus the hard stop flag: in-flight reads abort at
    the next poll wakeup instead of waiting out the grace.  Safe from a
    signal handler or an RPC worker. *)

val stop : t -> unit
(** Drain and stop: close the listening socket, give in-flight work
    [drain_grace_ms] to finish, then cut remaining connections, join
    all domains, and close the journal.  Idempotent. *)

val wait : t -> unit
(** Block until a drain or stop is requested (by a [shutdown] request,
    a signal handler calling {!request_drain}/{!request_stop}, or
    another thread), then run {!stop} to completion. *)
