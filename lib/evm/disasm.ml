type instr = { offset : int; opcode : Opcode.t; operand : string }

let disassemble code =
  let len = String.length code in
  let rec sweep pos acc =
    if pos >= len then List.rev acc
    else
      let opcode = Opcode.of_byte (Char.code code.[pos]) in
      let size = Opcode.push_size opcode in
      let available = min size (len - pos - 1) in
      let operand = if size = 0 then "" else String.sub code (pos + 1) available in
      sweep (pos + 1 + available) ({ offset = pos; opcode; operand } :: acc)
  in
  sweep 0 []

let has_opcode code op =
  List.exists (fun i -> Opcode.equal i.opcode op) (disassemble code)

let jumpdests code =
  List.filter_map
    (fun i -> if Opcode.equal i.opcode Opcode.JUMPDEST then Some i.offset else None)
    (disassemble code)

(* The interpreter validates every JUMP/JUMPI target against the JUMPDEST
   set, and used to rebuild that table with a fresh linear sweep on every
   call frame — the dominant per-frame allocation once a scan is hot
   (proxies re-enter the same logic code thousands of times).  Memoize the
   table per domain (Domain.DLS, same pattern as [Keccak.Memo]): lookups
   never contend, and the tables are read-only after construction so
   sharing one across frames is safe.  The memo is flushed past a bounded
   number of distinct codes so streamed scans cannot grow it without
   bound. *)
let jumpdest_table =
  let max_entries = 1024 in
  let slot =
    Domain.DLS.new_key (fun () ->
        (Hashtbl.create 256 : (string, (int, unit) Hashtbl.t) Hashtbl.t))
  in
  fun code ->
    let memo = Domain.DLS.get slot in
    match Hashtbl.find_opt memo code with
    | Some t -> t
    | None ->
        let t = Hashtbl.create 16 in
        List.iter (fun off -> Hashtbl.replace t off ()) (jumpdests code);
        if Hashtbl.length memo >= max_entries then Hashtbl.reset memo;
        Hashtbl.replace memo code t;
        t

let push_operands n code =
  List.filter_map
    (fun i ->
      match i.opcode with
      | Opcode.PUSH k when k = n && String.length i.operand = n -> Some i.operand
      | _ -> None)
    (disassemble code)

let operand_value i =
  if i.operand = "" then U256.zero else U256.of_bytes_be i.operand

let format_instr i =
  if i.operand = "" then
    Printf.sprintf "%04x %02x %s" i.offset (Opcode.to_byte i.opcode)
      (Opcode.name i.opcode)
  else
    Printf.sprintf "%04x %02x %s %s" i.offset (Opcode.to_byte i.opcode)
      (Opcode.name i.opcode)
      (Hexutil.to_hex i.operand)

let format_listing instrs =
  String.concat "\n" (List.map format_instr instrs)

let basic_blocks code =
  let instrs = disassemble code in
  let rec split current current_entry acc = function
    | [] ->
        let acc =
          match current with
          | [] -> acc
          | _ -> (current_entry, List.rev current) :: acc
        in
        List.rev acc
    | i :: rest ->
        let is_entry = Opcode.equal i.opcode Opcode.JUMPDEST in
        (* A JUMPDEST starts a new block even mid-stream. *)
        let current, current_entry, acc =
          if is_entry && current <> [] then
            ([], i.offset, (current_entry, List.rev current) :: acc)
          else if is_entry then ([], i.offset, acc)
          else (current, current_entry, acc)
        in
        let current = i :: current in
        if Opcode.is_terminator i.opcode || Opcode.equal i.opcode Opcode.JUMPI
        then
          let next_entry =
            i.offset + 1 + String.length i.operand
          in
          split [] next_entry ((current_entry, List.rev current) :: acc) rest
        else split current current_entry acc rest
  in
  split [] 0 [] instrs
