(** The EVM interpreter.

    Executes bytecode against a {!Host.t}, handling the full message-call
    tree: CALL, CALLCODE, DELEGATECALL, STATICCALL, CREATE and CREATE2
    recurse internally with proper state snapshots, value transfer, gas
    forwarding (63/64 rule) and return-data plumbing.  A {!tracer} exposes
    the observations the ProxioN analysis needs: call events with their
    forwarded input, storage reads, and per-step hooks. *)

type error =
  | Stack_underflow of Opcode.t
  | Stack_overflow of Opcode.t
  | Invalid_jump of int
  | Invalid_opcode of int
  | Out_of_gas
  | Static_write of Opcode.t
  | Call_depth_exceeded
  | Return_data_out_of_bounds
  | Code_too_large of int
  | Create_collision of Address.t
  | Insufficient_balance
  | Step_limit_exceeded

val error_to_string : error -> string

type status = Returned | Reverted | Failed of error

type log_entry = { log_address : Address.t; topics : U256.t list; data : string }

type result = {
  status : status;
  return_data : string;
  gas_used : int;
  logs : log_entry list;
  created : Address.t option;
      (** Address of the deployed contract for creation frames. *)
}

val succeeded : result -> bool

(** {1 Tracing} *)

type call_kind = Call | Callcode | Delegatecall | Staticcall

val call_kind_to_string : call_kind -> string

type call_event = {
  kind : call_kind;
  depth : int;
  caller : Address.t;
      (** The callee frame's msg.sender — for delegate calls this is the
          {e original} sender, not the contract that executed the opcode. *)
  initiator : Address.t;
      (** The contract that executed the call opcode (the calling frame's
          storage context) — what a transaction index calls the "from". *)
  code_address : Address.t;  (** Whose code the callee frame runs. *)
  context_address : Address.t;  (** Whose storage the callee frame uses. *)
  input : string;
  value : U256.t;
  gas_limit : int;
}

type tracer = {
  on_step : depth:int -> pc:int -> Opcode.t -> unit;
  on_call : call_event -> unit;
  on_call_result : call_event -> status -> unit;
  on_sload : Address.t -> U256.t -> U256.t -> unit;
  on_sstore : Address.t -> U256.t -> U256.t -> unit;
  on_create : creator:Address.t -> created:Address.t -> init_code:string -> unit;
}

val no_tracer : tracer
(** All hooks are no-ops; build custom tracers with record update syntax. *)

(** {1 Fuel watchdog}

    A cooperative per-item step budget, enforced live from inside the
    interpreter loop.  [step_limit] bounds one [execute] call and fails
    the frame with [Step_limit_exceeded]; a {!fuel} is shared across
    {e every} emulation an analysis item performs and aborts the whole
    item by exception, so a hostile or malformed bytecode that loops in
    emulation is demoted to a dead letter instead of pinning its worker.
    The exception deliberately escapes {!execute} — callers own the
    cleanup (snapshot reverts) and classification. *)

type fuel
(** A mutable step allowance, charged one unit per interpreted
    instruction by tracers wrapped with {!guard_fuel}. *)

exception Fuel_exhausted of { budget : int }
(** Raised from the step hook when a {!guard_fuel}-wrapped tracer runs
    out; [budget] is the allowance the fuel started with. *)

val fuel : int -> fuel
(** A fresh allowance of [n] steps.  Raises [Invalid_argument] when
    [n <= 0]. *)

val fuel_remaining : fuel -> int

val guard_fuel : fuel -> tracer -> tracer
(** [guard_fuel f tracer] charges [f] one unit before delegating each
    [on_step] to [tracer], raising {!Fuel_exhausted} when the allowance
    is spent.  Wrap every tracer of an item with the same [fuel] to give
    the item one shared budget. *)

(** {1 Execution} *)

type call_params = {
  caller : Address.t;
  code_address : Address.t;
  context_address : Address.t;
  origin : Address.t;
  gas_price : U256.t;
  value : U256.t;
  apparent_value : U256.t;
      (** What CALLVALUE reports (differs from [value] in delegate calls). *)
  input : string;
  gas : int;
  is_static : bool;
  depth : int;
}

val make_call :
  ?origin:Address.t ->
  ?gas_price:U256.t ->
  ?value:U256.t ->
  ?gas:int ->
  ?is_static:bool ->
  caller:Address.t ->
  target:Address.t ->
  input:string ->
  unit ->
  call_params
(** Convenience constructor for a top-level message call: code and context
    address are both [target], apparent value equals [value]. *)

val execute :
  ?tracer:tracer -> ?step_limit:int -> Host.t -> call_params -> result
(** Run one message call (including its subcalls).  Value transfer from
    caller to context address happens when [value] is non-zero and the
    frame is a plain call.  [step_limit] (default 1_000_000) bounds total
    interpreted instructions across the call tree, guarding emulation
    against infinite loops. *)

val create :
  ?tracer:tracer ->
  ?step_limit:int ->
  ?salt:U256.t option ->
  Host.t ->
  caller:Address.t ->
  value:U256.t ->
  init_code:string ->
  gas:int ->
  result
(** Deploy a contract: runs [init_code]; its return data becomes the account
    code.  [salt = Some s] selects CREATE2 address derivation. *)
