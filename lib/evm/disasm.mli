(** Linear-sweep disassembler for EVM bytecode — the role Octopus plays in
    the paper (§4.1).

    The sweep decodes one instruction after another, consuming PUSH operands,
    without attempting code/data separation; trailing constructor arguments
    or metadata therefore decode as (harmless) instructions, exactly as with
    the tools the paper builds on. *)

type instr = {
  offset : int;  (** Byte offset of the opcode within the bytecode. *)
  opcode : Opcode.t;
  operand : string;  (** PUSH operand bytes; empty for other opcodes. *)
}

val disassemble : string -> instr list
(** Full linear sweep of the bytecode.  A PUSH whose operand is cut short by
    the end of code keeps the truncated operand bytes. *)

val has_opcode : string -> Opcode.t -> bool
(** [has_opcode code op] is true when the sweep contains [op] — the paper's
    first-phase filter ("no DELEGATECALL opcode means not a proxy"). *)

val jumpdests : string -> int list
(** Sorted offsets of JUMPDEST instructions (valid jump targets). *)

val jumpdest_table : string -> (int, unit) Hashtbl.t
(** Memoized JUMPDEST offset set for [code], shared across call frames
    within a domain ([Domain.DLS], as in [Keccak.Memo]).  The returned
    table must be treated as read-only.  The per-domain memo is flushed
    once it holds a bounded number of distinct codes, so long streamed
    scans keep it resident-size-bounded. *)

val push_operands : int -> string -> string list
(** [push_operands n code] collects the operand of every [PUSH n], in code
    order, with duplicates preserved.  [push_operands 4] yields the
    candidate selector set of §4.2; [push_operands 20] the candidate
    hard-coded addresses of §4.3. *)

val operand_value : instr -> U256.t
(** PUSH operand interpreted as a big-endian word (zero for non-PUSH). *)

val format_listing : instr list -> string
(** Human-readable listing in the style of the paper's Listing 3. *)

val basic_blocks : string -> (int * instr list) list
(** Partition of the sweep into basic blocks, keyed by entry offset.  Blocks
    end at terminators ([JUMP], [STOP], [RETURN], [REVERT], [INVALID],
    [SELFDESTRUCT]) and at [JUMPI], and begin at [JUMPDEST] boundaries. *)
