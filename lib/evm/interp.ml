type error =
  | Stack_underflow of Opcode.t
  | Stack_overflow of Opcode.t
  | Invalid_jump of int
  | Invalid_opcode of int
  | Out_of_gas
  | Static_write of Opcode.t
  | Call_depth_exceeded
  | Return_data_out_of_bounds
  | Code_too_large of int
  | Create_collision of Address.t
  | Insufficient_balance
  | Step_limit_exceeded

let error_to_string = function
  | Stack_underflow op -> "stack underflow at " ^ Opcode.name op
  | Stack_overflow op -> "stack overflow at " ^ Opcode.name op
  | Invalid_jump pc -> Printf.sprintf "invalid jump destination 0x%x" pc
  | Invalid_opcode b -> Printf.sprintf "invalid opcode 0x%02x" b
  | Out_of_gas -> "out of gas"
  | Static_write op -> "state modification in static context at " ^ Opcode.name op
  | Call_depth_exceeded -> "call depth limit exceeded"
  | Return_data_out_of_bounds -> "return data access out of bounds"
  | Code_too_large n -> Printf.sprintf "deployed code too large (%d bytes)" n
  | Create_collision a -> "create collision at " ^ Address.to_hex a
  | Insufficient_balance -> "insufficient balance for transfer"
  | Step_limit_exceeded -> "emulation step limit exceeded"

type status = Returned | Reverted | Failed of error

type log_entry = { log_address : Address.t; topics : U256.t list; data : string }

type result = {
  status : status;
  return_data : string;
  gas_used : int;
  logs : log_entry list;
  created : Address.t option;
}

let succeeded r = r.status = Returned

(* Hoisted out of the MSTORE8 case: [U256.of_int] allocates a fresh 16-limb
   array per call, and MSTORE8 sits on the memcpy-style loops solc emits. *)
let byte_mask = U256.of_int 0xff

type call_kind = Call | Callcode | Delegatecall | Staticcall

let call_kind_to_string = function
  | Call -> "CALL"
  | Callcode -> "CALLCODE"
  | Delegatecall -> "DELEGATECALL"
  | Staticcall -> "STATICCALL"

type call_event = {
  kind : call_kind;
  depth : int;
  caller : Address.t;
  initiator : Address.t;
  code_address : Address.t;
  context_address : Address.t;
  input : string;
  value : U256.t;
  gas_limit : int;
}

type tracer = {
  on_step : depth:int -> pc:int -> Opcode.t -> unit;
  on_call : call_event -> unit;
  on_call_result : call_event -> status -> unit;
  on_sload : Address.t -> U256.t -> U256.t -> unit;
  on_sstore : Address.t -> U256.t -> U256.t -> unit;
  on_create : creator:Address.t -> created:Address.t -> init_code:string -> unit;
}

let no_tracer =
  {
    on_step = (fun ~depth:_ ~pc:_ _ -> ());
    on_call = (fun _ -> ());
    on_call_result = (fun _ _ -> ());
    on_sload = (fun _ _ _ -> ());
    on_sstore = (fun _ _ _ -> ());
    on_create = (fun ~creator:_ ~created:_ ~init_code:_ -> ());
  }

(* The fuel watchdog.  Unlike [step_limit] — which bounds one [execute]
   and fails the frame from inside the interpreter — fuel is shared by
   every emulation of an analysis item and aborts by exception, escaping
   [execute] entirely (the step loop only intercepts its own control
   exceptions, so anything a tracer raises propagates to the caller). *)
type fuel = { f_budget : int; mutable f_remaining : int }

exception Fuel_exhausted of { budget : int }

let fuel n =
  if n <= 0 then invalid_arg "Interp.fuel: budget must be > 0";
  { f_budget = n; f_remaining = n }

let fuel_remaining f = f.f_remaining

let guard_fuel f tracer =
  {
    tracer with
    on_step =
      (fun ~depth ~pc op ->
        if f.f_remaining <= 0 then raise (Fuel_exhausted { budget = f.f_budget });
        f.f_remaining <- f.f_remaining - 1;
        tracer.on_step ~depth ~pc op);
  }

type call_params = {
  caller : Address.t;
  code_address : Address.t;
  context_address : Address.t;
  origin : Address.t;
  gas_price : U256.t;
  value : U256.t;
  apparent_value : U256.t;
  input : string;
  gas : int;
  is_static : bool;
  depth : int;
}

let make_call ?(origin = Address.zero) ?(gas_price = U256.zero)
    ?(value = U256.zero) ?(gas = 30_000_000) ?(is_static = false) ~caller
    ~target ~input () =
  {
    caller;
    code_address = target;
    context_address = target;
    origin = (if Address.equal origin Address.zero then caller else origin);
    gas_price;
    value;
    apparent_value = value;
    input;
    gas;
    is_static;
    depth = 0;
  }

(* Internal control flow of a frame. *)
exception Abort of error (* exceptional halt: consumes all frame gas *)
exception Halt of status * string (* STOP/RETURN/REVERT/SELFDESTRUCT *)

let max_depth = 1024
let max_mem_offset = 0x3fff_ffff

type frame_ctx = {
  host : Host.t;
  tracer : tracer;
  steps : int ref;
  step_limit : int;
  logs_acc : log_entry list ref;
}

let to_mem_offset v =
  match U256.to_int v with
  | Some n when n <= max_mem_offset -> n
  | _ -> raise (Abort Out_of_gas)

(* Offsets used only to index immutable data (calldata, code): anything
   beyond the data reads as zeros, so huge offsets are fine. *)
let to_data_offset v =
  match U256.to_int v with Some n -> n | None -> max_int / 2

let word_count n = (n + 31) / 32

let transfer_balance host ~from_ ~to_ value =
  if not (U256.is_zero value) then begin
    let from_balance = host.Host.get_balance from_ in
    if U256.lt from_balance value then raise (Abort Insufficient_balance);
    host.Host.set_balance from_ (U256.sub from_balance value);
    host.Host.set_balance to_ (U256.add (host.Host.get_balance to_) value)
  end

let rec exec_frame ctx (params : call_params) : result =
  let host = ctx.host in
  let code = host.Host.get_code params.code_address in
  let gas_left = ref params.gas in
  let finish status data =
    {
      status;
      return_data = data;
      gas_used = params.gas - !gas_left;
      logs = [];
      created = None;
    }
  in
  if String.length code = 0 then finish Returned ""
  else begin
    let stack = Machine.Stack.create () in
    let memory = Machine.Memory.create () in
    let returndata = ref "" in
    let pc = ref 0 in
    let code_len = String.length code in
    let jumpdests = Disasm.jumpdest_table code in
    let charge g = if !gas_left < g then raise (Abort Out_of_gas) else gas_left := !gas_left - g in
    let charge_memory ~offset ~len =
      charge (Machine.Memory.expansion_cost memory ~offset ~len);
      Machine.Memory.ensure memory ~offset ~len
    in
    let push = Machine.Stack.push stack in
    let pop () = Machine.Stack.pop stack in
    let pop_int_mem () = to_mem_offset (pop ()) in
    let push_bool b = push (if b then U256.one else U256.zero) in
    let require_not_static op =
      if params.is_static then raise (Abort (Static_write op))
    in
    let binop f =
      let a = pop () in
      let b = pop () in
      push (f a b)
    in
    let cmp f =
      let a = pop () in
      let b = pop () in
      push_bool (f a b)
    in
    (try
       while !pc < code_len do
         incr ctx.steps;
         if !(ctx.steps) > ctx.step_limit then raise (Abort Step_limit_exceeded);
         let op = Opcode.of_byte (Char.code code.[!pc]) in
         ctx.tracer.on_step ~depth:params.depth ~pc:!pc op;
         charge (Gas.base_cost op);
         let next_pc = ref (!pc + 1 + Opcode.push_size op) in
         (match op with
         | Opcode.STOP -> raise (Halt (Returned, ""))
         | ADD -> binop U256.add
         | MUL -> binop U256.mul
         | SUB -> binop U256.sub
         | DIV -> binop U256.div
         | SDIV -> binop U256.sdiv
         | MOD -> binop U256.rem
         | SMOD -> binop U256.smod
         | ADDMOD ->
             let a = pop () in
             let b = pop () in
             let m = pop () in
             push (U256.addmod a b m)
         | MULMOD ->
             let a = pop () in
             let b = pop () in
             let m = pop () in
             push (U256.mulmod a b m)
         | EXP ->
             let base = pop () in
             let e = pop () in
             charge (Gas.exp_byte * ((U256.num_bits e + 7) / 8));
             push (U256.exp base e)
         | SIGNEXTEND ->
             let k = pop () in
             let v = pop () in
             let k = match U256.to_int k with Some n -> n | None -> 31 in
             push (U256.sign_extend v k)
         | LT -> cmp U256.lt
         | GT -> cmp U256.gt
         | SLT -> cmp U256.slt
         | SGT -> cmp U256.sgt
         | EQ -> cmp U256.equal
         | ISZERO -> push_bool (U256.is_zero (pop ()))
         | AND -> binop U256.logand
         | OR -> binop U256.logor
         | XOR -> binop U256.logxor
         | NOT -> push (U256.lognot (pop ()))
         | BYTE ->
             let i = pop () in
             let v = pop () in
             let i = match U256.to_int i with Some n -> n | None -> 32 in
             push (U256.byte_at v i)
         | SHL ->
             let n = pop () in
             let v = pop () in
             push (U256.shift_left v (Option.value ~default:256 (U256.to_int n)))
         | SHR ->
             let n = pop () in
             let v = pop () in
             push (U256.shift_right v (Option.value ~default:256 (U256.to_int n)))
         | SAR ->
             let n = pop () in
             let v = pop () in
             push
               (U256.shift_right_arith v
                  (Option.value ~default:256 (U256.to_int n)))
         | KECCAK256 ->
             let off = pop_int_mem () in
             let len = pop_int_mem () in
             charge (Gas.keccak_word * word_count len);
             charge_memory ~offset:off ~len;
             push
               (U256.of_bytes_be
                  (Keccak.digest (Machine.Memory.load_slice memory ~offset:off ~len)))
         | ADDRESS -> push (Address.to_u256 params.context_address)
         | BALANCE -> push (host.Host.get_balance (Address.of_u256 (pop ())))
         | ORIGIN -> push (Address.to_u256 params.origin)
         | CALLER -> push (Address.to_u256 params.caller)
         | CALLVALUE -> push params.apparent_value
         | CALLDATALOAD ->
             let off = to_data_offset (pop ()) in
             push (U256.of_bytes_be (Hexutil.slice params.input off 32))
         | CALLDATASIZE -> push (U256.of_int (String.length params.input))
         | CALLDATACOPY ->
             let dest = pop_int_mem () in
             let src = to_data_offset (pop ()) in
             let len = pop_int_mem () in
             charge (Gas.copy_word * word_count len);
             charge_memory ~offset:dest ~len;
             Machine.Memory.store_slice memory ~offset:dest
               (Hexutil.slice params.input src len)
         | CODESIZE -> push (U256.of_int code_len)
         | CODECOPY ->
             let dest = pop_int_mem () in
             let src = to_data_offset (pop ()) in
             let len = pop_int_mem () in
             charge (Gas.copy_word * word_count len);
             charge_memory ~offset:dest ~len;
             Machine.Memory.store_slice memory ~offset:dest
               (Hexutil.slice code src len)
         | GASPRICE -> push params.gas_price
         | EXTCODESIZE ->
             push
               (U256.of_int
                  (String.length (host.Host.get_code (Address.of_u256 (pop ())))))
         | EXTCODECOPY ->
             let addr = Address.of_u256 (pop ()) in
             let dest = pop_int_mem () in
             let src = to_data_offset (pop ()) in
             let len = pop_int_mem () in
             charge (Gas.copy_word * word_count len);
             charge_memory ~offset:dest ~len;
             Machine.Memory.store_slice memory ~offset:dest
               (Hexutil.slice (host.Host.get_code addr) src len)
         | RETURNDATASIZE -> push (U256.of_int (String.length !returndata))
         | RETURNDATACOPY ->
             let dest = pop_int_mem () in
             let src = to_data_offset (pop ()) in
             let len = pop_int_mem () in
             if src + len > String.length !returndata then
               raise (Abort Return_data_out_of_bounds);
             charge (Gas.copy_word * word_count len);
             charge_memory ~offset:dest ~len;
             Machine.Memory.store_slice memory ~offset:dest
               (String.sub !returndata src len)
         | EXTCODEHASH ->
             let addr = Address.of_u256 (pop ()) in
             if not (host.Host.account_exists addr) then push U256.zero
             else push (U256.of_bytes_be (Keccak.digest (host.Host.get_code addr)))
         | BLOCKHASH ->
             let height = pop () in
             let current = host.Host.block.Host.number in
             (match U256.to_int height with
             | Some h when h < current && current - h <= 256 ->
                 push (host.Host.block.Host.block_hash h)
             | _ -> push U256.zero)
         | COINBASE -> push (Address.to_u256 host.Host.block.Host.coinbase)
         | TIMESTAMP -> push (U256.of_int host.Host.block.Host.timestamp)
         | NUMBER -> push (U256.of_int host.Host.block.Host.number)
         | PREVRANDAO -> push host.Host.block.Host.prev_randao
         | GASLIMIT -> push (U256.of_int host.Host.block.Host.gas_limit)
         | CHAINID -> push host.Host.block.Host.chain_id
         | SELFBALANCE -> push (host.Host.get_balance params.context_address)
         | BASEFEE -> push host.Host.block.Host.base_fee
         | POP -> ignore (pop ())
         | MLOAD ->
             let off = pop_int_mem () in
             charge_memory ~offset:off ~len:32;
             push (Machine.Memory.load_word memory off)
         | MSTORE ->
             let off = pop_int_mem () in
             let v = pop () in
             charge_memory ~offset:off ~len:32;
             Machine.Memory.store_word memory off v
         | MSTORE8 ->
             let off = pop_int_mem () in
             let v = pop () in
             charge_memory ~offset:off ~len:1;
             Machine.Memory.store_byte memory off
               (Option.value ~default:0 (U256.to_int (U256.logand v byte_mask)))
         | SLOAD ->
             let slot = pop () in
             let v = host.Host.get_storage params.context_address slot in
             ctx.tracer.on_sload params.context_address slot v;
             push v
         | SSTORE ->
             require_not_static op;
             let slot = pop () in
             let v = pop () in
             let old = host.Host.get_storage params.context_address slot in
             charge (if U256.is_zero old && not (U256.is_zero v) then Gas.sstore_set else Gas.sstore_reset);
             ctx.tracer.on_sstore params.context_address slot v;
             host.Host.set_storage params.context_address slot v
         | JUMP ->
             let dest = pop () in
             let d = match U256.to_int dest with Some d -> d | None -> -1 in
             if not (Hashtbl.mem jumpdests d) then raise (Abort (Invalid_jump d));
             next_pc := d
         | JUMPI ->
             let dest = pop () in
             let cond = pop () in
             if not (U256.is_zero cond) then begin
               let d = match U256.to_int dest with Some d -> d | None -> -1 in
               if not (Hashtbl.mem jumpdests d) then raise (Abort (Invalid_jump d));
               next_pc := d
             end
         | PC -> push (U256.of_int !pc)
         | MSIZE -> push (U256.of_int (32 * Machine.Memory.size_words memory))
         | GAS -> push (U256.of_int !gas_left)
         | JUMPDEST -> ()
         | PUSH0 -> push U256.zero
         | PUSH n ->
             let avail = min n (code_len - !pc - 1) in
             let operand = if avail <= 0 then "" else String.sub code (!pc + 1) avail in
             push (U256.of_bytes_be operand)
         | DUP n -> Machine.Stack.dup stack n
         | SWAP n -> Machine.Stack.swap stack n
         | LOG n ->
             require_not_static op;
             let off = pop_int_mem () in
             let len = pop_int_mem () in
             let topics = List.init n (fun _ -> pop ()) in
             charge ((Gas.log_topic * n) + (Gas.log_byte * len));
             charge_memory ~offset:off ~len;
             let data = Machine.Memory.load_slice memory ~offset:off ~len in
             ctx.logs_acc :=
               { log_address = params.context_address; topics; data } :: !(ctx.logs_acc)
         | CREATE | CREATE2 ->
             require_not_static op;
             let value = pop () in
             let off = pop_int_mem () in
             let len = pop_int_mem () in
             let salt = if op = CREATE2 then Some (pop ()) else None in
             charge_memory ~offset:off ~len;
             if salt <> None then
               charge (Gas.keccak_word * word_count len);
             let init_code = Machine.Memory.load_slice memory ~offset:off ~len in
             let result = do_create ctx params gas_left ~value ~init_code ~salt in
             returndata :=
               (match result.status with Reverted -> result.return_data | _ -> "");
             (match (result.status, result.created) with
             | Returned, Some addr -> push (Address.to_u256 addr)
             | _ -> push U256.zero)
         | CALL | CALLCODE | DELEGATECALL | STATICCALL ->
             let gas_req = pop () in
             let addr = Address.of_u256 (pop ()) in
             let value =
               match op with CALL | CALLCODE -> pop () | _ -> U256.zero
             in
             if op = CALL && not (U256.is_zero value) then require_not_static op;
             let in_off = pop_int_mem () in
             let in_len = pop_int_mem () in
             let out_off = pop_int_mem () in
             let out_len = pop_int_mem () in
             charge_memory ~offset:in_off ~len:in_len;
             charge_memory ~offset:out_off ~len:out_len;
             if not (U256.is_zero value) then charge Gas.call_value_surcharge;
             if
               op = CALL
               && (not (U256.is_zero value))
               && not (host.Host.account_exists addr)
             then charge Gas.new_account_surcharge;
             let input = Machine.Memory.load_slice memory ~offset:in_off ~len:in_len in
             let available = !gas_left - (!gas_left / 64) in
             let forwarded =
               match U256.to_int gas_req with
               | Some g -> min g available
               | None -> available
             in
             charge forwarded;
             let forwarded =
               if U256.is_zero value then forwarded
               else forwarded + Gas.call_stipend
             in
             let kind =
               match op with
               | CALL -> Call
               | CALLCODE -> Callcode
               | DELEGATECALL -> Delegatecall
               | STATICCALL -> Staticcall
               | _ -> assert false
             in
             let result, refund =
               do_call ctx params ~kind ~target:addr ~value ~input
                 ~gas:forwarded
             in
             gas_left := !gas_left + refund;
             returndata := result.return_data;
             Machine.Memory.store_slice memory ~offset:out_off
               (Hexutil.take out_len result.return_data);
             push_bool (result.status = Returned)
         | RETURN ->
             let off = pop_int_mem () in
             let len = pop_int_mem () in
             charge_memory ~offset:off ~len;
             raise (Halt (Returned, Machine.Memory.load_slice memory ~offset:off ~len))
         | REVERT ->
             let off = pop_int_mem () in
             let len = pop_int_mem () in
             charge_memory ~offset:off ~len;
             raise (Halt (Reverted, Machine.Memory.load_slice memory ~offset:off ~len))
         | INVALID -> raise (Abort (Invalid_opcode 0xfe))
         | SELFDESTRUCT ->
             require_not_static op;
             let beneficiary = Address.of_u256 (pop ()) in
             host.Host.selfdestruct params.context_address ~beneficiary;
             raise (Halt (Returned, ""))
         | UNKNOWN b -> raise (Abort (Invalid_opcode b)));
         pc := !next_pc
       done;
       (* Fell off the end of code: implicit STOP. *)
       finish Returned ""
     with
    | Halt (status, data) -> finish status data
    | Abort err ->
        gas_left := 0;
        finish (Failed err) ""
    | Machine.Stack_underflow ->
        gas_left := 0;
        finish (Failed (Stack_underflow (Opcode.of_byte (Char.code code.[!pc])))) ""
    | Machine.Stack_overflow ->
        gas_left := 0;
        finish (Failed (Stack_overflow (Opcode.of_byte (Char.code code.[!pc])))) "")
  end

(* A message call out of a running frame.  Returns the callee result and the
   gas to refund to the caller. *)
and do_call ctx (params : call_params) ~kind ~target ~value ~input ~gas =
  let host = ctx.host in
  let event =
    {
      kind;
      depth = params.depth + 1;
      caller =
        (match kind with
        | Delegatecall -> params.caller
        | _ -> params.context_address);
      initiator = params.context_address;
      code_address = target;
      context_address =
        (match kind with
        | Call | Staticcall -> target
        | Callcode | Delegatecall -> params.context_address);
      input;
      value =
        (match kind with Delegatecall -> params.apparent_value | _ -> value);
      gas_limit = gas;
    }
  in
  ctx.tracer.on_call event;
  if params.depth + 1 > max_depth then begin
    let status = Failed Call_depth_exceeded in
    ctx.tracer.on_call_result event status;
    ({ status; return_data = ""; gas_used = gas; logs = []; created = None }, 0)
  end
  else begin
    let snapshot = host.Host.snapshot () in
    let failure err =
      host.Host.revert_to snapshot;
      let status = Failed err in
      ctx.tracer.on_call_result event status;
      ( { status; return_data = ""; gas_used = gas; logs = []; created = None },
        0 )
    in
    match
      if kind = Call && not (U256.is_zero value) then begin
        let balance = host.Host.get_balance params.context_address in
        if U256.lt balance value then Error Insufficient_balance
        else begin
          transfer_balance host ~from_:params.context_address ~to_:target value;
          Ok ()
        end
      end
      else Ok ()
    with
    | Error err -> failure err
    | Ok () ->
        let callee_params =
          {
            caller = event.caller;
            code_address = event.code_address;
            context_address = event.context_address;
            origin = params.origin;
            gas_price = params.gas_price;
            value = event.value;
            apparent_value = event.value;
            input;
            gas;
            is_static = params.is_static || kind = Staticcall;
            depth = params.depth + 1;
          }
        in
        let result = exec_frame ctx callee_params in
        (match result.status with
        | Returned -> ()
        | Reverted | Failed _ -> host.Host.revert_to snapshot);
        ctx.tracer.on_call_result event result.status;
        (result, gas - result.gas_used)
  end

and do_create ctx (params : call_params) gas_left ~value ~init_code ~salt =
  let host = ctx.host in
  let creator = params.context_address in
  let failed err =
    { status = Failed err; return_data = ""; gas_used = 0; logs = []; created = None }
  in
  if params.depth + 1 > max_depth then failed Call_depth_exceeded
  else begin
    let balance = host.Host.get_balance creator in
    if U256.lt balance value then failed Insufficient_balance
    else begin
      let nonce = host.Host.get_nonce creator in
      let address =
        match salt with
        | None -> Rlp.contract_address ~sender:creator ~nonce
        | Some s -> Rlp.create2_address ~sender:creator ~salt:s ~init_code
      in
      host.Host.set_nonce creator (nonce + 1);
      if
        String.length (host.Host.get_code address) > 0
        || host.Host.get_nonce address > 0
      then failed (Create_collision address)
      else begin
        let snapshot = host.Host.snapshot () in
        host.Host.set_nonce address 1;
        transfer_balance host ~from_:creator ~to_:address value;
        (* Forward all but 1/64 of remaining gas to the init frame. *)
        let forwarded = !gas_left - (!gas_left / 64) in
        gas_left := !gas_left - forwarded;
        let init_params =
          {
            caller = creator;
            code_address = address;
            context_address = address;
            origin = params.origin;
            gas_price = params.gas_price;
            value;
            apparent_value = value;
            input = "";
            gas = forwarded;
            is_static = false;
            depth = params.depth + 1;
          }
        in
        (* Install the init code at the new address so the frame's CODESIZE
           and CODECOPY see it; the deployed code later overwrites it. *)
        host.Host.create_account address ~code:init_code;
        let result = exec_frame ctx init_params in
        let refund g = gas_left := !gas_left + g in
        match result.status with
        | Returned ->
            let deployed = result.return_data in
            let size = String.length deployed in
            let deposit = Gas.code_deposit_byte * size in
            if size > Gas.max_code_size then begin
              host.Host.revert_to snapshot;
              failed (Code_too_large size)
            end
            else if result.gas_used + deposit > forwarded then begin
              host.Host.revert_to snapshot;
              failed Out_of_gas
            end
            else begin
              refund (forwarded - result.gas_used - deposit);
              host.Host.create_account address ~code:deployed;
              ctx.tracer.on_create ~creator ~created:address ~init_code;
              {
                status = Returned;
                return_data = "";
                gas_used = result.gas_used + deposit;
                logs = [];
                created = Some address;
              }
            end
        | Reverted ->
            host.Host.revert_to snapshot;
            refund (forwarded - result.gas_used);
            { result with created = None }
        | Failed _ ->
            host.Host.revert_to snapshot;
            { result with created = None }
      end
    end
  end

let run_top ?(tracer = no_tracer) ?(step_limit = 1_000_000) host k =
  let ctx = { host; tracer; steps = ref 0; step_limit; logs_acc = ref [] } in
  let result = k ctx in
  { result with logs = List.rev !(ctx.logs_acc) }

let execute ?tracer ?step_limit host (params : call_params) =
  run_top ?tracer ?step_limit host (fun ctx ->
      let snapshot = host.Host.snapshot () in
      if not (U256.is_zero params.value) then begin
        let balance = host.Host.get_balance params.caller in
        if U256.lt balance params.value then
          {
            status = Failed Insufficient_balance;
            return_data = "";
            gas_used = 0;
            logs = [];
            created = None;
          }
        else begin
          transfer_balance host ~from_:params.caller ~to_:params.context_address
            params.value;
          let result = exec_frame ctx params in
          (match result.status with
          | Returned -> ()
          | Reverted | Failed _ -> host.Host.revert_to snapshot);
          result
        end
      end
      else begin
        let result = exec_frame ctx params in
        (match result.status with
        | Returned -> ()
        | Reverted | Failed _ -> host.Host.revert_to snapshot);
        result
      end)

let create ?tracer ?step_limit ?(salt = None) host ~caller ~value ~init_code
    ~gas =
  run_top ?tracer ?step_limit host (fun ctx ->
      let params =
        {
          caller;
          code_address = caller;
          context_address = caller;
          origin = caller;
          gas_price = U256.zero;
          value = U256.zero;
          apparent_value = U256.zero;
          input = "";
          gas;
          is_static = false;
          depth = 0;
        }
      in
      let gas_ref = ref gas in
      let result = do_create ctx params gas_ref ~value ~init_code ~salt in
      { result with gas_used = gas - !gas_ref })
