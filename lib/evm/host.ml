type block_info = {
  number : int;
  timestamp : int;
  coinbase : Address.t;
  gas_limit : int;
  base_fee : U256.t;
  prev_randao : U256.t;
  chain_id : U256.t;
  block_hash : int -> U256.t;
}

let default_block =
  {
    number = 18_473_542;
    (* The paper's dataset cut-off: the last block of October 2023. *)
    timestamp = 1_698_796_799;
    coinbase = Address.of_hex "0x95222290dd7278aa3ddd389cc1e1d165cc4bafe5";
    gas_limit = 30_000_000;
    base_fee = U256.of_int 25_000_000_000;
    prev_randao = U256.of_hex "0xd3adb33f";
    chain_id = U256.one;
    block_hash =
      (fun height -> U256.of_bytes_be (Keccak.digest (string_of_int height)));
  }

type t = {
  get_code : Address.t -> string;
  get_storage : Address.t -> U256.t -> U256.t;
  set_storage : Address.t -> U256.t -> U256.t -> unit;
  get_balance : Address.t -> U256.t;
  set_balance : Address.t -> U256.t -> unit;
  get_nonce : Address.t -> int;
  set_nonce : Address.t -> int -> unit;
  account_exists : Address.t -> bool;
  create_account : Address.t -> code:string -> unit;
  selfdestruct : Address.t -> beneficiary:Address.t -> unit;
  snapshot : unit -> int;
  revert_to : int -> unit;
  block : block_info;
}

(* In-memory world state with an undo journal for snapshots. *)

type account = {
  mutable code : string;
  mutable balance : U256.t;
  mutable nonce : int;
  storage : U256.t U256.Tbl.t;
  mutable alive : bool;
}

type undo =
  | Set_storage of account * U256.t * U256.t option
  | Set_balance of account * U256.t
  | Set_nonce of account * int
  | Set_code of account * string
  | Set_alive of account * bool
  | Added_account of Address.t

type admin = { commit : unit -> unit; drop_account : Address.t -> unit }

let in_memory_admin ?(block = default_block) () =
  let accounts : (Address.t, account) Hashtbl.t = Hashtbl.create 64 in
  let journal : undo list ref = ref [] in
  let journal_len = ref 0 in
  let push u =
    journal := u :: !journal;
    incr journal_len
  in
  let account addr =
    match Hashtbl.find_opt accounts addr with
    | Some a -> a
    | None ->
        let a =
          {
            code = "";
            balance = U256.zero;
            nonce = 0;
            storage = U256.Tbl.create 8;
            alive = false;
          }
        in
        Hashtbl.replace accounts addr a;
        push (Added_account addr);
        a
  in
  let get_storage addr slot =
    match Hashtbl.find_opt accounts addr with
    | None -> U256.zero
    | Some a ->
        Option.value ~default:U256.zero (U256.Tbl.find_opt a.storage slot)
  in
  let set_storage addr slot value =
    let a = account addr in
    push (Set_storage (a, slot, U256.Tbl.find_opt a.storage slot));
    if U256.is_zero value then U256.Tbl.remove a.storage slot
    else U256.Tbl.replace a.storage slot value
  in
  let get_balance addr =
    match Hashtbl.find_opt accounts addr with
    | None -> U256.zero
    | Some a -> a.balance
  in
  let set_balance addr v =
    let a = account addr in
    push (Set_balance (a, a.balance));
    a.balance <- v
  in
  let get_nonce addr =
    match Hashtbl.find_opt accounts addr with None -> 0 | Some a -> a.nonce
  in
  let set_nonce addr n =
    let a = account addr in
    push (Set_nonce (a, a.nonce));
    a.nonce <- n
  in
  let get_code addr =
    match Hashtbl.find_opt accounts addr with
    | Some a when a.alive -> a.code
    | _ -> ""
  in
  let account_exists addr =
    match Hashtbl.find_opt accounts addr with
    | Some a -> a.alive || a.nonce > 0 || not (U256.is_zero a.balance)
    | None -> false
  in
  let create_account addr ~code =
    let a = account addr in
    push (Set_code (a, a.code));
    push (Set_alive (a, a.alive));
    a.code <- code;
    a.alive <- true
  in
  let selfdestruct addr ~beneficiary =
    let a = account addr in
    let b = account beneficiary in
    push (Set_balance (b, b.balance));
    b.balance <- U256.add b.balance a.balance;
    push (Set_balance (a, a.balance));
    a.balance <- U256.zero;
    push (Set_alive (a, a.alive));
    push (Set_code (a, a.code));
    a.alive <- false;
    a.code <- ""
  in
  let snapshot () = !journal_len in
  let revert_to mark =
    while !journal_len > mark do
      (match !journal with
      | [] -> assert false
      | u :: rest ->
          journal := rest;
          decr journal_len;
          (match u with
          | Set_storage (a, slot, prev) -> (
              match prev with
              | None -> U256.Tbl.remove a.storage slot
              | Some v -> U256.Tbl.replace a.storage slot v)
          | Set_balance (a, prev) -> a.balance <- prev
          | Set_nonce (a, prev) -> a.nonce <- prev
          | Set_code (a, prev) -> a.code <- prev
          | Set_alive (a, prev) -> a.alive <- prev
          | Added_account addr -> Hashtbl.remove accounts addr))
    done
  in
  let host =
    {
      get_code;
      get_storage;
      set_storage;
      get_balance;
      set_balance;
      get_nonce;
      set_nonce;
      account_exists;
      create_account;
      selfdestruct;
      snapshot;
      revert_to;
      block;
    }
  in
  (* The undo journal exists only to serve in-flight snapshots; once a
     transaction has committed, its entries are dead weight (they pin every
     account record ever touched).  [commit] truncates it — invalidating any
     outstanding snapshot marks, so callers must only commit at quiescent
     points.  [drop_account] frees an account's code and storage outright;
     the journal must be empty (committed) when it runs, or a later revert
     could resurrect the record. *)
  let commit () =
    journal := [];
    journal_len := 0
  in
  let drop_account addr = Hashtbl.remove accounts addr in
  (host, { commit; drop_account })

let in_memory ?(block = default_block) () = fst (in_memory_admin ~block ())
let with_code host addr code = host.create_account addr ~code

(* Copy-on-write view: reads fall through to [base], writes land in private
   override tables with their own undo journal.  The base host is never
   mutated, so any number of overlays can share one base concurrently as
   long as the base itself is no longer written. *)

module Slot_tbl = Hashtbl.Make (struct
  type t = Address.t * U256.t

  let equal (a1, s1) (a2, s2) = Address.equal a1 a2 && U256.equal s1 s2
  let hash (a, s) = (Hashtbl.hash a * 65599) lxor U256.hash s
end)

type ov_undo =
  | Ov_storage of (Address.t * U256.t) * U256.t option
  | Ov_code of Address.t * (string * bool) option
  | Ov_balance of Address.t * U256.t option
  | Ov_nonce of Address.t * int option

let overlay base =
  (* Code override: [(code, alive)].  Storage overrides store the effective
     value — including zero — so a written-then-cleared slot shadows the
     base value instead of exposing it again. *)
  let code_ov : (Address.t, string * bool) Hashtbl.t = Hashtbl.create 16 in
  let storage_ov : U256.t Slot_tbl.t = Slot_tbl.create 64 in
  let balance_ov : (Address.t, U256.t) Hashtbl.t = Hashtbl.create 16 in
  let nonce_ov : (Address.t, int) Hashtbl.t = Hashtbl.create 16 in
  let journal : ov_undo list ref = ref [] in
  let journal_len = ref 0 in
  let push u =
    journal := u :: !journal;
    incr journal_len
  in
  let get_code addr =
    match Hashtbl.find_opt code_ov addr with
    | Some (code, alive) -> if alive then code else ""
    | None -> base.get_code addr
  in
  let eff_alive addr =
    match Hashtbl.find_opt code_ov addr with
    | Some (_, alive) -> alive
    | None ->
        (* Approximation: a base account that is alive with empty code is
           treated as absent.  The analysis datasets never create such
           accounts, and the interpreter only uses existence for EXTCODE*
           and CALL gas decisions that do not affect collision verdicts. *)
        base.get_code addr <> ""
  in
  let get_storage addr slot =
    match Slot_tbl.find_opt storage_ov (addr, slot) with
    | Some v -> v
    | None -> base.get_storage addr slot
  in
  let set_storage addr slot value =
    let key = (addr, slot) in
    push (Ov_storage (key, Slot_tbl.find_opt storage_ov key));
    Slot_tbl.replace storage_ov key value
  in
  let get_balance addr =
    match Hashtbl.find_opt balance_ov addr with
    | Some v -> v
    | None -> base.get_balance addr
  in
  let set_balance addr v =
    push (Ov_balance (addr, Hashtbl.find_opt balance_ov addr));
    Hashtbl.replace balance_ov addr v
  in
  let get_nonce addr =
    match Hashtbl.find_opt nonce_ov addr with
    | Some n -> n
    | None -> base.get_nonce addr
  in
  let set_nonce addr n =
    push (Ov_nonce (addr, Hashtbl.find_opt nonce_ov addr));
    Hashtbl.replace nonce_ov addr n
  in
  let account_exists addr =
    eff_alive addr || get_nonce addr > 0 || not (U256.is_zero (get_balance addr))
  in
  let set_code addr code alive =
    push (Ov_code (addr, Hashtbl.find_opt code_ov addr));
    Hashtbl.replace code_ov addr (code, alive)
  in
  let create_account addr ~code = set_code addr code true in
  let selfdestruct addr ~beneficiary =
    set_balance beneficiary (U256.add (get_balance beneficiary) (get_balance addr));
    set_balance addr U256.zero;
    set_code addr "" false
  in
  let snapshot () = !journal_len in
  let revert_to mark =
    while !journal_len > mark do
      match !journal with
      | [] -> assert false
      | u :: rest -> (
          journal := rest;
          decr journal_len;
          match u with
          | Ov_storage (key, prev) -> (
              match prev with
              | None -> Slot_tbl.remove storage_ov key
              | Some v -> Slot_tbl.replace storage_ov key v)
          | Ov_code (addr, prev) -> (
              match prev with
              | None -> Hashtbl.remove code_ov addr
              | Some v -> Hashtbl.replace code_ov addr v)
          | Ov_balance (addr, prev) -> (
              match prev with
              | None -> Hashtbl.remove balance_ov addr
              | Some v -> Hashtbl.replace balance_ov addr v)
          | Ov_nonce (addr, prev) -> (
              match prev with
              | None -> Hashtbl.remove nonce_ov addr
              | Some v -> Hashtbl.replace nonce_ov addr v))
    done
  in
  {
    get_code;
    get_storage;
    set_storage;
    get_balance;
    set_balance;
    get_nonce;
    set_nonce;
    account_exists;
    create_account;
    selfdestruct;
    snapshot;
    revert_to;
    block = base.block;
  }
