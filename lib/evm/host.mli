(** The interface through which the interpreter reaches world state.

    The chain library implements this over real blockchain state; the
    analysis layer implements a synthetic variant for emulating contracts in
    isolation (§4.2 of the paper).  Block-environment opcodes (NUMBER,
    TIMESTAMP, ...) read from {!block_info}, mirroring the paper's choice of
    evaluating them against the latest block. *)

type block_info = {
  number : int;
  timestamp : int;
  coinbase : Address.t;
  gas_limit : int;
  base_fee : U256.t;
  prev_randao : U256.t;
  chain_id : U256.t;
  block_hash : int -> U256.t;  (** Hash for a given block height. *)
}

val default_block : block_info
(** Mainnet-flavoured defaults: chain id 1, a recent block number, fixed
    coinbase — the "most probable values" strategy of §4.2. *)

type t = {
  get_code : Address.t -> string;
  get_storage : Address.t -> U256.t -> U256.t;
  set_storage : Address.t -> U256.t -> U256.t -> unit;
  get_balance : Address.t -> U256.t;
  set_balance : Address.t -> U256.t -> unit;
  get_nonce : Address.t -> int;
  set_nonce : Address.t -> int -> unit;
  account_exists : Address.t -> bool;
  create_account : Address.t -> code:string -> unit;
  selfdestruct : Address.t -> beneficiary:Address.t -> unit;
  snapshot : unit -> int;
  (** Mark the current state; returns a token for {!revert_to}. *)
  revert_to : int -> unit;
  (** Roll state back to a snapshot token (used on call failure/revert). *)
  block : block_info;
}

val in_memory : ?block:block_info -> unit -> t
(** A standalone in-memory world: empty accounts materialize on first touch.
    Snapshots use an undo journal, so nesting is cheap.  This is the host
    behind the paper's EVM emulation of contracts under test. *)

type admin = {
  commit : unit -> unit;
      (** Truncate the undo journal.  Without periodic commits the journal
          grows without bound (it pins every account record ever written),
          which is what capped landscape generation at small totals.  A
          commit invalidates any snapshot mark taken before it, so it may
          only run at quiescent points — between transactions, never while
          an interpreter frame holds a mark. *)
  drop_account : Address.t -> unit;
      (** Remove an account (code, storage, balance, nonce) from the world
          outright.  Requires an empty (committed) journal, or a later
          revert could resurrect the dropped record.  This is the eviction
          primitive behind streamed bounded-RSS scans. *)
}

val in_memory_admin : ?block:block_info -> unit -> t * admin
(** [in_memory] plus the owner-side control handle.  The admin operations
    are deliberately kept out of {!t}: overlays and other host implementors
    never see them, and only the state's owner (the chain) may compact. *)

val with_code : t -> Address.t -> string -> unit
(** [with_code host addr code] installs [code] at [addr] (convenience over
    [create_account]; overwrites any existing code). *)

val overlay : t -> t
(** [overlay base] is a copy-on-write view over [base]: reads fall through
    to [base], writes land in private override tables with their own undo
    journal, and [base] is never mutated.  Many overlays can share one base
    concurrently provided the base itself is no longer written — this is
    how each analysis worker domain gets a private writable host over the
    shared immutable chain snapshot.

    One documented approximation: [account_exists] reports a base account
    that is alive with {e empty} code as absent (the overlay cannot observe
    the base's liveness flag, only its code).  No dataset in this
    repository creates such accounts. *)
