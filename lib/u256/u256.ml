(* 256-bit words as 16 little-endian limbs of 16 bits, each stored in an
   OCaml int.  16-bit limbs keep every product below 2^32, so schoolbook
   multiplication never overflows the 63-bit native int.  A generic limb
   layer supports the 512-bit intermediates of ADDMOD/MULMOD. *)

let limbs = 16
let limb_bits = 16
let limb_mask = 0xffff

type t = int array (* length 8, each in [0, 2^32) *)

let make_zero () = Array.make limbs 0
let zero = make_zero ()
let one = Array.init limbs (fun i -> if i = 0 then 1 else 0)
let max_value = Array.make limbs limb_mask

(* ------------------------------------------------------------------ *)
(* Generic limb-vector helpers (arbitrary length, little-endian).      *)
(* ------------------------------------------------------------------ *)

let limbs_compare a b =
  let la = Array.length a and lb = Array.length b in
  let n = Stdlib.max la lb in
  let rec go i =
    if i < 0 then 0
    else
      let x = if i < la then a.(i) else 0
      and y = if i < lb then b.(i) else 0 in
      if x <> y then Stdlib.compare x y else go (i - 1)
  in
  go (n - 1)

let limbs_is_zero a = Array.for_all (fun x -> x = 0) a

(* Schoolbook multiplication: result length is |a| + |b|. *)
let limbs_mul a b =
  let la = Array.length a and lb = Array.length b in
  let r = Array.make (la + lb) 0 in
  for i = 0 to la - 1 do
    let carry = ref 0 in
    for j = 0 to lb - 1 do
      let cur = r.(i + j) + (a.(i) * b.(j)) + !carry in
      r.(i + j) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    let k = ref (i + lb) in
    while !carry <> 0 do
      let cur = r.(!k) + !carry in
      r.(!k) <- cur land limb_mask;
      carry := cur lsr limb_bits;
      incr k
    done
  done;
  r

let limbs_bit a i =
  let limb = i / limb_bits and off = i mod limb_bits in
  if limb >= Array.length a then false else (a.(limb) lsr off) land 1 = 1

let limbs_set_bit a i =
  a.(i / limb_bits) <- a.(i / limb_bits) lor (1 lsl (i mod limb_bits))

let limbs_num_bits a =
  let rec limb_idx i = if i < 0 then -1 else if a.(i) <> 0 then i else limb_idx (i - 1) in
  let i = limb_idx (Array.length a - 1) in
  if i < 0 then 0
  else
    let rec top b = if b = 0 || a.(i) lsr (b - 1) land 1 = 1 then b else top (b - 1) in
    (i * limb_bits) + top limb_bits

(* In-place: a <- a - b, assuming a >= b and equal lengths. *)
let limbs_sub_in_place a b =
  let borrow = ref 0 in
  for i = 0 to Array.length a - 1 do
    let bi = if i < Array.length b then b.(i) else 0 in
    let cur = a.(i) - bi - !borrow in
    if cur < 0 then begin
      a.(i) <- cur + limb_mask + 1;
      borrow := 1
    end
    else begin
      a.(i) <- cur;
      borrow := 0
    end
  done

(* In-place: a <- a << 1 (within fixed width, dropping overflow). *)
let limbs_shl1_in_place a =
  let carry = ref 0 in
  for i = 0 to Array.length a - 1 do
    let cur = (a.(i) lsl 1) lor !carry in
    a.(i) <- cur land limb_mask;
    carry := cur lsr limb_bits
  done

(* Bitwise long division over limb vectors; returns (quotient, remainder)
   with the dividend's length.  Divisor must be non-zero. *)
let limbs_divmod a b =
  let n = Array.length a in
  let q = Array.make n 0 in
  let r = Array.make n 0 in
  let bits = limbs_num_bits a in
  for i = bits - 1 downto 0 do
    limbs_shl1_in_place r;
    if limbs_bit a i then r.(0) <- r.(0) lor 1;
    if limbs_compare r b >= 0 then begin
      limbs_sub_in_place r b;
      limbs_set_bit q i
    end
  done;
  (q, r)

(* ------------------------------------------------------------------ *)
(* Fixed-width 256-bit operations.                                     *)
(* ------------------------------------------------------------------ *)

let equal a b = limbs_compare a b = 0
let compare = limbs_compare
let is_zero = limbs_is_zero
let lt a b = limbs_compare a b < 0
let gt a b = limbs_compare a b > 0
let leq a b = limbs_compare a b <= 0
let geq a b = limbs_compare a b >= 0
let min a b = if leq a b then a else b
let max a b = if geq a b then a else b

let add a b =
  let r = make_zero () in
  let carry = ref 0 in
  for i = 0 to limbs - 1 do
    let cur = a.(i) + b.(i) + !carry in
    r.(i) <- cur land limb_mask;
    carry := cur lsr limb_bits
  done;
  r

let sub a b =
  let r = make_zero () in
  let borrow = ref 0 in
  for i = 0 to limbs - 1 do
    let cur = a.(i) - b.(i) - !borrow in
    if cur < 0 then begin
      r.(i) <- cur + limb_mask + 1;
      borrow := 1
    end
    else begin
      r.(i) <- cur;
      borrow := 0
    end
  done;
  r

let mul a b = Array.sub (limbs_mul a b) 0 limbs

let divmod a b =
  if is_zero b then (zero, zero)
  else
    let q, r = limbs_divmod a b in
    (q, r)

let div a b = fst (divmod a b)
let rem a b = snd (divmod a b)
let lognot a = Array.map (fun x -> lnot x land limb_mask) a
let logand a b = Array.init limbs (fun i -> a.(i) land b.(i))
let logor a b = Array.init limbs (fun i -> a.(i) lor b.(i))
let logxor a b = Array.init limbs (fun i -> a.(i) lxor b.(i))
let neg a = add (lognot a) one
let succ a = add a one
let pred a = sub a one
let bit a i = if i < 0 || i >= 256 then false else limbs_bit a i
let num_bits = limbs_num_bits
let is_negative a = bit a 255

let sdiv a b =
  if is_zero b then zero
  else
    let sa = is_negative a and sb = is_negative b in
    let ua = if sa then neg a else a in
    let ub = if sb then neg b else b in
    let q = div ua ub in
    if sa <> sb then neg q else q

let smod a b =
  if is_zero b then zero
  else
    let sa = is_negative a in
    let ua = if sa then neg a else a in
    let ub = if is_negative b then neg b else b in
    let r = rem ua ub in
    if sa then neg r else r

let slt a b =
  match (is_negative a, is_negative b) with
  | true, false -> true
  | false, true -> false
  | _ -> lt a b

let sgt a b = slt b a

let extend a = Array.append a (Array.make limbs 0)

let addmod a b m =
  if is_zero m then zero
  else
    let wide = Array.make (2 * limbs) 0 in
    let carry = ref 0 in
    for i = 0 to limbs - 1 do
      let cur = a.(i) + b.(i) + !carry in
      wide.(i) <- cur land limb_mask;
      carry := cur lsr limb_bits
    done;
    wide.(limbs) <- !carry;
    let _, r = limbs_divmod wide (extend m) in
    Array.sub r 0 limbs

let mulmod a b m =
  if is_zero m then zero
  else
    let wide = limbs_mul a b in
    let _, r = limbs_divmod wide (extend m) in
    Array.sub r 0 limbs

let shift_left a n =
  if n >= 256 || n < 0 then zero
  else begin
    let r = make_zero () in
    let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
    for i = limbs - 1 downto 0 do
      let src = i - limb_shift in
      if src >= 0 then begin
        r.(i) <- r.(i) lor ((a.(src) lsl bit_shift) land limb_mask);
        if bit_shift > 0 && src - 1 >= 0 then
          r.(i) <- r.(i) lor (a.(src - 1) lsr (limb_bits - bit_shift))
      end
    done;
    r
  end

let shift_right a n =
  if n >= 256 || n < 0 then zero
  else begin
    let r = make_zero () in
    let limb_shift = n / limb_bits and bit_shift = n mod limb_bits in
    for i = 0 to limbs - 1 do
      let src = i + limb_shift in
      if src < limbs then begin
        r.(i) <- a.(src) lsr bit_shift;
        if bit_shift > 0 && src + 1 < limbs then
          r.(i) <- r.(i) lor ((a.(src + 1) lsl (limb_bits - bit_shift)) land limb_mask)
      end
    done;
    r
  end

let shift_right_arith a n =
  if not (is_negative a) then shift_right a n
  else if n >= 256 then max_value
  else
    let shifted = shift_right a n in
    let fill = shift_left max_value (256 - n) in
    logor shifted fill

let exp base e =
  let result = ref one in
  let b = ref base in
  for i = 0 to num_bits e - 1 do
    if bit e i then result := mul !result !b;
    b := mul !b !b
  done;
  !result

let of_int n =
  if n < 0 then invalid_arg "U256.of_int: negative";
  let r = make_zero () in
  let v = ref n in
  let i = ref 0 in
  while !v <> 0 do
    r.(!i) <- !v land limb_mask;
    v := !v lsr limb_bits;
    incr i
  done;
  r

let to_int v =
  (* A non-negative OCaml int holds 62 value bits: limbs 0-2 fully, limb 3
     restricted to 14 bits, limbs 4+ must be zero. *)
  let ok = ref (v.(3) lsr 14 = 0) in
  for i = 4 to limbs - 1 do
    if v.(i) <> 0 then ok := false
  done;
  if not !ok then None
  else
    Some
      (v.(0) lor (v.(1) lsl 16) lor (v.(2) lsl 32) lor (v.(3) lsl 48))

let to_int_exn v =
  match to_int v with
  | Some n -> n
  | None -> invalid_arg "U256.to_int_exn: out of int range"

let of_int64 n =
  let r = make_zero () in
  for i = 0 to 3 do
    r.(i) <-
      Int64.to_int
        (Int64.logand (Int64.shift_right_logical n (16 * i)) 0xffffL)
  done;
  r

let of_bytes_be b =
  let len = String.length b in
  if len > 32 then invalid_arg "U256.of_bytes_be: more than 32 bytes";
  let r = make_zero () in
  for i = 0 to len - 1 do
    (* byte i (from the big end of b) lands at byte position len-1-i. *)
    let pos = len - 1 - i in
    let limb = pos / 2 and off = pos mod 2 in
    r.(limb) <- r.(limb) lor (Char.code b.[i] lsl (8 * off))
  done;
  r

let to_bytes_be v =
  String.init 32 (fun i ->
      let pos = 31 - i in
      let limb = pos / 2 and off = pos mod 2 in
      Char.chr ((v.(limb) lsr (8 * off)) land 0xff))

let of_hex s =
  let s =
    if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
      String.sub s 2 (String.length s - 2)
    else s
  in
  let s = if String.length s mod 2 = 1 then "0" ^ s else s in
  of_bytes_be (Hexutil.of_hex s)

let to_hex v =
  let full = Hexutil.to_hex ~prefix:false (to_bytes_be v) in
  let rec skip i =
    if i >= String.length full - 1 then i
    else if full.[i] = '0' then skip (i + 1)
    else i
  in
  let i = skip 0 in
  "0x" ^ String.sub full i (String.length full - i)

let to_hex_padded v = "0x" ^ Hexutil.to_hex ~prefix:false (to_bytes_be v)

let ten = of_int 10

let of_decimal s =
  if s = "" then invalid_arg "U256.of_decimal: empty string";
  String.fold_left
    (fun acc c ->
      match c with
      | '0' .. '9' -> add (mul acc ten) (of_int (Char.code c - Char.code '0'))
      | '_' -> acc
      | _ -> invalid_arg "U256.of_decimal: invalid digit")
    zero s

let to_decimal v =
  if is_zero v then "0"
  else
    let buf = Buffer.create 78 in
    let rec go v =
      if not (is_zero v) then begin
        let q, r = divmod v ten in
        go q;
        Buffer.add_char buf (Char.chr (Char.code '0' + to_int_exn r))
      end
    in
    go v;
    Buffer.contents buf

let of_string s =
  if String.length s >= 2 && s.[0] = '0' && (s.[1] = 'x' || s.[1] = 'X') then
    of_hex s
  else of_decimal s

let byte_at v i =
  if i < 0 || i >= 32 then zero
  else
    let pos = 31 - i in
    let limb = pos / 2 and off = pos mod 2 in
    of_int ((v.(limb) lsr (8 * off)) land 0xff)

let sign_extend v k =
  if k < 0 || k >= 31 then v
  else
    let sign_bit = (8 * (k + 1)) - 1 in
    if bit v sign_bit then
      (* Set all bits above the sign bit. *)
      logor v (shift_left max_value (sign_bit + 1))
    else logand v (lognot (shift_left max_value (sign_bit + 1)))

let pp fmt v = Format.pp_print_string fmt (to_hex v)

let hash v =
  Array.fold_left (fun acc limb -> (acc * 1000003) lxor limb) 0 v

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Map = Map.Make (Ord)
module Set = Set.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
