(** Unsigned 256-bit integers with EVM semantics.

    This module implements the word type of the Ethereum Virtual Machine:
    all arithmetic wraps modulo 2{^256}, division by zero yields zero, and
    the signed operations ([sdiv], [smod], [slt], [sgt], [sar],
    [sign_extend]) interpret words as two's-complement values, exactly as
    the EVM instruction set specifies.  Values are immutable. *)

type t

val zero : t
val one : t
val max_value : t
(** 2{^256} - 1, the all-ones word. *)

(** {1 Conversions} *)

val of_int : int -> t
(** [of_int n] requires [n >= 0]. *)

val to_int : t -> int option
(** [to_int v] is [Some n] when [v] fits in a non-negative OCaml [int]. *)

val to_int_exn : t -> int
(** Like {!to_int} but raises [Invalid_argument] when out of range. *)

val of_int64 : int64 -> t
(** [of_int64 n] treats [n] as unsigned. *)

val of_bytes_be : string -> t
(** [of_bytes_be b] interprets up to 32 big-endian bytes; shorter strings are
    left-padded with zeros.  Raises [Invalid_argument] beyond 32 bytes. *)

val to_bytes_be : t -> string
(** Always 32 bytes. *)

val of_hex : string -> t
(** Accepts an optional ["0x"] prefix and odd-length digit strings. *)

val to_hex : t -> string
(** Minimal-length lowercase hex with ["0x"] prefix (["0x0"] for zero). *)

val to_hex_padded : t -> string
(** 64-digit zero-padded hex with ["0x"] prefix. *)

val of_decimal : string -> t
val to_decimal : t -> string

val of_string : string -> t
(** [of_string s] parses hex when [s] starts with ["0x"], decimal otherwise. *)

(** {1 Comparisons} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val is_zero : t -> bool
val lt : t -> t -> bool
val gt : t -> t -> bool
val leq : t -> t -> bool
val geq : t -> t -> bool
val slt : t -> t -> bool
(** Signed less-than (EVM [SLT]). *)

val sgt : t -> t -> bool
(** Signed greater-than (EVM [SGT]). *)

val min : t -> t -> t
val max : t -> t -> t

(** {1 Arithmetic (wrapping modulo 2{^256})} *)

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val divmod : t -> t -> t * t
(** [divmod a b] is [(a / b, a mod b)]; both zero when [b] is zero. *)

val div : t -> t -> t
val rem : t -> t -> t
val sdiv : t -> t -> t
(** Signed division truncating toward zero (EVM [SDIV]). *)

val smod : t -> t -> t
(** Signed remainder taking the dividend's sign (EVM [SMOD]). *)

val addmod : t -> t -> t -> t
(** [(a + b) mod m] computed without intermediate overflow (EVM [ADDMOD]). *)

val mulmod : t -> t -> t -> t
(** [(a * b) mod m] computed over a 512-bit intermediate (EVM [MULMOD]). *)

val exp : t -> t -> t
(** Wrapping exponentiation (EVM [EXP]). *)

val neg : t -> t
(** Two's-complement negation. *)

val succ : t -> t
val pred : t -> t

(** {1 Bitwise operations} *)

val lognot : t -> t
val logand : t -> t -> t
val logor : t -> t -> t
val logxor : t -> t -> t

val shift_left : t -> int -> t
(** [shift_left v n] is zero when [n >= 256] (EVM [SHL]). *)

val shift_right : t -> int -> t
(** Logical right shift; zero when [n >= 256] (EVM [SHR]). *)

val shift_right_arith : t -> int -> t
(** Arithmetic right shift replicating the sign bit (EVM [SAR]). *)

val byte_at : t -> int -> t
(** [byte_at v i] is the [i]-th byte counted from the most significant end
    (EVM [BYTE]); zero when [i >= 32]. *)

val sign_extend : t -> int -> t
(** [sign_extend v k] extends the sign bit of byte [k] (counted from the
    least significant end) through the high bytes (EVM [SIGNEXTEND]).
    Identity when [k >= 31]. *)

val bit : t -> int -> bool
(** [bit v i] is bit [i] (0 = least significant). *)

val num_bits : t -> int
(** Position of the highest set bit plus one; 0 for zero. *)

(** {1 Formatting} *)

val pp : Format.formatter -> t -> unit
(** Prints {!to_hex}. *)

val hash : t -> int
(** Hash compatible with {!equal}, for use in hash tables. *)

module Map : Map.S with type key = t
module Set : Set.S with type elt = t

module Tbl : Hashtbl.S with type key = t
(** Hash tables keyed by words, using {!equal}/{!hash} instead of the
    polymorphic hash, so lookups never allocate or traverse structurally. *)
