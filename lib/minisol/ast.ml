type ty =
  | T_uint of int
  | T_int of int
  | T_bool
  | T_address
  | T_bytes of int
  | T_mapping of ty * ty

let type_size = function
  | T_uint bits | T_int bits ->
      if bits mod 8 <> 0 || bits < 8 || bits > 256 then
        invalid_arg "Ast.type_size: invalid integer width";
      bits / 8
  | T_bool -> 1
  | T_address -> 20
  | T_bytes n ->
      if n < 1 || n > 32 then invalid_arg "Ast.type_size: invalid bytesN";
      n
  | T_mapping _ -> 32

let rec canonical_type = function
  | T_uint bits -> Printf.sprintf "uint%d" bits
  | T_int bits -> Printf.sprintf "int%d" bits
  | T_bool -> "bool"
  | T_address -> "address"
  | T_bytes n -> Printf.sprintf "bytes%d" n
  | T_mapping (k, v) ->
      Printf.sprintf "mapping(%s=>%s)" (canonical_type k) (canonical_type v)

type var = { v_name : string; v_ty : ty }
type mutability = View | Nonpayable | Payable
type binop = Add | Sub | Mul | Div | And | Or | Xor | Eq | Lt | Gt

type expr =
  | Const of U256.t
  | Const_addr of Evm.Address.t
  | Param of int
  | Load of string
  | Map_load of string * expr
  | Load_slot of U256.t
  | Cd_selector
  | Caller
  | Callvalue
  | Timestamp
  | Blocknumber
  | Self
  | Selfbalance
  | Not of expr
  | Bin of binop * expr * expr
  | Local of string

type stmt =
  | Store of string * expr
  | Map_store of string * expr * expr
  | Store_slot of U256.t * expr
  | Require of expr
  | Return_value of expr
  | Stop
  | Revert
  | Transfer of expr * expr
  | Call_sig of expr * string * expr list
  | Delegate_sig of expr * string * expr list
  | Delegate_forward of forward_target
  | Emit of string * expr list
  | Let of string * expr
  | While of expr * stmt list
  | If of expr * stmt list * stmt list

and forward_target =
  | To_var of string
  | To_slot of U256.t
  | To_fixed of Evm.Address.t
  | To_facet of string
  | To_beacon of U256.t

type param = { p_name : string; p_ty : ty }

type func = {
  f_name : string;
  f_params : param list;
  f_returns : ty option;
  f_mutability : mutability;
  f_body : stmt list;
}

type contract = {
  c_name : string;
  c_vars : var list;
  c_funcs : func list;
  c_fallback : stmt list option;
  c_ctor : stmt list;
}

let signature f =
  Printf.sprintf "%s(%s)" f.f_name
    (String.concat "," (List.map (fun p -> canonical_type p.p_ty) f.f_params))

let selector f = Keccak.Memo.selector (signature f)
let signatures c = List.map signature c.c_funcs
let selectors c = List.map selector c.c_funcs

let find_var c name =
  match List.find_opt (fun v -> v.v_name = name) c.c_vars with
  | Some v -> v
  | None -> raise Not_found

let func ?(mutability = Nonpayable) ?(params = []) ?returns name body =
  {
    f_name = name;
    f_params = params;
    f_returns = returns;
    f_mutability = mutability;
    f_body = body;
  }

let contract ?(vars = []) ?(funcs = []) ?(fallback = None) ?(ctor = []) name =
  { c_name = name; c_vars = vars; c_funcs = funcs; c_fallback = fallback; c_ctor = ctor }
