(** Keccak-256 as used by Ethereum.

    This is the original Keccak submission (multi-rate padding byte [0x01]),
    not the finalized SHA3-256 (padding byte [0x06]).  Ethereum uses it for
    function selectors, storage-slot constants (EIP-1967, EIP-1822), contract
    address derivation, and everywhere else a hash appears. *)

val digest : string -> string
(** [digest msg] is the 32-byte Keccak-256 hash of [msg]. *)

val digest_hex : string -> string
(** [digest_hex msg] is {!digest} encoded as 0x-prefixed lowercase hex. *)

val selector : string -> string
(** [selector prototype] is the 4-byte Ethereum function selector: the first
    four bytes of [digest prototype], e.g.
    [selector "transfer(address,uint256)" = "\xa9\x05\x9c\xbb"]. *)

val selector_hex : string -> string
(** 0x-prefixed hex form of {!selector}. *)

(** Memoized selector hashing for the analysis hot path.

    The collision stages hash the same few hundred function prototypes over
    and over (once per proxy/logic pair); a memo table turns those repeat
    hashes into a string lookup.  The table lives in domain-local storage
    ([Domain.DLS]), so each worker domain has its own — lookups are
    lock-free and safe under domain parallelism by construction. *)
module Memo : sig
  type stats = { hits : int; misses : int }

  val selector : string -> string
  (** Same result as {!Keccak.selector}, memoized per domain. *)

  val stats : unit -> stats
  (** Hit/miss counters of {e this} domain's table. *)

  val reset : unit -> unit
  (** Clear this domain's table and counters (bench harness use). *)
end
