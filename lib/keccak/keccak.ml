(* Keccak-f[1600] with rate 1088 / capacity 512 and the original Keccak
   multi-rate padding (0x01 ... 0x80), i.e. Ethereum's Keccak-256.

   Each 64-bit lane is stored as two unboxed native ints (low and high
   32-bit halves) in one flat int array: OCaml boxes Int64 values, and the
   split representation keeps the whole permutation allocation-free. *)

let rounds = 24
let rate_bytes = 136 (* (1600 - 512) / 8 *)
let mask32 = 0xffffffff

(* Round constants, split into (low, high) 32-bit halves. *)
let rc_lo =
  [|
    0x00000001; 0x00008082; 0x0000808a; 0x80008000; 0x0000808b; 0x80000001;
    0x80008081; 0x00008009; 0x0000008a; 0x00000088; 0x80008009; 0x8000000a;
    0x8000808b; 0x0000008b; 0x00008089; 0x00008003; 0x00008002; 0x00000080;
    0x0000800a; 0x8000000a; 0x80008081; 0x00008080; 0x80000001; 0x80008008;
  |]

let rc_hi =
  [|
    0x00000000; 0x00000000; 0x80000000; 0x80000000; 0x00000000; 0x00000000;
    0x80000000; 0x80000000; 0x00000000; 0x00000000; 0x00000000; 0x00000000;
    0x00000000; 0x80000000; 0x80000000; 0x80000000; 0x80000000; 0x80000000;
    0x00000000; 0x80000000; 0x80000000; 0x80000000; 0x00000000; 0x80000000;
  |]

(* rho rotation offsets, indexed by x + 5*y. *)
let rotation_offsets =
  [|
    0; 1; 62; 28; 27;
    36; 44; 6; 55; 20;
    3; 10; 43; 25; 39;
    41; 45; 15; 21; 8;
    18; 2; 61; 56; 14;
  |]

(* pi destination index for each source index. *)
let pi_dest =
  Array.init 25 (fun src ->
      let x = src mod 5 and y = src / 5 in
      y + (5 * (((2 * x) + (3 * y)) mod 5)))

(* State layout: lane i occupies slots 2i (low) and 2i+1 (high). *)

let keccak_f state =
  let c = Array.make 10 0 in
  let b = Array.make 50 0 in
  for round = 0 to rounds - 1 do
    (* theta: column parities. *)
    for x = 0 to 4 do
      c.(2 * x) <-
        state.(2 * x)
        lxor state.(2 * (x + 5))
        lxor state.(2 * (x + 10))
        lxor state.(2 * (x + 15))
        lxor state.(2 * (x + 20));
      c.((2 * x) + 1) <-
        state.((2 * x) + 1)
        lxor state.((2 * (x + 5)) + 1)
        lxor state.((2 * (x + 10)) + 1)
        lxor state.((2 * (x + 15)) + 1)
        lxor state.((2 * (x + 20)) + 1)
    done;
    for x = 0 to 4 do
      let x4 = (x + 4) mod 5 and x1 = (x + 1) mod 5 in
      (* d = c[x-1] xor rotl1(c[x+1]) *)
      let lo1 = c.(2 * x1) and hi1 = c.((2 * x1) + 1) in
      let rot_lo = ((lo1 lsl 1) lor (hi1 lsr 31)) land mask32 in
      let rot_hi = ((hi1 lsl 1) lor (lo1 lsr 31)) land mask32 in
      let d_lo = c.(2 * x4) lxor rot_lo in
      let d_hi = c.((2 * x4) + 1) lxor rot_hi in
      for y = 0 to 4 do
        let i = 2 * (x + (5 * y)) in
        state.(i) <- state.(i) lxor d_lo;
        state.(i + 1) <- state.(i + 1) lxor d_hi
      done
    done;
    (* rho + pi into scratch b. *)
    for src = 0 to 24 do
      let n = rotation_offsets.(src) in
      let lo = state.(2 * src) and hi = state.((2 * src) + 1) in
      let rot_lo, rot_hi =
        if n = 0 then (lo, hi)
        else if n < 32 then
          ( ((lo lsl n) lor (hi lsr (32 - n))) land mask32,
            ((hi lsl n) lor (lo lsr (32 - n))) land mask32 )
        else if n = 32 then (hi, lo)
        else
          let n = n - 32 in
          ( ((hi lsl n) lor (lo lsr (32 - n))) land mask32,
            ((lo lsl n) lor (hi lsr (32 - n))) land mask32 )
      in
      let dst = pi_dest.(src) in
      b.(2 * dst) <- rot_lo;
      b.((2 * dst) + 1) <- rot_hi
    done;
    (* chi. *)
    for y = 0 to 4 do
      for x = 0 to 4 do
        let i = 2 * (x + (5 * y)) in
        let i1 = 2 * (((x + 1) mod 5) + (5 * y)) in
        let i2 = 2 * (((x + 2) mod 5) + (5 * y)) in
        state.(i) <- b.(i) lxor (lnot b.(i1) land b.(i2) land mask32);
        state.(i + 1) <-
          b.(i + 1) lxor (lnot b.(i1 + 1) land b.(i2 + 1) land mask32)
      done
    done;
    (* iota. *)
    state.(0) <- state.(0) lxor rc_lo.(round);
    state.(1) <- state.(1) lxor rc_hi.(round)
  done

let digest msg =
  let state = Array.make 50 0 in
  let len = String.length msg in
  let padded_len = ((len / rate_bytes) + 1) * rate_bytes in
  let padded = Bytes.make padded_len '\000' in
  Bytes.blit_string msg 0 padded 0 len;
  Bytes.set padded len '\001';
  Bytes.set padded (padded_len - 1)
    (Char.chr (Char.code (Bytes.get padded (padded_len - 1)) lor 0x80));
  (* Absorb. *)
  let block = ref 0 in
  while !block < padded_len do
    for w = 0 to (rate_bytes / 8) - 1 do
      let base = !block + (8 * w) in
      let lo =
        Char.code (Bytes.get padded base)
        lor (Char.code (Bytes.get padded (base + 1)) lsl 8)
        lor (Char.code (Bytes.get padded (base + 2)) lsl 16)
        lor (Char.code (Bytes.get padded (base + 3)) lsl 24)
      in
      let hi =
        Char.code (Bytes.get padded (base + 4))
        lor (Char.code (Bytes.get padded (base + 5)) lsl 8)
        lor (Char.code (Bytes.get padded (base + 6)) lsl 16)
        lor (Char.code (Bytes.get padded (base + 7)) lsl 24)
      in
      state.(2 * w) <- state.(2 * w) lxor lo;
      state.((2 * w) + 1) <- state.((2 * w) + 1) lxor hi
    done;
    keccak_f state;
    block := !block + rate_bytes
  done;
  (* Squeeze 32 bytes (a single rate block suffices). *)
  let out = Bytes.create 32 in
  for w = 0 to 3 do
    let lo = state.(2 * w) and hi = state.((2 * w) + 1) in
    Bytes.set out (8 * w) (Char.chr (lo land 0xff));
    Bytes.set out ((8 * w) + 1) (Char.chr ((lo lsr 8) land 0xff));
    Bytes.set out ((8 * w) + 2) (Char.chr ((lo lsr 16) land 0xff));
    Bytes.set out ((8 * w) + 3) (Char.chr ((lo lsr 24) land 0xff));
    Bytes.set out ((8 * w) + 4) (Char.chr (hi land 0xff));
    Bytes.set out ((8 * w) + 5) (Char.chr ((hi lsr 8) land 0xff));
    Bytes.set out ((8 * w) + 6) (Char.chr ((hi lsr 16) land 0xff));
    Bytes.set out ((8 * w) + 7) (Char.chr ((hi lsr 24) land 0xff))
  done;
  Bytes.to_string out

let digest_hex msg = Hexutil.to_hex (digest msg)
let selector prototype = String.sub (digest prototype) 0 4
let selector_hex prototype = Hexutil.to_hex (selector prototype)

module Memo = struct
  type stats = { hits : int; misses : int }

  (* One memo table per domain (Domain.DLS): lookups are lock-free and
     never contend, at the cost of each worker warming its own table.
     Signature populations are small (a few hundred distinct prototypes
     per landscape), so the duplication is bytes, not megabytes. *)
  let slot =
    Domain.DLS.new_key (fun () ->
        ((Hashtbl.create 256 : (string, string) Hashtbl.t), ref 0, ref 0))

  let selector prototype =
    let tbl, hits, misses = Domain.DLS.get slot in
    match Hashtbl.find_opt tbl prototype with
    | Some s ->
        incr hits;
        s
    | None ->
        incr misses;
        let s = selector prototype in
        Hashtbl.replace tbl prototype s;
        s

  let stats () =
    let _, hits, misses = Domain.DLS.get slot in
    { hits = !hits; misses = !misses }

  let reset () =
    let tbl, hits, misses = Domain.DLS.get slot in
    Hashtbl.reset tbl;
    hits := 0;
    misses := 0
end
