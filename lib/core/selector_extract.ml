module Disasm = Evm.Disasm
module Opcode = Evm.Opcode

let dedup_keep_order items =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.replace seen x ();
        true
      end)
    items

let naive_push4 code = dedup_keep_order (Disasm.push_operands 4 code)

(* A PUSH4 participates in a dispatcher when, within a short window after
   it, a comparison opcode consumes it and a conditional jump follows: the
   solc shape is [DUP1; PUSH4 sel; EQ; PUSH2 dest; JUMPI], Vyper and older
   solc variants use SUB/XOR in place of EQ.  Constants embedded for call
   encoding (PUSH4 sel; PUSH1 0xe0; SHL) have no comparison and are
   rejected. *)
let dispatcher_selectors code =
  let instrs = Array.of_list (Disasm.disassemble code) in
  let n = Array.length instrs in
  let window = 4 in
  let is_compare op =
    Opcode.equal op Opcode.EQ || Opcode.equal op Opcode.SUB
    || Opcode.equal op Opcode.XOR
  in
  let is_jumpi op = Opcode.equal op Opcode.JUMPI in
  let found = ref [] in
  for i = 0 to n - 1 do
    match instrs.(i).Disasm.opcode with
    | Opcode.PUSH 4 when String.length instrs.(i).Disasm.operand = 4 ->
        (* Find a comparison within the window, then a JUMPI within a
           further window, without crossing a block terminator. *)
        let rec scan_compare j =
          if j >= n || j > i + window then None
          else
            let op = instrs.(j).Disasm.opcode in
            if is_compare op then Some j
            else if Opcode.is_terminator op || is_jumpi op then None
            else scan_compare (j + 1)
        in
        let rec scan_jumpi j limit =
          if j >= n || j > limit then false
          else
            let op = instrs.(j).Disasm.opcode in
            if is_jumpi op then true
            else if Opcode.is_terminator op then false
            else scan_jumpi (j + 1) limit
        in
        (match scan_compare (i + 1) with
        | Some cmp when scan_jumpi (cmp + 1) (cmp + window) ->
            found := instrs.(i).Disasm.operand :: !found
        | _ -> ())
    | _ -> ()
  done;
  dedup_keep_order (List.rev !found)

(* Like [dispatcher_selectors], but also recover the JUMPI destination:
   in the solc shape [DUP1; PUSH4 sel; EQ; PUSH2 dest; JUMPI] the
   destination is the PUSH immediately before the JUMPI. *)
let dispatcher_table code =
  let instrs = Array.of_list (Disasm.disassemble code) in
  let n = Array.length instrs in
  let window = 4 in
  let is_compare op =
    Opcode.equal op Opcode.EQ || Opcode.equal op Opcode.SUB
    || Opcode.equal op Opcode.XOR
  in
  let entries = ref [] in
  let seen = Hashtbl.create 8 in
  for i = 0 to n - 1 do
    match instrs.(i).Disasm.opcode with
    | Opcode.PUSH 4 when String.length instrs.(i).Disasm.operand = 4 ->
        let rec scan_compare j =
          if j >= n || j > i + window then None
          else
            let op = instrs.(j).Disasm.opcode in
            if is_compare op then Some j
            else if Opcode.is_terminator op || Opcode.equal op Opcode.JUMPI then None
            else scan_compare (j + 1)
        in
        let rec scan_jumpi j limit last_push =
          if j >= n || j > limit then None
          else
            let instr = instrs.(j) in
            if Opcode.equal instr.Disasm.opcode Opcode.JUMPI then last_push
            else if Opcode.is_terminator instr.Disasm.opcode then None
            else
              let last_push =
                match instr.Disasm.opcode with
                | Opcode.PUSH _ -> Some instr
                | _ -> last_push
              in
              scan_jumpi (j + 1) limit last_push
        in
        (match scan_compare (i + 1) with
        | Some cmp -> (
            match scan_jumpi (cmp + 1) (cmp + window) None with
            | Some push_instr ->
                let sel = instrs.(i).Disasm.operand in
                if not (Hashtbl.mem seen sel) then begin
                  Hashtbl.replace seen sel ();
                  match U256.to_int (Disasm.operand_value push_instr) with
                  | Some dest -> entries := (sel, dest) :: !entries
                  | None -> ()
                end
            | None -> ())
        | None -> ())
    | _ -> ()
  done;
  List.rev !entries

let probe_avoid_set = naive_push4
let selector_of_signature = Keccak.Memo.selector
