(** Emulation-based proxy detection — the heart of ProxioN (§4.1-§4.2).

    Step 1 disassembles the contract and rejects it outright when no
    DELEGATECALL opcode exists.  Step 2 executes the contract in an
    emulated EVM with crafted call data: a random 4-byte selector distinct
    from every PUSH4 operand in the code (so the dispatcher cannot match)
    followed by pseudo-random arguments.  The contract is a proxy exactly
    when the emulation performs a DELEGATECALL that forwards the probe call
    data to another contract.  The detector also reports where the logic
    address came from — hard-coded bytes, a storage slot (recovered from
    the traced SLOAD), or computed some other way — which drives both logic
    resolution (§4.3) and standard classification (Table 4). *)

type target_source =
  | Hardcoded  (** The 20 address bytes appear verbatim in the bytecode. *)
  | Storage_slot of U256.t  (** Loaded from this slot during emulation. *)
  | Computed  (** Derived dynamically (e.g. mapping lookups). *)

type verdict =
  | Not_proxy_no_delegatecall  (** Rejected by the §4.1 prefilter. *)
  | Not_proxy_no_forward
      (** DELEGATECALL present but the probe was not forwarded (library
          calls, reverting fallbacks, diamond gating...). *)
  | Proxy of { target : Evm.Address.t; source : target_source }
  | Emulation_error of string
      (** The probe aborted with an interpreter error (§6.2 reports this
          rate; 1.2-4.9% in the paper). *)

type t = {
  address : Evm.Address.t;
  verdict : verdict;
  probe_selector : string;  (** The crafted 4-byte selector used. *)
  steps : int;  (** Instructions interpreted during the probe. *)
}

val is_proxy : t -> bool

val probe_calldata : code:string -> seed:int -> string
(** The crafted call data: a selector from {!Selector_extract.probe_avoid_set}
    avoidance plus one pseudo-random argument word. *)

val detect :
  ?seed:int ->
  ?fuel:Evm.Interp.fuel ->
  ?tracer:Evm.Interp.tracer ->
  host:Evm.Host.t ->
  Evm.Address.t ->
  t
(** Probe one contract.  State changes made by the emulation are rolled
    back through the host's snapshot mechanism, so detection never mutates
    the world it inspects — including when a [fuel] watchdog aborts the
    probe mid-emulation with {!Evm.Interp.Fuel_exhausted} (the snapshot is
    reverted before the exception propagates to the caller).  [tracer] is
    an observer composed {e under} the detection tracer — every hook the
    probe sees is forwarded to it (telemetry uses this to sample emulation
    frames); it cannot alter the verdict. *)

val detect_code : ?seed:int -> string -> t
(** Convenience: probe bare bytecode in a fresh in-memory world (the hidden
    contract case — no storage, no transactions).  Slot-based proxies whose
    slot holds zero still register as proxies when the delegate call to the
    zero/empty target forwards the call data. *)
