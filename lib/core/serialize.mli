(** JSON round-tripping for analysis results (the checkpoint format).

    Every converter pair satisfies [of_json (to_json v) = Ok v] with a
    structurally identical value — the property the engine's
    checkpoint/resume machinery relies on to make a resumed run
    byte-identical to an uninterrupted one.  Raw byte strings (selectors,
    code hashes) are hex-encoded; addresses and 256-bit words use their
    canonical 0x-hex forms. *)

val detection_to_json : Proxy_detect.t -> Report.Json.t
val detection_of_json : Report.Json.t -> (Proxy_detect.t, string) result

val verdict_to_json : Proxy_detect.verdict -> Report.Json.t
val verdict_of_json : Report.Json.t -> (Proxy_detect.verdict, string) result

val resolution_to_json : Logic_resolve.resolution -> Report.Json.t

val resolution_of_json :
  Report.Json.t -> (Logic_resolve.resolution, string) result

val func_collision_to_json : Func_collision.collision -> Report.Json.t

val func_collision_of_json :
  Report.Json.t -> (Func_collision.collision, string) result

val storage_collision_to_json : Storage_collision.collision -> Report.Json.t

val storage_collision_of_json :
  Report.Json.t -> (Storage_collision.collision, string) result

val pair_report_to_json : Analysis.pair_report -> Report.Json.t

val pair_report_of_json :
  Report.Json.t -> (Analysis.pair_report, string) result

val contract_report_to_json : Analysis.contract_report -> Report.Json.t

val contract_report_of_json :
  Report.Json.t -> (Analysis.contract_report, string) result

val stats_to_json : Analysis.stats -> Report.Json.t
val stats_of_json : Report.Json.t -> (Analysis.stats, string) result

val report_kind : string
(** The [kind] tag stamped on full-report documents,
    ["proxion.report"]. *)

val report_to_json : Analysis.report -> Report.Json.t
(** The full pipeline report (contracts + stats) — the machine-readable
    output the CLI's [--json] consumers read, the payload the daemon's
    store snapshots and query responses embed, and the equality witness
    the resume tests compare.  The document is stamped with
    [Report.Schema.version] and {!report_kind}. *)

val report_of_json : Report.Json.t -> (Analysis.report, string) result
(** Inverse of {!report_to_json}; rejects documents whose
    [schema_version] or [kind] differs from the current one. *)
