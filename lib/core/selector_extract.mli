(** Function-selector recovery from bytecode (§4.2, §5.1).

    Two extractors with very different precision:

    - {!naive_push4} harvests every 4-byte PUSH4 operand.  Sound for probe
      avoidance (crafted call data must dodge all of them) but wildly
      imprecise as a function list, because arbitrary constants also follow
      PUSH4 — the paper's §3.1 third challenge.
    - {!dispatcher_selectors} recovers only selectors that take part in a
      dispatcher comparison ([PUSH4 sel] whose value is consumed by [EQ] / [SUB]
      / [XOR] and then steers a [JUMPI]) — the Panoramix-style recovery
      ProxioN uses for function-collision detection on bytecode. *)

val naive_push4 : string -> string list
(** All complete 4-byte PUSH4 operands, deduplicated, in code order. *)

val dispatcher_selectors : string -> string list
(** Selectors guarded by dispatcher patterns, deduplicated, in code order. *)

val dispatcher_table : string -> (string * int) list
(** Dispatcher selectors together with the code offset their comparison
    jumps to (the function body's entry block) — what Panoramix-style
    decompilation recovers.  Entries without a decodable jump target are
    omitted. *)

val probe_avoid_set : string -> string list
(** The set a crafted probe must avoid: {!naive_push4} (the paper: "while
    not all 4-byte data following PUSH4 opcodes is a function signature,
    ProxioN safely avoids all of them"). *)

val selector_of_signature : string -> string
(** Memoized signature-to-selector hashing ({!Keccak.Memo.selector});
    shared with {!Func_collision} so repeat prototypes across pairs hash
    once per domain. *)
