(** The staged, resumable ProxioN analyzer — the engine-backed
    replacement for the monolithic [Pipeline.run].

    An analyzer owns a batch-scheduled work queue of contract addresses
    plus two cross-run dedup caches (detection results per bytecode hash,
    collision results per bytecode-hash pair).  Each contract flows
    through the six stages — dedup-check, proxy-probe, logic-resolve,
    classify, func-collision, storage-collision — with a structured event
    emitted per stage (wall-clock timing, API-call and emulation-step
    deltas) through the {!Engine} subscriber interface.

    Failure degrades gracefully: a per-contract emulation error is
    recorded in the report as before, and an exception escaping a stage
    skips that contract (with [Stage_errored]/[Item_skipped] events)
    instead of aborting the run.

    Runs are interruptible and resumable: {!checkpoint} serializes the
    pending queue, completed reports, both dedup caches and the partial
    counters; {!restore} rebuilds the analyzer so the finished report is
    byte-identical to an uninterrupted run over the same chain. *)

type t

val create :
  ?config:Analysis.Config.t ->
  chain:Chain.t ->
  source:Analysis.source_lookup ->
  unit ->
  t
(** A fresh analyzer with an empty queue and empty caches. *)

val config : t -> Analysis.Config.t
val engine : t -> (Evm.Address.t, Analysis.contract_report) Engine.t
(** The underlying engine, for direct access to scheduling state. *)

(** {1 Scheduling} *)

val submit : t -> Evm.Address.t list -> unit
(** Enqueue an address batch (FIFO; duplicates are analyzed again but
    hit the dedup cache). *)

val submit_all : t -> unit
(** Enqueue every contract on the chain, in deployment order — the
    default population [Pipeline.run] analyzed. *)

val run : ?max_batches:int -> t -> unit
(** Process queued batches; [max_batches] bounds this call, leaving the
    rest of the queue for a later [run] or a {!checkpoint}. *)

val pending : t -> int
val subscribe : t -> (Engine.event -> unit) -> unit
val stage_totals_table : t -> string
val skipped : t -> (string * string) list

(** {1 Results} *)

val report : t -> Analysis.report
(** The report over everything completed so far.  After the queue
    drains, this equals what [Pipeline.run] returns for the same
    addresses and configuration. *)

(** {1 Checkpointing} *)

val checkpoint : t -> Report.Json.t
(** Serialize queue + dedup caches + completed reports + counters. *)

val restore :
  ?batch_size:int ->
  ?domains:int ->
  chain:Chain.t ->
  source:Analysis.source_lookup ->
  Report.Json.t ->
  (t, string) result
(** Rebuild from a {!checkpoint} against the same chain and source
    oracle.  [batch_size] and [domains] override the checkpointed
    configuration; changing [domains] never changes the resumed run's
    output, only its wall-clock time. *)
