(** The staged, resumable ProxioN analyzer — the engine-backed
    replacement for the retired monolithic pipeline entry point.

    An analyzer owns a batch-scheduled work queue of contract addresses
    plus two cross-run dedup caches (detection results per bytecode hash,
    collision results per bytecode-hash pair).  Each contract flows
    through the six stages — dedup-check, proxy-probe, logic-resolve,
    classify, func-collision, storage-collision — with a structured event
    emitted per stage (wall-clock timing, API-call and emulation-step
    deltas) through the {!Engine} subscriber interface.

    Archive probes run through a {!Resilience.Transport} — one logical
    connection per contract, salted by the subject address, so seeded
    fault injection and retry jitter are independent of batch composition
    and worker count.  Failure degrades gracefully and {e classified}: an
    exception escaping a stage dead-letters that contract with its fault
    class ([Transient] / [Permanent] / [Budget_exhausted]), stage and
    attempt count (with [Stage_errored]/[Item_skipped] events) instead of
    aborting the run; {!requeue_transients} sends the recoverable ones
    around again.

    Runs are interruptible and resumable: {!checkpoint} serializes the
    pending queue, completed reports, the dead-letter list, both dedup
    caches and the partial counters; {!restore} rebuilds the analyzer so
    the finished report is byte-identical to an uninterrupted run over
    the same chain.  The resilience configuration — like the worker count
    — is an execution parameter, not analysis state: it is never
    serialized, and a checkpoint written under any fault plan restores
    under any other. *)

type t

val create :
  ?config:Analysis.Config.t ->
  ?resilience:Resilience.Transport.config ->
  ?crash_plan:Engine.crash_plan ->
  ?attempt_ceiling:int ->
  chain:Chain.t ->
  source:Analysis.source_lookup ->
  unit ->
  t
(** A fresh analyzer with an empty queue and empty caches.  [resilience]
    (default {!Resilience.Transport.default_config}: no injection, no
    budgets) configures every per-contract archive connection; its
    [step_budget] additionally arms a live per-item fuel watchdog inside
    the emulation probes (see {!Evm.Interp.guard_fuel}).  [crash_plan]
    and [attempt_ceiling] are handed to the engine (see
    {!Engine.create}). *)

val config : t -> Analysis.Config.t
val engine : t -> (Evm.Address.t, Analysis.contract_report) Engine.t
(** The underlying engine, for direct access to scheduling state. *)

val instrument :
  ?trace:Obs.Trace.t ->
  ?log:Obs.Log.t ->
  ?trace_sample:int ->
  Obs.Metrics.t ->
  t ->
  unit
(** Wire full telemetry into this analyzer: the engine-event recorders
    ({!Engine.Telemetry}) plus the analyzer's own families — RPC attempts
    per method/outcome, node requests per method, per-item EVM
    step/fuel histograms, probe call-frame counts, dedup hits, and
    (volatile) Keccak-memo statistics.  Per-item observations are
    recorded into registry shards absorbed in input order at the
    engine's merge barrier, so a snapshot with volatile families
    suppressed is byte-identical at every worker count.  [trace] adds
    span collection: the deterministic coordinator timeline plus
    worker-lane RPC/EVM-frame detail for a 1-in-[trace_sample] (default
    16; 0 disables) subset of items chosen by address hash.  [log]
    attaches the structured progress backend.  Call once, before
    {!run}. *)

val set_request_ctx : t -> Obs.Trace.ctx option -> unit
(** Set (or clear, with [None]) the request-scoped trace context.
    While set, {e every} item is treated as trace-sampled and its
    worker-lane RPC and EVM-frame spans carry the context's [trace_id]
    with the context's span as [parent_span_id] — the daemon sets it
    around a traced [query]/[advance] so endpoint attempts (including
    quorum votes and hedges) and probe frames land inside the request
    span.  Callers must serialize: one request-scoped analysis at a
    time (the daemon's advance lock does this). *)

val request_ctx : t -> Obs.Trace.ctx option

val set_transport_observer :
  t -> (Resilience.Transport.event -> unit) option -> unit
(** Observe every raw transport event (dispatches, retries, breaker
    flips, quorum disagreements, hedges) from whatever worker domain
    produced it — the daemon's flight recorder taps this.  The callback
    must be thread-safe and cheap. *)

(** {1 Scheduling} *)

val submit : t -> Evm.Address.t list -> unit
(** Enqueue an address batch (FIFO; duplicates are analyzed again but
    hit the dedup cache). *)

val submit_all : t -> unit
(** Enqueue every contract on the chain, in deployment order — the
    default population a whole-chain scan analyzes. *)

val run : ?max_batches:int -> t -> unit
(** Process queued batches; [max_batches] bounds this call, leaving the
    rest of the queue for a later [run] or a {!checkpoint}. *)

val pending : t -> int
val subscribe : t -> (Engine.event -> unit) -> unit
val stage_totals_table : t -> string

val skipped : t -> Evm.Address.t Engine.skip_record list
(** The dead-letter list: every contract dropped by error isolation with
    its classification, failing stage and attempt count. *)

val skipped_pairs : t -> (string * string) list
(** [(subject, message)] projection of {!skipped}. *)

val requeue : ?classes:Engine.skip_class list -> t -> int
(** Push dead-letter entries of the given classes (default: the
    recoverable [Transient], [Budget_exhausted] and [Worker_crashed])
    back onto the work queue; returns how many moved, honoring the
    engine's attempt ceiling.  Run the analyzer again to retry them. *)

val requeue_transients : t -> int
(** {!requeue} with the default classes. *)

(** {1 Results} *)

val report : t -> Analysis.report
(** The report over everything completed so far.  After the queue
    drains, this equals what {!Pipeline.analyze} returns for the same
    addresses and configuration. *)

val drain_results : t -> Analysis.contract_report list
(** Completed per-contract reports since the previous drain, in
    completion (= submission) order; clears the underlying engine's
    result buffer so a long-lived analyzer — the query daemon reuses one
    across increments — stays bounded and its {!checkpoint}s stay small.
    {!report} called after a drain covers only undrained results. *)

val unique_codes : t -> int
(** Distinct code hashes the dedup cache currently holds (the
    [s_unique_codes] statistic). *)

val invalidate_code_hash : t -> string -> unit
(** Drop the dedup cache's detection entry for a (raw, 32-byte) code
    hash, forcing the next submitted subject with that hash to re-probe
    fresh.  The daemon's incremental mode calls this for every hash
    whose cache {e owner} (the earliest deployed holder) is dirty, so
    re-analysis repopulates the cache exactly as a cold run would. *)

val refresh_head : t -> unit
(** Re-snapshot the sequential-path emulation host at the chain's
    current head, so probes observe the post-advance block number and
    timestamp exactly as a fresh analyzer would.  Call after the chain
    advances under a live analyzer. *)

(** {1 Checkpointing} *)

val checkpoint : t -> Report.Json.t
(** Serialize queue + dedup caches + completed reports + counters. *)

val restore :
  ?batch_size:int ->
  ?domains:int ->
  ?resilience:Resilience.Transport.config ->
  ?crash_plan:Engine.crash_plan ->
  ?attempt_ceiling:int ->
  chain:Chain.t ->
  source:Analysis.source_lookup ->
  Report.Json.t ->
  (t, string) result
(** Rebuild from a {!checkpoint} against the same chain and source
    oracle.  [batch_size] and [domains] override the checkpointed
    configuration; changing [domains] never changes the resumed run's
    output, only its wall-clock time.  [resilience], [crash_plan] and
    [attempt_ceiling] apply to the resumed run only — they are execution
    parameters, never part of the checkpoint. *)
