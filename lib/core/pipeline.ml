(* The historical entry point of the ProxioN system, now a thin
   compatibility facade over the staged {!Analyzer} engine.  All types are
   re-exported from {!Analysis} so existing consumers keep compiling and
   producing identical reports. *)

module Config = Analysis.Config

type source_lookup = Analysis.source_lookup

type analysis_method = Analysis.analysis_method =
  | Source_source
  | Mixed
  | Bytecode_bytecode

type pair_report = Analysis.pair_report = {
  p_proxy : Evm.Address.t;
  p_logic : Evm.Address.t;
  p_method : analysis_method;
  p_func_collisions : Func_collision.collision list;
  p_storage_collisions : Storage_collision.collision list;
  p_honeypot : bool;
}

type contract_report = Analysis.contract_report = {
  r_address : Evm.Address.t;
  r_code_hash : string;
  r_detection : Proxy_detect.t;
  r_standard : Standard_classify.standard option;
  r_resolution : Logic_resolve.resolution option;
  r_pairs : pair_report list;
  r_dedup_hit : bool;
}

type stats = Analysis.stats = {
  s_analyzed : int;
  s_proxies : int;
  s_emulation_errors : int;
  s_pairs : int;
  s_func_colliding_pairs : int;
  s_storage_colliding_pairs : int;
  s_verified_storage_pairs : int;
  s_honeypot_pairs : int;
  s_dedup_hits : int;
  s_unique_codes : int;
  s_api_calls : int;
  s_emulation_steps : int;
}

type report = Analysis.report = {
  contracts : contract_report list;
  stats : stats;
}

let is_proxy_report = Analysis.is_proxy_report
let proxies = Analysis.proxies

let analyze ?(config = Config.default) ?addresses ~chain ~source () =
  (* Preserve the historical side effect: the chain's API counter starts
     from zero for each full-pipeline invocation. *)
  Chain.reset_api_call_count chain;
  let t = Analyzer.create ~config ~chain ~source () in
  (match addresses with
  | Some l -> Analyzer.submit t l
  | None -> Analyzer.submit_all t);
  Analyzer.run t;
  Analyzer.report t
