module Address = Evm.Address

type resolution = {
  current : Address.t option;
  historical : Address.t list;
  api_calls : int;
  upgrade_count : int;
}

(* Algorithm 1 (PartitionBlocks), phrased as a level-synchronous breadth
   first search so every level of the divide-and-conquer tree issues its
   storage probes in one batched round-trip — the shape a real archive
   node is queried in.  The probes go through the resilient transport
   ([Transport.direct] when the caller passes none), which retries
   transient faults per batch entry and raises [Transport.Rpc_error] when
   an entry is exhausted or permanently rejected.  The memo table avoids
   re-querying a height that serves as both an upper and a lower endpoint
   of adjacent ranges, so the set of heights fetched (and hence the
   API-call count the paper reports in §6.1) is identical to the
   sequential recursion: every endpoint of every range in the recursion
   tree, each exactly once. *)
let algorithm1 ?transport chain address ~slot ~lower ~upper =
  if lower > upper then U256.Set.empty
  else begin
    let transport =
      match transport with
      | Some tr -> tr
      | None -> Resilience.Transport.direct chain
    in
    let memo = Hashtbl.create 64 in
    let addr_hex = Address.to_hex address in
    let slot_hex = U256.to_hex slot in
    let fetch_missing heights =
      let missing =
        List.sort_uniq compare heights
        |> List.filter (fun h -> not (Hashtbl.mem memo h))
      in
      if missing <> [] then begin
        let requests =
          List.map
            (fun h ->
              ( "eth_getStorageAt",
                [ addr_hex; slot_hex; U256.to_hex (U256.of_int h) ] ))
            missing
        in
        List.iter2
          (fun h hex -> Hashtbl.replace memo h (U256.of_hex hex))
          missing
          (Resilience.Transport.call_batch_exn transport requests)
      end
    in
    let rec loop ranges acc =
      match ranges with
      | [] -> acc
      | _ ->
          fetch_missing (List.concat_map (fun (l, u) -> [ l; u ]) ranges);
          let next, acc =
            List.fold_left
              (fun (next, acc) (l, u) ->
                let v_l = Hashtbl.find memo l in
                let v_u = Hashtbl.find memo u in
                if U256.equal v_l v_u then (next, U256.Set.add v_l acc)
                else
                  let mid = (l + u) / 2 in
                  ((mid + 1, u) :: (l, mid) :: next, acc))
              ([], acc) ranges
          in
          loop (List.rev next) acc
    in
    loop [ (lower, upper) ] U256.Set.empty
  end

let resolve_slot ?transport chain address ~slot =
  let before = Chain.api_call_count chain in
  let upper = Chain.height chain in
  let values = algorithm1 ?transport chain address ~slot ~lower:0 ~upper in
  let api_calls = Chain.api_call_count chain - before in
  let address_of v =
    let a = Address.of_u256 v in
    if Address.equal a Address.zero then None else Some a
  in
  (* Order the found values by first appearance: walk the (small) set and
     sort by the height of first occurrence via the recorded change list. *)
  let change_heights = Chain.storage_change_heights chain address slot in
  let first_height v =
    (* Find the first recorded change whose value matches; the archive
       answers point queries, so check each change height. *)
    let rec scan = function
      | [] -> max_int
      | h :: rest ->
          if U256.equal (Chain.get_storage_at chain address slot ~height:h) v
          then h
          else scan rest
    in
    scan change_heights
  in
  let historical =
    U256.Set.elements values
    |> List.filter_map (fun v -> Option.map (fun a -> (first_height v, a)) (address_of v))
    |> List.sort (fun (h1, _) (h2, _) -> compare h1 h2)
    |> List.map snd
  in
  let current_value = Chain.get_storage_at chain address slot ~height:upper in
  let current = address_of current_value in
  let upgrade_count = max 0 (List.length historical - 1) in
  { current; historical; api_calls = api_calls + 1; upgrade_count }

let resolve ?transport ?probed chain address
    (source : Proxy_detect.target_source) =
  match source with
  | Proxy_detect.Hardcoded -> (
      (* The probe already produced the target; minimal proxies keep one
         logic contract forever. *)
      match Minisol.Patterns.eip1167_logic_address (Chain.code_at chain address) with
      | Some target ->
          { current = Some target; historical = [ target ]; api_calls = 0; upgrade_count = 0 }
      | None ->
          (* Hard-coded but not canonical minimal bytes: still a single
             fixed target; extract it by re-probing. *)
          let host = Chain.host_at_head chain in
          let d = Proxy_detect.detect ~host address in
          (match d.Proxy_detect.verdict with
          | Proxy_detect.Proxy { target; _ } ->
              { current = Some target; historical = [ target ]; api_calls = 0; upgrade_count = 0 }
          | _ -> { current = None; historical = []; api_calls = 0; upgrade_count = 0 }))
  | Proxy_detect.Storage_slot slot -> resolve_slot ?transport chain address ~slot
  | Proxy_detect.Computed -> (
      match probed with
      | Some target when not (Address.equal target Address.zero) ->
          {
            current = Some target;
            historical = [ target ];
            api_calls = 0;
            upgrade_count = 0;
          }
      | _ -> { current = None; historical = []; api_calls = 0; upgrade_count = 0 })
