type source_lookup = Evm.Address.t -> Minisol.Ast.contract option

type analysis_method =
  | Source_source
  | Mixed
  | Bytecode_bytecode

type pair_report = {
  p_proxy : Evm.Address.t;
  p_logic : Evm.Address.t;
  p_method : analysis_method;
  p_func_collisions : Func_collision.collision list;
  p_storage_collisions : Storage_collision.collision list;
  p_honeypot : bool;
}

type contract_report = {
  r_address : Evm.Address.t;
  r_code_hash : string;
  r_detection : Proxy_detect.t;
  r_standard : Standard_classify.standard option;
  r_resolution : Logic_resolve.resolution option;
  r_pairs : pair_report list;
  r_dedup_hit : bool;
}

type stats = {
  s_analyzed : int;
  s_proxies : int;
  s_emulation_errors : int;
  s_pairs : int;
  s_func_colliding_pairs : int;
  s_storage_colliding_pairs : int;
  s_verified_storage_pairs : int;
  s_honeypot_pairs : int;
  s_dedup_hits : int;
  s_unique_codes : int;
  s_api_calls : int;
  s_emulation_steps : int;
}

type report = { contracts : contract_report list; stats : stats }

let is_proxy_report r = Proxy_detect.is_proxy r.r_detection
let proxies report = List.filter is_proxy_report report.contracts

let compute_stats ~dedup_hits ~unique_codes ~api_calls ~emulation_steps
    contracts =
  let all_pairs = List.concat_map (fun r -> r.r_pairs) contracts in
  let count f l = List.length (List.filter f l) in
  {
    s_analyzed = List.length contracts;
    s_proxies = count is_proxy_report contracts;
    s_emulation_errors =
      count
        (fun r ->
          match r.r_detection.Proxy_detect.verdict with
          | Proxy_detect.Emulation_error _ -> true
          | _ -> false)
        contracts;
    s_pairs = List.length all_pairs;
    s_func_colliding_pairs =
      count (fun p -> p.p_func_collisions <> []) all_pairs;
    s_storage_colliding_pairs =
      count (fun p -> p.p_storage_collisions <> []) all_pairs;
    s_verified_storage_pairs =
      count
        (fun p ->
          List.exists
            (fun (c : Storage_collision.collision) ->
              c.Storage_collision.verified)
            p.p_storage_collisions)
        all_pairs;
    s_honeypot_pairs = count (fun p -> p.p_honeypot) all_pairs;
    s_dedup_hits = dedup_hits;
    s_unique_codes = unique_codes;
    s_api_calls = api_calls;
    s_emulation_steps = emulation_steps;
  }

module Config = struct
  type t = {
    verify_storage : bool;
    dedup : bool;
    diamond_extension : bool;
    batch_size : int;
    domains : int;
  }

  let default =
    {
      verify_storage = true;
      dedup = true;
      diamond_extension = false;
      batch_size = 32;
      domains = 1;
    }

  let with_verify_storage verify_storage t = { t with verify_storage }
  let with_dedup dedup t = { t with dedup }
  let with_diamond_extension diamond_extension t = { t with diamond_extension }
  let with_batch_size batch_size t = { t with batch_size }
  let with_domains domains t = { t with domains }

  let validate t =
    let module V = Report.Validate in
    match
      V.all
        [
          V.positive ~field:"batch_size" t.batch_size;
          V.positive ~field:"domains" t.domains;
        ]
    with
    | Ok () -> Ok t
    | Error e -> Error e

  module Json = Report.Json

  let to_json t =
    Json.Obj
      [
        ("verify_storage", Json.Bool t.verify_storage);
        ("dedup", Json.Bool t.dedup);
        ("diamond_extension", Json.Bool t.diamond_extension);
        ("batch_size", Json.Int t.batch_size);
        ("domains", Json.Int t.domains);
      ]

  let of_json = function
    | Json.Obj kvs ->
        let bool_field name fallback =
          match List.assoc_opt name kvs with
          | Some (Json.Bool b) -> Ok b
          | None -> Ok fallback
          | Some _ -> Error (Printf.sprintf "config: %S must be a bool" name)
        in
        let ( let* ) = Result.bind in
        let* verify_storage =
          bool_field "verify_storage" default.verify_storage
        in
        let* dedup = bool_field "dedup" default.dedup in
        let* diamond_extension =
          bool_field "diamond_extension" default.diamond_extension
        in
        let* batch_size =
          match List.assoc_opt "batch_size" kvs with
          | Some (Json.Int n) when n > 0 -> Ok n
          | None -> Ok default.batch_size
          | Some _ -> Error "config: batch_size must be a positive int"
        in
        let* domains =
          match List.assoc_opt "domains" kvs with
          | Some (Json.Int n) when n > 0 -> Ok n
          | None -> Ok default.domains
          | Some _ -> Error "config: domains must be a positive int"
        in
        Ok { verify_storage; dedup; diamond_extension; batch_size; domains }
    | _ -> Error "config: expected an object"
end
