module Json = Report.Json
module Address = Evm.Address

let ( let* ) = Result.bind

(* ------------------------------------------------------------------ *)
(* Decoding helpers                                                    *)
(* ------------------------------------------------------------------ *)

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "missing field %S" name))
  | _ -> Error (Printf.sprintf "expected an object with field %S" name)

let dec_string name = function
  | Json.String s -> Ok s
  | _ -> Error (Printf.sprintf "field %S: expected a string" name)

let dec_int name = function
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "field %S: expected an int" name)

let dec_bool name = function
  | Json.Bool b -> Ok b
  | _ -> Error (Printf.sprintf "field %S: expected a bool" name)

let dec_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "field %S: expected a list" name)

let get_string json name = Result.bind (field name json) (dec_string name)
let get_int json name = Result.bind (field name json) (dec_int name)
let get_bool json name = Result.bind (field name json) (dec_bool name)
let get_list json name = Result.bind (field name json) (dec_list name)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let dec_address name s =
  match Hexutil.of_hex_opt s with
  | Some b when String.length b = 20 -> Ok b
  | _ -> Error (Printf.sprintf "field %S: bad address %s" name s)

let get_address json name = Result.bind (get_string json name) (dec_address name)

let dec_bytes name s =
  match Hexutil.of_hex_opt s with
  | Some b -> Ok b
  | None -> Error (Printf.sprintf "field %S: bad hex" name)

let get_bytes json name = Result.bind (get_string json name) (dec_bytes name)

let dec_u256 name s =
  match U256.of_hex s with
  | v -> Ok v
  | exception _ -> Error (Printf.sprintf "field %S: bad word %s" name s)

let get_u256 json name = Result.bind (get_string json name) (dec_u256 name)

let opt to_json = function None -> Json.Null | Some v -> to_json v

let get_opt json name of_json =
  match field name json with
  | Error _ | Ok Json.Null -> Ok None
  | Ok v ->
      let* d = of_json v in
      Ok (Some d)

(* ------------------------------------------------------------------ *)
(* Proxy detection                                                     *)
(* ------------------------------------------------------------------ *)

let target_source_to_json = function
  | Proxy_detect.Hardcoded -> Json.Obj [ ("kind", Json.String "hardcoded") ]
  | Proxy_detect.Storage_slot slot ->
      Json.Obj
        [
          ("kind", Json.String "storage_slot");
          ("slot", Json.String (U256.to_hex slot));
        ]
  | Proxy_detect.Computed -> Json.Obj [ ("kind", Json.String "computed") ]

let target_source_of_json json =
  let* kind = get_string json "kind" in
  match kind with
  | "hardcoded" -> Ok Proxy_detect.Hardcoded
  | "storage_slot" ->
      let* slot = get_u256 json "slot" in
      Ok (Proxy_detect.Storage_slot slot)
  | "computed" -> Ok Proxy_detect.Computed
  | other -> Error ("unknown target source " ^ other)

let verdict_to_json = function
  | Proxy_detect.Not_proxy_no_delegatecall ->
      Json.Obj [ ("kind", Json.String "not_proxy_no_delegatecall") ]
  | Proxy_detect.Not_proxy_no_forward ->
      Json.Obj [ ("kind", Json.String "not_proxy_no_forward") ]
  | Proxy_detect.Emulation_error msg ->
      Json.Obj
        [
          ("kind", Json.String "emulation_error");
          ("message", Json.String msg);
        ]
  | Proxy_detect.Proxy { target; source } ->
      Json.Obj
        [
          ("kind", Json.String "proxy");
          ("target", Json.String (Address.to_hex target));
          ("source", target_source_to_json source);
        ]

let verdict_of_json json =
  let* kind = get_string json "kind" in
  match kind with
  | "not_proxy_no_delegatecall" -> Ok Proxy_detect.Not_proxy_no_delegatecall
  | "not_proxy_no_forward" -> Ok Proxy_detect.Not_proxy_no_forward
  | "emulation_error" ->
      let* msg = get_string json "message" in
      Ok (Proxy_detect.Emulation_error msg)
  | "proxy" ->
      let* target = get_address json "target" in
      let* source = Result.bind (field "source" json) target_source_of_json in
      Ok (Proxy_detect.Proxy { target; source })
  | other -> Error ("unknown verdict " ^ other)

let detection_to_json (d : Proxy_detect.t) =
  Json.Obj
    [
      ("address", Json.String (Address.to_hex d.Proxy_detect.address));
      ("verdict", verdict_to_json d.Proxy_detect.verdict);
      ( "probe_selector",
        Json.String (Hexutil.to_hex d.Proxy_detect.probe_selector) );
      ("steps", Json.Int d.Proxy_detect.steps);
    ]

let detection_of_json json =
  let* address = get_address json "address" in
  let* verdict = Result.bind (field "verdict" json) verdict_of_json in
  let* probe_selector = get_bytes json "probe_selector" in
  let* steps = get_int json "steps" in
  Ok { Proxy_detect.address; verdict; probe_selector; steps }

(* ------------------------------------------------------------------ *)
(* Logic resolution                                                    *)
(* ------------------------------------------------------------------ *)

let resolution_to_json (r : Logic_resolve.resolution) =
  Json.Obj
    [
      ( "current",
        opt (fun a -> Json.String (Address.to_hex a)) r.Logic_resolve.current
      );
      ( "historical",
        Json.List
          (List.map
             (fun a -> Json.String (Address.to_hex a))
             r.Logic_resolve.historical) );
      ("api_calls", Json.Int r.Logic_resolve.api_calls);
      ("upgrade_count", Json.Int r.Logic_resolve.upgrade_count);
    ]

let resolution_of_json json =
  let* current =
    get_opt json "current" (function
      | Json.String s -> dec_address "current" s
      | _ -> Error "field \"current\": expected a string")
  in
  let* historical =
    Result.bind (get_list json "historical")
      (map_result (function
        | Json.String s -> dec_address "historical" s
        | _ -> Error "field \"historical\": expected strings"))
  in
  let* api_calls = get_int json "api_calls" in
  let* upgrade_count = get_int json "upgrade_count" in
  Ok { Logic_resolve.current; historical; api_calls; upgrade_count }

(* ------------------------------------------------------------------ *)
(* Collisions                                                          *)
(* ------------------------------------------------------------------ *)

let func_collision_to_json (c : Func_collision.collision) =
  Json.Obj
    [
      ("selector", Json.String (Hexutil.to_hex c.Func_collision.selector));
      ( "proxy_signature",
        opt (fun s -> Json.String s) c.Func_collision.proxy_signature );
      ( "logic_signature",
        opt (fun s -> Json.String s) c.Func_collision.logic_signature );
    ]

let func_collision_of_json json =
  let* selector = get_bytes json "selector" in
  let dec_sig name = function
    | Json.String s -> Ok s
    | _ -> Error (Printf.sprintf "field %S: expected a string" name)
  in
  let* proxy_signature = get_opt json "proxy_signature" (dec_sig "proxy_signature") in
  let* logic_signature = get_opt json "logic_signature" (dec_sig "logic_signature") in
  Ok { Func_collision.selector; proxy_signature; logic_signature }

let slot_id_to_json = function
  | Storage_access.Fixed slot ->
      Json.Obj
        [
          ("kind", Json.String "fixed");
          ("slot", Json.String (U256.to_hex slot));
        ]
  | Storage_access.Mapping base ->
      Json.Obj
        [
          ("kind", Json.String "mapping");
          ("slot", Json.String (U256.to_hex base));
        ]

let slot_id_of_json json =
  let* kind = get_string json "kind" in
  let* slot = get_u256 json "slot" in
  match kind with
  | "fixed" -> Ok (Storage_access.Fixed slot)
  | "mapping" -> Ok (Storage_access.Mapping slot)
  | other -> Error ("unknown slot kind " ^ other)

let region_to_json (r : Storage_collision.region) =
  Json.Obj
    [
      ("offset", Json.Int r.Storage_collision.g_offset);
      ("width", Json.Int r.Storage_collision.g_width);
      ("reads", Json.Bool r.Storage_collision.g_reads);
      ("writes", Json.Bool r.Storage_collision.g_writes);
      ("guards_caller", Json.Bool r.Storage_collision.g_guards_caller);
    ]

let region_of_json json =
  let* g_offset = get_int json "offset" in
  let* g_width = get_int json "width" in
  let* g_reads = get_bool json "reads" in
  let* g_writes = get_bool json "writes" in
  let* g_guards_caller = get_bool json "guards_caller" in
  Ok { Storage_collision.g_offset; g_width; g_reads; g_writes; g_guards_caller }

let storage_collision_to_json (c : Storage_collision.collision) =
  Json.Obj
    [
      ("slot", slot_id_to_json c.Storage_collision.slot);
      ("proxy_region", region_to_json c.Storage_collision.proxy_region);
      ("logic_region", region_to_json c.Storage_collision.logic_region);
      ("sensitive", Json.Bool c.Storage_collision.sensitive);
      ("verified", Json.Bool c.Storage_collision.verified);
    ]

let storage_collision_of_json json =
  let* slot = Result.bind (field "slot" json) slot_id_of_json in
  let* proxy_region = Result.bind (field "proxy_region" json) region_of_json in
  let* logic_region = Result.bind (field "logic_region" json) region_of_json in
  let* sensitive = get_bool json "sensitive" in
  let* verified = get_bool json "verified" in
  Ok { Storage_collision.slot; proxy_region; logic_region; sensitive; verified }

(* ------------------------------------------------------------------ *)
(* Reports                                                             *)
(* ------------------------------------------------------------------ *)

let method_to_json = function
  | Analysis.Source_source -> Json.String "source_source"
  | Analysis.Mixed -> Json.String "mixed"
  | Analysis.Bytecode_bytecode -> Json.String "bytecode_bytecode"

let method_of_json = function
  | Json.String "source_source" -> Ok Analysis.Source_source
  | Json.String "mixed" -> Ok Analysis.Mixed
  | Json.String "bytecode_bytecode" -> Ok Analysis.Bytecode_bytecode
  | _ -> Error "unknown analysis method"

let standard_to_json = function
  | Standard_classify.Eip1167 -> Json.String "eip1167"
  | Standard_classify.Eip1822 -> Json.String "eip1822"
  | Standard_classify.Eip1967 -> Json.String "eip1967"
  | Standard_classify.Other -> Json.String "other"

let standard_of_json = function
  | Json.String "eip1167" -> Ok Standard_classify.Eip1167
  | Json.String "eip1822" -> Ok Standard_classify.Eip1822
  | Json.String "eip1967" -> Ok Standard_classify.Eip1967
  | Json.String "other" -> Ok Standard_classify.Other
  | _ -> Error "unknown standard"

let pair_report_to_json (p : Analysis.pair_report) =
  Json.Obj
    [
      ("proxy", Json.String (Address.to_hex p.Analysis.p_proxy));
      ("logic", Json.String (Address.to_hex p.Analysis.p_logic));
      ("method", method_to_json p.Analysis.p_method);
      ( "func_collisions",
        Json.List (List.map func_collision_to_json p.Analysis.p_func_collisions)
      );
      ( "storage_collisions",
        Json.List
          (List.map storage_collision_to_json p.Analysis.p_storage_collisions)
      );
      ("honeypot", Json.Bool p.Analysis.p_honeypot);
    ]

let pair_report_of_json json =
  let* p_proxy = get_address json "proxy" in
  let* p_logic = get_address json "logic" in
  let* p_method = Result.bind (field "method" json) method_of_json in
  let* p_func_collisions =
    Result.bind (get_list json "func_collisions")
      (map_result func_collision_of_json)
  in
  let* p_storage_collisions =
    Result.bind
      (get_list json "storage_collisions")
      (map_result storage_collision_of_json)
  in
  let* p_honeypot = get_bool json "honeypot" in
  Ok
    {
      Analysis.p_proxy;
      p_logic;
      p_method;
      p_func_collisions;
      p_storage_collisions;
      p_honeypot;
    }

let contract_report_to_json (r : Analysis.contract_report) =
  Json.Obj
    [
      ("address", Json.String (Address.to_hex r.Analysis.r_address));
      ("code_hash", Json.String (Hexutil.to_hex r.Analysis.r_code_hash));
      ("detection", detection_to_json r.Analysis.r_detection);
      ("standard", opt standard_to_json r.Analysis.r_standard);
      ("resolution", opt resolution_to_json r.Analysis.r_resolution);
      ("pairs", Json.List (List.map pair_report_to_json r.Analysis.r_pairs));
      ("dedup_hit", Json.Bool r.Analysis.r_dedup_hit);
    ]

let contract_report_of_json json =
  let* r_address = get_address json "address" in
  let* r_code_hash = get_bytes json "code_hash" in
  let* r_detection = Result.bind (field "detection" json) detection_of_json in
  let* r_standard = get_opt json "standard" standard_of_json in
  let* r_resolution = get_opt json "resolution" resolution_of_json in
  let* r_pairs =
    Result.bind (get_list json "pairs") (map_result pair_report_of_json)
  in
  let* r_dedup_hit = get_bool json "dedup_hit" in
  Ok
    {
      Analysis.r_address;
      r_code_hash;
      r_detection;
      r_standard;
      r_resolution;
      r_pairs;
      r_dedup_hit;
    }

let stats_to_json (s : Analysis.stats) =
  Json.Obj
    [
      ("analyzed", Json.Int s.Analysis.s_analyzed);
      ("proxies", Json.Int s.Analysis.s_proxies);
      ("emulation_errors", Json.Int s.Analysis.s_emulation_errors);
      ("pairs", Json.Int s.Analysis.s_pairs);
      ("func_colliding_pairs", Json.Int s.Analysis.s_func_colliding_pairs);
      ("storage_colliding_pairs", Json.Int s.Analysis.s_storage_colliding_pairs);
      ("verified_storage_pairs", Json.Int s.Analysis.s_verified_storage_pairs);
      ("honeypot_pairs", Json.Int s.Analysis.s_honeypot_pairs);
      ("dedup_hits", Json.Int s.Analysis.s_dedup_hits);
      ("unique_codes", Json.Int s.Analysis.s_unique_codes);
      ("api_calls", Json.Int s.Analysis.s_api_calls);
      ("emulation_steps", Json.Int s.Analysis.s_emulation_steps);
    ]

let stats_of_json json =
  let* s_analyzed = get_int json "analyzed" in
  let* s_proxies = get_int json "proxies" in
  let* s_emulation_errors = get_int json "emulation_errors" in
  let* s_pairs = get_int json "pairs" in
  let* s_func_colliding_pairs = get_int json "func_colliding_pairs" in
  let* s_storage_colliding_pairs = get_int json "storage_colliding_pairs" in
  let* s_verified_storage_pairs = get_int json "verified_storage_pairs" in
  let* s_honeypot_pairs = get_int json "honeypot_pairs" in
  let* s_dedup_hits = get_int json "dedup_hits" in
  let* s_unique_codes = get_int json "unique_codes" in
  let* s_api_calls = get_int json "api_calls" in
  let* s_emulation_steps = get_int json "emulation_steps" in
  Ok
    {
      Analysis.s_analyzed;
      s_proxies;
      s_emulation_errors;
      s_pairs;
      s_func_colliding_pairs;
      s_storage_colliding_pairs;
      s_verified_storage_pairs;
      s_honeypot_pairs;
      s_dedup_hits;
      s_unique_codes;
      s_api_calls;
      s_emulation_steps;
    }

let report_kind = "proxion.report"

let report_to_json (r : Analysis.report) =
  Report.Schema.stamp ~kind:report_kind
    (Json.Obj
       [
         ( "contracts",
           Json.List (List.map contract_report_to_json r.Analysis.contracts) );
         ("stats", stats_to_json r.Analysis.stats);
       ])

let report_of_json json =
  let* json = Report.Schema.check ~kind:report_kind json in
  let* contracts =
    Result.bind (get_list json "contracts") (map_result contract_report_of_json)
  in
  let* stats = Result.bind (field "stats" json) stats_of_json in
  Ok { Analysis.contracts; stats }
