(** Finding every logic contract ever associated with a proxy (§4.3).

    Minimal proxies hard-code a single logic address in their bytecode.
    Slot-based proxies store it in a storage slot; ProxioN recovers the full
    history of that slot with Algorithm 1 — a divide-and-conquer search over
    block heights that only queries [getStorageAt] at range endpoints,
    splitting a range exactly when its endpoint values differ.  Against a
    15-million-block chain this takes tens of API calls instead of millions
    (§6.1 reports an average of 26). *)

type resolution = {
  current : Evm.Address.t option;  (** Logic at head height (None if unset). *)
  historical : Evm.Address.t list;
      (** Every non-zero address ever stored, oldest first. *)
  api_calls : int;  (** getStorageAt calls Algorithm 1 spent. *)
  upgrade_count : int;
      (** Number of logic-address changes after the first assignment
          (Figure 6's per-proxy upgrade count). *)
}

val algorithm1 :
  ?transport:Resilience.Transport.t ->
  Chain.t -> Evm.Address.t -> slot:U256.t -> lower:int -> upper:int -> U256.Set.t
(** The paper's Algorithm 1 verbatim: the set of values the slot held at any
    height in [lower, upper], assuming values are not reused (§4.3).  The
    storage probes go through [transport] (default: a pass-through
    {!Resilience.Transport.direct} over [chain]), so transient archive
    faults are retried per batch entry; an exhausted or permanently
    rejected probe raises {!Resilience.Transport.Rpc_error}. *)

val resolve_slot :
  ?transport:Resilience.Transport.t ->
  Chain.t -> Evm.Address.t -> slot:U256.t -> resolution
(** Run Algorithm 1 over the whole chain and order the found addresses by
    their first appearance. *)

val resolve :
  ?transport:Resilience.Transport.t ->
  ?probed:Evm.Address.t ->
  Chain.t -> Evm.Address.t -> Proxy_detect.target_source -> resolution
(** Dispatch on how the proxy finds its logic: hard-coded targets resolve to
    themselves with zero API calls; slot-based targets run Algorithm 1
    through [transport]; computed targets (beacons, facets) resolve to the
    [probed] target the emulation observed, when given — history is
    invisible to the slot search for them. *)
