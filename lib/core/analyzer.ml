module Address = Evm.Address
module Config = Analysis.Config
module Json = Report.Json

(* Detection results cached per code hash.  A cached slot-based proxy needs
   only a storage read for the new address; everything else transfers
   as-is. *)
type cached_detection =
  | C_verdict of Proxy_detect.verdict
  | C_slot_proxy of U256.t

(* Telemetry wiring: the shared registry, the metric families the
   analyzer records per item (through input-order-merged shards), and the
   optional span collector with its 1-in-N item sampling factor for
   worker-lane RPC/EVM-frame detail. *)
type telemetry = {
  tm_registry : Obs.Metrics.t;
  tm_trace : Obs.Trace.t option;
  tm_sample : int;
  tm_rpc_attempts : Obs.Metrics.family;
  tm_api_methods : Obs.Metrics.family;
  tm_endpoint_attempts : Obs.Metrics.family;
  tm_endpoint_disagreements : Obs.Metrics.family;
  tm_endpoint_hedges : Obs.Metrics.family;
  tm_item_steps : Obs.Metrics.family;
  tm_fuel_used : Obs.Metrics.family;
  tm_evm_frames : Obs.Metrics.family;
  tm_dedup_hits : Obs.Metrics.family;
  (* Pre-resolved handles for the hottest labeled series, keyed by label
     values.  Only used on the sequential (coordinator) path, where
     observations go straight into the root registry — worker shards are
     short-lived, so handles into them would be orphaned by [absorb]. *)
  tm_attempt_handles : (string * string, Obs.Metrics.handle) Hashtbl.t;
  tm_method_handles : (string, Obs.Metrics.handle) Hashtbl.t;
  tm_item_steps_h : Obs.Metrics.handle;
  tm_fuel_used_h : Obs.Metrics.handle;
  tm_evm_frames_h : Obs.Metrics.handle;
  tm_dedup_hits_h : Obs.Metrics.handle;
}

let attempt_handle tm ~meth ~outcome =
  match Hashtbl.find_opt tm.tm_attempt_handles (meth, outcome) with
  | Some h -> h
  | None ->
      let h =
        Obs.Metrics.handle
          ~labels:[ ("method", meth); ("outcome", outcome) ]
          tm.tm_registry tm.tm_rpc_attempts
      in
      Hashtbl.replace tm.tm_attempt_handles (meth, outcome) h;
      h

let method_handle tm meth =
  match Hashtbl.find_opt tm.tm_method_handles meth with
  | Some h -> h
  | None ->
      let h =
        Obs.Metrics.handle
          ~labels:[ ("method", meth) ]
          tm.tm_registry tm.tm_api_methods
      in
      Hashtbl.replace tm.tm_method_handles meth h;
      h

(* Per-item observation state: a private registry shard (absorbed at the
   item's merge point) plus the sampling decision — a pure function of
   the subject address, so worker count and scheduling never change which
   items carry trace detail. *)
type item_obs = {
  io_shard : Obs.Metrics.t;
  io_sampled : bool;
  io_frames : int ref;
}

type t = {
  engine : (Address.t, Analysis.contract_report) Engine.t;
  chain : Chain.t;
  source : Analysis.source_lookup;
  cfg : Config.t;
  resilience : Resilience.Transport.config;
  mutable host : Evm.Host.t;
  par : bool; (* domains > 1: shared state needs locking *)
  views : (Chain.t * Evm.Host.t) option array;
      (* Per-worker chain view + head host, created lazily on the worker's
         first item and reused for the rest of the run — building an
         overlay per item was the dominant per-item parallel overhead.
         Safe to reuse because the sequential path already runs every item
         against one shared head host (probe effects are fully reverted);
         per-item API/method accounting samples deltas against the view's
         running counters.  Cleared at run boundaries ([run],
         [refresh_head]) so a mutated chain never leaks a stale view. *)
  cache_lock : Mutex.t;
  merge_lock : Mutex.t;
  detection_cache : (string, cached_detection) Hashtbl.t;
  pair_cache :
    ( string * string,
      Func_collision.collision list * Storage_collision.collision list )
    Hashtbl.t;
  dedup_hits : int ref;
  steps_total : int ref;
  api_calls : int ref;
  mutable telemetry : telemetry option;
  req_ctx : Obs.Trace.ctx option Atomic.t;
      (* Request-scoped trace context (daemon [query]/[advance]): while
         set, every item is treated as sampled and its RPC/EVM spans
         carry the context's trace/span ids.  Only one request-scoped
         analysis runs at a time (the daemon serializes them under its
         advance lock), so a plain atomic slot suffices. *)
  transport_obs : (Resilience.Transport.event -> unit) option Atomic.t;
      (* External observer of raw transport events (the daemon's flight
         recorder); called from worker domains, so it must be
         thread-safe. *)
}

(* Per-item execution environment.  Sequentially it aliases the analyzer's
   chain, head host and counters — the exact pre-parallel code path.  On a
   worker domain it holds a private {!Chain.worker_view} (own API-call
   counter, copy-on-write host) and fresh counters that are folded into
   the analyzer's totals when the item completes; int sums commute, so the
   totals at every batch barrier match a sequential run exactly. *)
type env = {
  e_chain : Chain.t;
  e_host : Evm.Host.t;
  e_steps : int ref;
  e_dedup : int ref;
  e_transport : Resilience.Transport.t;
      (* One logical connection per item, salted by the subject address:
         fault injection and jitter depend only on (plan seed, subject,
         per-connection attempt index), never on scheduling. *)
  e_steps0 : int; (* step-counter baseline at item start (step budget) *)
  e_fuel : Evm.Interp.fuel option;
      (* Live watchdog allowance shared by every probe emulation of the
         item; sized by the transport step budget.  The post-stage budget
         check still runs — fuel is the in-flight enforcement that stops
         a looping bytecode from ever reaching that check. *)
  e_tracer : Evm.Interp.tracer;
      (* Telemetry observer composed under the probe's own tracer:
         counts call frames, and records frame spans for sampled
         items.  [Interp.no_tracer] when telemetry is off. *)
}

let config t = t.cfg
let engine t = t.engine

(* The dedup caches are shared across workers; chains grouped by bytecode
   hash (see [group_key]) guarantee all accesses to any given key happen
   in input order, and this lock makes the table mutations themselves
   safe.  Sequential runs skip the lock entirely. *)
let with_caches t f =
  if not t.par then f ()
  else begin
    Mutex.lock t.cache_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.cache_lock) f
  end

(* ------------------------------------------------------------------ *)
(* Stage bodies                                                        *)
(* ------------------------------------------------------------------ *)

let side_for t env addr =
  match t.source addr with
  | Some ast -> Storage_collision.Source ast
  | None -> Storage_collision.Bytecode (Chain.code_at env.e_chain addr)

let func_side_for t env addr =
  match t.source addr with
  | Some ast -> Func_collision.Source ast
  | None -> Func_collision.Bytecode (Chain.code_at env.e_chain addr)

let method_for t proxy logic =
  match (t.source proxy, t.source logic) with
  | Some _, Some _ -> Analysis.Source_source
  | None, None -> Analysis.Bytecode_bytecode
  | _ -> Analysis.Mixed

let api_reader env () = Chain.api_call_count env.e_chain
let steps_reader env () = !(env.e_steps)
let retries_reader env () = Resilience.Transport.retries env.e_transport

(* Every stage is bracketed by the engine timers and followed by a step
   budget check against the item's baseline — exceeding it raises
   [Transport.Budget_exhausted], which dead-letters the item as
   [Budget_exhausted] (recoverable by requeue with a larger budget). *)
let timed ctx env ~stage ~subject f =
  Engine.timed_stage ctx ~stage ~subject ~api_calls:(api_reader env)
    ~steps:(steps_reader env) ~retries:(retries_reader env) (fun () ->
      let v = f () in
      Resilience.Transport.check_step_budget env.e_transport
        ~steps:(!(env.e_steps) - env.e_steps0);
      v)

let fresh_probe t env addr code_hash =
  let d =
    if t.cfg.Config.diamond_extension then
      Diamond_probe.detect ?fuel:env.e_fuel env.e_chain addr
    else
      Proxy_detect.detect ?fuel:env.e_fuel ~tracer:env.e_tracer
        ~host:env.e_host addr
  in
  env.e_steps := !(env.e_steps) + d.Proxy_detect.steps;
  (if t.cfg.Config.dedup then
     match d.Proxy_detect.verdict with
     | Proxy_detect.Proxy { source = Proxy_detect.Storage_slot slot; _ } ->
         with_caches t (fun () ->
             Hashtbl.replace t.detection_cache code_hash (C_slot_proxy slot))
     | Proxy_detect.Proxy { source = Proxy_detect.Computed; _ }
       when t.cfg.Config.diamond_extension ->
         (* Extension verdicts depend on per-address history, not just
            code: unsafe to share across clones. *)
         ()
     | v ->
         with_caches t (fun () ->
             Hashtbl.replace t.detection_cache code_hash (C_verdict v)));
  d

let cached_detection t env addr cached =
  ignore t;
  env.e_dedup := !(env.e_dedup) + 1;
  let verdict =
    match cached with
    | C_verdict v -> v
    | C_slot_proxy slot ->
        let value = env.e_host.Evm.Host.get_storage addr slot in
        Proxy_detect.Proxy
          {
            target = Address.of_u256 value;
            source = Proxy_detect.Storage_slot slot;
          }
  in
  { Proxy_detect.address = addr; verdict; probe_selector = ""; steps = 0 }

let analyze_pair t env ctx ~proxy_addr ~logic_addr =
  let subject =
    Printf.sprintf "%s->%s" (Address.to_hex proxy_addr)
      (Address.to_hex logic_addr)
  in
  let key =
    ( Keccak.digest (Chain.code_at env.e_chain proxy_addr),
      Keccak.digest (Chain.code_at env.e_chain logic_addr) )
  in
  let cached =
    if t.cfg.Config.dedup then
      with_caches t (fun () -> Hashtbl.find_opt t.pair_cache key)
    else None
  in
  let func_collisions, honeypot =
    timed ctx env ~stage:Engine.Func_collision ~subject (fun () ->
        let fc =
          match cached with
          | Some (fc, _) -> fc
          | None ->
              Func_collision.detect
                ~proxy:(func_side_for t env proxy_addr)
                ~logic:(func_side_for t env logic_addr)
        in
        let honeypot =
          fc <> []
          && (Honeypot.classify
                ~proxy:(func_side_for t env proxy_addr)
                ~logic:(func_side_for t env logic_addr))
               .Honeypot.is_honeypot
        in
        (fc, honeypot))
  in
  let storage_collisions =
    timed ctx env ~stage:Engine.Storage_collision ~subject (fun () ->
        let sc =
          match cached with
          | Some (_, sc) -> sc
          | None ->
              let sc =
                Storage_collision.detect
                  ~proxy:(side_for t env proxy_addr)
                  ~logic:(side_for t env logic_addr)
              in
              if t.cfg.Config.dedup then
                with_caches t (fun () ->
                    Hashtbl.replace t.pair_cache key (func_collisions, sc));
              sc
        in
        if t.cfg.Config.verify_storage && sc <> [] then
          Storage_collision.verify ~chain:env.e_chain ~proxy_address:proxy_addr
            ~logic_address:logic_addr sc
        else sc)
  in
  {
    Analysis.p_proxy = proxy_addr;
    p_logic = logic_addr;
    p_method = method_for t proxy_addr logic_addr;
    p_func_collisions = func_collisions;
    p_storage_collisions = storage_collisions;
    p_honeypot = honeypot;
  }

let analyze_contract t env ctx addr =
  let subject = Address.to_hex addr in
  let stage s f = timed ctx env ~stage:s ~subject f in
  let code = Chain.code_at env.e_chain addr in
  let code_hash = Keccak.digest code in
  (* Stage 1: bytecode-hash dedup lookup. *)
  let hit =
    stage Engine.Dedup_check (fun () ->
        if not t.cfg.Config.dedup then None
        else
          Option.map
            (cached_detection t env addr)
            (with_caches t (fun () ->
                 Hashtbl.find_opt t.detection_cache code_hash)))
  in
  (* Stage 2: emulation probe (fresh bytecodes only). *)
  let detection, dedup_hit =
    match hit with
    | Some d -> (d, true)
    | None ->
        ( stage Engine.Proxy_probe (fun () -> fresh_probe t env addr code_hash),
          false )
  in
  match detection.Proxy_detect.verdict with
  | Proxy_detect.Proxy { source = target_source; target } ->
      (* Stage 3: Algorithm 1 logic resolution. *)
      let resolution =
        stage Engine.Logic_resolve (fun () ->
            Logic_resolve.resolve ~transport:env.e_transport ~probed:target
              env.e_chain addr target_source)
      in
      (* Stage 4: design-standard classification. *)
      let standard =
        stage Engine.Classify (fun () ->
            Standard_classify.classify ~code target_source)
      in
      let logic_addresses =
        let all =
          resolution.Logic_resolve.historical
          @ Option.to_list resolution.Logic_resolve.current
        in
        List.sort_uniq Address.compare all
        |> List.filter (fun a -> Chain.code_at env.e_chain a <> "")
      in
      (* Stages 5-6: per-pair collision checks. *)
      let pairs =
        List.map
          (fun logic_addr -> analyze_pair t env ctx ~proxy_addr:addr ~logic_addr)
          logic_addresses
      in
      {
        Analysis.r_address = addr;
        r_code_hash = code_hash;
        r_detection = detection;
        r_standard = Some standard;
        r_resolution = Some resolution;
        r_pairs = pairs;
        r_dedup_hit = dedup_hit;
      }
  | _ ->
      {
        Analysis.r_address = addr;
        r_code_hash = code_hash;
        r_detection = detection;
        r_standard = None;
        r_resolution = None;
        r_pairs = [];
        r_dedup_hit = dedup_hit;
      }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Chains of same-bytecode items run sequentially on one worker; this is
   the key that makes shared-cache hits replay in input order (the dedup
   and pair caches are keyed by exactly this hash). *)
let group_key chain addr = Keccak.digest (Chain.code_at chain addr)

(* One logical archive connection per item.  The salt derives from the
   subject address alone, so the fault/jitter stream a contract sees is a
   pure function of (plan seed, address, attempt index) — independent of
   batch composition, worker count and scheduling order.  Transport
   events replay through [Engine.emit_from], which buffers them for the
   input-order merge on worker domains. *)
let make_transport t ctx addr chain obs =
  let subject = Address.to_hex addr in
  let worker = Engine.worker_id ctx in
  (* Args joining a worker-lane span to the active request trace, when
     one is set; leaf spans carry the request span as their parent. *)
  let req_trace_args () =
    match Atomic.get t.req_ctx with
    | None -> []
    | Some c ->
        [
          ("trace_id", Json.String (Obs.Trace.id_to_hex c.Obs.Trace.trace_id));
          ( "parent_span_id",
            Json.String (Obs.Trace.id_to_hex c.Obs.Trace.span_id) );
        ]
  in
  let on_event ev =
    (match Atomic.get t.transport_obs with Some f -> f ev | None -> ());
    match ev with
    | Resilience.Transport.Retry { attempt; reason; delay } ->
        Engine.emit_from ctx
          (Engine.Retry_attempted { subject; attempt; reason; delay; worker })
    | Resilience.Transport.Circuit_opened { endpoint; failures } ->
        Engine.emit_from ctx
          (Engine.Circuit_opened { endpoint; subject; failures; worker })
    | Resilience.Transport.Circuit_closed { endpoint } ->
        Engine.emit_from ctx (Engine.Circuit_closed { endpoint; subject; worker })
    | Resilience.Transport.Quorum_disagreement { meth = _; endpoint } -> (
        match (t.telemetry, obs) with
        | Some tm, Some io ->
            Obs.Metrics.inc
              ~labels:[ ("endpoint", endpoint) ]
              io.io_shard tm.tm_endpoint_disagreements
        | _ -> ())
    | Resilience.Transport.Hedged { meth = _; primary = _; secondary } -> (
        match (t.telemetry, obs) with
        | Some tm, Some io ->
            Obs.Metrics.inc
              ~labels:[ ("endpoint", secondary) ]
              io.io_shard tm.tm_endpoint_hedges
        | _ -> ())
    | Resilience.Transport.Dispatched { endpoint; meth; fault; latency } -> (
        match (t.telemetry, obs) with
        | Some tm, Some io -> (
            let outcome = Option.value ~default:"ok" fault in
            (if io.io_shard == tm.tm_registry then
               Obs.Metrics.hinc (attempt_handle tm ~meth ~outcome)
             else
               Obs.Metrics.inc
                 ~labels:[ ("method", meth); ("outcome", outcome) ]
                 io.io_shard tm.tm_rpc_attempts);
            Obs.Metrics.inc
              ~labels:[ ("endpoint", endpoint); ("outcome", outcome) ]
              io.io_shard tm.tm_endpoint_attempts;
            match tm.tm_trace with
            | Some tr when io.io_sampled ->
                (* Worker-lane RPC detail on track worker+1, real-time
                   stamped: the merged coordinator stream has no
                   per-attempt timing left. *)
                Obs.Trace.complete tr ~tid:(worker + 1) ~cat:"rpc" ~name:meth
                  ~ts:(Obs.Trace.now tr) ~dur:latency
                  ~args:
                    ([
                       ("subject", Json.String subject);
                       ("outcome", Json.String outcome);
                       ("endpoint", Json.String endpoint);
                     ]
                    @ req_trace_args ())
            | _ -> ())
        | _ -> ())
  in
  Resilience.Transport.create ~config:t.resilience ~salt:(Hashtbl.hash subject)
    ~on_event ~chain ()

(* The sampling decision is a pure function of the address, never of
   scheduling: the same items carry trace detail at every worker count. *)
let item_obs_for t addr =
  match t.telemetry with
  | None -> None
  | Some tm ->
      Some
        {
          (* Workers get a private shard absorbed at the merge point; the
             sequential path IS the merge order, so it records straight
             into the root registry and skips the shard round-trip. *)
          io_shard =
            (if t.par then Obs.Metrics.shard tm.tm_registry
             else tm.tm_registry);
          io_sampled =
            (Atomic.get t.req_ctx <> None
            || tm.tm_sample > 0
               && Hashtbl.hash (Address.to_hex addr) mod tm.tm_sample = 0);
          io_frames = ref 0;
        }

let item_tracer t ctx obs =
  match (t.telemetry, obs) with
  | Some tm, Some io ->
      let stack = ref [] in
      {
        Evm.Interp.no_tracer with
        Evm.Interp.on_call =
          (fun ev ->
            incr io.io_frames;
            match tm.tm_trace with
            | Some tr when io.io_sampled ->
                stack := (ev.Evm.Interp.kind, Obs.Trace.now tr) :: !stack
            | _ -> ());
        Evm.Interp.on_call_result =
          (fun _ev _status ->
            match (tm.tm_trace, !stack) with
            | Some tr, (kind, ts) :: rest when io.io_sampled ->
                stack := rest;
                let args =
                  match Atomic.get t.req_ctx with
                  | None -> []
                  | Some c ->
                      [
                        ( "trace_id",
                          Json.String
                            (Obs.Trace.id_to_hex c.Obs.Trace.trace_id) );
                        ( "parent_span_id",
                          Json.String (Obs.Trace.id_to_hex c.Obs.Trace.span_id)
                        );
                      ]
                in
                Obs.Trace.complete tr
                  ~tid:(Engine.worker_id ctx + 1)
                  ~cat:"evm"
                  ~name:(Evm.Interp.call_kind_to_string kind)
                  ~ts
                  ~dur:(Obs.Trace.now tr -. ts)
                  ~args
            | _ -> ());
      }
  | _ -> Evm.Interp.no_tracer

(* Fold the item's observations into its shard and schedule the shard's
   absorption at the merge point.  Deterministic families (steps, fuel,
   frames, dedup hits, per-method counts) are recorded only for completed
   items — mirroring the analyzer's own counters, so a dead-lettered item
   contributes nothing and a later requeue converges to the fault-free
   figures.  RPC-attempt counts (recorded live by the transport hook)
   absorb either way. *)
let finish_item_obs t ctx env ~meth0 ~ok obs =
  match (t.telemetry, obs) with
  | Some tm, Some io ->
      if ok then begin
        let direct = io.io_shard == tm.tm_registry in
        (if direct then
           Obs.Metrics.hobserve tm.tm_item_steps_h (float_of_int !(env.e_steps))
         else
           Obs.Metrics.observe io.io_shard tm.tm_item_steps
             (float_of_int !(env.e_steps)));
        if !(env.e_dedup) > 0 then begin
          let by = float_of_int !(env.e_dedup) in
          if direct then Obs.Metrics.hinc ~by tm.tm_dedup_hits_h
          else Obs.Metrics.inc ~by io.io_shard tm.tm_dedup_hits
        end;
        if !(io.io_frames) > 0 then begin
          let by = float_of_int !(io.io_frames) in
          if direct then Obs.Metrics.hinc ~by tm.tm_evm_frames_h
          else Obs.Metrics.inc ~by io.io_shard tm.tm_evm_frames
        end;
        (match (env.e_fuel, t.resilience.Resilience.Transport.step_budget) with
        | Some f, Some budget ->
            let used = float_of_int (budget - Evm.Interp.fuel_remaining f) in
            if direct then Obs.Metrics.hobserve tm.tm_fuel_used_h used
            else Obs.Metrics.observe io.io_shard tm.tm_fuel_used used
        | _ -> ());
        List.iter
          (fun (meth, n) ->
            let base =
              Option.value ~default:0 (List.assoc_opt meth meth0)
            in
            if n > base then
              if io.io_shard == tm.tm_registry then
                Obs.Metrics.hinc
                  ~by:(float_of_int (n - base))
                  (method_handle tm meth)
              else
                Obs.Metrics.inc
                  ~labels:[ ("method", meth) ]
                  ~by:(float_of_int (n - base))
                  io.io_shard tm.tm_api_methods)
          (Chain.method_call_counts env.e_chain)
      end;
      if io.io_shard != tm.tm_registry then
        Engine.on_merged ctx (fun () ->
            Obs.Metrics.absorb ~into:tm.tm_registry io.io_shard)
  | _ -> ()

(* Transport failures carry their own classification (class, stage,
   attempts); anything else propagates and the engine dead-letters it as
   [Permanent] on its own. *)
let skip_of_exn ctx env e =
  let stage = Engine.current_stage ctx in
  let attempts = max 1 (Resilience.Transport.last_attempts env.e_transport) in
  match e with
  | Resilience.Transport.Rpc_error err ->
      let message = "rpc error: " ^ Chain_rpc.error_to_string err in
      if Chain_rpc.is_transient err then
        Engine.transient ?stage ~attempts message
      else Engine.permanent ?stage ~attempts message
  | Resilience.Transport.Budget_exhausted { scope; budget; spent } ->
      Engine.budget_exhausted ?stage ~attempts
        (Printf.sprintf "budget exhausted: %d %s spent (budget %d)" spent scope
           budget)
  | Evm.Interp.Fuel_exhausted { budget } ->
      (* The live watchdog fired mid-emulation: same class, message and
         stage attribution as the post-stage evm-steps check would have
         produced, just without letting the loop run to completion. *)
      Engine.budget_exhausted ?stage ~attempts
        (Printf.sprintf "watchdog: evm-steps fuel exhausted (budget %d)" budget)
  | e -> raise e

let process_item t ctx addr =
  let obs = item_obs_for t addr in
  if not t.par then begin
    (* Sequential: the analyzer's own chain and head host, but per-item
       counters folded into the totals only on success — a dead-lettered
       item contributes nothing, so the processed-state counters are the
       same whether it failed here or on a worker domain, and a later
       requeue brings the totals to exactly the fault-free figures. *)
    let api0 = Chain.api_call_count t.chain in
    let meth0 =
      if obs = None then [] else Chain.method_call_counts t.chain
    in
    let env =
      {
        e_chain = t.chain;
        e_host = t.host;
        e_steps = ref 0;
        e_dedup = ref 0;
        e_transport = make_transport t ctx addr t.chain obs;
        e_steps0 = 0;
        e_fuel =
          Option.map Evm.Interp.fuel
            t.resilience.Resilience.Transport.step_budget;
        e_tracer = item_tracer t ctx obs;
      }
    in
    match analyze_contract t env ctx addr with
    | report ->
        t.api_calls := !(t.api_calls) + (Chain.api_call_count t.chain - api0);
        t.steps_total := !(t.steps_total) + !(env.e_steps);
        t.dedup_hits := !(t.dedup_hits) + !(env.e_dedup);
        finish_item_obs t ctx env ~meth0 ~ok:true obs;
        Ok report
    | exception e ->
        finish_item_obs t ctx env ~meth0 ~ok:false obs;
        Error (skip_of_exn ctx env e)
  end
  else begin
    (* Parallel: the worker's private chain view (API-call counter and
       copy-on-write host of its own), so stage deltas and the Algorithm 1
       accounting serialized into the report are identical to the
       sequential run.  The view is per worker per run, so counters are
       sampled before the item exactly as the sequential branch does. *)
    let view, host =
      let wid = Engine.worker_id ctx in
      match t.views.(wid) with
      | Some vh -> vh
      | None ->
          let v = Chain.worker_view t.chain in
          let vh = (v, Chain.host_at_head v) in
          t.views.(wid) <- Some vh;
          vh
    in
    let api0 = Chain.api_call_count view in
    let meth0 =
      if obs = None then [] else Chain.method_call_counts view
    in
    let env =
      {
        e_chain = view;
        e_host = host;
        e_steps = ref 0;
        e_dedup = ref 0;
        e_transport = make_transport t ctx addr view obs;
        e_steps0 = 0;
        e_fuel =
          Option.map Evm.Interp.fuel
            t.resilience.Resilience.Transport.step_budget;
        e_tracer = item_tracer t ctx obs;
      }
    in
    match analyze_contract t env ctx addr with
    | report ->
        Mutex.lock t.merge_lock;
        t.api_calls := !(t.api_calls) + (Chain.api_call_count view - api0);
        t.steps_total := !(t.steps_total) + !(env.e_steps);
        t.dedup_hits := !(t.dedup_hits) + !(env.e_dedup);
        Mutex.unlock t.merge_lock;
        finish_item_obs t ctx env ~meth0 ~ok:true obs;
        Ok report
    | exception e ->
        finish_item_obs t ctx env ~meth0 ~ok:false obs;
        Error (skip_of_exn ctx env e)
  end

let make_with_engine ~config ~resilience ~chain ~source build_engine =
  let self = ref None in
  let process ctx addr =
    match !self with
    | None -> Error (Engine.permanent "analyzer not initialized")
    | Some t -> process_item t ctx addr
  in
  let engine = build_engine ~process in
  let t =
    {
      engine;
      chain;
      source;
      cfg = config;
      resilience;
      host = Chain.host_at_head chain;
      par = config.Config.domains > 1;
      views = Array.make (max 1 config.Config.domains) None;
      cache_lock = Mutex.create ();
      merge_lock = Mutex.create ();
      detection_cache = Hashtbl.create 256;
      pair_cache = Hashtbl.create 256;
      dedup_hits = ref 0;
      steps_total = ref 0;
      api_calls = ref 0;
      telemetry = None;
      req_ctx = Atomic.make None;
      transport_obs = Atomic.make None;
    }
  in
  self := Some t;
  t

let create ?(config = Config.default)
    ?(resilience = Resilience.Transport.default_config) ?crash_plan
    ?attempt_ceiling ~chain ~source () =
  make_with_engine ~config ~resilience ~chain ~source (fun ~process ->
      Engine.create ~batch_size:config.Config.batch_size
        ~domains:config.Config.domains ~key:(group_key chain) ?crash_plan
        ?attempt_ceiling ~subject:Address.to_hex ~process ())

(* ------------------------------------------------------------------ *)
(* Scheduling and results                                              *)
(* ------------------------------------------------------------------ *)

let submit t addresses = Engine.submit t.engine addresses

let submit_all t =
  submit t (List.map (fun m -> m.Chain.cm_address) (Chain.all_contracts t.chain))

(* ------------------------------------------------------------------ *)
(* Telemetry                                                           *)
(* ------------------------------------------------------------------ *)

let step_b = [ 10.; 100.; 1000.; 1e4; 1e5; 1e6; 1e7 ]

let instrument ?trace ?log ?(trace_sample = 16) registry t =
  Engine.Telemetry.instrument registry t.engine;
  Option.iter (fun tr -> Engine.Telemetry.attach_trace tr t.engine) trace;
  Option.iter (fun lg -> Engine.Telemetry.attach_log lg t.engine) log;
  let rpc_attempts =
    Obs.Metrics.counter registry
      ~help:"RPC round-trip attempts per method and outcome"
      "proxion_rpc_attempts_total"
  and api_methods =
    Obs.Metrics.counter registry
      ~help:"RPC requests served by the node per method"
      "proxion_api_method_calls_total"
  and item_steps =
    Obs.Metrics.histogram registry ~buckets:step_b
      ~help:"EVM steps interpreted per analyzed contract" "proxion_item_steps"
  and fuel_used =
    Obs.Metrics.histogram registry ~buckets:step_b
      ~help:"Watchdog fuel consumed per contract (step-budget runs)"
      "proxion_item_fuel_used"
  and evm_frames =
    Obs.Metrics.counter registry
      ~help:"EVM call frames observed by probe emulations"
      "proxion_evm_frames_total"
  and dedup_hits =
    Obs.Metrics.counter registry ~help:"Bytecode-dedup cache hits"
      "proxion_dedup_hits_total"
  and endpoint_attempts =
    Obs.Metrics.counter registry
      ~help:"RPC round-trip attempts per chain endpoint and outcome"
      "proxion_chain_endpoint_attempts_total"
  and endpoint_disagreements =
    Obs.Metrics.counter registry
      ~help:"Quorum votes lost per chain endpoint (each quarantines it)"
      "proxion_chain_endpoint_disagreements_total"
  and endpoint_hedges =
    Obs.Metrics.counter registry
      ~help:"Hedged requests raced per secondary chain endpoint"
      "proxion_chain_endpoint_hedges_total"
  in
  let tm =
    {
      tm_registry = registry;
      tm_trace = trace;
      tm_sample = trace_sample;
      tm_rpc_attempts = rpc_attempts;
      tm_api_methods = api_methods;
      tm_endpoint_attempts = endpoint_attempts;
      tm_endpoint_disagreements = endpoint_disagreements;
      tm_endpoint_hedges = endpoint_hedges;
      tm_item_steps = item_steps;
      tm_fuel_used = fuel_used;
      tm_evm_frames = evm_frames;
      tm_dedup_hits = dedup_hits;
      tm_attempt_handles = Hashtbl.create 16;
      tm_method_handles = Hashtbl.create 8;
      tm_item_steps_h = Obs.Metrics.handle registry item_steps;
      tm_fuel_used_h = Obs.Metrics.handle registry fuel_used;
      tm_evm_frames_h = Obs.Metrics.handle registry evm_frames;
      tm_dedup_hits_h = Obs.Metrics.handle registry dedup_hits;
    }
  in
  (* The Keccak selector memo lives in Domain.DLS — per-domain tables
     whose hit/miss split depends on how items landed on workers, so the
     coordinator-side reading is inherently volatile. *)
  let memo_hits =
    Obs.Metrics.gauge registry ~volatile:true
      ~help:"Keccak memo hits (coordinator domain)" "proxion_keccak_memo_hits"
  and memo_misses =
    Obs.Metrics.gauge registry ~volatile:true
      ~help:"Keccak memo misses (coordinator domain)"
      "proxion_keccak_memo_misses"
  in
  Engine.subscribe t.engine (function
    | Engine.Run_finished _ ->
        let s = Keccak.Memo.stats () in
        Obs.Metrics.set registry memo_hits (float_of_int s.Keccak.Memo.hits);
        Obs.Metrics.set registry memo_misses
          (float_of_int s.Keccak.Memo.misses)
    | _ -> ());
  t.telemetry <- Some tm

let set_request_ctx t ctx = Atomic.set t.req_ctx ctx
let request_ctx t = Atomic.get t.req_ctx
let set_transport_observer t obs = Atomic.set t.transport_obs obs

let run ?max_batches t =
  Array.fill t.views 0 (Array.length t.views) None;
  Engine.run ?max_batches t.engine
let pending t = Engine.pending t.engine
let subscribe t f = Engine.subscribe t.engine f
let stage_totals_table t = Engine.stage_totals_table t.engine
let skipped t = Engine.skipped t.engine
let skipped_pairs t = Engine.skipped_pairs t.engine
let requeue ?classes t = Engine.requeue ?classes t.engine
let requeue_transients t = Engine.requeue_transients t.engine

let report t =
  let contracts = Engine.results t.engine in
  let stats =
    Analysis.compute_stats ~dedup_hits:!(t.dedup_hits)
      ~unique_codes:(Hashtbl.length t.detection_cache)
      ~api_calls:!(t.api_calls) ~emulation_steps:!(t.steps_total) contracts
  in
  { Analysis.contracts; stats }

let drain_results t = Engine.drain_results t.engine
let unique_codes t = Hashtbl.length t.detection_cache

let invalidate_code_hash t code_hash =
  Mutex.lock t.cache_lock;
  Hashtbl.remove t.detection_cache code_hash;
  Mutex.unlock t.cache_lock

let refresh_head t =
  t.host <- Chain.host_at_head t.chain;
  Array.fill t.views 0 (Array.length t.views) None

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let cached_detection_to_json code_hash = function
  | C_slot_proxy slot ->
      Json.Obj
        [
          ("code_hash", Json.String (Hexutil.to_hex code_hash));
          ("slot", Json.String (U256.to_hex slot));
        ]
  | C_verdict v ->
      Json.Obj
        [
          ("code_hash", Json.String (Hexutil.to_hex code_hash));
          ("verdict", Serialize.verdict_to_json v);
        ]

let pair_cache_entry_to_json (proxy_hash, logic_hash) (fc, sc) =
  Json.Obj
    [
      ("proxy_hash", Json.String (Hexutil.to_hex proxy_hash));
      ("logic_hash", Json.String (Hexutil.to_hex logic_hash));
      ("func", Json.List (List.map Serialize.func_collision_to_json fc));
      ("storage", Json.List (List.map Serialize.storage_collision_to_json sc));
    ]

let sorted_entries tbl =
  (* Hash tables have no stable iteration order; sort by key so the
     checkpoint bytes are deterministic. *)
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let checkpoint t =
  let extra =
    Json.Obj
      [
        ("config", Config.to_json t.cfg);
        ("dedup_hits", Json.Int !(t.dedup_hits));
        ("steps", Json.Int !(t.steps_total));
        ("api_calls", Json.Int !(t.api_calls));
        ( "detection_cache",
          Json.List
            (List.map
               (fun (k, v) -> cached_detection_to_json k v)
               (sorted_entries t.detection_cache)) );
        ( "pair_cache",
          Json.List
            (List.map
               (fun (k, v) -> pair_cache_entry_to_json k v)
               (sorted_entries t.pair_cache)) );
      ]
  in
  Engine.checkpoint
    ~item_to_json:(fun a -> Json.String (Address.to_hex a))
    ~res_to_json:Serialize.contract_report_to_json ~extra t.engine

let ( let* ) = Result.bind

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "checkpoint: missing field %S" name))
  | _ -> Error "checkpoint: expected an object"

let dec_int name = function
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be an int" name)

let dec_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a list" name)

let dec_hex name = function
  | Json.String s -> (
      match Hexutil.of_hex_opt s with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "checkpoint: field %S: bad hex" name))
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a string" name)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let detection_cache_entry_of_json json =
  let* code_hash = Result.bind (field "code_hash" json) (dec_hex "code_hash") in
  match field "slot" json with
  | Ok (Json.String s) -> (
      match U256.of_hex s with
      | slot -> Ok (code_hash, C_slot_proxy slot)
      | exception _ -> Error "checkpoint: bad slot")
  | _ ->
      let* v = Result.bind (field "verdict" json) Serialize.verdict_of_json in
      Ok (code_hash, C_verdict v)

let pair_cache_entry_of_json json =
  let* proxy_hash = Result.bind (field "proxy_hash" json) (dec_hex "proxy_hash") in
  let* logic_hash = Result.bind (field "logic_hash" json) (dec_hex "logic_hash") in
  let* fc =
    Result.bind
      (Result.bind (field "func" json) (dec_list "func"))
      (map_result Serialize.func_collision_of_json)
  in
  let* sc =
    Result.bind
      (Result.bind (field "storage" json) (dec_list "storage"))
      (map_result Serialize.storage_collision_of_json)
  in
  Ok ((proxy_hash, logic_hash), (fc, sc))

let address_of_json = function
  | Json.String s -> (
      match Hexutil.of_hex_opt s with
      | Some b when String.length b = 20 -> Ok b
      | _ -> Error ("checkpoint: bad queued address " ^ s))
  | _ -> Error "checkpoint: queue entries must be strings"

let restore ?batch_size ?domains
    ?(resilience = Resilience.Transport.default_config) ?crash_plan
    ?attempt_ceiling ~chain ~source json =
  (* The config governs resume semantics, so it comes from the checkpoint
     (batch_size and domains optionally overridden — the worker count is
     an execution parameter, not analysis state, and any value resumes to
     the same bytes), not from the caller. *)
  let* extra_peek =
    match json with
    | Json.Obj kvs -> (
        match List.assoc_opt "extra" kvs with
        | Some e -> Ok e
        | None -> Error "checkpoint: missing extra payload")
    | _ -> Error "checkpoint: expected an object"
  in
  let* config = Result.bind (field "config" extra_peek) Config.of_json in
  let config =
    match batch_size with
    | Some b -> Config.with_batch_size b config
    | None -> config
  in
  let config =
    match domains with
    | Some d -> Config.with_domains d config
    | None -> config
  in
  let self = ref None in
  let process ctx addr =
    match !self with
    | None -> Error (Engine.permanent "analyzer not initialized")
    | Some t -> process_item t ctx addr
  in
  let* engine, extra =
    Engine.restore ?batch_size ~domains:config.Config.domains
      ~key:(group_key chain) ?crash_plan ?attempt_ceiling
      ~subject:Address.to_hex ~process ~item_of_json:address_of_json
      ~res_of_json:Serialize.contract_report_of_json json
  in
  let* dedup_hits = Result.bind (field "dedup_hits" extra) (dec_int "dedup_hits") in
  let* steps = Result.bind (field "steps" extra) (dec_int "steps") in
  let* api_calls = Result.bind (field "api_calls" extra) (dec_int "api_calls") in
  let* detection_entries =
    Result.bind
      (Result.bind (field "detection_cache" extra) (dec_list "detection_cache"))
      (map_result detection_cache_entry_of_json)
  in
  let* pair_entries =
    Result.bind
      (Result.bind (field "pair_cache" extra) (dec_list "pair_cache"))
      (map_result pair_cache_entry_of_json)
  in
  let t =
    {
      engine;
      chain;
      source;
      cfg = config;
      resilience;
      host = Chain.host_at_head chain;
      par = config.Config.domains > 1;
      views = Array.make (max 1 config.Config.domains) None;
      cache_lock = Mutex.create ();
      merge_lock = Mutex.create ();
      detection_cache = Hashtbl.create 256;
      pair_cache = Hashtbl.create 256;
      dedup_hits = ref dedup_hits;
      steps_total = ref steps;
      api_calls = ref api_calls;
      telemetry = None;
      req_ctx = Atomic.make None;
      transport_obs = Atomic.make None;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace t.detection_cache k v) detection_entries;
  List.iter (fun (k, v) -> Hashtbl.replace t.pair_cache k v) pair_entries;
  self := Some t;
  Ok t
