module Address = Evm.Address
module Config = Analysis.Config
module Json = Report.Json

(* Detection results cached per code hash.  A cached slot-based proxy needs
   only a storage read for the new address; everything else transfers
   as-is. *)
type cached_detection =
  | C_verdict of Proxy_detect.verdict
  | C_slot_proxy of U256.t

type t = {
  engine : (Address.t, Analysis.contract_report) Engine.t;
  chain : Chain.t;
  source : Analysis.source_lookup;
  cfg : Config.t;
  resilience : Resilience.Transport.config;
  host : Evm.Host.t;
  par : bool; (* domains > 1: shared state needs locking *)
  cache_lock : Mutex.t;
  merge_lock : Mutex.t;
  detection_cache : (string, cached_detection) Hashtbl.t;
  pair_cache :
    ( string * string,
      Func_collision.collision list * Storage_collision.collision list )
    Hashtbl.t;
  dedup_hits : int ref;
  steps_total : int ref;
  api_calls : int ref;
}

(* Per-item execution environment.  Sequentially it aliases the analyzer's
   chain, head host and counters — the exact pre-parallel code path.  On a
   worker domain it holds a private {!Chain.worker_view} (own API-call
   counter, copy-on-write host) and fresh counters that are folded into
   the analyzer's totals when the item completes; int sums commute, so the
   totals at every batch barrier match a sequential run exactly. *)
type env = {
  e_chain : Chain.t;
  e_host : Evm.Host.t;
  e_steps : int ref;
  e_dedup : int ref;
  e_transport : Resilience.Transport.t;
      (* One logical connection per item, salted by the subject address:
         fault injection and jitter depend only on (plan seed, subject,
         per-connection attempt index), never on scheduling. *)
  e_steps0 : int; (* step-counter baseline at item start (step budget) *)
  e_fuel : Evm.Interp.fuel option;
      (* Live watchdog allowance shared by every probe emulation of the
         item; sized by the transport step budget.  The post-stage budget
         check still runs — fuel is the in-flight enforcement that stops
         a looping bytecode from ever reaching that check. *)
}

let config t = t.cfg
let engine t = t.engine

(* The dedup caches are shared across workers; chains grouped by bytecode
   hash (see [group_key]) guarantee all accesses to any given key happen
   in input order, and this lock makes the table mutations themselves
   safe.  Sequential runs skip the lock entirely. *)
let with_caches t f =
  if not t.par then f ()
  else begin
    Mutex.lock t.cache_lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock t.cache_lock) f
  end

(* ------------------------------------------------------------------ *)
(* Stage bodies                                                        *)
(* ------------------------------------------------------------------ *)

let side_for t env addr =
  match t.source addr with
  | Some ast -> Storage_collision.Source ast
  | None -> Storage_collision.Bytecode (Chain.code_at env.e_chain addr)

let func_side_for t env addr =
  match t.source addr with
  | Some ast -> Func_collision.Source ast
  | None -> Func_collision.Bytecode (Chain.code_at env.e_chain addr)

let method_for t proxy logic =
  match (t.source proxy, t.source logic) with
  | Some _, Some _ -> Analysis.Source_source
  | None, None -> Analysis.Bytecode_bytecode
  | _ -> Analysis.Mixed

let api_reader env () = Chain.api_call_count env.e_chain
let steps_reader env () = !(env.e_steps)
let retries_reader env () = Resilience.Transport.retries env.e_transport

(* Every stage is bracketed by the engine timers and followed by a step
   budget check against the item's baseline — exceeding it raises
   [Transport.Budget_exhausted], which dead-letters the item as
   [Budget_exhausted] (recoverable by requeue with a larger budget). *)
let timed ctx env ~stage ~subject f =
  Engine.timed_stage ctx ~stage ~subject ~api_calls:(api_reader env)
    ~steps:(steps_reader env) ~retries:(retries_reader env) (fun () ->
      let v = f () in
      Resilience.Transport.check_step_budget env.e_transport
        ~steps:(!(env.e_steps) - env.e_steps0);
      v)

let fresh_probe t env addr code_hash =
  let d =
    if t.cfg.Config.diamond_extension then
      Diamond_probe.detect ?fuel:env.e_fuel env.e_chain addr
    else Proxy_detect.detect ?fuel:env.e_fuel ~host:env.e_host addr
  in
  env.e_steps := !(env.e_steps) + d.Proxy_detect.steps;
  (if t.cfg.Config.dedup then
     match d.Proxy_detect.verdict with
     | Proxy_detect.Proxy { source = Proxy_detect.Storage_slot slot; _ } ->
         with_caches t (fun () ->
             Hashtbl.replace t.detection_cache code_hash (C_slot_proxy slot))
     | Proxy_detect.Proxy { source = Proxy_detect.Computed; _ }
       when t.cfg.Config.diamond_extension ->
         (* Extension verdicts depend on per-address history, not just
            code: unsafe to share across clones. *)
         ()
     | v ->
         with_caches t (fun () ->
             Hashtbl.replace t.detection_cache code_hash (C_verdict v)));
  d

let cached_detection t env addr cached =
  ignore t;
  env.e_dedup := !(env.e_dedup) + 1;
  let verdict =
    match cached with
    | C_verdict v -> v
    | C_slot_proxy slot ->
        let value = env.e_host.Evm.Host.get_storage addr slot in
        Proxy_detect.Proxy
          {
            target = Address.of_u256 value;
            source = Proxy_detect.Storage_slot slot;
          }
  in
  { Proxy_detect.address = addr; verdict; probe_selector = ""; steps = 0 }

let analyze_pair t env ctx ~proxy_addr ~logic_addr =
  let subject =
    Printf.sprintf "%s->%s" (Address.to_hex proxy_addr)
      (Address.to_hex logic_addr)
  in
  let key =
    ( Keccak.digest (Chain.code_at env.e_chain proxy_addr),
      Keccak.digest (Chain.code_at env.e_chain logic_addr) )
  in
  let cached =
    if t.cfg.Config.dedup then
      with_caches t (fun () -> Hashtbl.find_opt t.pair_cache key)
    else None
  in
  let func_collisions, honeypot =
    timed ctx env ~stage:Engine.Func_collision ~subject (fun () ->
        let fc =
          match cached with
          | Some (fc, _) -> fc
          | None ->
              Func_collision.detect
                ~proxy:(func_side_for t env proxy_addr)
                ~logic:(func_side_for t env logic_addr)
        in
        let honeypot =
          fc <> []
          && (Honeypot.classify
                ~proxy:(func_side_for t env proxy_addr)
                ~logic:(func_side_for t env logic_addr))
               .Honeypot.is_honeypot
        in
        (fc, honeypot))
  in
  let storage_collisions =
    timed ctx env ~stage:Engine.Storage_collision ~subject (fun () ->
        let sc =
          match cached with
          | Some (_, sc) -> sc
          | None ->
              let sc =
                Storage_collision.detect
                  ~proxy:(side_for t env proxy_addr)
                  ~logic:(side_for t env logic_addr)
              in
              if t.cfg.Config.dedup then
                with_caches t (fun () ->
                    Hashtbl.replace t.pair_cache key (func_collisions, sc));
              sc
        in
        if t.cfg.Config.verify_storage && sc <> [] then
          Storage_collision.verify ~chain:env.e_chain ~proxy_address:proxy_addr
            ~logic_address:logic_addr sc
        else sc)
  in
  {
    Analysis.p_proxy = proxy_addr;
    p_logic = logic_addr;
    p_method = method_for t proxy_addr logic_addr;
    p_func_collisions = func_collisions;
    p_storage_collisions = storage_collisions;
    p_honeypot = honeypot;
  }

let analyze_contract t env ctx addr =
  let subject = Address.to_hex addr in
  let stage s f = timed ctx env ~stage:s ~subject f in
  let code = Chain.code_at env.e_chain addr in
  let code_hash = Keccak.digest code in
  (* Stage 1: bytecode-hash dedup lookup. *)
  let hit =
    stage Engine.Dedup_check (fun () ->
        if not t.cfg.Config.dedup then None
        else
          Option.map
            (cached_detection t env addr)
            (with_caches t (fun () ->
                 Hashtbl.find_opt t.detection_cache code_hash)))
  in
  (* Stage 2: emulation probe (fresh bytecodes only). *)
  let detection, dedup_hit =
    match hit with
    | Some d -> (d, true)
    | None ->
        ( stage Engine.Proxy_probe (fun () -> fresh_probe t env addr code_hash),
          false )
  in
  match detection.Proxy_detect.verdict with
  | Proxy_detect.Proxy { source = target_source; target } ->
      (* Stage 3: Algorithm 1 logic resolution. *)
      let resolution =
        stage Engine.Logic_resolve (fun () ->
            Logic_resolve.resolve ~transport:env.e_transport ~probed:target
              env.e_chain addr target_source)
      in
      (* Stage 4: design-standard classification. *)
      let standard =
        stage Engine.Classify (fun () ->
            Standard_classify.classify ~code target_source)
      in
      let logic_addresses =
        let all =
          resolution.Logic_resolve.historical
          @ Option.to_list resolution.Logic_resolve.current
        in
        List.sort_uniq Address.compare all
        |> List.filter (fun a -> Chain.code_at env.e_chain a <> "")
      in
      (* Stages 5-6: per-pair collision checks. *)
      let pairs =
        List.map
          (fun logic_addr -> analyze_pair t env ctx ~proxy_addr:addr ~logic_addr)
          logic_addresses
      in
      {
        Analysis.r_address = addr;
        r_code_hash = code_hash;
        r_detection = detection;
        r_standard = Some standard;
        r_resolution = Some resolution;
        r_pairs = pairs;
        r_dedup_hit = dedup_hit;
      }
  | _ ->
      {
        Analysis.r_address = addr;
        r_code_hash = code_hash;
        r_detection = detection;
        r_standard = None;
        r_resolution = None;
        r_pairs = [];
        r_dedup_hit = dedup_hit;
      }

(* ------------------------------------------------------------------ *)
(* Construction                                                        *)
(* ------------------------------------------------------------------ *)

(* Chains of same-bytecode items run sequentially on one worker; this is
   the key that makes shared-cache hits replay in input order (the dedup
   and pair caches are keyed by exactly this hash). *)
let group_key chain addr = Keccak.digest (Chain.code_at chain addr)

(* One logical archive connection per item.  The salt derives from the
   subject address alone, so the fault/jitter stream a contract sees is a
   pure function of (plan seed, address, attempt index) — independent of
   batch composition, worker count and scheduling order.  Transport
   events replay through [Engine.emit_from], which buffers them for the
   input-order merge on worker domains. *)
let make_transport t ctx addr chain =
  let subject = Address.to_hex addr in
  let worker = Engine.worker_id ctx in
  let on_event = function
    | Resilience.Transport.Retry { attempt; reason; delay } ->
        Engine.emit_from ctx
          (Engine.Retry_attempted { subject; attempt; reason; delay; worker })
    | Resilience.Transport.Circuit_opened { endpoint; failures } ->
        Engine.emit_from ctx
          (Engine.Circuit_opened { endpoint; subject; failures; worker })
    | Resilience.Transport.Circuit_closed { endpoint } ->
        Engine.emit_from ctx (Engine.Circuit_closed { endpoint; subject; worker })
  in
  Resilience.Transport.create ~config:t.resilience ~salt:(Hashtbl.hash subject)
    ~on_event ~chain ()

(* Transport failures carry their own classification (class, stage,
   attempts); anything else propagates and the engine dead-letters it as
   [Permanent] on its own. *)
let skip_of_exn ctx env e =
  let stage = Engine.current_stage ctx in
  let attempts = max 1 (Resilience.Transport.last_attempts env.e_transport) in
  match e with
  | Resilience.Transport.Rpc_error err ->
      let message = "rpc error: " ^ Chain_rpc.error_to_string err in
      if Chain_rpc.is_transient err then
        Engine.transient ?stage ~attempts message
      else Engine.permanent ?stage ~attempts message
  | Resilience.Transport.Budget_exhausted { scope; budget; spent } ->
      Engine.budget_exhausted ?stage ~attempts
        (Printf.sprintf "budget exhausted: %d %s spent (budget %d)" spent scope
           budget)
  | Evm.Interp.Fuel_exhausted { budget } ->
      (* The live watchdog fired mid-emulation: same class, message and
         stage attribution as the post-stage evm-steps check would have
         produced, just without letting the loop run to completion. *)
      Engine.budget_exhausted ?stage ~attempts
        (Printf.sprintf "watchdog: evm-steps fuel exhausted (budget %d)" budget)
  | e -> raise e

let process_item t ctx addr =
  if not t.par then begin
    (* Sequential: the analyzer's own chain and head host, but per-item
       counters folded into the totals only on success — a dead-lettered
       item contributes nothing, so the processed-state counters are the
       same whether it failed here or on a worker domain, and a later
       requeue brings the totals to exactly the fault-free figures. *)
    let api0 = Chain.api_call_count t.chain in
    let env =
      {
        e_chain = t.chain;
        e_host = t.host;
        e_steps = ref 0;
        e_dedup = ref 0;
        e_transport = make_transport t ctx addr t.chain;
        e_steps0 = 0;
        e_fuel =
          Option.map Evm.Interp.fuel
            t.resilience.Resilience.Transport.step_budget;
      }
    in
    match analyze_contract t env ctx addr with
    | report ->
        t.api_calls := !(t.api_calls) + (Chain.api_call_count t.chain - api0);
        t.steps_total := !(t.steps_total) + !(env.e_steps);
        t.dedup_hits := !(t.dedup_hits) + !(env.e_dedup);
        Ok report
    | exception e -> Error (skip_of_exn ctx env e)
  end
  else begin
    (* Parallel: a private chain view whose API-call counter starts at
       zero, so stage deltas and the Algorithm 1 accounting serialized
       into the report are identical to the sequential run. *)
    let view = Chain.worker_view t.chain in
    let env =
      {
        e_chain = view;
        e_host = Chain.host_at_head view;
        e_steps = ref 0;
        e_dedup = ref 0;
        e_transport = make_transport t ctx addr view;
        e_steps0 = 0;
        e_fuel =
          Option.map Evm.Interp.fuel
            t.resilience.Resilience.Transport.step_budget;
      }
    in
    match analyze_contract t env ctx addr with
    | report ->
        Mutex.lock t.merge_lock;
        t.api_calls := !(t.api_calls) + Chain.api_call_count view;
        t.steps_total := !(t.steps_total) + !(env.e_steps);
        t.dedup_hits := !(t.dedup_hits) + !(env.e_dedup);
        Mutex.unlock t.merge_lock;
        Ok report
    | exception e -> Error (skip_of_exn ctx env e)
  end

let make_with_engine ~config ~resilience ~chain ~source build_engine =
  let self = ref None in
  let process ctx addr =
    match !self with
    | None -> Error (Engine.permanent "analyzer not initialized")
    | Some t -> process_item t ctx addr
  in
  let engine = build_engine ~process in
  let t =
    {
      engine;
      chain;
      source;
      cfg = config;
      resilience;
      host = Chain.host_at_head chain;
      par = config.Config.domains > 1;
      cache_lock = Mutex.create ();
      merge_lock = Mutex.create ();
      detection_cache = Hashtbl.create 256;
      pair_cache = Hashtbl.create 256;
      dedup_hits = ref 0;
      steps_total = ref 0;
      api_calls = ref 0;
    }
  in
  self := Some t;
  t

let create ?(config = Config.default)
    ?(resilience = Resilience.Transport.default_config) ?crash_plan
    ?attempt_ceiling ~chain ~source () =
  make_with_engine ~config ~resilience ~chain ~source (fun ~process ->
      Engine.create ~batch_size:config.Config.batch_size
        ~domains:config.Config.domains ~key:(group_key chain) ?crash_plan
        ?attempt_ceiling ~subject:Address.to_hex ~process ())

(* ------------------------------------------------------------------ *)
(* Scheduling and results                                              *)
(* ------------------------------------------------------------------ *)

let submit t addresses = Engine.submit t.engine addresses

let submit_all t =
  submit t (List.map (fun m -> m.Chain.cm_address) (Chain.all_contracts t.chain))

let run ?max_batches t = Engine.run ?max_batches t.engine
let pending t = Engine.pending t.engine
let subscribe t f = Engine.subscribe t.engine f
let stage_totals_table t = Engine.stage_totals_table t.engine
let skipped t = Engine.skipped t.engine
let skipped_pairs t = Engine.skipped_pairs t.engine
let requeue ?classes t = Engine.requeue ?classes t.engine
let requeue_transients t = Engine.requeue_transients t.engine

let report t =
  let contracts = Engine.results t.engine in
  let stats =
    Analysis.compute_stats ~dedup_hits:!(t.dedup_hits)
      ~unique_codes:(Hashtbl.length t.detection_cache)
      ~api_calls:!(t.api_calls) ~emulation_steps:!(t.steps_total) contracts
  in
  { Analysis.contracts; stats }

(* ------------------------------------------------------------------ *)
(* Checkpointing                                                       *)
(* ------------------------------------------------------------------ *)

let cached_detection_to_json code_hash = function
  | C_slot_proxy slot ->
      Json.Obj
        [
          ("code_hash", Json.String (Hexutil.to_hex code_hash));
          ("slot", Json.String (U256.to_hex slot));
        ]
  | C_verdict v ->
      Json.Obj
        [
          ("code_hash", Json.String (Hexutil.to_hex code_hash));
          ("verdict", Serialize.verdict_to_json v);
        ]

let pair_cache_entry_to_json (proxy_hash, logic_hash) (fc, sc) =
  Json.Obj
    [
      ("proxy_hash", Json.String (Hexutil.to_hex proxy_hash));
      ("logic_hash", Json.String (Hexutil.to_hex logic_hash));
      ("func", Json.List (List.map Serialize.func_collision_to_json fc));
      ("storage", Json.List (List.map Serialize.storage_collision_to_json sc));
    ]

let sorted_entries tbl =
  (* Hash tables have no stable iteration order; sort by key so the
     checkpoint bytes are deterministic. *)
  List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let checkpoint t =
  let extra =
    Json.Obj
      [
        ("config", Config.to_json t.cfg);
        ("dedup_hits", Json.Int !(t.dedup_hits));
        ("steps", Json.Int !(t.steps_total));
        ("api_calls", Json.Int !(t.api_calls));
        ( "detection_cache",
          Json.List
            (List.map
               (fun (k, v) -> cached_detection_to_json k v)
               (sorted_entries t.detection_cache)) );
        ( "pair_cache",
          Json.List
            (List.map
               (fun (k, v) -> pair_cache_entry_to_json k v)
               (sorted_entries t.pair_cache)) );
      ]
  in
  Engine.checkpoint
    ~item_to_json:(fun a -> Json.String (Address.to_hex a))
    ~res_to_json:Serialize.contract_report_to_json ~extra t.engine

let ( let* ) = Result.bind

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> Ok v
      | None -> Error (Printf.sprintf "checkpoint: missing field %S" name))
  | _ -> Error "checkpoint: expected an object"

let dec_int name = function
  | Json.Int n -> Ok n
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be an int" name)

let dec_list name = function
  | Json.List l -> Ok l
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a list" name)

let dec_hex name = function
  | Json.String s -> (
      match Hexutil.of_hex_opt s with
      | Some b -> Ok b
      | None -> Error (Printf.sprintf "checkpoint: field %S: bad hex" name))
  | _ -> Error (Printf.sprintf "checkpoint: field %S must be a string" name)

let map_result f l =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | x :: rest ->
        let* y = f x in
        go (y :: acc) rest
  in
  go [] l

let detection_cache_entry_of_json json =
  let* code_hash = Result.bind (field "code_hash" json) (dec_hex "code_hash") in
  match field "slot" json with
  | Ok (Json.String s) -> (
      match U256.of_hex s with
      | slot -> Ok (code_hash, C_slot_proxy slot)
      | exception _ -> Error "checkpoint: bad slot")
  | _ ->
      let* v = Result.bind (field "verdict" json) Serialize.verdict_of_json in
      Ok (code_hash, C_verdict v)

let pair_cache_entry_of_json json =
  let* proxy_hash = Result.bind (field "proxy_hash" json) (dec_hex "proxy_hash") in
  let* logic_hash = Result.bind (field "logic_hash" json) (dec_hex "logic_hash") in
  let* fc =
    Result.bind
      (Result.bind (field "func" json) (dec_list "func"))
      (map_result Serialize.func_collision_of_json)
  in
  let* sc =
    Result.bind
      (Result.bind (field "storage" json) (dec_list "storage"))
      (map_result Serialize.storage_collision_of_json)
  in
  Ok ((proxy_hash, logic_hash), (fc, sc))

let address_of_json = function
  | Json.String s -> (
      match Hexutil.of_hex_opt s with
      | Some b when String.length b = 20 -> Ok b
      | _ -> Error ("checkpoint: bad queued address " ^ s))
  | _ -> Error "checkpoint: queue entries must be strings"

let restore ?batch_size ?domains
    ?(resilience = Resilience.Transport.default_config) ?crash_plan
    ?attempt_ceiling ~chain ~source json =
  (* The config governs resume semantics, so it comes from the checkpoint
     (batch_size and domains optionally overridden — the worker count is
     an execution parameter, not analysis state, and any value resumes to
     the same bytes), not from the caller. *)
  let* extra_peek =
    match json with
    | Json.Obj kvs -> (
        match List.assoc_opt "extra" kvs with
        | Some e -> Ok e
        | None -> Error "checkpoint: missing extra payload")
    | _ -> Error "checkpoint: expected an object"
  in
  let* config = Result.bind (field "config" extra_peek) Config.of_json in
  let config =
    match batch_size with
    | Some b -> Config.with_batch_size b config
    | None -> config
  in
  let config =
    match domains with
    | Some d -> Config.with_domains d config
    | None -> config
  in
  let self = ref None in
  let process ctx addr =
    match !self with
    | None -> Error (Engine.permanent "analyzer not initialized")
    | Some t -> process_item t ctx addr
  in
  let* engine, extra =
    Engine.restore ?batch_size ~domains:config.Config.domains
      ~key:(group_key chain) ?crash_plan ?attempt_ceiling
      ~subject:Address.to_hex ~process ~item_of_json:address_of_json
      ~res_of_json:Serialize.contract_report_of_json json
  in
  let* dedup_hits = Result.bind (field "dedup_hits" extra) (dec_int "dedup_hits") in
  let* steps = Result.bind (field "steps" extra) (dec_int "steps") in
  let* api_calls = Result.bind (field "api_calls" extra) (dec_int "api_calls") in
  let* detection_entries =
    Result.bind
      (Result.bind (field "detection_cache" extra) (dec_list "detection_cache"))
      (map_result detection_cache_entry_of_json)
  in
  let* pair_entries =
    Result.bind
      (Result.bind (field "pair_cache" extra) (dec_list "pair_cache"))
      (map_result pair_cache_entry_of_json)
  in
  let t =
    {
      engine;
      chain;
      source;
      cfg = config;
      resilience;
      host = Chain.host_at_head chain;
      par = config.Config.domains > 1;
      cache_lock = Mutex.create ();
      merge_lock = Mutex.create ();
      detection_cache = Hashtbl.create 256;
      pair_cache = Hashtbl.create 256;
      dedup_hits = ref dedup_hits;
      steps_total = ref steps;
      api_calls = ref api_calls;
    }
  in
  List.iter (fun (k, v) -> Hashtbl.replace t.detection_cache k v) detection_entries;
  List.iter (fun (k, v) -> Hashtbl.replace t.pair_cache k v) pair_entries;
  self := Some t;
  Ok t
