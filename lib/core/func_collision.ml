type side =
  | Source of Minisol.Ast.contract
  | Bytecode of string

type collision = {
  selector : string;
  proxy_signature : string option;
  logic_signature : string option;
}

let selectors_of_side = function
  | Source c -> Minisol.Ast.selectors c
  | Bytecode code -> Selector_extract.dispatcher_selectors code

let signature_for side selector =
  match side with
  | Bytecode _ -> None
  | Source c ->
      List.find_map
        (fun f ->
          let signature = Minisol.Ast.signature f in
          if Selector_extract.selector_of_signature signature = selector then
            Some signature
          else None)
        c.Minisol.Ast.c_funcs

let detect ~proxy ~logic =
  let proxy_selectors = selectors_of_side proxy in
  let logic_selectors = selectors_of_side logic in
  let logic_set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace logic_set s ()) logic_selectors;
  List.filter_map
    (fun s ->
      if Hashtbl.mem logic_set s then
        Some
          {
            selector = s;
            proxy_signature = signature_for proxy s;
            logic_signature = signature_for logic s;
          }
      else None)
    proxy_selectors

let has_collision ~proxy ~logic = detect ~proxy ~logic <> []
