(** The paper's proposed future-work extension (§8.2): detecting diamond
    (EIP-2535) proxies that the random probe misses.

    A diamond forwards only selectors registered in its facet table, so the
    crafted call data of §4.2 is rejected.  The fix the paper sketches:
    harvest candidate selectors from the contract's {e historical
    transactions} (the CRUSH trick) and probe with those instead — a
    registered selector passes the gate and the forwarding delegatecall
    becomes observable.  Hidden diamonds (no transactions at all) remain
    undetectable, which this module reports faithfully. *)

val candidate_selectors : Chain.t -> Evm.Address.t -> string list
(** Distinct 4-byte selectors from the inputs of historical external
    transactions to the contract, in first-seen order. *)

val detect :
  ?seed:int ->
  ?max_probes:int ->
  ?fuel:Evm.Interp.fuel ->
  Chain.t ->
  Evm.Address.t ->
  Proxy_detect.t
(** Run the standard emulation probe first; when it reports
    [Not_proxy_no_forward], re-probe with each historical selector (up to
    [max_probes], default 8).  A forwarded historical probe yields
    [Proxy] with the observed target and source.  [fuel] is the shared
    per-item watchdog allowance charged by every probe emulation (see
    {!Evm.Interp.guard_fuel}); snapshots are reverted before a watchdog
    abort propagates. *)
