module Address = Evm.Address
module Host = Evm.Host
module Interp = Evm.Interp
module Opcode = Evm.Opcode
module Disasm = Evm.Disasm

type target_source =
  | Hardcoded
  | Storage_slot of U256.t
  | Computed

type verdict =
  | Not_proxy_no_delegatecall
  | Not_proxy_no_forward
  | Proxy of { target : Address.t; source : target_source }
  | Emulation_error of string

type t = {
  address : Address.t;
  verdict : verdict;
  probe_selector : string;
  steps : int;
}

let is_proxy d = match d.verdict with Proxy _ -> true | _ -> false

let probe_caller = Address.of_hex "0x00000000000000000000000000000000c0ffee01"

let probe_calldata ~code ~seed =
  let avoid = Selector_extract.probe_avoid_set code in
  let selector = Evm.Abi.random_selector ~unavailable:avoid ~seed in
  (* One pseudo-random argument word keeps ABI-decoding fallbacks alive. *)
  let arg = Keccak.digest (Printf.sprintf "proxion-arg-%d" seed) in
  selector ^ arg

let address_mask = U256.pred (U256.shift_left U256.one 160)

(* Occurrence of the raw 20 target bytes anywhere in the code. *)
let contains_substring ~haystack ~needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i = if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  nn > 0 && at 0

let attribute_source ~code ~sloads target =
  let target_word = Address.to_u256 target in
  let from_slot =
    List.find_map
      (fun (slot, value) ->
        if U256.equal (U256.logand value address_mask) target_word then
          Some slot
        else None)
      sloads
  in
  match from_slot with
  | Some slot -> Storage_slot slot
  | None ->
      if contains_substring ~haystack:code ~needle:target then Hardcoded
      else Computed

let detect ?(seed = 1) ?fuel ?(tracer = Interp.no_tracer) ~host address =
  let code = host.Host.get_code address in
  if code = "" || not (Disasm.has_opcode code Opcode.DELEGATECALL) then
    { address; verdict = Not_proxy_no_delegatecall; probe_selector = ""; steps = 0 }
  else begin
    let calldata = probe_calldata ~code ~seed in
    let forwarded = ref None in
    let sloads = ref [] in
    let steps = ref 0 in
    let inner = tracer in
    let tracer =
      {
        inner with
        Interp.on_step =
          (fun ~depth ~pc op ->
            incr steps;
            inner.Interp.on_step ~depth ~pc op);
        Interp.on_call =
          (fun ev ->
            if
              !forwarded = None
              && ev.Interp.kind = Interp.Delegatecall
              && Address.equal ev.Interp.context_address address
              && ev.Interp.input = calldata
            then forwarded := Some ev.Interp.code_address;
            inner.Interp.on_call ev);
        Interp.on_sload =
          (fun a slot value ->
            if Address.equal a address then sloads := (slot, value) :: !sloads;
            inner.Interp.on_sload a slot value);
      }
    in
    let tracer =
      match fuel with None -> tracer | Some f -> Interp.guard_fuel f tracer
    in
    let snapshot = host.Host.snapshot () in
    (* A watchdog abort escapes [execute] by exception; the probe must
       still leave the world untouched. *)
    let result =
      Fun.protect
        ~finally:(fun () -> host.Host.revert_to snapshot)
        (fun () ->
          Interp.execute ~tracer ~step_limit:200_000 host
            (Interp.make_call ~caller:probe_caller ~target:address
               ~input:calldata ()))
    in
    let verdict =
      match !forwarded with
      | Some target ->
          Proxy { target; source = attribute_source ~code ~sloads:!sloads target }
      | None -> (
          match result.Interp.status with
          | Interp.Failed err -> Emulation_error (Interp.error_to_string err)
          | Interp.Returned | Interp.Reverted -> Not_proxy_no_forward)
    in
    {
      address;
      verdict;
      probe_selector = Hexutil.take 4 calldata;
      steps = !steps;
    }
  end

let detect_code ?seed code =
  let host = Host.in_memory () in
  let address = Address.of_hex "0x00000000000000000000000000000000c0ffee99" in
  Host.with_code host address code;
  detect ?seed ~host address
