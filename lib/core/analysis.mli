(** Shared vocabulary of the analysis layer: the per-contract and
    per-pair report types every consumer reads, the aggregate statistics,
    and the {!Config} record that replaced the retired [Pipeline.run]
    entry point's optional arguments.  {!Pipeline} re-exports everything
    here under its historical names; {!Analyzer} produces the values. *)

type source_lookup = Evm.Address.t -> Minisol.Ast.contract option
(** The Etherscan stand-in: source for "verified" contracts, [None] for
    the hidden ones. *)

type analysis_method =
  | Source_source  (** Both sides verified: the Slither path. *)
  | Mixed  (** One side bytecode-only: the paper's novel coverage. *)
  | Bytecode_bytecode  (** Both hidden. *)

type pair_report = {
  p_proxy : Evm.Address.t;
  p_logic : Evm.Address.t;
  p_method : analysis_method;
  p_func_collisions : Func_collision.collision list;
  p_storage_collisions : Storage_collision.collision list;
  p_honeypot : bool;
      (** The function collision classifies as a honeypot (§2.3): the
          logic's colliding function baits the caller while the proxy's
          twin moves assets. *)
}

type contract_report = {
  r_address : Evm.Address.t;
  r_code_hash : string;
  r_detection : Proxy_detect.t;
  r_standard : Standard_classify.standard option;  (** Proxies only. *)
  r_resolution : Logic_resolve.resolution option;  (** Proxies only. *)
  r_pairs : pair_report list;
  r_dedup_hit : bool;  (** Detection reused from an identical bytecode. *)
}

type stats = {
  s_analyzed : int;
  s_proxies : int;
  s_emulation_errors : int;
  s_pairs : int;
  s_func_colliding_pairs : int;
  s_storage_colliding_pairs : int;
  s_verified_storage_pairs : int;
  s_honeypot_pairs : int;  (** Function-colliding pairs with honeypot shape. *)
  s_dedup_hits : int;
  s_unique_codes : int;
  s_api_calls : int;  (** getStorageAt calls spent by Algorithm 1. *)
  s_emulation_steps : int;  (** EVM instructions interpreted by probes. *)
}

type report = { contracts : contract_report list; stats : stats }

val is_proxy_report : contract_report -> bool
val proxies : report -> contract_report list

val compute_stats :
  dedup_hits:int ->
  unique_codes:int ->
  api_calls:int ->
  emulation_steps:int ->
  contract_report list ->
  stats
(** Aggregate the per-contract reports; the four counters come from the
    engine run that produced them. *)

(** Run configuration — one value threaded through the engine, the CLI,
    the benchmark harness and the experiments, replacing the optional
    argument soup of the retired [Pipeline.run] entry point. *)
module Config : sig
  type t = {
    verify_storage : bool;
        (** CRUSH-style exploit verification of storage-collision
            candidates (default [true]). *)
    dedup : bool;
        (** Reuse detection and pair-analysis results across identical
            bytecodes (default [true]). *)
    diamond_extension : bool;
        (** §8.2: re-probe probe-negative contracts with selectors
            harvested from their transaction history (default [false],
            matching the paper's evaluated system). *)
    batch_size : int;
        (** Contracts per scheduler batch (default 32). *)
    domains : int;
        (** Worker domains per batch (default 1 = sequential).  Any value
            produces byte-identical reports and checkpoints; larger values
            only change wall-clock time on multicore hosts. *)
  }

  val default : t
  val with_verify_storage : bool -> t -> t
  val with_dedup : bool -> t -> t
  val with_diamond_extension : bool -> t -> t
  val with_batch_size : int -> t -> t
  val with_domains : int -> t -> t

  val validate : t -> (t, Report.Validate.error) result
  (** The shared config gate ({!Report.Validate}): positive
      [batch_size] and [domains]. *)

  val to_json : t -> Report.Json.t
  val of_json : Report.Json.t -> (t, string) result
end
