(** The full ProxioN pipeline over a chain: proxy detection with
    bytecode-hash deduplication, logic resolution, standard classification,
    and per-pair function and storage collision checks with the analysis
    method chosen by source availability — the end-to-end system the paper
    evaluates in §6 and §7.

    This module is a thin facade over the staged {!Analyzer} engine:
    {!analyze} is the one-shot entry point, and all result types are
    re-exported from {!Analysis}.  Callers that need batching, progress
    events, interruption, dead-letter requeue or checkpoint/resume
    should use {!Analyzer} directly. *)

module Config = Analysis.Config
(** Run configuration; see {!Analysis.Config}. *)

type source_lookup = Analysis.source_lookup
(** The Etherscan stand-in: source for "verified" contracts, [None] for the
    hidden ones. *)

type analysis_method = Analysis.analysis_method =
  | Source_source  (** Both sides verified: the Slither path. *)
  | Mixed  (** One side bytecode-only: the paper's novel coverage. *)
  | Bytecode_bytecode  (** Both hidden. *)

type pair_report = Analysis.pair_report = {
  p_proxy : Evm.Address.t;
  p_logic : Evm.Address.t;
  p_method : analysis_method;
  p_func_collisions : Func_collision.collision list;
  p_storage_collisions : Storage_collision.collision list;
  p_honeypot : bool;
      (** The function collision classifies as a honeypot (§2.3): the
          logic's colliding function baits the caller while the proxy's
          twin moves assets. *)
}

type contract_report = Analysis.contract_report = {
  r_address : Evm.Address.t;
  r_code_hash : string;
  r_detection : Proxy_detect.t;
  r_standard : Standard_classify.standard option;  (** Proxies only. *)
  r_resolution : Logic_resolve.resolution option;  (** Proxies only. *)
  r_pairs : pair_report list;
  r_dedup_hit : bool;  (** Detection reused from an identical bytecode. *)
}

type stats = Analysis.stats = {
  s_analyzed : int;
  s_proxies : int;
  s_emulation_errors : int;
  s_pairs : int;
  s_func_colliding_pairs : int;
  s_storage_colliding_pairs : int;
  s_verified_storage_pairs : int;
  s_honeypot_pairs : int;  (** Function-colliding pairs with honeypot shape. *)
  s_dedup_hits : int;
  s_unique_codes : int;
  s_api_calls : int;  (** getStorageAt calls spent by Algorithm 1. *)
  s_emulation_steps : int;  (** EVM instructions interpreted by probes. *)
}

type report = Analysis.report = {
  contracts : contract_report list;
  stats : stats;
}

val analyze :
  ?config:Config.t ->
  ?addresses:Evm.Address.t list ->
  chain:Chain.t ->
  source:source_lookup ->
  unit ->
  report
(** Analyze [addresses] (default: every contract on the chain, in
    deployment order) under [config] (default {!Config.default}) by
    driving the staged engine to completion.  Equivalent to building an
    {!Analyzer}, submitting the addresses and draining the queue. *)

val proxies : report -> contract_report list
val is_proxy_report : contract_report -> bool
