module Address = Evm.Address
module Host = Evm.Host
module Interp = Evm.Interp

let candidate_selectors chain address =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun tx ->
      if tx.Chain.tx_to = Some address && String.length tx.Chain.tx_input >= 4
      then begin
        let sel = String.sub tx.Chain.tx_input 0 4 in
        if Hashtbl.mem seen sel then None
        else begin
          Hashtbl.replace seen sel ();
          Some sel
        end
      end
      else None)
    (Chain.transactions_of chain address)

let contains_substring ~haystack ~needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else at (i + 1)
  in
  nn > 0 && at 0

let probe_with_selector ?fuel ~host ~address ~code selector =
  let arg = Keccak.digest ("diamond-arg" ^ selector) in
  let calldata = selector ^ arg in
  let forwarded = ref None in
  let sloads = ref [] in
  let tracer =
    {
      Interp.no_tracer with
      Interp.on_call =
        (fun ev ->
          if
            !forwarded = None
            && ev.Interp.kind = Interp.Delegatecall
            && Address.equal ev.Interp.context_address address
            && ev.Interp.input = calldata
          then forwarded := Some ev.Interp.code_address);
      Interp.on_sload =
        (fun a slot value ->
          if Address.equal a address then sloads := (slot, value) :: !sloads);
    }
  in
  let tracer =
    match fuel with None -> tracer | Some f -> Interp.guard_fuel f tracer
  in
  let snapshot = host.Host.snapshot () in
  Fun.protect
    ~finally:(fun () -> host.Host.revert_to snapshot)
    (fun () ->
      ignore
        (Interp.execute ~tracer ~step_limit:200_000 host
           (Interp.make_call
              ~caller:(Address.of_hex "0x00000000000000000000000000000000c0ffee02")
              ~target:address ~input:calldata ())));
  match !forwarded with
  | None -> None
  | Some target ->
      (* Diamond targets come from facet mappings: the SLOAD that produced
         the address has a keccak-derived slot, so attribution typically
         reports Computed; slot-based or hard-coded cases still resolve. *)
      let source =
        match
          List.find_map
            (fun (slot, value) ->
              if
                U256.equal
                  (U256.logand value (U256.pred (U256.shift_left U256.one 160)))
                  (Address.to_u256 target)
              then Some slot
              else None)
            !sloads
        with
        | Some slot -> Proxy_detect.Storage_slot slot
        | None ->
            if contains_substring ~haystack:code ~needle:target then
              Proxy_detect.Hardcoded
            else Proxy_detect.Computed
      in
      Some (target, source)

let detect ?(seed = 1) ?(max_probes = 8) ?fuel chain address =
  let host = Chain.host_at_head chain in
  let base = Proxy_detect.detect ~seed ?fuel ~host address in
  match base.Proxy_detect.verdict with
  | Proxy_detect.Not_proxy_no_forward -> (
      let code = Chain.code_at chain address in
      let candidates =
        List.filteri (fun i _ -> i < max_probes) (candidate_selectors chain address)
      in
      let rec try_all = function
        | [] -> base
        | sel :: rest -> (
            match probe_with_selector ?fuel ~host ~address ~code sel with
            | Some (target, source) ->
                {
                  base with
                  Proxy_detect.verdict = Proxy_detect.Proxy { target; source };
                  probe_selector = sel;
                }
            | None -> try_all rest)
      in
      try_all candidates)
  | _ -> base
