module Address = Evm.Address
module Ast = Minisol.Ast
module Patterns = Minisol.Patterns
module Codegen = Minisol.Codegen
module Standard = Proxion.Standard_classify

type kind =
  | K_minimal_proxy
  | K_slot_proxy
  | K_eip1967_proxy
  | K_eip1822_proxy
  | K_beacon_proxy
  | K_ownable_clone
  | K_honeypot_proxy
  | K_audius_proxy
  | K_diamond_proxy
  | K_library_caller
  | K_plain
  | K_broken

let kind_to_string = function
  | K_minimal_proxy -> "minimal-proxy"
  | K_slot_proxy -> "slot-proxy"
  | K_eip1967_proxy -> "eip1967-proxy"
  | K_eip1822_proxy -> "eip1822-proxy"
  | K_beacon_proxy -> "beacon-proxy"
  | K_ownable_clone -> "ownable-clone"
  | K_honeypot_proxy -> "honeypot-proxy"
  | K_audius_proxy -> "audius-proxy"
  | K_diamond_proxy -> "diamond-proxy"
  | K_library_caller -> "library-caller"
  | K_plain -> "plain"
  | K_broken -> "broken"

type label = {
  l_address : Address.t;
  l_year : int;
  l_kind : kind;
  l_is_proxy : bool;
  l_standard : Standard.standard option;
  l_has_source : bool;
  l_has_tx : bool;
  l_logics : Address.t list;
  l_func_collision : bool;
  l_storage_collision : bool;
  l_upgrades : int;
}

type config = {
  total : int;
  seed : int;
  storage_boost : float;
  function_injection_share : float;
  broken_rate : float;
  chain_id : int;
}

let default_config =
  {
    total = 36_000;
    seed = 42;
    storage_boost = 100.0;
    function_injection_share = 0.013;
    broken_rate = 0.01;
    chain_id = 1;
  }

let quick_config = { default_config with total = 2_000; storage_boost = 400.0 }

type t = {
  chain : Chain.t;
  labels : label list;
  source_of : Proxion.Pipeline.source_lookup;
  config : config;
}

(* ------------------------------------------------------------------ *)
(* Contract templates                                                   *)
(* ------------------------------------------------------------------ *)

(* A logic contract whose storage starts at a reserved offset, safe to sit
   behind a slot-variable proxy without colliding with owner/logic vars. *)
let offset_logic i =
  Ast.contract (Printf.sprintf "OffsetLogic%d" i)
    ~vars:
      [
        { Ast.v_name = "reserved0"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "reserved1"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "value"; v_ty = Ast.T_uint 256 };
      ]
    ~funcs:
      [
        Ast.func (Printf.sprintf "setValue%d" i)
          ~params:[ { Ast.p_name = "v"; p_ty = Ast.T_uint 256 } ]
          [ Ast.Store ("value", Ast.Param 0) ];
        Ast.func "getValue" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
          [ Ast.Return_value (Ast.Load "value") ];
      ]

(* The OwnableDelegateProxy shape: three admin functions that also exist in
   the Wyvern-style logic, producing the mainnet's dominant function
   collision (§7.2). *)
let ownable_delegate_proxy () =
  Ast.contract "OwnableDelegateProxy"
    ~vars:
      [
        { Ast.v_name = "owner"; v_ty = Ast.T_address };
        { Ast.v_name = "logic"; v_ty = Ast.T_address };
      ]
    ~funcs:
      [
        Ast.func "proxyType" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
          [ Ast.Return_value (Ast.Const (U256.of_int 2)) ];
        Ast.func "implementation" ~mutability:Ast.View ~returns:Ast.T_address
          [ Ast.Return_value (Ast.Load "logic") ];
        Ast.func "upgradeabilityOwner" ~mutability:Ast.View ~returns:Ast.T_address
          [ Ast.Return_value (Ast.Load "owner") ];
      ]
    ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])

let wyvern_logic () =
  Ast.contract "WyvernRegistryLogic"
    ~vars:
      [
        { Ast.v_name = "pad0"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "pad1"; v_ty = Ast.T_uint 256 };
        { Ast.v_name = "registry"; v_ty = Ast.T_mapping (Ast.T_address, Ast.T_uint 256) };
      ]
    ~funcs:
      [
        Ast.func "proxyType" ~mutability:Ast.View ~returns:(Ast.T_uint 256)
          [ Ast.Return_value (Ast.Const (U256.of_int 2)) ];
        Ast.func "implementation" ~mutability:Ast.View ~returns:Ast.T_address
          [ Ast.Return_value (Ast.Const_addr Address.zero) ];
        Ast.func "upgradeabilityOwner" ~mutability:Ast.View ~returns:Ast.T_address
          [ Ast.Return_value (Ast.Const_addr Address.zero) ];
        Ast.func "register"
          [ Ast.Map_store ("registry", Ast.Caller, Ast.Const U256.one) ];
      ]

let slot_proxy_variant i =
  Patterns.slot_var_proxy
    ~extra_funcs:
      [ Ast.func (Printf.sprintf "ping%d" i) [ Ast.Stop ] ]
    ()

(* A mis-implemented upgradeable proxy: setLogic without the owner check —
   what the Upgrade_auth survey should flag as open to anyone. *)
let open_slot_proxy_variant i =
  Ast.contract (Printf.sprintf "OpenProxy%d" i)
    ~vars:
      [
        { Ast.v_name = "owner"; v_ty = Ast.T_address };
        { Ast.v_name = "logic"; v_ty = Ast.T_address };
      ]
    ~funcs:
      [
        Ast.func "setLogic"
          ~params:[ { Ast.p_name = "l"; p_ty = Ast.T_address } ]
          [ Ast.Store ("logic", Ast.Param 0) ];
        Ast.func (Printf.sprintf "tag%d" i) [ Ast.Stop ];
      ]
    ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])

let eip1967_variant i =
  let base = Patterns.eip1967_proxy () in
  {
    base with
    Ast.c_funcs =
      base.Ast.c_funcs @ [ Ast.func (Printf.sprintf "mark%d" i) [ Ast.Stop ] ];
  }

let eip1822_variant i =
  let base = Patterns.eip1822_proxy () in
  {
    base with
    Ast.c_name = Printf.sprintf "UUPSProxy%d" i;
    Ast.c_funcs = [ Ast.func (Printf.sprintf "tag%d" i) [ Ast.Stop ] ];
  }

(* A fresh honeypot pair built from a mined selector collision. *)
let honeypot_variant (pair : Sig_mine.pair) =
  let strip_parens s = String.sub s 0 (String.length s - 2) in
  let proxy =
    Ast.contract "HiddenHoneypotProxy"
      ~vars:
        [
          { Ast.v_name = "owner"; v_ty = Ast.T_address };
          { Ast.v_name = "logic"; v_ty = Ast.T_address };
        ]
      ~funcs:
        [
          Ast.func (strip_parens pair.Sig_mine.sig_a)
            [
              Ast.Delegate_sig
                ( Ast.Const_addr Patterns.usdt_address,
                  "transfer(address,uint256)",
                  [ Ast.Load "owner"; Ast.Const (U256.of_int 1000) ] );
            ];
        ]
      ~fallback:(Some [ Ast.Delegate_forward (Ast.To_var "logic") ])
  in
  let logic =
    Ast.contract "EnticingLogic"
      ~funcs:
        [
          Ast.func (strip_parens pair.Sig_mine.sig_b) ~mutability:Ast.Payable
            [ Ast.Transfer (Ast.Caller, Ast.Const (U256.of_int 1_000_000)) ];
        ]
  in
  (proxy, logic)

let audius_variant i =
  let proxy =
    let base = Patterns.audius_proxy () in
    {
      base with
      Ast.c_name = Printf.sprintf "GovernanceProxy%d" i;
      Ast.c_funcs =
        base.Ast.c_funcs @ [ Ast.func (Printf.sprintf "ver%d" i) [ Ast.Stop ] ];
    }
  in
  (proxy, Patterns.audius_logic ())

(* Malformed bytecode: contains DELEGATECALL (passes the prefilter) but
   underflows the stack when executed — an emulation error. *)
let broken_bytecode i =
  Evm.Asm.assemble
    [
      Evm.Asm.Push_int (i land 0xff);
      Evm.Asm.Op Evm.Opcode.POP;
      Evm.Asm.Op Evm.Opcode.DELEGATECALL;
    ]

(* ------------------------------------------------------------------ *)
(* Generation                                                           *)
(* ------------------------------------------------------------------ *)

type gen_state = {
  g_chain : Chain.t;
  g_rng : Prng.t;
  g_sources : (Address.t, Ast.contract) Hashtbl.t;
  mutable g_labels : label list; (* since the last drain, reverse order *)
  mutable g_recorded : int; (* List.length g_labels, kept incrementally *)
  g_caller_pool : Address.t array;
}

let mk_caller i =
  Address.of_u256 (U256.of_bytes_be (Keccak.digest (Printf.sprintf "eoa-%d" i)))

let record st label =
  st.g_labels <- label :: st.g_labels;
  st.g_recorded <- st.g_recorded + 1

let register_source st addr ast = Hashtbl.replace st.g_sources addr ast

let install st runtime = Chain.install_contract st.g_chain ~runtime ()

let install_ast st ?(with_source = false) ast =
  let addr = install st (Codegen.runtime ast) in
  if with_source then register_source st addr ast;
  addr

(* Send one benign transaction to the contract so it "has transactions";
   for proxies the unknown selector exercises the forwarding fallback and
   leaves a DELEGATECALL in the history (what CRUSH scans for). *)
let give_tx st addr =
  let from = Prng.pick st.g_rng st.g_caller_pool in
  let input = Keccak.digest (Printf.sprintf "tx-%s" (Address.to_hex addr)) in
  let input = Hexutil.take 36 (input ^ input) in
  ignore (Chain.call st.g_chain ~from ~to_:addr ~input ())

let standard_of_kind = function
  | K_minimal_proxy -> Some Standard.Eip1167
  | K_eip1967_proxy -> Some Standard.Eip1967
  | K_eip1822_proxy -> Some Standard.Eip1822
  | K_slot_proxy | K_ownable_clone | K_honeypot_proxy | K_audius_proxy
  | K_diamond_proxy | K_beacon_proxy ->
      Some Standard.Other
  | K_library_caller | K_plain | K_broken -> None

let is_proxy_kind = function
  | K_minimal_proxy | K_slot_proxy | K_eip1967_proxy | K_eip1822_proxy
  | K_beacon_proxy | K_ownable_clone | K_honeypot_proxy | K_audius_proxy
  | K_diamond_proxy ->
      true
  | K_library_caller | K_plain | K_broken -> false

(* A streamed landscape: the generator is a resumable cursor over the same
   deployment sequence [generate] used to run eagerly, so specs can be
   drained batch-by-batch (and evicted after analysis) without the whole
   36M-contract landscape ever being resident.  [generate] below is a thin
   drain wrapper, which makes stream/materialized byte-identity hold by
   construction: both paths issue the identical PRNG and chain-call
   sequence. *)

type spec = { sp_label : label; sp_code : string; sp_pinned : bool }

type stream = {
  str_chain : Chain.t;
  str_config : config;
  str_state : gen_state;
  (* Addresses later deployments (or later analyses) still reference as
     delegate targets: shared logic pools, mega-clone targets, injected
     honeypot/audius logics.  Never evicted. *)
  str_pinned : (Address.t, unit) Hashtbl.t;
  str_step : unit -> bool; (* deploy one subject; false once exhausted *)
  mutable str_done : bool;
  mutable str_emitted : int;
}

let open_stream (config : config) =
  let block =
    {
      Evm.Host.default_block with
      Evm.Host.chain_id = U256.of_int config.chain_id;
    }
  in
  let chain = Chain.create ~block () in
  let rng = Prng.create config.seed in
  let st =
    {
      g_chain = chain;
      g_rng = rng;
      g_sources = Hashtbl.create 1024;
      g_labels = [];
      g_recorded = 0;
      g_caller_pool = Array.init 64 mk_caller;
    }
  in
  let pinned = Hashtbl.create 256 in
  let host = Chain.host_at_head chain in
  (* A token stands in for USDT at the honeypots' hard-coded address. *)
  Evm.Host.with_code host Patterns.usdt_address
    (Codegen.runtime (Patterns.erc20ish_logic ()));

  (* --- shared logic pools (lazily deployed, labels recorded) ---------- *)
  let year_ref = ref 2015 in
  let deploy_logic ?(with_source = false) ast =
    let addr = install_ast st ~with_source ast in
    Hashtbl.replace pinned addr ();
    record st
      {
        l_address = addr;
        l_year = !year_ref;
        l_kind = K_plain;
        l_is_proxy = false;
        l_standard = None;
        l_has_source = with_source;
        l_has_tx = false;
        l_logics = [];
        l_func_collision = false;
        l_storage_collision = false;
        l_upgrades = 0;
      };
    addr
  in
  (* Mega-clone targets. *)
  let cointool_logic = deploy_logic ~with_source:true (offset_logic 9001) in
  let xen_logic = deploy_logic ~with_source:true (offset_logic 9002) in
  let wyvern = deploy_logic ~with_source:true (wyvern_logic ()) in
  let cointool_bytes = Patterns.eip1167_runtime cointool_logic in
  let xen_bytes = Patterns.eip1167_runtime xen_logic in
  let ownable_ast = ownable_delegate_proxy () in
  let ownable_bytes = Codegen.runtime ownable_ast in
  (* Tail pools. *)
  let n_minimal_groups = 60 in
  let minimal_targets =
    Array.init n_minimal_groups (fun i ->
        lazy (deploy_logic ~with_source:(i mod 3 = 0) (offset_logic i)))
  in
  let minimal_group_weight i = 1.0 /. float_of_int (i + 2) in
  let n_variant_pool = 12 in
  let slot_variants =
    Array.init n_variant_pool (fun i ->
        (* One in six slot-proxy variants ships the unprotected setter. *)
        if i mod 6 = 5 then open_slot_proxy_variant i else slot_proxy_variant i)
  in
  let e1967_variants = Array.init n_variant_pool eip1967_variant in
  let e1822_variants = Array.init 4 eip1822_variant in
  let plain_pool =
    Array.init 24 (fun i ->
        if i mod 3 = 0 then Patterns.erc20ish_logic ()
        else if i mod 3 = 1 then Patterns.counter_logic ()
        else offset_logic (100 + i))
  in
  let aligned_logic =
    Array.init 16 (fun i -> lazy (deploy_logic ~with_source:(i mod 2 = 0) (offset_logic (200 + i))))
  in
  (* Honeypot collision pairs, mined up front. *)
  let total_func_mainnet =
    List.fold_left (fun acc (_, n) -> acc + n) 0 Spec.function_collisions_by_year
  in
  let injected_func_total =
    max 1
      (int_of_float
         (Float.round
            (float_of_int (Spec.scale config.total total_func_mainnet)
            *. config.function_injection_share)))
  in
  let mined = Array.of_list (Sig_mine.mine ~count:(injected_func_total + 4) ()) in
  let mined_idx = ref 0 in
  let next_mined () =
    let p = mined.(!mined_idx mod Array.length mined) in
    incr mined_idx;
    p
  in

  (* --- per-year quotas ------------------------------------------------ *)
  let year_quota year =
    let share = List.assoc year Spec.yearly_share in
    max 1 (int_of_float (Float.round (share *. float_of_int config.total)))
  in
  let scaled_per_year table year factor =
    let mainnet = List.assoc year table in
    if mainnet = 0 then 0
    else
      max
        (if mainnet > 0 then 1 else 0)
        (int_of_float
           (Float.round
              (float_of_int mainnet
              *. (float_of_int config.total /. float_of_int Spec.mainnet_total_alive)
              *. factor)))
  in

  (* --- deployment helpers --------------------------------------------- *)
  let upgrades_for_slot_proxy proxy slot =
    (* Figure 6: 0.3% of proxies upgrade, 1.32 events on average. *)
    if Prng.bool rng Spec.upgrade_rate_slot_proxy then begin
      let events = if Prng.bool rng 0.68 then 1 else 1 + Prng.int rng 2 in
      let new_logics =
        List.init events (fun _ ->
            Lazy.force (Prng.pick rng aligned_logic))
      in
      List.iter
        (fun l ->
          Chain.advance_blocks chain (1 + Prng.int rng 40);
          Chain.set_storage_direct chain proxy slot (Address.to_u256 l))
        new_logics;
      new_logics
    end
    else []
  in
  let deploy_proxy kind =
    match kind with
    | K_minimal_proxy ->
        let choices =
          List.init n_minimal_groups (fun i -> (i, minimal_group_weight i))
        in
        let group = Prng.pick_weighted rng choices in
        let target = Lazy.force minimal_targets.(group) in
        let addr = install st (Patterns.eip1167_runtime target) in
        (addr, [ target ], false, false, 0)
    | K_ownable_clone ->
        let addr = install st ownable_bytes in
        if Prng.bool rng 0.5 then register_source st addr ownable_ast;
        Chain.set_storage_direct chain addr U256.one (Address.to_u256 wyvern);
        (addr, [ wyvern ], true, false, 0)
    | K_slot_proxy ->
        let variant = Prng.pick rng slot_variants in
        let with_source = Prng.bool rng 0.6 in
        let addr = install_ast st ~with_source variant in
        let logic = Lazy.force (Prng.pick rng aligned_logic) in
        Chain.set_storage_direct chain addr U256.one (Address.to_u256 logic);
        let upgrades = upgrades_for_slot_proxy addr U256.one in
        (addr, logic :: upgrades, false, false, List.length upgrades)
    | K_eip1967_proxy ->
        let variant = Prng.pick rng e1967_variants in
        let with_source = Prng.bool rng 0.6 in
        let addr = install_ast st ~with_source variant in
        let logic = Lazy.force (Prng.pick rng aligned_logic) in
        Chain.set_storage_direct chain addr Patterns.eip1967_implementation_slot
          (Address.to_u256 logic);
        let upgrades =
          upgrades_for_slot_proxy addr Patterns.eip1967_implementation_slot
        in
        (addr, logic :: upgrades, false, false, List.length upgrades)
    | K_eip1822_proxy ->
        let variant = Prng.pick rng e1822_variants in
        let addr = install_ast st ~with_source:(Prng.bool rng 0.6) variant in
        let logic = Lazy.force (Prng.pick rng aligned_logic) in
        Chain.set_storage_direct chain addr Patterns.eip1822_proxiable_slot
          (Address.to_u256 logic);
        (addr, [ logic ], false, false, 0)
    | K_beacon_proxy ->
        let logic = Lazy.force (Prng.pick rng aligned_logic) in
        let beacon = install_ast st (Patterns.beacon ()) in
        Chain.set_storage_direct chain beacon U256.one (Address.to_u256 logic);
        let addr =
          install_ast st ~with_source:(Prng.bool rng 0.4) (Patterns.beacon_proxy ())
        in
        Chain.set_storage_direct chain addr Patterns.eip1967_beacon_slot
          (Address.to_u256 beacon);
        (addr, [ logic ], false, false, 0)
    | K_honeypot_proxy ->
        let proxy_ast, logic_ast = honeypot_variant (next_mined ()) in
        let logic = deploy_logic ~with_source:(Prng.bool rng 0.5) logic_ast in
        let addr = install_ast st ~with_source:(Prng.bool rng 0.3) proxy_ast in
        Chain.set_storage_direct chain addr U256.one (Address.to_u256 logic);
        (addr, [ logic ], true, false, 0)
    | K_audius_proxy ->
        let proxy_ast, logic_ast = audius_variant (Prng.int rng 1_000_000) in
        let logic = deploy_logic ~with_source:true logic_ast in
        let addr = install_ast st ~with_source:true proxy_ast in
        Chain.set_storage_direct chain addr U256.zero
          (Address.to_u256 (Prng.pick rng st.g_caller_pool));
        Chain.set_storage_direct chain addr U256.one (Address.to_u256 logic);
        (addr, [ logic ], false, true, 0)
    | K_diamond_proxy ->
        let addr =
          install_ast st ~with_source:(Prng.bool rng 0.5) (Patterns.diamond_proxy ())
        in
        let logic = Lazy.force (Prng.pick rng aligned_logic) in
        (addr, [ logic ], false, false, 0)
    | K_library_caller | K_plain | K_broken -> assert false
  in
  let library_tx addr =
    (* Exercise the delegate-calling function so the library call leaves a
       DELEGATECALL trace in history — the CRUSH false-positive shape. *)
    let from = Prng.pick rng st.g_caller_pool in
    let input =
      Evm.Abi.encode_call ~signature:"addChecked(uint256,uint256)"
        [ Evm.Abi.Uint U256.one; Evm.Abi.Uint (U256.of_int 2) ]
    in
    ignore (Chain.call chain ~from ~to_:addr ~input ())
  in
  let deploy_non_proxy kind i =
    match kind with
    | K_library_caller ->
        let lib = Lazy.force (Prng.pick rng aligned_logic) in
        install_ast st ~with_source:(Prng.bool rng Spec.source_rate_non_proxy)
          (Patterns.library_caller ~lib)
    | K_broken -> install st (broken_bytecode i)
    | _ ->
        let ast = Prng.pick rng plain_pool in
        install_ast st ~with_source:(Prng.bool rng Spec.source_rate_non_proxy) ast
  in

  (* --- deployment steps ----------------------------------------------- *)
  let deploy_one year kind =
    let has_tx = Prng.bool rng Spec.tx_rate in
    if is_proxy_kind kind then begin
      let addr, logics, func_c, storage_c, upgrades = deploy_proxy kind in
      if has_tx then give_tx st addr;
      record st
        {
          l_address = addr;
          l_year = year;
          l_kind = kind;
          l_is_proxy = true;
          l_standard = standard_of_kind kind;
          l_has_source = Hashtbl.mem st.g_sources addr;
          l_has_tx = has_tx;
          l_logics = logics;
          l_func_collision = func_c;
          l_storage_collision = storage_c;
          l_upgrades = upgrades;
        }
    end
    else begin
      let addr = deploy_non_proxy kind (Prng.int rng 1_000_000) in
      if has_tx then
        if kind = K_library_caller then library_tx addr else give_tx st addr;
      record st
        {
          l_address = addr;
          l_year = year;
          l_kind = kind;
          l_is_proxy = false;
          l_standard = None;
          l_has_source = Hashtbl.mem st.g_sources addr;
          l_has_tx = has_tx;
          l_logics = [];
          l_func_collision = false;
          l_storage_collision = false;
          l_upgrades = 0;
        }
    end
  in
  let deploy_tail year =
    let kind =
      if Prng.bool rng config.broken_rate then K_broken
      else if Prng.bool rng (Spec.proxy_rate_by_year year) then begin
        (* Ownable clones (the function-colliding mega-clone) follow
           Table 3's year shape; CoinTool/XEN minimal mega-clones and
           the tail split the rest; diamonds are a trace. *)
        if Prng.bool rng (Spec.ownable_clone_rate year) then K_ownable_clone
        else if Prng.bool rng 0.0004 then K_diamond_proxy
        else if Prng.bool rng 0.341 then K_minimal_proxy (* mega 1167 *)
        else
          Prng.pick_weighted rng
            [
              (K_minimal_proxy, 0.5495);
              (K_eip1967_proxy, 0.0100);
              (K_eip1822_proxy, 0.0012);
              (K_slot_proxy, 0.0163);
              (K_beacon_proxy, 0.0030);
            ]
      end
      else if Prng.bool rng 0.05 then K_library_caller
      else K_plain
    in
    (* Mega minimal clones must reuse the two fixed byte strings. *)
    match kind with
    | K_minimal_proxy when Prng.bool rng 0.383 ->
        (* Route a share of minimal proxies into the two mega groups. *)
        let bytes = if Prng.bool rng 0.52 then cointool_bytes else xen_bytes in
        let target = if bytes == cointool_bytes then cointool_logic else xen_logic in
        let addr = install st bytes in
        let has_tx = Prng.bool rng Spec.tx_rate in
        if has_tx then give_tx st addr;
        record st
          {
            l_address = addr;
            l_year = year;
            l_kind = K_minimal_proxy;
            l_is_proxy = true;
            l_standard = Some Standard.Eip1167;
            l_has_source = false;
            l_has_tx = has_tx;
            l_logics = [ target ];
            l_func_collision = false;
            l_storage_collision = false;
            l_upgrades = 0;
          }
    | _ -> deploy_one year kind
  in

  (* --- the cursor over the per-year quota loop ------------------------- *)
  (* Per-year quotas and the injection list involve no PRNG draws, so
     computing them lazily on the first step of each year leaves the random
     sequence identical to the eager loop. *)
  let n_years = Array.length Spec.years in
  let year_idx = ref 0 in
  let year_open = ref false in
  let pending_inj = ref [] in
  let pending_tail = ref 0 in
  let rec step () =
    if !year_idx >= n_years then false
    else begin
      let year = Spec.years.(!year_idx) in
      if not !year_open then begin
        year_ref := year;
        let quota = year_quota year in
        let storage_injections =
          scaled_per_year Spec.storage_collisions_by_year year
            config.storage_boost
        in
        let func_injections =
          scaled_per_year Spec.function_collisions_by_year year
            (config.function_injection_share *. 1.0)
        in
        let injections =
          List.init storage_injections (fun _ -> K_audius_proxy)
          @ List.init func_injections (fun _ -> K_honeypot_proxy)
        in
        pending_inj := injections;
        pending_tail := max 0 (quota - (2 * List.length injections));
        year_open := true
      end;
      match !pending_inj with
      | kind :: rest ->
          pending_inj := rest;
          deploy_one year kind;
          true
      | [] ->
          if !pending_tail > 0 then begin
            decr pending_tail;
            deploy_tail year;
            true
          end
          else begin
            year_open := false;
            incr year_idx;
            step ()
          end
    end
  in
  {
    str_chain = chain;
    str_config = config;
    str_state = st;
    str_pinned = pinned;
    str_step = step;
    str_done = false;
    str_emitted = 0;
  }

let next_batch stream ~batch =
  let st = stream.str_state in
  if stream.str_done && st.g_labels = [] then None
  else begin
    let exhausted = ref stream.str_done in
    while (not !exhausted) && st.g_recorded < batch do
      if not (stream.str_step ()) then exhausted := true
    done;
    stream.str_done <- !exhausted;
    let labels = List.rev st.g_labels in
    st.g_labels <- [];
    st.g_recorded <- 0;
    match labels with
    | [] -> None
    | _ ->
        let specs =
          List.map
            (fun l ->
              {
                sp_label = l;
                sp_code = Chain.code_at stream.str_chain l.l_address;
                sp_pinned = Hashtbl.mem stream.str_pinned l.l_address;
              })
            labels
          |> Array.of_list
        in
        stream.str_emitted <- stream.str_emitted + Array.length specs;
        Some specs
  end

let stream_chain stream = stream.str_chain
let stream_config stream = stream.str_config
let stream_emitted stream = stream.str_emitted

let stream_source_of stream =
  fun addr -> Hashtbl.find_opt stream.str_state.g_sources addr

let evict stream spec =
  if not spec.sp_pinned then begin
    Hashtbl.remove stream.str_state.g_sources spec.sp_label.l_address;
    Chain.forget_contract stream.str_chain spec.sp_label.l_address
  end

let generate (config : config) =
  let s = open_stream config in
  let acc = ref [] in
  let rec drain () =
    match next_batch s ~batch:8192 with
    | None -> ()
    | Some specs ->
        Array.iter (fun sp -> acc := sp.sp_label :: !acc) specs;
        drain ()
  in
  drain ();
  {
    chain = s.str_chain;
    labels = List.rev !acc;
    source_of = stream_source_of s;
    config;
  }

let label_of t addr =
  List.find_opt (fun l -> Address.equal l.l_address addr) t.labels

let proxies t = List.filter (fun l -> l.l_is_proxy) t.labels

let by_year t =
  Array.to_list Spec.years
  |> List.map (fun y -> (y, List.filter (fun l -> l.l_year = y) t.labels))
