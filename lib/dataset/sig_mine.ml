type pair = { sig_a : string; sig_b : string; selector : string }

(* The birthday search retains ~65536*sqrt(2*count) probes before it finds
   [count] collisions.  Keeping them as boxed (selector, name) strings in a
   Hashtbl made peak RSS scale with the injection count — the dominant
   transient of large streamed scans.  Instead each live probe is one
   unboxed int in an open-addressed table: selector in the high 32 bits,
   probe index in the low 30 (indexes stay far below 2^30), linear probing
   with tombstone deletion.  Output is unchanged: same pairs, same order. *)

let mine ?(prefix = "fn") ~count () =
  if count <= 0 then []
  else begin
    let name_of k = Printf.sprintf "%s_%d()" prefix k in
    let empty = -1 and tomb = -2 in
    let k_mask = (1 lsl 30) - 1 in
    let mix sel = (sel * 0x2545F4914F6CDD1) land max_int in
    (* Presize near the expected probe count so the search rarely rehashes;
       the table still doubles if the estimate falls short. *)
    let init_size =
      let est =
        int_of_float (1.9 *. 65536. *. sqrt (2.0 *. float_of_int count))
      in
      let rec pow2 s = if s >= est || s >= 1 lsl 28 then s else pow2 (s * 2) in
      pow2 (1 lsl 12)
    in
    let table = ref (Array.make init_size empty) in
    let occupied = ref 0 (* live + tombstones *) in
    let live = ref 0 in
    (* Returns the slot holding [sel], or [lnot insertion_slot] if absent. *)
    let locate tbl sel =
      let mask = Array.length tbl - 1 in
      let rec go i free =
        let v = tbl.(i) in
        if v = empty then lnot (if free >= 0 then free else i)
        else if v = tomb then
          go ((i + 1) land mask) (if free >= 0 then free else i)
        else if v asr 30 = sel then i
        else go ((i + 1) land mask) free
      in
      go (mix sel land mask) (-1)
    in
    let rehash () =
      let old = !table in
      table := Array.make (2 * Array.length old) empty;
      occupied := !live;
      Array.iter
        (fun v ->
          if v >= 0 then
            let slot = lnot (locate !table (v asr 30)) in
            !table.(slot) <- v)
        old
    in
    let found = ref [] in
    let n = ref 0 in
    let k = ref 0 in
    while !n < count do
      let name = name_of !k in
      let sel_str = Keccak.selector name in
      let sel =
        (Char.code sel_str.[0] lsl 24)
        lor (Char.code sel_str.[1] lsl 16)
        lor (Char.code sel_str.[2] lsl 8)
        lor Char.code sel_str.[3]
      in
      (match locate !table sel with
      | slot when slot >= 0 ->
          found :=
            {
              sig_a = name_of (!table.(slot) land k_mask);
              sig_b = name;
              selector = sel_str;
            }
            :: !found;
          incr n;
          (* Retire the slot so each selector yields one pair. *)
          !table.(slot) <- tomb;
          decr live
      | slot ->
          let slot = lnot slot in
          if !table.(slot) = empty then incr occupied;
          !table.(slot) <- (sel lsl 30) lor !k;
          incr live;
          if 10 * !occupied >= 7 * Array.length !table then rehash ());
      incr k
    done;
    List.rev !found
  end

let find_collision_for ?(prefix = "crafted") ?(budget = 5_000_000) proto =
  let target = Keccak.selector proto in
  let rec search k =
    if k >= budget then None
    else
      let name = Printf.sprintf "%s_%d()" prefix k in
      if Keccak.selector name = target && name <> proto then Some name
      else search (k + 1)
  in
  search 0
