(** Synthetic Ethereum landscape generation.

    Builds a population of contracts on a simulated chain whose joint
    distribution follows the paper's measurements (see {!Spec}): yearly
    deployment volumes and proxy rates, source and transaction
    availability, the Table 4 standard mix, the Figure 5 clone skew with
    three mega-clones, Table 3 collision injections (function collisions
    dominated by OwnableDelegateProxy-style clones, storage collisions as
    Audius-style pairs), Figure 6 upgrade sparsity, plus the populations
    the tools disagree about: library callers (CRUSH false positives),
    diamonds (ProxioN misses), and malformed bytecode (emulation errors).

    Generation is deterministic in the config seed, and every contract
    carries a ground-truth label, which is what the accuracy experiments
    score against. *)

type kind =
  | K_minimal_proxy  (** EIP-1167 bytes. *)
  | K_slot_proxy  (** "Others": logic address in an ordinary variable. *)
  | K_eip1967_proxy
  | K_eip1822_proxy
  | K_beacon_proxy  (** EIP-1967 beacon variant: computed logic address. *)
  | K_ownable_clone  (** The function-colliding mega-clone. *)
  | K_honeypot_proxy  (** Injected fresh function collision (Listing 1). *)
  | K_audius_proxy  (** Injected storage collision (Listing 2). *)
  | K_diamond_proxy  (** EIP-2535-style; ProxioN's known miss. *)
  | K_library_caller  (** DELEGATECALL outside fallback; not a proxy. *)
  | K_plain  (** Ordinary logic/token/counter contracts. *)
  | K_broken  (** Malformed bytecode that aborts emulation. *)

val kind_to_string : kind -> string

type label = {
  l_address : Evm.Address.t;
  l_year : int;
  l_kind : kind;
  l_is_proxy : bool;  (** Ground truth under the paper's definition. *)
  l_standard : Proxion.Standard_classify.standard option;
  l_has_source : bool;
  l_has_tx : bool;
  l_logics : Evm.Address.t list;  (** Ground-truth logic history. *)
  l_func_collision : bool;
  l_storage_collision : bool;
  l_upgrades : int;
}

type config = {
  total : int;  (** Population size (default 36_000 = 1/1000 mainnet). *)
  seed : int;
  storage_boost : float;
      (** Over-representation factor for storage collisions so their yearly
          shape survives scaling (default 100; reported counts are divided
          back — see EXPERIMENTS.md). *)
  function_injection_share : float;
      (** Fraction of function collisions that are fresh (non-clone) pairs;
          the paper reports 1.3% (1 - 98.7%). *)
  broken_rate : float;
      (** Fraction of contracts with malformed bytecode, producing the
          §7.1-style emulation error rate (default 0.01). *)
  chain_id : int;
      (** EVM chain id of the generated chain (default 1 = Ethereum
          mainnet; the §8.2 multichain survey varies this). *)
}

val default_config : config
val quick_config : config
(** A 2,000-contract landscape for tests and smoke runs. *)

type t = {
  chain : Chain.t;
  labels : label list;  (** Deployment order. *)
  source_of : Proxion.Pipeline.source_lookup;
  config : config;
}

val generate : config -> t

(** {1 Streaming generation}

    The generator is internally a resumable cursor over the deployment
    sequence; the streaming API drains it batch-by-batch so the landscape
    never has to be resident in full.  [generate] is a drain wrapper over
    the same cursor, so a fully drained stream is byte-identical —
    same labels in the same order, same addresses, same code, same chain
    state — to the materialized output for the same config, at any batch
    size (the random sequence is consumed per deployment step, never per
    batch).

    After analyzing a batch, callers scanning at bounded RSS hand each spec
    back to {!evict}, which frees the contract's account and index entries
    unless the spec is pinned ([sp_pinned]): shared logic pools, mega-clone
    targets, and injected collision logics stay resident because later
    deployments delegate to them. *)

type spec = {
  sp_label : label;
  sp_code : string;  (** Runtime bytecode, captured at the batch boundary. *)
  sp_pinned : bool;  (** Still referenced by later generation; never evict. *)
}

type stream

val open_stream : config -> stream
val next_batch : stream -> batch:int -> spec array option
(** Deploy until at least [batch] more labels exist (a step can record more
    than one label — e.g. a honeypot deploys its logic too), then return
    them.  [None] once the population is exhausted. *)

val stream_chain : stream -> Chain.t
val stream_config : stream -> config
val stream_source_of : stream -> Proxion.Pipeline.source_lookup
val stream_emitted : stream -> int
(** Specs returned so far — monotonically approaches roughly
    [config.total]. *)

val evict : stream -> spec -> unit
(** Free a drained, analyzed spec's footprint (account, source entry,
    index entries).  No-op on pinned specs.  Owner-side: only call between
    analysis batches, never while worker views are live. *)

val label_of : t -> Evm.Address.t -> label option
val proxies : t -> label list
val by_year : t -> (int * label list) list
(** Labels grouped by deployment year, ascending. *)
