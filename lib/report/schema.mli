(** Versioned envelopes for machine-readable documents.

    Every JSON document that crosses a process boundary — the pipeline
    report written by the CLI, the payload of a checkpoint journal, a
    daemon query response — carries an explicit [schema_version] (and
    optionally a [kind] tag) so that readers can reject documents they
    do not understand instead of mis-parsing them.  One module owns the
    current version number; producers stamp with {!stamp} and consumers
    gate with {!check}. *)

val version : int
(** The current report schema version.  Bump when the shape of any
    enveloped document changes incompatibly. *)

val version_key : string
(** The field name, ["schema_version"]. *)

val kind_key : string
(** The field name, ["kind"]. *)

val stamp : ?kind:string -> Json.t -> Json.t
(** Prefix an object with [schema_version] (and [kind] when given).
    Existing [schema_version]/[kind] fields are replaced.  Non-object
    payloads are wrapped as [{schema_version; kind?; payload}]. *)

val version_of : Json.t -> int option
(** The document's [schema_version], when present and an integer. *)

val kind_of : Json.t -> string option

val check : ?kind:string -> Json.t -> (Json.t, string) result
(** Validate that the document carries the current {!version} (and the
    expected [kind] when given); returns the document unchanged.  A
    missing, non-integer, or mismatched version is an [Error] naming
    what was found. *)
