module Json = Json
module Schema = Schema
module Validate = Validate

let widths header rows =
  let n = List.length header in
  let w = Array.make n 0 in
  List.iter
    (fun row ->
      List.iteri (fun i cell -> if i < n then w.(i) <- max w.(i) (String.length cell)) row)
    (header :: rows);
  w

let table ~title ~header rows =
  let w = widths header rows in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let pad_row row =
    String.concat "  "
      (List.mapi
         (fun i cell ->
           let width = if i < Array.length w then w.(i) else String.length cell in
           cell ^ String.make (max 0 (width - String.length cell)) ' ')
         row)
  in
  Buffer.add_string buf (pad_row header);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (String.make (String.length (pad_row header)) '-');
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (pad_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print_table ~title ~header rows = print_string (table ~title ~header rows)

let series ~title ?xlabel ?ylabel points =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  (match (xlabel, ylabel) with
  | Some x, Some y -> Buffer.add_string buf (Printf.sprintf "# %s vs %s\n" y x)
  | Some x, None -> Buffer.add_string buf (Printf.sprintf "# x: %s\n" x)
  | None, Some y -> Buffer.add_string buf (Printf.sprintf "# y: %s\n" y)
  | None, None -> ());
  let xw =
    List.fold_left (fun acc (x, _) -> max acc (String.length x)) 1 points
  in
  List.iter
    (fun (x, y) ->
      Buffer.add_string buf
        (Printf.sprintf "%s%s  %.4g\n" x
           (String.make (xw - String.length x) ' ')
           y))
    points;
  Buffer.contents buf

let print_series ~title ?xlabel ?ylabel points =
  print_string (series ~title ?xlabel ?ylabel points)

let histogram ~title ?(width = 50) bins =
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ title ^ " ==\n");
  let max_count = List.fold_left (fun acc (_, c) -> max acc c) 1 bins in
  let lw = List.fold_left (fun acc (l, _) -> max acc (String.length l)) 1 bins in
  List.iter
    (fun (label, count) ->
      let bar = count * width / max_count in
      Buffer.add_string buf
        (Printf.sprintf "%s%s  %8d  %s\n" label
           (String.make (lw - String.length label) ' ')
           count (String.make bar '#')))
    bins;
  Buffer.contents buf

let print_histogram ~title ?width bins = print_string (histogram ~title ?width bins)
let pct x = Printf.sprintf "%.1f%%" (100.0 *. x)
let f1 x = Printf.sprintf "%.1f" x
