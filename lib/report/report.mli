(** Plain-text table and series rendering for experiment output.

    Every table and figure the benchmark harness regenerates is printed
    through these helpers, so outputs share one look: a title line, an
    aligned header, aligned rows, and (for figures) a series of
    [x value] pairs suitable for plotting. *)

module Json = Json
(** JSON emission for machine-readable output. *)

module Schema = Schema
(** Versioned envelopes for machine-readable documents. *)

module Validate = Validate
(** Shared configuration-validation error type and checks. *)

val table : title:string -> header:string list -> string list list -> string
(** Render an aligned table.  Column widths fit the widest cell. *)

val print_table : title:string -> header:string list -> string list list -> unit

val series : title:string -> ?xlabel:string -> ?ylabel:string ->
  (string * float) list -> string
(** Render a figure as aligned [x y] rows with an optional axis note. *)

val print_series :
  title:string -> ?xlabel:string -> ?ylabel:string -> (string * float) list -> unit

val histogram : title:string -> ?width:int -> (string * int) list -> string
(** Rows with proportional hash bars — a quick visual for skewed
    distributions (Figures 5 and 6). *)

val print_histogram : title:string -> ?width:int -> (string * int) list -> unit

val pct : float -> string
(** Format a ratio as a percentage with one decimal. *)

val f1 : float -> string
(** One-decimal float. *)
