type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(pretty = true) value =
  let buf = Buffer.create 256 in
  let indent n = if pretty then Buffer.add_string buf (String.make (2 * n) ' ') in
  let newline () = if pretty then Buffer.add_char buf '\n' in
  let rec emit depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int n -> Buffer.add_string buf (string_of_int n)
    | Float f ->
        if Float.is_integer f && Float.abs f < 1e15 then
          Buffer.add_string buf (Printf.sprintf "%.1f" f)
        else
          (* Shortest decimal form that parses back to the same float, so
             machine-readable artifacts (checkpoints, metrics snapshots,
             trace timestamps) survive a round-trip bit-exactly. *)
          let short = Printf.sprintf "%.15g" f in
          if float_of_string short = f then Buffer.add_string buf short
          else Buffer.add_string buf (Printf.sprintf "%.17g" f)
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
        Buffer.add_char buf '[';
        newline ();
        List.iteri
          (fun i item ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            emit (depth + 1) item)
          items;
        newline ();
        indent depth;
        Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
        Buffer.add_char buf '{';
        newline ();
        List.iteri
          (fun i (key, v) ->
            if i > 0 then begin
              Buffer.add_char buf ',';
              newline ()
            end;
            indent (depth + 1);
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape key);
            Buffer.add_string buf "\": ";
            emit (depth + 1) v)
          fields;
        newline ();
        indent depth;
        Buffer.add_char buf '}'
  in
  emit 0 value;
  Buffer.contents buf

exception Parse_error of string

let parse input =
  let pos = ref 0 in
  let len = String.length input in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < len then Some input.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word value =
    if !pos + String.length word <= len && String.sub input !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      value
    end
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some '"' -> advance (); Buffer.add_char buf '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char buf '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char buf '/'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > len then fail "bad unicode escape";
              let hex = String.sub input !pos 4 in
              pos := !pos + 4;
              let code = int_of_string ("0x" ^ hex) in
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else begin
                (* Minimal UTF-8 encoding for the BMP. *)
                if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
                end
              end;
              go ()
          | _ -> fail "bad escape")
      | Some c ->
          advance ();
          Buffer.add_char buf c;
          go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub input start (!pos - start) in
    match int_of_string_opt text with
    | Some n -> Int n
    | None -> (
        match float_of_string_opt text with
        | Some f -> Float f
        | None -> fail "bad number")
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let key = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            fields := (key, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected , or }"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elements () =
            let v = parse_value () in
            items := v :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elements ()
            | Some ']' -> advance ()
            | _ -> fail "expected , or ]"
          in
          elements ();
          List (List.rev !items)
        end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> len then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
