type error = { e_field : string; e_value : string; e_reason : string }

let error ~field ~value ~reason =
  { e_field = field; e_value = value; e_reason = reason }

let to_string e = Printf.sprintf "%s = %s: %s" e.e_field e.e_value e.e_reason

let positive ~field v =
  if v > 0 then Ok ()
  else Error (error ~field ~value:(string_of_int v) ~reason:"must be positive")

let non_negative ~field v =
  if v >= 0 then Ok ()
  else
    Error (error ~field ~value:(string_of_int v) ~reason:"must be non-negative")

let at_least ~field ~min v =
  if v >= min then Ok ()
  else
    Error
      (error ~field ~value:(string_of_int v)
         ~reason:(Printf.sprintf "must be at least %d" min))

let unit_interval ~field v =
  if v >= 0.0 && v <= 1.0 then Ok ()
  else
    Error
      (error ~field ~value:(string_of_float v)
         ~reason:"must be within [0.0, 1.0]")

let non_empty ~field v =
  if String.length v > 0 then Ok ()
  else Error (error ~field ~value:"\"\"" ~reason:"must be non-empty")

let all checks =
  List.fold_left
    (fun acc check -> match acc with Error _ -> acc | Ok () -> check)
    (Ok ()) checks
