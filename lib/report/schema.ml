let version = 1
let version_key = "schema_version"
let kind_key = "kind"

let strip kvs =
  List.filter (fun (k, _) -> k <> version_key && k <> kind_key) kvs

let stamp ?kind json =
  let tag =
    (version_key, Json.Int version)
    ::
    (match kind with None -> [] | Some k -> [ (kind_key, Json.String k) ])
  in
  match json with
  | Json.Obj kvs -> Json.Obj (tag @ strip kvs)
  | other -> Json.Obj (tag @ [ ("payload", other) ])

let version_of = function
  | Json.Obj kvs -> (
      match List.assoc_opt version_key kvs with
      | Some (Json.Int v) -> Some v
      | _ -> None)
  | _ -> None

let kind_of = function
  | Json.Obj kvs -> (
      match List.assoc_opt kind_key kvs with
      | Some (Json.String k) -> Some k
      | _ -> None)
  | _ -> None

let check ?kind json =
  match version_of json with
  | None -> Error (Printf.sprintf "missing %s (expected %d)" version_key version)
  | Some v when v <> version ->
      Error
        (Printf.sprintf "unsupported %s %d (expected %d)" version_key v version)
  | Some _ -> (
      match kind with
      | None -> Ok json
      | Some want -> (
          match kind_of json with
          | Some got when got = want -> Ok json
          | Some got ->
              Error (Printf.sprintf "wrong kind %S (expected %S)" got want)
          | None -> Error (Printf.sprintf "missing kind (expected %S)" want)))
