(** The shared configuration-validation vocabulary.

    Every configuration record with invariants — [Pipeline.Config],
    [Transport.config], [Serve.Config] — validates through this one
    error type, so the batch and server paths report misconfiguration
    the same way and cannot drift.  Builders stay total ([default |>
    with_*] never raises); [validate] is the single gate callers run
    before using a config. *)

type error = {
  e_field : string;  (** The offending field, e.g. ["batch_size"]. *)
  e_value : string;  (** The rejected value, rendered. *)
  e_reason : string;  (** Why it was rejected. *)
}

val error : field:string -> value:string -> reason:string -> error
val to_string : error -> string
(** ["<field> = <value>: <reason>"]. *)

val positive : field:string -> int -> (unit, error) result
(** Require [> 0]. *)

val non_negative : field:string -> int -> (unit, error) result
(** Require [>= 0]. *)

val at_least : field:string -> min:int -> int -> (unit, error) result
val unit_interval : field:string -> float -> (unit, error) result
(** Require [0.0 <= v <= 1.0]. *)

val non_empty : field:string -> string -> (unit, error) result

val all : (unit, error) result list -> (unit, error) result
(** First error wins; [Ok ()] when every check passes. *)
