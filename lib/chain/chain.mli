(** A simulated Ethereum chain with archive-node semantics.

    This substrate replaces the paper's locally established archive node
    (§7.1): it executes transactions through the EVM interpreter, assigns
    one block per transaction, and keeps the full history of every storage
    slot so that {!get_storage_at} can answer at any past height — the API
    Algorithm 1 binary-searches over.  It also indexes transactions and
    their internal calls, which is what the transaction-history-based
    baselines (CRUSH, Salehi et al.) consume. *)

type t

(** One internal message call observed while executing a transaction. *)
type internal_call = {
  ic_kind : Evm.Interp.call_kind;
  ic_from : Evm.Address.t;
  ic_to : Evm.Address.t;  (** Code address of the callee. *)
}

(** An executed transaction, as recorded in the chain's history. *)
type tx_record = {
  tx_height : int;
  tx_gas_used : int;
      (** Intrinsic gas (21000 base, calldata bytes, creation surcharge)
          plus execution gas. *)
  tx_from : Evm.Address.t;
  tx_to : Evm.Address.t option;  (** [None] for contract creations. *)
  tx_input : string;
  tx_value : U256.t;
  tx_status : Evm.Interp.status;
  tx_created : Evm.Address.t option;
  tx_internal_calls : internal_call list;
  tx_return_data : string;
  tx_logs : Evm.Interp.log_entry list;
}

(** Metadata the analysis layer reads for every known contract account. *)
type contract_meta = {
  cm_address : Evm.Address.t;
  cm_deploy_height : int;
  cm_creator : Evm.Address.t;
  cm_code_hash : string;  (** Keccak-256 of the runtime bytecode. *)
}

val create : ?block:Evm.Host.block_info -> unit -> t
(** A fresh chain at height 0 with no accounts. *)

val height : t -> int
val advance_blocks : t -> int -> unit
(** Mine [n] empty blocks (moves the head height). *)

val fund : t -> Evm.Address.t -> U256.t -> unit
(** Credit an externally-owned account (faucet). *)

val worker_view : t -> t
(** A share-safe view for one analysis worker: the history, contract and
    transaction indexes are shared with the original (they must not be
    mutated while views are live), state writes go into a private
    {!Evm.Host.overlay}, and the view carries its own API-call counter
    starting at zero.  {!get_storage_at} / {!host_at_head} /
    {!transactions_of} behave identically to the original chain; the
    per-view {!api_call_count} lets parallel runs reproduce sequential
    accounting exactly. *)

val host_at_head : t -> Evm.Host.t
(** Host view of the current head state with a live block header; reads are
    cheap, writes go straight into head state {e without} history tracking —
    use transactions or {!set_storage_direct} for recorded mutations. *)

(** {1 Transactions} *)

val deploy : t -> from:Evm.Address.t -> ?value:U256.t -> init_code:string ->
  unit -> (Evm.Address.t, string) result
(** Execute a creation transaction; mines a block.  Returns the new address
    or a failure description. *)

val call :
  t ->
  from:Evm.Address.t ->
  to_:Evm.Address.t ->
  ?value:U256.t ->
  ?input:string ->
  ?tracer:Evm.Interp.tracer ->
  unit ->
  tx_record
(** Execute a message-call transaction; mines a block. *)

(** {1 Direct state installation (dataset generation)} *)

val install_contract :
  t ->
  ?creator:Evm.Address.t ->
  runtime:string ->
  unit ->
  Evm.Address.t
(** Install runtime bytecode at a fresh deterministic address without
    running init code — the moral equivalent of loading a contract observed
    on mainnet.  Mines a block and records deployment metadata. *)

val set_storage_direct : t -> Evm.Address.t -> U256.t -> U256.t -> unit
(** Write a storage slot at the head height with history recording; mines a
    block.  Used to replay upgrade events (logic-address changes). *)

(** {1 Eviction}

    Streamed bounded-RSS scans deploy a batch, analyze it, and evict it.
    Both operations are owner-side: never call them while worker views are
    live, and never evict an address later deployments still delegate to
    (the dataset stream marks those as pinned). *)

val forget_contract : t -> Evm.Address.t -> unit
(** Free a contract's account (code + storage) immediately and queue its
    secondary-index entries (slot history, metadata, transaction lists) for
    an amortized bulk sweep.  Until the sweep runs, {!contract_meta} and
    {!all_contracts} may still list the address while {!code_at} already
    returns [""].  No-op for unknown or already-evicted addresses. *)

val compact : t -> unit
(** Run the index sweep now instead of waiting for the eviction threshold —
    useful at end of run and in tests asserting post-eviction state. *)

(** {1 Reorg rewind} *)

(** What a rewind undid, for the incremental-analysis layer. *)
type rewind_summary = {
  rw_orphaned : Evm.Address.t list;
      (** Contracts whose deployment was orphaned (deployment order);
          their accounts and index entries are gone. *)
  rw_reverted_writes : Evm.Address.t list;
      (** Surviving contracts whose storage was rolled back (sorted,
          deduplicated). *)
}

val rewind_to : t -> height:int -> rewind_summary
(** Roll the head back to [height], dropping every block above it: the
    inverse of the recording paths.  Orphaned deployments lose their
    accounts, slot histories truncate (and surviving accounts' head
    values restore to the canonical state at [height]), orphaned
    transactions vanish from the indexes, and the installer nonce
    rewinds so re-mined deployments reuse the fork's addresses — a
    rewind followed by re-mining the same blocks is byte-identical to
    never having rewound.  Owner-side: never call while worker views
    are live.  No-op when [height >= height t]. *)

(** {1 Archive queries} *)

val get_storage_at : t -> Evm.Address.t -> U256.t -> height:int -> U256.t
(** The [eth_getStorageAt]-at-height API.  Every call increments the API
    counter that the §6.1 efficiency experiment reports. *)

val api_call_count : t -> int
val reset_api_call_count : t -> unit

val record_method_call : t -> string -> unit
(** Count one RPC method invocation against this chain (or view) —
    called by the RPC front end for every request it serves, whatever
    the method.  Distinct from {!api_call_count}, which counts only the
    paper's §6.1 storage probes. *)

val method_call_counts : t -> (string * int) list
(** Per-method RPC invocation counts, sorted by method name.  A
    {!worker_view} carries its own table starting empty, so parallel
    runs can merge per-item counts deterministically. *)

val storage_change_heights : t -> Evm.Address.t -> U256.t -> int list
(** Ground truth for tests: ascending heights at which the slot changed. *)

(** {1 Contract and transaction indexes} *)

val code_at : t -> Evm.Address.t -> string
val contract_meta : t -> Evm.Address.t -> contract_meta option
val all_contracts : t -> contract_meta list
(** In deployment order. *)

val transactions_of : t -> Evm.Address.t -> tx_record list
(** Transactions in which the address was the external target, the sender,
    or a participant of an internal call — the notion of "has past
    transactions" used throughout the paper. *)

val has_transactions : t -> Evm.Address.t -> bool
(** True when the contract has been involved in any transaction besides its
    own deployment. *)

val all_transactions : t -> tx_record list
(** Every transaction ever executed, in order. *)
