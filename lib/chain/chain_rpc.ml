type transient_kind = Rate_limited | Timeout | Node_error

let transient_kind_name = function
  | Rate_limited -> "rate-limited"
  | Timeout -> "timeout"
  | Node_error -> "node-error"

type error =
  | Unknown_method of string
  | Invalid_params of string
  | Unsupported_height of string
  | Transient of transient_kind * string

let error_to_string = function
  | Unknown_method m -> "unknown method " ^ m
  | Invalid_params m -> "invalid params: " ^ m
  | Unsupported_height meth ->
      Printf.sprintf
        "unsupported height: %s only serves the latest state on this node" meth
  | Transient (kind, detail) ->
      Printf.sprintf "transient %s: %s" (transient_kind_name kind) detail

let is_transient = function
  | Transient _ -> true
  | Unknown_method _ | Invalid_params _ | Unsupported_height _ -> false

let ( let* ) = Result.bind

let quantity n =
  (* Ethereum quantity encoding: 0x-prefixed, no leading zeros, 0x0 for 0. *)
  U256.to_hex (U256.of_int n)

let parse_address s =
  match Hexutil.of_hex_opt s with
  | Some b when String.length b = 20 -> Ok b
  | _ -> Error (Invalid_params ("bad address " ^ s))

let parse_word s =
  match U256.of_hex s with
  | w -> Ok w
  | exception _ -> Error (Invalid_params ("bad word " ^ s))

let parse_block chain s =
  match s with
  | "latest" | "pending" | "safe" | "finalized" -> Ok (Chain.height chain)
  | _ -> (
      match U256.of_hex s with
      | w -> (
          match U256.to_int w with
          | Some h when h <= Chain.height chain -> Ok h
          | Some _ -> Error (Invalid_params ("block beyond head: " ^ s))
          | None -> Error (Invalid_params ("bad block " ^ s)))
      | exception _ -> Error (Invalid_params ("bad block " ^ s)))

(* A well-formed historical height on a latest-only method is a
   capability gap of the node, not a malformed request: report it as
   [Unsupported_height] (never retryable, names the method) so resilience
   layers can tell it apart from both transport faults and caller bugs. *)
let latest_only chain ~meth s =
  let* h = parse_block chain s in
  if h = Chain.height chain then Ok () else Error (Unsupported_height meth)

let call chain ~meth ~params =
  Chain.record_method_call chain meth;
  match (meth, params) with
  | "eth_blockNumber", [] -> Ok (quantity (Chain.height chain))
  | "eth_chainId", [] ->
      let host = Chain.host_at_head chain in
      Ok (U256.to_hex host.Evm.Host.block.Evm.Host.chain_id)
  | "eth_getCode", [ addr; block ] ->
      let* a = parse_address addr in
      let* () = latest_only chain ~meth block in
      Ok (Hexutil.to_hex (Chain.code_at chain a))
  | "eth_getStorageAt", [ addr; slot; block ] ->
      let* a = parse_address addr in
      let* s = parse_word slot in
      let* height = parse_block chain block in
      Ok (U256.to_hex_padded (Chain.get_storage_at chain a s ~height))
  | "eth_getBalance", [ addr; block ] ->
      let* a = parse_address addr in
      let* () = latest_only chain ~meth block in
      let host = Chain.host_at_head chain in
      Ok (U256.to_hex (host.Evm.Host.get_balance a))
  | "eth_call", [ to_; data; block ] ->
      let* target = parse_address to_ in
      let* input =
        match Hexutil.of_hex_opt data with
        | Some d -> Ok d
        | None -> Error (Invalid_params "bad call data")
      in
      let* () = latest_only chain ~meth block in
      let host = Chain.host_at_head chain in
      let caller = Evm.Address.of_hex "0x000000000000000000000000000000000000ca11" in
      let snapshot = host.Evm.Host.snapshot () in
      let result =
        Evm.Interp.execute host
          (Evm.Interp.make_call ~caller ~target ~input ())
      in
      host.Evm.Host.revert_to snapshot;
      (match result.Evm.Interp.status with
      | Evm.Interp.Returned -> Ok (Hexutil.to_hex result.Evm.Interp.return_data)
      | Evm.Interp.Reverted -> Error (Invalid_params "execution reverted")
      | Evm.Interp.Failed e ->
          Error (Invalid_params (Evm.Interp.error_to_string e)))
  | "eth_getTransactionCount", [ addr; block ] ->
      let* a = parse_address addr in
      let* () = latest_only chain ~meth block in
      let host = Chain.host_at_head chain in
      Ok (quantity (host.Evm.Host.get_nonce a))
  | ( ("eth_blockNumber" | "eth_chainId" | "eth_getCode" | "eth_getStorageAt"
      | "eth_getBalance" | "eth_getTransactionCount" | "eth_call"),
      _ ) ->
      Error (Invalid_params (Printf.sprintf "wrong arity for %s" meth))
  | _ -> Error (Unknown_method meth)

let call_batch chain requests =
  List.map (fun (meth, params) -> call chain ~meth ~params) requests

let get_storage_at chain ~address ~slot ~block =
  call chain ~meth:"eth_getStorageAt" ~params:[ address; slot; block ]
