(** An Ethereum JSON-RPC-flavoured facade over the simulated chain.

    This is the exact method surface ProxioN consumes from a real archive
    node (§7.1): [eth_getStorageAt] with historical block tags (what
    Algorithm 1 binary-searches), [eth_getCode], and the block-metadata
    calls.  Parameters and results are 0x-hex strings with Ethereum's
    conventions ("latest" tag, quantity encoding without leading zeros),
    so code written against this facade would port to a real node
    unchanged. *)

type error =
  | Unknown_method of string
  | Invalid_params of string

val error_to_string : error -> string

val call :
  Chain.t -> meth:string -> params:string list -> (string, error) result
(** Supported methods:
    - [eth_blockNumber] () -> hex height
    - [eth_chainId] () -> hex chain id
    - [eth_getCode] (address, block) -> hex bytecode
    - [eth_getStorageAt] (address, slot, block) -> 32-byte hex word
    - [eth_getBalance] (address, block) -> hex quantity
    - [eth_getTransactionCount] (address, block) -> hex nonce
    - [eth_call] (to, data, block) -> hex return data (read-only execution
      in a snapshot; reverts and failures surface as [Invalid_params])

    The block tag is ["latest"] or a hex quantity.  [eth_getCode],
    [eth_getBalance] and [eth_getTransactionCount] only serve the latest
    state (the simulated chain snapshots storage history only, like the
    paper's use of the node); historical block tags on them return
    [Invalid_params]. *)

val call_batch :
  Chain.t -> (string * string list) list -> (string, error) result list
(** JSON-RPC batch semantics: one [(method, params)] request per entry,
    one response per request in the same order.  A failing request yields
    its own [Error] without affecting its neighbours — exactly how a
    batched archive-node round-trip degrades.  Against a real node this
    is where ProxioN amortizes HTTP round-trips; the simulated chain
    serves the batch sequentially, so per-call accounting (the §6.1 API
    counter) is identical to issuing the calls one by one. *)

val get_storage_at :
  Chain.t -> address:string -> slot:string -> block:string -> (string, error) result
(** Typed convenience wrapper over the eponymous method. *)
