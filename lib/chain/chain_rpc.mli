(** An Ethereum JSON-RPC-flavoured facade over the simulated chain.

    This is the exact method surface ProxioN consumes from a real archive
    node (§7.1): [eth_getStorageAt] with historical block tags (what
    Algorithm 1 binary-searches), [eth_getCode], and the block-metadata
    calls.  Parameters and results are 0x-hex strings with Ethereum's
    conventions ("latest" tag, quantity encoding without leading zeros),
    so code written against this facade would port to a real node
    unchanged. *)

(** The retryable failure modes of a real provider.  The simulated node
    never produces them on its own; the resilient transport
    ({!Resilience.Transport}) injects them from a seeded fault plan and
    real deployments map provider responses (HTTP 429, deadline
    exceeded, -32000 family) onto them. *)
type transient_kind =
  | Rate_limited  (** Provider throttling (HTTP 429 / -32005). *)
  | Timeout  (** The response never arrived. *)
  | Node_error  (** Internal node failure or dropped connection. *)

val transient_kind_name : transient_kind -> string

type error =
  | Unknown_method of string
  | Invalid_params of string  (** Malformed request: a caller bug. *)
  | Unsupported_height of string
      (** A well-formed historical block tag on a method this node only
          serves at the latest state; carries the method name.  Never
          retryable — the node will answer the same way forever. *)
  | Transient of transient_kind * string
      (** Retryable provider failure with a human-readable detail. *)

val error_to_string : error -> string

val is_transient : error -> bool
(** Whether a retry could ever change the answer.  [Transient] only:
    [Unsupported_height] in particular looks like a provider hiccup but
    is a permanent capability statement, which is exactly why it is a
    distinct constructor. *)

val call :
  Chain.t -> meth:string -> params:string list -> (string, error) result
(** Supported methods:
    - [eth_blockNumber] () -> hex height
    - [eth_chainId] () -> hex chain id
    - [eth_getCode] (address, block) -> hex bytecode
    - [eth_getStorageAt] (address, slot, block) -> 32-byte hex word
    - [eth_getBalance] (address, block) -> hex quantity
    - [eth_getTransactionCount] (address, block) -> hex nonce
    - [eth_call] (to, data, block) -> hex return data (read-only execution
      in a snapshot; reverts and failures surface as [Invalid_params])

    The block tag is ["latest"] or a hex quantity.  [eth_getCode],
    [eth_getBalance] and [eth_getTransactionCount] only serve the latest
    state (the simulated chain snapshots storage history only, like the
    paper's use of the node); a valid historical block tag on them
    returns [Unsupported_height] with the method name, while a malformed
    or beyond-head tag stays [Invalid_params]. *)

val call_batch :
  Chain.t -> (string * string list) list -> (string, error) result list
(** JSON-RPC batch semantics: one [(method, params)] request per entry,
    one response per request in the same order.  A failing request yields
    its own [Error] without affecting its neighbours — exactly how a
    batched archive-node round-trip degrades.  Against a real node this
    is where ProxioN amortizes HTTP round-trips; the simulated chain
    serves the batch sequentially, so per-call accounting (the §6.1 API
    counter) is identical to issuing the calls one by one. *)

val get_storage_at :
  Chain.t -> address:string -> slot:string -> block:string -> (string, error) result
(** Typed convenience wrapper over the eponymous method. *)
