module Address = Evm.Address
module Host = Evm.Host
module Interp = Evm.Interp

type internal_call = {
  ic_kind : Interp.call_kind;
  ic_from : Address.t;
  ic_to : Address.t;
}

type tx_record = {
  tx_height : int;
  tx_gas_used : int;  (* intrinsic + execution *)
  tx_from : Address.t;
  tx_to : Address.t option;
  tx_input : string;
  tx_value : U256.t;
  tx_status : Interp.status;
  tx_created : Address.t option;
  tx_internal_calls : internal_call list;
  tx_return_data : string;
  tx_logs : Interp.log_entry list;
}

type contract_meta = {
  cm_address : Address.t;
  cm_deploy_height : int;
  cm_creator : Address.t;
  cm_code_hash : string;
}

type slot_key = { sk_addr : Address.t; sk_slot : U256.t }

let slot_key_compare a b =
  let c = Address.compare a.sk_addr b.sk_addr in
  if c <> 0 then c else U256.compare a.sk_slot b.sk_slot

(* Keyed structurally but hashed/compared with the dedicated word
   primitives — the history table sits on the Algorithm 1 hot path, and
   the polymorphic hash would traverse the 16-limb array every probe. *)
module Slot_tbl = Hashtbl.Make (struct
  type t = slot_key

  let equal a b =
    Address.equal a.sk_addr b.sk_addr && U256.equal a.sk_slot b.sk_slot

  let hash k = (Hashtbl.hash k.sk_addr * 65599) lxor U256.hash k.sk_slot
end)

type t = {
  state : Host.t;  (* head state; block info replaced per access *)
  admin : Host.admin;  (* owner-side journal/eviction control of [state] *)
  dropped : (Address.t, unit) Hashtbl.t;  (* evicted, awaiting index sweep *)
  mutable head : int;
  base_block : Host.block_info;
  (* (height, value) change lists per slot, most recent first. *)
  history : (int * U256.t) list ref Slot_tbl.t;
  contracts : (Address.t, contract_meta) Hashtbl.t;
  mutable contract_order : contract_meta list; (* reverse deployment order *)
  tx_index : (Address.t, tx_record list ref) Hashtbl.t;
  mutable txs : tx_record list; (* reverse order *)
  mutable api_calls : int;
  method_calls : (string, int) Hashtbl.t;
  mutable install_nonce : int;
  (* (deploy height, nonce after the install), newest first — the undo
     log that lets a reorg rewind the installer nonce so re-mined
     deployments reuse the orphaned fork's addresses, as CREATE does. *)
  mutable nonce_marks : (int * int) list;
}

let create ?(block = Host.default_block) () =
  let state, admin = Host.in_memory_admin ~block () in
  {
    state;
    admin;
    dropped = Hashtbl.create 64;
    head = 0;
    base_block = block;
    history = Slot_tbl.create 1024;
    contracts = Hashtbl.create 1024;
    contract_order = [];
    tx_index = Hashtbl.create 1024;
    txs = [];
    api_calls = 0;
    method_calls = Hashtbl.create 8;
    install_nonce = 0;
    nonce_marks = [];
  }

let height t = t.head
let advance_blocks t n = if n > 0 then t.head <- t.head + n
let fund t addr amount =
  t.state.Host.set_balance addr amount;
  t.admin.Host.commit ()

let worker_view t =
  (* Shallow copy sharing the (read-only during analysis) history, contract
     and transaction indexes, with a private copy-on-write host and private
     API-call counters (total and per-method — a record copy would alias the
     per-method table, so it is allocated fresh).  The emulation stages
     write only through the overlay, so concurrent views never race on the
     base state. *)
  {
    t with
    state = Host.overlay t.state;
    api_calls = 0;
    method_calls = Hashtbl.create 8;
  }

let host_at_head t =
  (* One block per transaction at mainnet's 12-second cadence. *)
  {
    t.state with
    Host.block =
      {
        t.base_block with
        Host.number = t.head;
        Host.timestamp = t.base_block.Host.timestamp + (12 * t.head);
      };
  }

(* ------------------------------------------------------------------ *)
(* History recording                                                    *)
(* ------------------------------------------------------------------ *)

let last_recorded t key =
  match Slot_tbl.find_opt t.history key with
  | None | Some { contents = [] } -> U256.zero
  | Some { contents = (_, v) :: _ } -> v

let record_slot t key value =
  if not (U256.equal (last_recorded t key) value) then begin
    let entries =
      match Slot_tbl.find_opt t.history key with
      | Some r -> r
      | None ->
          let r = ref [] in
          Slot_tbl.replace t.history key r;
          r
    in
    (* Same-height overwrite replaces the entry. *)
    (match !entries with
    | (h, _) :: rest when h = t.head -> entries := (t.head, value) :: rest
    | l -> entries := (t.head, value) :: l)
  end

let register_contract t ~address ~creator =
  if not (Hashtbl.mem t.contracts address) then begin
    let meta =
      {
        cm_address = address;
        cm_deploy_height = t.head;
        cm_creator = creator;
        cm_code_hash = Keccak.digest (t.state.Host.get_code address);
      }
    in
    Hashtbl.replace t.contracts address meta;
    t.contract_order <- meta :: t.contract_order
  end

let index_tx t addr record =
  let bucket =
    match Hashtbl.find_opt t.tx_index addr with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.replace t.tx_index addr r;
        r
  in
  bucket := record :: !bucket

let commit_tx t ~touched_slots ~record =
  (* Fold final values of touched slots into history (reverted writes have
     already been rolled back inside the interpreter, so reading the head
     state here gives the true post-transaction values). *)
  List.iter
    (fun key -> record_slot t key (t.state.Host.get_storage key.sk_addr key.sk_slot))
    touched_slots;
  t.txs <- record :: t.txs;
  let participants =
    record.tx_from
    :: (Option.to_list record.tx_to @ Option.to_list record.tx_created)
    @ List.concat_map
        (fun ic -> [ ic.ic_from; ic.ic_to ])
        record.tx_internal_calls
  in
  List.iter
    (fun a -> index_tx t a record)
    (List.sort_uniq Address.compare participants);
  t.head <- t.head + 1;
  (* The transaction is final: its undo entries can never be replayed, so
     truncate the journal rather than let it pin every touched account for
     the lifetime of the chain.  No interpreter frame is live here, hence
     no outstanding snapshot marks. *)
  t.admin.Host.commit ()

(* ------------------------------------------------------------------ *)
(* Transactions                                                         *)
(* ------------------------------------------------------------------ *)

let tx_gas_limit = 30_000_000

(* Intrinsic transaction gas: the 21000 base plus per-byte calldata cost
   (and the creation surcharge). *)
let intrinsic_gas ~creation data =
  let data_cost =
    String.fold_left
      (fun acc c -> acc + Evm.Gas.tx_data_byte ~zero:(c = '\000'))
      0 data
  in
  Evm.Gas.tx_base + (if creation then Evm.Gas.tx_create else 0) + data_cost

let observing_tracer ?(inner = Interp.no_tracer) () =
  let touched = ref [] in
  let calls = ref [] in
  let created = ref [] in
  let tracer =
    {
      inner with
      Interp.on_sstore =
        (fun addr slot v ->
          touched := { sk_addr = addr; sk_slot = slot } :: !touched;
          inner.Interp.on_sstore addr slot v);
      Interp.on_call =
        (fun ev ->
          calls :=
            {
              ic_kind = ev.Interp.kind;
              ic_from = ev.Interp.initiator;
              ic_to = ev.Interp.code_address;
            }
            :: !calls;
          inner.Interp.on_call ev);
      Interp.on_create =
        (fun ~creator ~created:addr ~init_code ->
          created := (creator, addr) :: !created;
          inner.Interp.on_create ~creator ~created:addr ~init_code);
    }
  in
  (tracer, touched, calls, created)

let deploy t ~from ?(value = U256.zero) ~init_code () =
  let host = host_at_head t in
  let tracer, touched, calls, created_acc = observing_tracer () in
  let intrinsic = intrinsic_gas ~creation:true init_code in
  let result =
    Interp.create ~tracer host ~caller:from ~value ~init_code
      ~gas:(max 0 (tx_gas_limit - intrinsic))
  in
  let record =
    {
      tx_height = t.head;
      tx_gas_used = intrinsic + result.Interp.gas_used;
      tx_from = from;
      tx_to = None;
      tx_input = init_code;
      tx_value = value;
      tx_status = result.Interp.status;
      tx_created = result.Interp.created;
      tx_internal_calls = List.rev !calls;
      tx_return_data = result.Interp.return_data;
      tx_logs = result.Interp.logs;
    }
  in
  (* Register the top-level creation plus nested CREATEs. *)
  (match result.Interp.created with
  | Some addr -> register_contract t ~address:addr ~creator:from
  | None -> ());
  List.iter
    (fun (creator, addr) -> register_contract t ~address:addr ~creator)
    (List.rev !created_acc);
  commit_tx t ~touched_slots:(List.sort_uniq slot_key_compare !touched) ~record;
  match (result.Interp.status, result.Interp.created) with
  | Interp.Returned, Some addr -> Ok addr
  | Interp.Returned, None -> Error "creation returned no address"
  | Interp.Reverted, _ -> Error "creation reverted"
  | Interp.Failed e, _ -> Error (Interp.error_to_string e)

let call t ~from ~to_ ?(value = U256.zero) ?(input = "")
    ?(tracer = Interp.no_tracer) () =
  let host = host_at_head t in
  let tracer, touched, calls, created_acc = observing_tracer ~inner:tracer () in
  let intrinsic = intrinsic_gas ~creation:false input in
  let result =
    Interp.execute ~tracer host
      (Interp.make_call ~caller:from ~target:to_ ~value ~input
         ~gas:(max 0 (tx_gas_limit - intrinsic))
         ())
  in
  List.iter
    (fun (creator, addr) -> register_contract t ~address:addr ~creator)
    (List.rev !created_acc);
  let record =
    {
      tx_height = t.head;
      tx_gas_used = intrinsic + result.Interp.gas_used;
      tx_from = from;
      tx_to = Some to_;
      tx_input = input;
      tx_value = value;
      tx_status = result.Interp.status;
      tx_created = None;
      tx_internal_calls = List.rev !calls;
      tx_return_data = result.Interp.return_data;
      tx_logs = result.Interp.logs;
    }
  in
  commit_tx t ~touched_slots:(List.sort_uniq slot_key_compare !touched) ~record;
  record

(* ------------------------------------------------------------------ *)
(* Direct installation                                                  *)
(* ------------------------------------------------------------------ *)

let installer = Address.of_hex "0x00000000000000000000000000000000deadbeef"

let install_contract t ?(creator = installer) ~runtime () =
  let address =
    Rlp.contract_address ~sender:creator ~nonce:t.install_nonce
  in
  t.install_nonce <- t.install_nonce + 1;
  t.nonce_marks <- (t.head, t.install_nonce) :: t.nonce_marks;
  t.state.Host.create_account address ~code:runtime;
  register_contract t ~address ~creator;
  t.head <- t.head + 1;
  t.admin.Host.commit ();
  address

let set_storage_direct t addr slot value =
  t.state.Host.set_storage addr slot value;
  record_slot t { sk_addr = addr; sk_slot = slot } value;
  t.head <- t.head + 1;
  t.admin.Host.commit ()

(* ------------------------------------------------------------------ *)
(* Eviction                                                             *)
(* ------------------------------------------------------------------ *)

(* Streamed scans analyze a batch of freshly deployed contracts and then
   evict them so RSS stays bounded by the batch, not the total.  The
   account itself (code + storage — the dominant weight) is freed
   immediately; the secondary indexes (slot history, contract metadata,
   transaction lists) are swept in amortized bulk passes so eviction stays
   O(1) per contract.

   Eviction is an owner-side operation: it must not run concurrently with
   worker views (call it only between analysis batches), and evicting a
   contract that later deployments still delegate to is the caller's bug —
   the dataset stream marks such addresses as pinned. *)

let sweep_threshold = 8192

let compact t =
  if Hashtbl.length t.dropped > 0 then begin
    let dead a = Hashtbl.mem t.dropped a in
    let doomed =
      Slot_tbl.fold
        (fun k _ acc -> if dead k.sk_addr then k :: acc else acc)
        t.history []
    in
    List.iter (Slot_tbl.remove t.history) doomed;
    Hashtbl.iter (fun a () -> Hashtbl.remove t.contracts a) t.dropped;
    t.contract_order <-
      List.filter (fun m -> not (dead m.cm_address)) t.contract_order;
    let tx_dead r =
      (match r.tx_to with Some a -> dead a | None -> false)
      || match r.tx_created with Some a -> dead a | None -> false
    in
    t.txs <- List.filter (fun r -> not (tx_dead r)) t.txs;
    let dead_buckets =
      Hashtbl.fold
        (fun a _ acc -> if dead a then a :: acc else acc)
        t.tx_index []
    in
    List.iter (Hashtbl.remove t.tx_index) dead_buckets;
    Hashtbl.iter
      (fun _ r -> r := List.filter (fun tx -> not (tx_dead tx)) !r)
      t.tx_index;
    Hashtbl.reset t.dropped
  end

let forget_contract t addr =
  if Hashtbl.mem t.contracts addr && not (Hashtbl.mem t.dropped addr) then begin
    t.admin.Host.commit ();
    t.admin.Host.drop_account addr;
    Hashtbl.replace t.dropped addr ();
    if Hashtbl.length t.dropped >= sweep_threshold then compact t
  end

(* ------------------------------------------------------------------ *)
(* Reorg rewind                                                         *)
(* ------------------------------------------------------------------ *)

type rewind_summary = {
  rw_orphaned : Address.t list;
  rw_reverted_writes : Address.t list;
}

(* Roll the head back to [height], dropping every block above it: the
   inverse of the recording paths, reconstructed entirely from the
   height-tagged indexes (slot history, deploy heights, tx heights,
   nonce marks), so a rewind followed by re-mining the same blocks is
   byte-identical to never having rewound.  Like eviction, this is an
   owner-side operation — never run it concurrently with worker
   views. *)
let rewind_to t ~height =
  if height >= t.head then { rw_orphaned = []; rw_reverted_writes = [] }
  else begin
    (* An event in block [h] leaves the head at [h + 1], so a head of
       [height] retains exactly the events with [h < height] — the
       orphaned region is [h >= height]. *)
    (* Contracts deployed on orphaned blocks disappear outright,
       account and all (deployment order, for deterministic consumers). *)
    let orphaned_meta =
      List.filter (fun m -> m.cm_deploy_height >= height) t.contract_order
    in
    let orphaned = List.rev_map (fun m -> m.cm_address) orphaned_meta in
    t.admin.Host.commit ();
    List.iter
      (fun a ->
        t.admin.Host.drop_account a;
        Hashtbl.remove t.contracts a;
        Hashtbl.remove t.dropped a)
      orphaned;
    t.contract_order <-
      List.filter (fun m -> m.cm_deploy_height < height) t.contract_order;
    let orphan_tbl = Hashtbl.create 16 in
    List.iter (fun a -> Hashtbl.replace orphan_tbl a ()) orphaned;
    (* Truncate slot histories past [height] and restore the surviving
       accounts' head-state values to what the canonical chain held. *)
    let reverted = ref [] in
    let doomed = ref [] in
    Slot_tbl.iter
      (fun key entries ->
        match !entries with
        | (h, _) :: _ when h >= height ->
            let keep = List.filter (fun (h, _) -> h < height) !entries in
            entries := keep;
            if keep = [] then doomed := key :: !doomed;
            if not (Hashtbl.mem orphan_tbl key.sk_addr) then begin
              let v = match keep with (_, v) :: _ -> v | [] -> U256.zero in
              t.state.Host.set_storage key.sk_addr key.sk_slot v;
              reverted := key.sk_addr :: !reverted
            end
        | _ -> ())
      t.history;
    List.iter (Slot_tbl.remove t.history) !doomed;
    (* Transactions mined on orphaned blocks never happened. *)
    t.txs <- List.filter (fun r -> r.tx_height < height) t.txs;
    let empty_buckets =
      Hashtbl.fold
        (fun a r acc ->
          r := List.filter (fun tx -> tx.tx_height < height) !r;
          if !r = [] then a :: acc else acc)
        t.tx_index []
    in
    List.iter (Hashtbl.remove t.tx_index) empty_buckets;
    (* Rewind the installer nonce so re-mined deployments reuse the
       fork's addresses, exactly as CREATE would on a real chain. *)
    t.nonce_marks <- List.filter (fun (h, _) -> h < height) t.nonce_marks;
    t.install_nonce <-
      (match t.nonce_marks with (_, n) :: _ -> n | [] -> 0);
    t.head <- height;
    t.admin.Host.commit ();
    {
      rw_orphaned = orphaned;
      rw_reverted_writes = List.sort_uniq Address.compare !reverted;
    }
  end

(* ------------------------------------------------------------------ *)
(* Archive queries                                                      *)
(* ------------------------------------------------------------------ *)

let get_storage_at t addr slot ~height =
  t.api_calls <- t.api_calls + 1;
  match Slot_tbl.find_opt t.history { sk_addr = addr; sk_slot = slot } with
  | None -> U256.zero
  | Some entries ->
      let rec find = function
        | [] -> U256.zero
        | (h, v) :: rest -> if h <= height then v else find rest
      in
      find !entries

let api_call_count t = t.api_calls
let reset_api_call_count t = t.api_calls <- 0

let record_method_call t meth =
  Hashtbl.replace t.method_calls meth
    (1 + Option.value ~default:0 (Hashtbl.find_opt t.method_calls meth))

let method_call_counts t =
  Hashtbl.fold (fun meth n acc -> (meth, n) :: acc) t.method_calls []
  |> List.sort compare

let storage_change_heights t addr slot =
  match Slot_tbl.find_opt t.history { sk_addr = addr; sk_slot = slot } with
  | None -> []
  | Some entries -> List.rev_map fst !entries

(* ------------------------------------------------------------------ *)
(* Indexes                                                              *)
(* ------------------------------------------------------------------ *)

let code_at t addr = t.state.Host.get_code addr
let contract_meta t addr = Hashtbl.find_opt t.contracts addr
let all_contracts t = List.rev t.contract_order

let transactions_of t addr =
  match Hashtbl.find_opt t.tx_index addr with
  | None -> []
  | Some r -> List.rev !r

let has_transactions t addr =
  List.exists
    (fun tx ->
      (* Deployment of the contract itself does not count as interaction. *)
      not (tx.tx_created = Some addr && tx.tx_internal_calls = []))
    (transactions_of t addr)

let all_transactions t = List.rev t.txs
