(** Wall-clock abstraction for every timing the telemetry layer takes.

    Production code reads {!real} (a thin wrapper over
    [Unix.gettimeofday]); tests substitute a {e virtual} clock whose
    reads are a pure function of how often it has been read and how far
    it has been advanced, so stage timings, batch durations and log
    timestamps can be pinned to exact, reproducible values.  The
    distinction mirrors {!Resilience.Vclock} (which virtualizes {e
    waiting}); this module virtualizes {e observation}. *)

type t

val real : t
(** [now] reads [Unix.gettimeofday]. *)

val virtual_ : ?start:float -> ?auto_step:float -> unit -> t
(** A deterministic clock starting at [start] (default 0).  Every {!now}
    read returns the current value and then advances it by [auto_step]
    (default 0) — with a non-zero step, consecutive reads are strictly
    increasing and any start/stop bracket measures exactly [auto_step]
    seconds per intervening read.  Reads and advances are serialized
    under a mutex, so a virtual clock is safe to share across worker
    domains (though cross-domain read interleavings are scheduling
    dependent; deterministic tests read from one domain). *)

val now : t -> float
(** Current time in seconds. *)

val advance : t -> float -> unit
(** Move a virtual clock forward by a non-negative delta (negative
    deltas are ignored).  No-op on {!real}. *)

val is_virtual : t -> bool
