module Json = Report.Json

type kind = Counter | Gauge | Histogram of float array

type family = {
  f_name : string;
  f_help : string;
  f_kind : kind;
  f_volatile : bool;
}

(* One series: [sr_value] is the counter total, the gauge value, or the
   histogram sum; [sr_count] and [sr_buckets] (finite buckets plus one
   +Inf slot) are histogram-only.  [sr_ex_*] hold the exemplar — the
   identity (a trace_id) of the max-value observation so far; [sr_ex_id]
   empty means none recorded. *)
type series = {
  mutable sr_value : float;
  mutable sr_count : float;
  sr_buckets : float array;
  mutable sr_ex_value : float;
  mutable sr_ex_id : string;
}

type key = string * (string * string) list

type t = {
  specs : (string, family) Hashtbl.t; (* shared with shards *)
  specs_lock : Mutex.t; (* shared with shards *)
  series : (key, series) Hashtbl.t;
  lock : Mutex.t;
}

let create () =
  {
    specs = Hashtbl.create 32;
    specs_lock = Mutex.create ();
    series = Hashtbl.create 64;
    lock = Mutex.create ();
  }

let shard t =
  {
    specs = t.specs;
    specs_lock = t.specs_lock;
    series = Hashtbl.create 16;
    lock = Mutex.create ();
  }

(* ------------------------------------------------------------------ *)
(* Name validation (Prometheus data model)                             *)
(* ------------------------------------------------------------------ *)

let is_metric_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let is_label_name s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* ------------------------------------------------------------------ *)
(* Registration                                                        *)
(* ------------------------------------------------------------------ *)

let same_kind a b =
  match (a, b) with
  | Counter, Counter | Gauge, Gauge -> true
  | Histogram x, Histogram y -> x = y
  | _ -> false

let register t ~help ~volatile ~kind name =
  if not (is_metric_name name) then
    invalid_arg (Printf.sprintf "Metrics: invalid metric name %S" name);
  Mutex.lock t.specs_lock;
  let fam =
    match Hashtbl.find_opt t.specs name with
    | Some existing ->
        if not (same_kind existing.f_kind kind) then begin
          Mutex.unlock t.specs_lock;
          invalid_arg
            (Printf.sprintf "Metrics: %S re-registered with a different kind"
               name)
        end;
        existing
    | None ->
        let fam = { f_name = name; f_help = help; f_kind = kind; f_volatile = volatile } in
        Hashtbl.replace t.specs name fam;
        fam
  in
  Mutex.unlock t.specs_lock;
  fam

let find t name =
  Mutex.lock t.specs_lock;
  let fam = Hashtbl.find_opt t.specs name in
  Mutex.unlock t.specs_lock;
  fam

let counter t ?(help = "") ?(volatile = false) name =
  register t ~help ~volatile ~kind:Counter name

let gauge t ?(help = "") ?(volatile = false) name =
  register t ~help ~volatile ~kind:Gauge name

let histogram t ?(help = "") ?(volatile = false) ~buckets name =
  if buckets = [] then invalid_arg "Metrics.histogram: empty bucket list";
  let rec monotonic = function
    | a :: (b :: _ as rest) -> a < b && monotonic rest
    | _ -> true
  in
  if not (monotonic buckets) then
    invalid_arg "Metrics.histogram: buckets must be strictly increasing";
  register t ~help ~volatile ~kind:(Histogram (Array.of_list buckets)) name

(* ------------------------------------------------------------------ *)
(* Observation                                                         *)
(* ------------------------------------------------------------------ *)

let canonical_labels labels =
  List.iter
    (fun (k, _) ->
      if not (is_label_name k) then
        invalid_arg (Printf.sprintf "Metrics: invalid label name %S" k))
    labels;
  List.sort compare labels

(* Callers must hold [t.lock]. *)
let find_series t fam labels =
  let key = (fam.f_name, labels) in
  match Hashtbl.find_opt t.series key with
  | Some s -> s
  | None ->
      let buckets =
        match fam.f_kind with
        | Histogram bounds -> Array.make (Array.length bounds + 1) 0.0
        | Counter | Gauge -> [||]
      in
      let s =
        {
          sr_value = 0.0;
          sr_count = 0.0;
          sr_buckets = buckets;
          sr_ex_value = 0.0;
          sr_ex_id = "";
        }
      in
      Hashtbl.replace t.series key s;
      s

let with_series t fam labels f =
  let labels = canonical_labels labels in
  Mutex.lock t.lock;
  let s = find_series t fam labels in
  f s;
  Mutex.unlock t.lock

let inc ?(labels = []) ?(by = 1.0) t fam =
  (match fam.f_kind with
  | Counter -> ()
  | _ -> invalid_arg (Printf.sprintf "Metrics.inc: %S is not a counter" fam.f_name));
  if by < 0.0 then invalid_arg "Metrics.inc: counters only go up";
  with_series t fam labels (fun s -> s.sr_value <- s.sr_value +. by)

let set ?(labels = []) t fam v =
  (match fam.f_kind with
  | Gauge -> ()
  | _ -> invalid_arg (Printf.sprintf "Metrics.set: %S is not a gauge" fam.f_name));
  with_series t fam labels (fun s -> s.sr_value <- v)

(* The exemplar tracks the max-value observation: first observation
   always wins an empty slot, later ones only on a strictly greater
   value, so ties keep the earliest id and merges stay deterministic. *)
let note_exemplar s v id =
  match id with
  | None -> ()
  | Some id ->
      if s.sr_ex_id = "" || v > s.sr_ex_value then begin
        s.sr_ex_value <- v;
        s.sr_ex_id <- id
      end

let observe ?(labels = []) ?exemplar t fam v =
  match fam.f_kind with
  | Histogram bounds ->
      with_series t fam labels (fun s ->
          s.sr_value <- s.sr_value +. v;
          s.sr_count <- s.sr_count +. 1.0;
          let n = Array.length bounds in
          let rec slot i = if i >= n || v <= bounds.(i) then i else slot (i + 1) in
          let i = slot 0 in
          s.sr_buckets.(i) <- s.sr_buckets.(i) +. 1.0;
          note_exemplar s v exemplar)
  | _ ->
      invalid_arg (Printf.sprintf "Metrics.observe: %S is not a histogram" fam.f_name)

(* ------------------------------------------------------------------ *)
(* Pre-resolved handles                                                *)
(* ------------------------------------------------------------------ *)

(* A handle pins one (family, label set) series so hot paths skip the
   per-call label canonicalization and hash lookup.  Valid only against
   long-lived registries: [absorb] resets a shard's series table, which
   would orphan any handle into it. *)
type handle = { h_lock : Mutex.t; h_kind : kind; h_series : series }

let handle ?(labels = []) t fam =
  let labels = canonical_labels labels in
  Mutex.lock t.lock;
  let s = find_series t fam labels in
  Mutex.unlock t.lock;
  { h_lock = t.lock; h_kind = fam.f_kind; h_series = s }

let hinc ?(by = 1.0) h =
  (match h.h_kind with
  | Counter -> ()
  | _ -> invalid_arg "Metrics.hinc: not a counter");
  if by < 0.0 then invalid_arg "Metrics.hinc: counters only go up";
  Mutex.lock h.h_lock;
  h.h_series.sr_value <- h.h_series.sr_value +. by;
  Mutex.unlock h.h_lock

let hset h v =
  (match h.h_kind with
  | Gauge -> ()
  | _ -> invalid_arg "Metrics.hset: not a gauge");
  Mutex.lock h.h_lock;
  h.h_series.sr_value <- v;
  Mutex.unlock h.h_lock

let hobserve ?exemplar h v =
  match h.h_kind with
  | Histogram bounds ->
      Mutex.lock h.h_lock;
      let s = h.h_series in
      s.sr_value <- s.sr_value +. v;
      s.sr_count <- s.sr_count +. 1.0;
      let n = Array.length bounds in
      let rec slot i = if i >= n || v <= bounds.(i) then i else slot (i + 1) in
      s.sr_buckets.(slot 0) <- s.sr_buckets.(slot 0) +. 1.0;
      note_exemplar s v exemplar;
      Mutex.unlock h.h_lock
  | _ -> invalid_arg "Metrics.hobserve: not a histogram"

(* ------------------------------------------------------------------ *)
(* Shard merge                                                         *)
(* ------------------------------------------------------------------ *)

let absorb ~into sh =
  Mutex.lock into.lock;
  Mutex.lock sh.lock;
  Hashtbl.iter
    (fun (name, labels) src ->
      match Hashtbl.find_opt into.specs name with
      | None -> () (* unreachable: shards share the spec table *)
      | Some fam -> (
          let dst = find_series into fam labels in
          match fam.f_kind with
          | Counter -> dst.sr_value <- dst.sr_value +. src.sr_value
          | Gauge -> dst.sr_value <- src.sr_value
          | Histogram _ ->
              dst.sr_value <- dst.sr_value +. src.sr_value;
              dst.sr_count <- dst.sr_count +. src.sr_count;
              Array.iteri
                (fun i c -> dst.sr_buckets.(i) <- dst.sr_buckets.(i) +. c)
                src.sr_buckets;
              if src.sr_ex_id <> "" then
                note_exemplar dst src.sr_ex_value (Some src.sr_ex_id)))
    sh.series;
  Hashtbl.reset sh.series;
  Mutex.unlock sh.lock;
  Mutex.unlock into.lock

(* ------------------------------------------------------------------ *)
(* Reading                                                             *)
(* ------------------------------------------------------------------ *)

let read t fam labels =
  let labels = canonical_labels labels in
  Mutex.lock t.lock;
  let s = Hashtbl.find_opt t.series (fam.f_name, labels) in
  Mutex.unlock t.lock;
  s

let value ?(labels = []) t fam =
  Option.map
    (fun s ->
      match fam.f_kind with Histogram _ -> s.sr_count | _ -> s.sr_value)
    (read t fam labels)

let exemplar ?(labels = []) t fam =
  match read t fam labels with
  | Some s when s.sr_ex_id <> "" -> Some (s.sr_ex_id, s.sr_ex_value)
  | _ -> None

type summary = { s_count : int; s_p50 : float; s_p90 : float; s_p99 : float }

(* Prometheus-style interpolation: find the bucket the rank falls in and
   interpolate linearly between its bounds; ranks landing in the +Inf
   bucket clamp to the largest finite bound. *)
let quantile bounds counts total q =
  let rank = q *. total in
  let n = Array.length bounds in
  let rec walk i cum =
    if i >= n then bounds.(n - 1)
    else
      let cum' = cum +. counts.(i) in
      if cum' >= rank then begin
        let lower = if i = 0 then Float.min 0.0 bounds.(0) else bounds.(i - 1) in
        let upper = bounds.(i) in
        if counts.(i) <= 0.0 then upper
        else lower +. ((upper -. lower) *. ((rank -. cum) /. counts.(i)))
      end
      else walk (i + 1) cum'
  in
  walk 0 0.0

let summarize ?(labels = []) t fam =
  match fam.f_kind with
  | Histogram bounds -> (
      match read t fam labels with
      | Some s when s.sr_count > 0.0 ->
          let q p = quantile bounds s.sr_buckets s.sr_count p in
          Some
            {
              s_count = int_of_float s.sr_count;
              s_p50 = q 0.5;
              s_p90 = q 0.9;
              s_p99 = q 0.99;
            }
      | _ -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Writers                                                             *)
(* ------------------------------------------------------------------ *)

(* Canonical value formatting: exact integers print bare, everything
   else through %.12g — deterministic on every platform. *)
let fmt v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=%S" k (escape_label_value v))
             labels)
      ^ "}"

(* Snapshot of the registry in deterministic order: families sorted by
   name (volatile optionally dropped), each with its series sorted by
   canonical label list. *)
let snapshot ?(suppress_volatile = false) t =
  Mutex.lock t.lock;
  let by_family : (string, ((string * string) list * series) list ref) Hashtbl.t =
    Hashtbl.create 32
  in
  Hashtbl.iter
    (fun (name, labels) s ->
      let copy =
        {
          sr_value = s.sr_value;
          sr_count = s.sr_count;
          sr_buckets = Array.copy s.sr_buckets;
          sr_ex_value = s.sr_ex_value;
          sr_ex_id = s.sr_ex_id;
        }
      in
      match Hashtbl.find_opt by_family name with
      | Some r -> r := (labels, copy) :: !r
      | None -> Hashtbl.replace by_family name (ref [ (labels, copy) ]))
    t.series;
  Mutex.unlock t.lock;
  Mutex.lock t.specs_lock;
  let fams =
    Hashtbl.fold
      (fun _ fam acc ->
        if suppress_volatile && fam.f_volatile then acc else fam :: acc)
      t.specs []
    |> List.sort (fun a b -> compare a.f_name b.f_name)
  in
  Mutex.unlock t.specs_lock;
  List.filter_map
    (fun fam ->
      match Hashtbl.find_opt by_family fam.f_name with
      | None -> None
      | Some r -> Some (fam, List.sort compare !r))
    fams

let kind_name = function
  | Counter -> "counter"
  | Gauge -> "gauge"
  | Histogram _ -> "histogram"

let to_prometheus ?suppress_volatile t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (fam, series) ->
      if fam.f_help <> "" then
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" fam.f_name (escape_help fam.f_help));
      Buffer.add_string buf
        (Printf.sprintf "# TYPE %s %s\n" fam.f_name (kind_name fam.f_kind));
      List.iter
        (fun (labels, s) ->
          match fam.f_kind with
          | Counter | Gauge ->
              Buffer.add_string buf
                (Printf.sprintf "%s%s %s\n" fam.f_name (label_string labels)
                   (fmt s.sr_value))
          | Histogram bounds ->
              let cum = ref 0.0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum +. s.sr_buckets.(i);
                  Buffer.add_string buf
                    (Printf.sprintf "%s_bucket%s %s\n" fam.f_name
                       (label_string (labels @ [ ("le", fmt bound) ]))
                       (fmt !cum)))
                bounds;
              cum := !cum +. s.sr_buckets.(Array.length bounds);
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket%s %s\n" fam.f_name
                   (label_string (labels @ [ ("le", "+Inf") ]))
                   (fmt !cum));
              Buffer.add_string buf
                (Printf.sprintf "%s_sum%s %s\n" fam.f_name (label_string labels)
                   (fmt s.sr_value));
              Buffer.add_string buf
                (Printf.sprintf "%s_count%s %s\n" fam.f_name
                   (label_string labels) (fmt s.sr_count));
              (* The 0.0.4 text format has no native exemplars, so the
                 max-latency trace_id rides in a comment scrapers ignore
                 but [lint] validates. *)
              if s.sr_ex_id <> "" then
                Buffer.add_string buf
                  (Printf.sprintf "# EXEMPLAR %s%s %s %s\n" fam.f_name
                     (label_string labels) s.sr_ex_id (fmt s.sr_ex_value)))
        series)
    (snapshot ?suppress_volatile t);
  Buffer.contents buf

let json_number v =
  if Float.is_integer v && Float.abs v < 1e15 then Json.Int (int_of_float v)
  else Json.Float v

let to_json ?suppress_volatile ?timestamp t =
  let families =
    List.map
      (fun (fam, series) ->
        let series_json =
          List.map
            (fun (labels, s) ->
              let labels_json =
                Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)
              in
              match fam.f_kind with
              | Counter | Gauge ->
                  Json.Obj
                    [ ("labels", labels_json); ("value", json_number s.sr_value) ]
              | Histogram bounds ->
                  (* Cumulative counts, like the text exposition — the
                     slots store per-bucket increments.  Built with
                     explicit sequencing: [@]'s operand order is
                     unspecified, so the +Inf total must not read the
                     running sum via a side effect. *)
                  let cum = ref 0.0 in
                  let finite =
                    List.mapi
                      (fun i bound ->
                        cum := !cum +. s.sr_buckets.(i);
                        Json.Obj
                          [
                            ("le", Json.Float bound);
                            ("count", json_number !cum);
                          ])
                      (Array.to_list bounds)
                  in
                  let total = !cum +. s.sr_buckets.(Array.length bounds) in
                  Json.Obj
                    ([
                       ("labels", labels_json);
                      ( "buckets",
                        Json.List
                          (finite
                          @ [
                              Json.Obj
                                [
                                  ("le", Json.String "+Inf");
                                  ("count", json_number total);
                                ];
                            ]) );
                      ("sum", json_number s.sr_value);
                      ("count", json_number s.sr_count);
                    ]
                    @
                    if s.sr_ex_id = "" then []
                    else
                      [
                        ( "exemplar",
                          Json.Obj
                            [
                              ("trace_id", Json.String s.sr_ex_id);
                              ("value", json_number s.sr_ex_value);
                            ] );
                      ]))
            series
        in
        Json.Obj
          [
            ("name", Json.String fam.f_name);
            ("kind", Json.String (kind_name fam.f_kind));
            ("help", Json.String fam.f_help);
            ("volatile", Json.Bool fam.f_volatile);
            ("series", Json.List series_json);
          ])
      (snapshot ?suppress_volatile t)
  in
  Json.Obj
    ((match timestamp with
     | Some ts -> [ ("timestamp", Json.Float ts) ]
     | None -> [])
    @ [ ("metrics", Json.List families) ])

(* ------------------------------------------------------------------ *)
(* Exposition linting                                                  *)
(* ------------------------------------------------------------------ *)

type sample = {
  sm_name : string;
  sm_labels : (string * string) list;
  sm_value : float;
  sm_line : int;
}

(* Parse one sample line: name{k="v",...} value. *)
let parse_sample ~line_no line =
  let err msg = Error (Printf.sprintf "line %d: %s" line_no msg) in
  let name_end =
    let n = String.length line in
    let rec go i =
      if i >= n then i
      else
        match line.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> go (i + 1)
        | _ -> i
    in
    go 0
  in
  if name_end = 0 then err "sample does not start with a metric name"
  else
    let name = String.sub line 0 name_end in
    let rest = String.sub line name_end (String.length line - name_end) in
    let labels_result, rest =
      if rest <> "" && rest.[0] = '{' then
        match String.index_opt rest '}' with
        | None -> (Error "unterminated label set", "")
        | Some close ->
            let body = String.sub rest 1 (close - 1) in
            let tail =
              String.sub rest (close + 1) (String.length rest - close - 1)
            in
            let parse_one kv =
              let kv = String.trim kv in
              match String.index_opt kv '=' with
              | None -> Error (Printf.sprintf "label %S has no '='" kv)
              | Some eq ->
                  let k = String.sub kv 0 eq in
                  let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
                  if not (is_label_name k) then
                    Error (Printf.sprintf "invalid label name %S" k)
                  else if
                    String.length v < 2
                    || v.[0] <> '"'
                    || v.[String.length v - 1] <> '"'
                  then Error (Printf.sprintf "label value %S not quoted" v)
                  else Ok (k, String.sub v 1 (String.length v - 2))
            in
            let rec split acc = function
              | [] -> Ok (List.rev acc)
              | kv :: rest -> (
                  match parse_one kv with
                  | Ok p -> split (p :: acc) rest
                  | Error e -> Error e)
            in
            if String.trim body = "" then (Ok [], tail)
            else (split [] (String.split_on_char ',' body), tail)
      else (Ok [], rest)
    in
    match labels_result with
    | Error e -> err e
    | Ok labels -> (
        let value_str = String.trim rest in
        (* Tolerate a trailing timestamp field. *)
        let value_str =
          match String.index_opt value_str ' ' with
          | Some sp -> String.sub value_str 0 sp
          | None -> value_str
        in
        let parsed =
          match value_str with
          | "+Inf" -> Some Float.infinity
          | "-Inf" -> Some Float.neg_infinity
          | "NaN" -> Some Float.nan
          | s -> float_of_string_opt s
        in
        match parsed with
        | None -> err (Printf.sprintf "value %S is not a float" value_str)
        | Some v ->
            Ok { sm_name = name; sm_labels = labels; sm_value = v; sm_line = line_no })

let strip_suffix name =
  let try_one suffix =
    let n = String.length name and m = String.length suffix in
    if n > m && String.sub name (n - m) m = suffix then
      Some (String.sub name 0 (n - m))
    else None
  in
  match try_one "_bucket" with
  | Some base -> Some (base, `Bucket)
  | None -> (
      match try_one "_sum" with
      | Some base -> Some (base, `Sum)
      | None -> (
          match try_one "_count" with
          | Some base -> Some (base, `Count)
          | None -> None))

let lint text =
  let errors = ref [] in
  let err line_no msg =
    errors := Printf.sprintf "line %d: %s" line_no msg :: !errors
  in
  let types : (string, string) Hashtbl.t = Hashtbl.create 16 in
  let samples = ref [] in
  let exemplars = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun i line ->
      let line_no = i + 1 in
      if line = "" then ()
      else if String.length line >= 7 && String.sub line 0 7 = "# TYPE " then begin
        let rest = String.sub line 7 (String.length line - 7) in
        match String.split_on_char ' ' (String.trim rest) with
        | [ name; kind ] ->
            if not (is_metric_name name) then
              err line_no (Printf.sprintf "invalid metric name %S in TYPE" name);
            if
              not
                (List.mem kind
                   [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
            then err line_no (Printf.sprintf "unknown metric type %S" kind);
            if Hashtbl.mem types name then
              err line_no (Printf.sprintf "duplicate TYPE for %S" name);
            Hashtbl.replace types name kind
        | _ -> err line_no "malformed TYPE line"
      end
      else if String.length line >= 11 && String.sub line 0 11 = "# EXEMPLAR "
      then
        exemplars :=
          (line_no, String.sub line 11 (String.length line - 11)) :: !exemplars
      else if String.length line >= 1 && line.[0] = '#' then ()
      else
        match parse_sample ~line_no line with
        | Error e -> errors := e :: !errors
        | Ok s -> samples := s :: !samples)
    lines;
  let samples = List.rev !samples in
  (* Every sample must belong to a declared family. *)
  let family_of s =
    match Hashtbl.find_opt types s.sm_name with
    | Some k -> Some (s.sm_name, k, `Plain)
    | None -> (
        match strip_suffix s.sm_name with
        | Some (base, role) when Hashtbl.find_opt types base = Some "histogram"
          ->
            Some (base, "histogram", (role :> [ `Bucket | `Sum | `Count | `Plain ]))
        | _ -> None)
  in
  List.iter
    (fun s ->
      match family_of s with
      | None ->
          err s.sm_line
            (Printf.sprintf "sample %S has no # TYPE declaration" s.sm_name)
      | Some _ -> ())
    samples;
  (* Duplicate series. *)
  let seen = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let key = (s.sm_name, List.sort compare s.sm_labels) in
      if Hashtbl.mem seen key then
        err s.sm_line
          (Printf.sprintf "duplicate series %s%s" s.sm_name
             (label_string s.sm_labels))
      else Hashtbl.replace seen key ())
    samples;
  (* Histogram consistency per (family, labels-minus-le). *)
  let hist : (string * (string * string) list, (float * float) list ref) Hashtbl.t =
    Hashtbl.create 16
  and sums = Hashtbl.create 16
  and counts = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match family_of s with
      | Some (base, "histogram", `Bucket) -> (
          let le = List.assoc_opt "le" s.sm_labels in
          let rest =
            List.sort compare (List.remove_assoc "le" s.sm_labels)
          in
          match le with
          | None -> err s.sm_line "histogram bucket without an le label"
          | Some le_str -> (
              let bound =
                match le_str with
                | "+Inf" -> Some Float.infinity
                | s -> float_of_string_opt s
              in
              match bound with
              | None ->
                  err s.sm_line (Printf.sprintf "unparsable le bound %S" le_str)
              | Some b -> (
                  let key = (base, rest) in
                  match Hashtbl.find_opt hist key with
                  | Some r -> r := (b, s.sm_value) :: !r
                  | None -> Hashtbl.replace hist key (ref [ (b, s.sm_value) ]))))
      | Some (base, "histogram", `Sum) ->
          Hashtbl.replace sums (base, List.sort compare s.sm_labels) s.sm_value
      | Some (base, "histogram", `Count) ->
          Hashtbl.replace counts (base, List.sort compare s.sm_labels) s.sm_value
      | _ -> ())
    samples;
  Hashtbl.iter
    (fun (base, labels) r ->
      let buckets = List.rev !r in
      let bounds = List.map fst buckets in
      let rec ascending = function
        | a :: (b :: _ as rest) -> a < b && ascending rest
        | _ -> true
      in
      if not (ascending bounds) then
        err 0 (Printf.sprintf "histogram %s: le bounds not ascending" base);
      (match List.rev bounds with
      | last :: _ when last = Float.infinity -> ()
      | _ -> err 0 (Printf.sprintf "histogram %s: missing +Inf bucket" base));
      let values = List.map snd buckets in
      let rec non_decreasing = function
        | a :: (b :: _ as rest) -> a <= b && non_decreasing rest
        | _ -> true
      in
      if not (non_decreasing values) then
        err 0 (Printf.sprintf "histogram %s: cumulative counts decrease" base);
      (match (List.rev values, Hashtbl.find_opt counts (base, labels)) with
      | last :: _, Some c when last <> c ->
          err 0
            (Printf.sprintf "histogram %s: +Inf bucket (%s) != _count (%s)" base
               (fmt last) (fmt c))
      | _, None -> err 0 (Printf.sprintf "histogram %s: missing _count" base)
      | _ -> ());
      if not (Hashtbl.mem sums (base, labels)) then
        err 0 (Printf.sprintf "histogram %s: missing _sum" base))
    hist;
  (* Exemplar comments: [# EXEMPLAR name{labels} trace_id value] —
     the series part must parse, the family must be a declared
     histogram, the id must be 16 hex chars and the value a float. *)
  let is_trace_id s =
    String.length s = 16
    && String.for_all
         (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f'))
         s
  in
  let rsplit s =
    match String.rindex_opt s ' ' with
    | None -> None
    | Some i ->
        Some
          ( String.trim (String.sub s 0 i),
            String.sub s (i + 1) (String.length s - i - 1) )
  in
  List.iter
    (fun (line_no, body) ->
      match rsplit (String.trim body) with
      | None -> err line_no "malformed EXEMPLAR line (missing value)"
      | Some (head1, value_str) -> (
          match rsplit head1 with
          | None -> err line_no "malformed EXEMPLAR line (missing trace_id)"
          | Some (head, id) -> (
              if float_of_string_opt value_str = None then
                err line_no
                  (Printf.sprintf "EXEMPLAR value %S is not a float" value_str);
              if not (is_trace_id id) then
                err line_no
                  (Printf.sprintf "EXEMPLAR trace_id %S is not 16 hex chars" id);
              match parse_sample ~line_no (head ^ " 0") with
              | Error e -> errors := e :: !errors
              | Ok s -> (
                  match Hashtbl.find_opt types s.sm_name with
                  | Some "histogram" -> ()
                  | Some k ->
                      err line_no
                        (Printf.sprintf
                           "EXEMPLAR for %S, a %s (histograms only)" s.sm_name k)
                  | None ->
                      err line_no
                        (Printf.sprintf "EXEMPLAR for undeclared family %S"
                           s.sm_name)))))
    (List.rev !exemplars);
  match List.rev !errors with [] -> Ok () | es -> Error es
