(** Flight recorder: an always-on bounded ring of recent structured
    events.

    The daemon records every notable occurrence — requests (with
    latency and trace_id), chain advances, reorg rollbacks, breaker
    flips, quorum quarantines, connection sheds, journal commits —
    into a fixed-capacity ring.  When something goes wrong (drain,
    fatal signal, worker crash) the ring is dumped to disk, giving the
    operator the last N events before the incident.  Timestamps come
    from the injectable {!Clock}, so ring contents are deterministic
    under a virtual clock.  All operations are thread-safe. *)

type t

val create : ?clock:Clock.t -> ?capacity:int -> unit -> t
(** A fresh ring holding the most recent [capacity] (default 256)
    events.  Raises [Invalid_argument] when [capacity <= 0]. *)

val capacity : t -> int

val record : ?fields:(string * Report.Json.t) list -> t -> string -> unit
(** [record t kind] appends an event, evicting the oldest when full.
    The clock is read under the ring's lock, so with an auto-stepping
    virtual clock the (seq, ts) pairing is a pure function of the
    recording order. *)

val recorded : t -> int
(** Total events ever recorded (≥ the number retained). *)

val to_json : ?limit:int -> t -> Report.Json.t
(** [{"capacity": _, "recorded": _, "events": [...]}], events oldest
    first; [limit] keeps only the newest [limit] of the retained
    events.  Each event is [{"seq", "ts" (µs), "kind", "fields"?}]. *)

val write : ?limit:int -> t -> out_channel -> unit
(** {!to_json} serialized to a channel with a trailing newline. *)
