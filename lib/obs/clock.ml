type virtual_state = {
  mutable v_now : float;
  v_step : float;
  v_lock : Mutex.t;
}

type t = Real | Virtual of virtual_state

let real = Real

let virtual_ ?(start = 0.0) ?(auto_step = 0.0) () =
  Virtual { v_now = start; v_step = auto_step; v_lock = Mutex.create () }

let now = function
  | Real -> Unix.gettimeofday ()
  | Virtual v ->
      Mutex.lock v.v_lock;
      let t = v.v_now in
      v.v_now <- v.v_now +. v.v_step;
      Mutex.unlock v.v_lock;
      t

let advance t delta =
  match t with
  | Real -> ()
  | Virtual v ->
      if delta > 0.0 then begin
        Mutex.lock v.v_lock;
        v.v_now <- v.v_now +. delta;
        Mutex.unlock v.v_lock
      end

let is_virtual = function Real -> false | Virtual _ -> true
