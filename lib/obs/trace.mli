(** Span tracer exporting Chrome trace-event JSON.

    Collects nested spans (run → batch → item → stage → RPC call / EVM
    emulation frame) and writes them in the Chrome [traceEvents] format,
    loadable in [about:tracing] and {{:https://ui.perfetto.dev}Perfetto}.

    Timestamps are supplied by callers in {e seconds} (the writer
    converts to the microseconds the format wants).  The engine's
    telemetry layer drives a {e synthetic} timeline from event-payload
    durations so the coordinator lanes are deterministic; sampled
    worker-lane detail (RPC dispatches, EVM frames) uses real clock
    reads on per-worker tracks.  All recording is thread-safe; events
    are kept in arrival order with a sequence number so output is stable
    for a given recording order. *)

type t

val create : ?clock:Clock.t -> unit -> t
(** A fresh collector.  [clock] (default {!Clock.real}) serves
    {!with_span} and {!now}. *)

val now : t -> float
(** Read the collector's clock, in seconds. *)

val complete :
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Report.Json.t) list ->
  t ->
  name:string ->
  ts:float ->
  dur:float ->
  unit
(** Record a complete ("X") span: [ts] start and [dur] duration in
    seconds.  [tid] (default 0) selects the track; [cat] (default
    ["proxion"]) the category; [args] become the span's argument
    object. *)

val instant :
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Report.Json.t) list ->
  t ->
  name:string ->
  ts:float ->
  unit
(** Record an instant ("i") event. *)

val with_span :
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Report.Json.t) list ->
  t ->
  string ->
  (unit -> 'a) ->
  'a
(** Run a thunk inside a span timed with the collector's clock.  The
    span is recorded even if the thunk raises. *)

val count : t -> int
(** Number of events recorded so far. *)

(** {1 Span contexts}

    Request-scoped correlation ids, splitmix64-derived so they are
    deterministic for a given seed.  A context is a
    [(trace_id, span_id)] pair of 64-bit ids rendered as 16 lowercase
    hex characters on the wire; child spans derive their [span_id] from
    the parent's, keeping the whole tree reproducible. *)

type ctx = { trace_id : int64; span_id : int64 }

type gen
(** A seeded generator of root contexts (thread-safe). *)

val gen : seed:int -> gen
val next_ctx : gen -> ctx
(** The next root context in the generator's splitmix64 stream. *)

val child : ctx -> index:int -> ctx
(** Deterministic child context: same [trace_id], [span_id] derived
    from the parent's span id and the 0-based child [index]. *)

val id_to_hex : int64 -> string
(** 16 lowercase hex characters, zero-padded. *)

val id_of_hex : string -> int64 option
(** Inverse of {!id_to_hex}; [None] unless exactly 16 lowercase hex
    characters. *)

val ctx_args : ?parent:ctx -> ctx -> (string * Report.Json.t) list
(** The [trace_id]/[span_id] (and [parent_span_id], when [parent] is
    given) argument fields identifying a span. *)

(** {1 Live spans}

    Unlike the engine's post-hoc synthetic timeline, live spans are
    opened and closed around real work with the collector's clock and
    carry their context in the span args, so a request's child spans
    can be joined across processes by [trace_id]. *)

type span

val start_span :
  ?tid:int ->
  ?cat:string ->
  ?parent:span ->
  ?parent_ctx:ctx ->
  ?ctx:ctx ->
  t ->
  string ->
  span
(** Open a live span.  [ctx] pins the context explicitly; otherwise a
    child context is derived from [parent], or (neither given) a root
    context is derived from the clock.  [parent_ctx] records a
    cross-process parent (a client's context carried on the wire) when
    [ctx] is explicit and no local parent span exists.  [cat] defaults
    to ["request"]. *)

val span_ctx : span -> ctx

val next_child_index : span -> int
(** Reserve the next 0-based child slot (for deriving child contexts
    handed to other subsystems). *)

val finish_span : ?args:(string * Report.Json.t) list -> span -> unit
(** Record the span as a complete event with its context args ([args]
    appended).  Idempotent: only the first call records. *)

val span_tree_json : t -> trace_id:string -> Report.Json.t
(** All recorded events whose args carry the given [trace_id] (16 hex
    chars), in arrival order, as a JSON list.  The flat list plus the
    [parent_span_id] links encode the span tree; used by the daemon's
    slow-request log. *)

val micros : float -> Report.Json.t
(** Seconds as trace-format microseconds: an integer JSON value when
    the microsecond count is whole (byte-stable), a float otherwise. *)

val to_json : t -> Report.Json.t
(** The full [{"traceEvents": [...], "displayTimeUnit": "ms"}] object. *)

val write : t -> out_channel -> unit
(** [to_json] serialized to a channel, with a trailing newline. *)
