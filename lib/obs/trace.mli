(** Span tracer exporting Chrome trace-event JSON.

    Collects nested spans (run → batch → item → stage → RPC call / EVM
    emulation frame) and writes them in the Chrome [traceEvents] format,
    loadable in [about:tracing] and {{:https://ui.perfetto.dev}Perfetto}.

    Timestamps are supplied by callers in {e seconds} (the writer
    converts to the microseconds the format wants).  The engine's
    telemetry layer drives a {e synthetic} timeline from event-payload
    durations so the coordinator lanes are deterministic; sampled
    worker-lane detail (RPC dispatches, EVM frames) uses real clock
    reads on per-worker tracks.  All recording is thread-safe; events
    are kept in arrival order with a sequence number so output is stable
    for a given recording order. *)

type t

val create : ?clock:Clock.t -> unit -> t
(** A fresh collector.  [clock] (default {!Clock.real}) serves
    {!with_span} and {!now}. *)

val now : t -> float
(** Read the collector's clock, in seconds. *)

val complete :
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Report.Json.t) list ->
  t ->
  name:string ->
  ts:float ->
  dur:float ->
  unit
(** Record a complete ("X") span: [ts] start and [dur] duration in
    seconds.  [tid] (default 0) selects the track; [cat] (default
    ["proxion"]) the category; [args] become the span's argument
    object. *)

val instant :
  ?pid:int ->
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Report.Json.t) list ->
  t ->
  name:string ->
  ts:float ->
  unit
(** Record an instant ("i") event. *)

val with_span :
  ?tid:int ->
  ?cat:string ->
  ?args:(string * Report.Json.t) list ->
  t ->
  string ->
  (unit -> 'a) ->
  'a
(** Run a thunk inside a span timed with the collector's clock.  The
    span is recorded even if the thunk raises. *)

val count : t -> int
(** Number of events recorded so far. *)

val to_json : t -> Report.Json.t
(** The full [{"traceEvents": [...], "displayTimeUnit": "ms"}] object. *)

val write : t -> out_channel -> unit
(** [to_json] serialized to a channel, with a trailing newline. *)
