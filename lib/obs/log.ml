module Json = Report.Json

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Ok Debug
  | "info" -> Ok Info
  | "warn" | "warning" -> Ok Warn
  | "error" -> Ok Error
  | other -> Error (Printf.sprintf "unknown log level %S" other)

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type t = {
  clock : Clock.t;
  mutable min_level : level;
  json : bool;
  oc : out_channel;
  lock : Mutex.t;
  mutable suppressed : int;
}

let create ?(clock = Clock.real) ?(level = Info) ?(json = false) oc =
  { clock; min_level = level; json; oc; lock = Mutex.create (); suppressed = 0 }

let enabled t level = severity level >= severity t.min_level

let level t = t.min_level

let suppressed t =
  Mutex.lock t.lock;
  let n = t.suppressed in
  Mutex.unlock t.lock;
  n

let note_suppressed t =
  Mutex.lock t.lock;
  t.suppressed <- t.suppressed + 1;
  Mutex.unlock t.lock

let text_line ~ts ~level ~component ~subject ~fields msg =
  let buf = Buffer.create 96 in
  Buffer.add_string buf (Printf.sprintf "%10.3f %-5s" ts (level_to_string level));
  (match component with
  | Some c -> Buffer.add_string buf (Printf.sprintf " [%s]" c)
  | None -> ());
  Buffer.add_char buf ' ';
  Buffer.add_string buf msg;
  (match subject with
  | Some s -> Buffer.add_string buf (Printf.sprintf " subject=%s" s)
  | None -> ());
  List.iter
    (fun (k, v) ->
      let v_str =
        match v with
        | Json.String s -> s
        | other -> Json.to_string ~pretty:false other
      in
      Buffer.add_string buf (Printf.sprintf " %s=%s" k v_str))
    fields;
  Buffer.contents buf

let json_line ~ts ~level ~component ~subject ~fields msg =
  let opt name = function Some v -> [ (name, Json.String v) ] | None -> [] in
  Json.to_string ~pretty:false
    (Json.Obj
       ([ ("ts", Json.Float ts); ("level", Json.String (level_to_string level)) ]
       @ opt "component" component
       @ opt "subject" subject
       @ [ ("msg", Json.String msg) ]
       @ match fields with [] -> [] | fs -> [ ("fields", Json.Obj fs) ]))

let emit t ~level ~component ~subject ~fields msg =
  let ts = Clock.now t.clock in
  let line =
    if t.json then json_line ~ts ~level ~component ~subject ~fields msg
    else text_line ~ts ~level ~component ~subject ~fields msg
  in
  output_string t.oc line;
  output_char t.oc '\n';
  flush t.oc

let log t ?component ?subject ?(fields = []) level msg =
  if enabled t level then begin
    (* Format outside the lock (clock reads are thread-safe), write
       under it, matching the pre-suppression behavior. *)
    let ts = Clock.now t.clock in
    let line =
      if t.json then json_line ~ts ~level ~component ~subject ~fields msg
      else text_line ~ts ~level ~component ~subject ~fields msg
    in
    Mutex.lock t.lock;
    output_string t.oc line;
    output_char t.oc '\n';
    flush t.oc;
    Mutex.unlock t.lock
  end
  else note_suppressed t

let set_level t new_level =
  Mutex.lock t.lock;
  if new_level <> t.min_level then begin
    (* Flush the suppression tally before the boundary moves: once the
       level changes, "N records fell below the old threshold" can no
       longer be reconstructed, so it must not be silently lost. *)
    if t.suppressed > 0 then
      emit t ~level:Info ~component:(Some "log") ~subject:None
        ~fields:
          [
            ("suppressed", Json.Int t.suppressed);
            ("below", Json.String (level_to_string t.min_level));
          ]
        "suppressed records";
    t.suppressed <- 0;
    t.min_level <- new_level
  end;
  Mutex.unlock t.lock
