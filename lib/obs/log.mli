(** Structured log sink: leveled records with component/subject fields,
    written either as human-readable text lines or as JSONL (one JSON
    object per line) — the machine-readable backend behind the CLI's
    [--progress], [--log-json] and [--log-level] flags.

    Records below the sink's level are dropped before formatting, so
    hot paths can log at [Debug] freely.  Writes are serialized under a
    mutex and flushed per record, so lines from worker domains never
    interleave mid-record and survive a crash. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> (level, string) result
(** Case-insensitive parse of the above (also accepts ["warning"]). *)

type t

val create : ?clock:Clock.t -> ?level:level -> ?json:bool -> out_channel -> t
(** A sink writing to [out_channel].  [level] (default [Info]) is the
    minimum level emitted; [json] (default false) selects JSONL output;
    [clock] (default {!Clock.real}) stamps records — under a virtual
    clock timestamps are deterministic, which is how tests pin JSONL
    bytes. *)

val enabled : t -> level -> bool
(** Whether a record at [level] would be emitted — guard expensive
    field construction with this, and pair the guard with
    {!note_suppressed} so dropped records stay countable. *)

val level : t -> level
(** The sink's current minimum level. *)

val set_level : t -> level -> unit
(** Change the minimum level.  Before the boundary moves, any pending
    suppression tally is flushed as an [Info] record
    ([msg="suppressed records"], fields [suppressed]/[below]) and the
    counter resets — no dropped records are silently lost across a
    mid-run level change.  No-op when the level is unchanged. *)

val suppressed : t -> int
(** Records dropped below the current level since the last
    {!set_level} flush (counting both filtered {!log} calls and
    explicit {!note_suppressed} notes). *)

val note_suppressed : t -> unit
(** Count one record that a caller's [enabled] guard elided without
    formatting.  Cheap; safe from any domain. *)

val log :
  t ->
  ?component:string ->
  ?subject:string ->
  ?fields:(string * Report.Json.t) list ->
  level ->
  string ->
  unit
(** Emit one record.  [component] names the subsystem (["engine"],
    ["transport"], ["evm"], ...), [subject] the work item (an address),
    [fields] carry structured extras.  In JSONL mode the record is
    [{"ts":..,"level":..,"component":..,"subject":..,"msg":..,
    "fields":{..}}] with absent options omitted; in text mode a single
    aligned line.  Records below the sink's level are counted toward
    {!suppressed} instead of being emitted. *)
