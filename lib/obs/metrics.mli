(** A metrics registry: counters, gauges and fixed-bucket histograms with
    labels, exposed as Prometheus text exposition or as a JSON snapshot.

    The registry is the machine-readable substrate behind the engine's
    per-stage cost accounting (the paper's §6 evaluation numbers): API
    calls per method, emulation steps per contract, retry volume, breaker
    flaps, dead-letter classes, stage latency distributions.

    {b Determinism.}  Exposition output is fully sorted (families by
    name, series by label set), values are formatted canonically, and
    counter/histogram merges are pure additions — so two runs that make
    the same observations produce byte-identical output regardless of
    registration or observation interleaving, {e except} for
    wall-clock-derived values.  Families carry a [volatile] flag for
    those; writers can suppress volatile families (and the snapshot
    timestamp), which is how the CI diff job asserts a [DOMAINS=4] scan
    snapshots byte-identically to the sequential one.

    {b Sharding.}  Worker domains record into private {!shard}s (same
    family specs, private series) which the coordinator {!absorb}s in
    input order at the engine's deterministic-merge barrier.  Counter and
    histogram merges commute over integers; float sums (backoff seconds)
    are replayed in input order, so even their rounding is
    order-identical to a sequential run. *)

type t
(** A registry (or a shard of one).  All operations are thread-safe. *)

type family
(** A handle to one metric family (name, kind, buckets, volatility).
    Handles are registry-independent: the same handle records into
    whichever registry or shard it is applied to. *)

val create : unit -> t

val counter : t -> ?help:string -> ?volatile:bool -> string -> family
(** Register (or look up) a monotonically increasing counter.  Raises
    [Invalid_argument] if [name] is already registered with a different
    kind, or is not a valid Prometheus metric name. *)

val gauge : t -> ?help:string -> ?volatile:bool -> string -> family
(** Register a gauge (a settable value). *)

val histogram :
  t -> ?help:string -> ?volatile:bool -> buckets:float list -> string -> family
(** Register a fixed-bucket histogram.  [buckets] are the finite upper
    bounds, strictly increasing; a [+Inf] bucket is implicit.  Raises
    [Invalid_argument] on an empty or non-monotonic bucket list, or on a
    kind/bucket mismatch with an existing registration. *)

val inc : ?labels:(string * string) list -> ?by:float -> t -> family -> unit
(** Add [by] (default 1, must be >= 0) to a counter series. *)

val set : ?labels:(string * string) list -> t -> family -> float -> unit
(** Set a gauge series. *)

val observe :
  ?labels:(string * string) list ->
  ?exemplar:string ->
  t ->
  family ->
  float ->
  unit
(** Record one observation into a histogram series.  [exemplar]
    attaches an identity (a trace_id) to the observation: the series
    keeps the exemplar of its maximum-valued observation — first
    observation wins an empty slot, later ones only on a strictly
    greater value, so ties keep the earliest id and the result is
    deterministic for a given observation order. *)

val find : t -> string -> family option
(** Look up an already-registered family by name — for reading metrics
    recorded by another component without knowing its bucket layout. *)

(** {1 Pre-resolved handles}

    A {!handle} pins one (family, label set) series so hot paths pay a
    mutex and an array update per observation instead of label
    canonicalization plus a hash lookup.  Handles must only target
    long-lived registries — {!absorb} resets a shard's series table,
    orphaning any handle into the shard. *)

type handle

val handle : ?labels:(string * string) list -> t -> family -> handle
(** Resolve (and create if absent) the series for [labels]. *)

val hinc : ?by:float -> handle -> unit
(** {!inc} through a pre-resolved counter handle. *)

val hset : handle -> float -> unit
(** {!set} through a pre-resolved gauge handle. *)

val hobserve : ?exemplar:string -> handle -> float -> unit
(** {!observe} through a pre-resolved histogram handle. *)

(** {1 Shards} *)

val shard : t -> t
(** A private shard: shares the parent's family registrations, starts
    with no series.  Observations through any family handle land in the
    shard; {!absorb} folds them into the parent. *)

val absorb : into:t -> t -> unit
(** Merge a shard's series into [into]: counters and histogram
    bucket/sum/count pairs add; gauges overwrite; exemplars keep the
    max-valued one (the destination wins ties).  The shard is left
    empty and reusable. *)

(** {1 Reading} *)

val value : ?labels:(string * string) list -> t -> family -> float option
(** Current value of a counter/gauge series ([None] if never touched).
    For histograms, returns the observation count. *)

val exemplar :
  ?labels:(string * string) list -> t -> family -> (string * float) option
(** The (trace_id, value) exemplar of a histogram series's max-valued
    observation, when one was recorded. *)

type summary = { s_count : int; s_p50 : float; s_p90 : float; s_p99 : float }

val summarize : ?labels:(string * string) list -> t -> family -> summary option
(** Percentile estimates of a histogram series, linearly interpolated
    within buckets the way Prometheus' [histogram_quantile] does
    (observations in the [+Inf] bucket clamp to the largest finite
    bound).  [None] when the series has no observations. *)

(** {1 Writers} *)

val to_prometheus : ?suppress_volatile:bool -> t -> string
(** Prometheus text exposition (format version 0.0.4): [# HELP]/[# TYPE]
    headers, histogram [_bucket]/[_sum]/[_count] expansion, families and
    series in sorted order.  [suppress_volatile] (default false) omits
    families registered as volatile.  Histogram series carrying an
    exemplar additionally emit a
    [# EXEMPLAR name{labels} trace_id value] comment line after their
    [_count] — 0.0.4 scrapers ignore it, {!lint} validates it. *)

val to_json : ?suppress_volatile:bool -> ?timestamp:float -> t -> Report.Json.t
(** JSON snapshot: [{"timestamp": ...?, "metrics": [...]}].  The
    timestamp field is present only when [timestamp] is given — omit it
    (and suppress volatile families) for byte-comparable snapshots.
    Histogram bucket counts are cumulative (Prometheus semantics, same
    as the text exposition).  Histogram series with an exemplar carry
    an [{"exemplar": {"trace_id", "value"}}] field. *)

(** {1 Exposition linting} *)

val lint : string -> (unit, string list) result
(** Validate a Prometheus text exposition: metric/label name syntax,
    float-parsable values, every sample covered by a [# TYPE] header,
    no duplicate series, histogram buckets monotonic with a [+Inf]
    bucket matching [_count], and [_sum]/[_count] present.
    [# EXEMPLAR] comment lines must name a declared histogram family
    with a 16-hex-char trace_id and a float value.  Returns all
    violations found. *)
