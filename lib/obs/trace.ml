module Json = Report.Json

type event = {
  ev_name : string;
  ev_cat : string;
  ev_phase : string; (* "X" complete, "i" instant *)
  ev_ts : float; (* seconds *)
  ev_dur : float; (* seconds; 0 for instants *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * Json.t) list;
  ev_seq : int;
}

type t = {
  clock : Clock.t;
  lock : Mutex.t;
  mutable events : event list; (* reverse arrival order *)
  mutable next_seq : int;
}

let create ?(clock = Clock.real) () =
  { clock; lock = Mutex.create (); events = []; next_seq = 0 }

let now t = Clock.now t.clock

let record t ~name ~cat ~phase ~ts ~dur ~pid ~tid ~args =
  Mutex.lock t.lock;
  t.events <-
    {
      ev_name = name;
      ev_cat = cat;
      ev_phase = phase;
      ev_ts = ts;
      ev_dur = dur;
      ev_pid = pid;
      ev_tid = tid;
      ev_args = args;
      ev_seq = t.next_seq;
    }
    :: t.events;
  t.next_seq <- t.next_seq + 1;
  Mutex.unlock t.lock

let complete ?(pid = 1) ?(tid = 0) ?(cat = "proxion") ?(args = []) t ~name ~ts
    ~dur =
  record t ~name ~cat ~phase:"X" ~ts ~dur:(Float.max 0.0 dur) ~pid ~tid ~args

let instant ?(pid = 1) ?(tid = 0) ?(cat = "proxion") ?(args = []) t ~name ~ts =
  record t ~name ~cat ~phase:"i" ~ts ~dur:0.0 ~pid ~tid ~args

let with_span ?tid ?cat ?args t name f =
  let t0 = Clock.now t.clock in
  let finish () = complete ?tid ?cat ?args t ~name ~ts:t0 ~dur:(Clock.now t.clock -. t0) in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let count t =
  Mutex.lock t.lock;
  let n = t.next_seq in
  Mutex.unlock t.lock;
  n

(* ------------------------------------------------------------------ *)
(* Span contexts.                                                      *)
(* ------------------------------------------------------------------ *)

(* splitmix64, inlined: lib/obs sits below lib/dataset in the build, so
   it cannot reuse Dataset.Prng.  Same constants, same stream. *)
let splitmix64 (x : int64) : int64 =
  let open Int64 in
  let z = add x 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

type ctx = { trace_id : int64; span_id : int64 }

let id_to_hex (id : int64) = Printf.sprintf "%016Lx" id

let is_hex_id s =
  String.length s = 16
  && String.for_all (fun c -> (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) s

let id_of_hex s = if is_hex_id s then Some (Int64.of_string ("0x" ^ s)) else None

type gen = { mutable g_state : int64; g_lock : Mutex.t }

let gen ~seed = { g_state = Int64.of_int seed; g_lock = Mutex.create () }

let next_ctx g =
  Mutex.lock g.g_lock;
  let s1 = Int64.add g.g_state 1L in
  let s2 = Int64.add s1 1L in
  g.g_state <- s2;
  Mutex.unlock g.g_lock;
  { trace_id = splitmix64 s1; span_id = splitmix64 s2 }

let child ctx ~index =
  {
    ctx with
    span_id = splitmix64 (Int64.logxor ctx.span_id (Int64.of_int (index + 1)));
  }

let ctx_args ?parent ctx =
  [
    ("trace_id", Json.String (id_to_hex ctx.trace_id));
    ("span_id", Json.String (id_to_hex ctx.span_id));
  ]
  @
  match parent with
  | Some p -> [ ("parent_span_id", Json.String (id_to_hex p.span_id)) ]
  | None -> []

(* ------------------------------------------------------------------ *)
(* Live spans.                                                         *)
(* ------------------------------------------------------------------ *)

type span = {
  sp_trace : t;
  sp_ctx : ctx;
  sp_parent : ctx option;
  sp_name : string;
  sp_cat : string;
  sp_tid : int;
  sp_ts : float;
  mutable sp_children : int;
  mutable sp_finished : bool;
}

let start_span ?(tid = 0) ?(cat = "request") ?parent ?parent_ctx ?ctx t name =
  let parent_ctx, ctx =
    match (ctx, parent) with
    | Some c, Some p -> (Some p.sp_ctx, c)
    | Some c, None -> (parent_ctx, c)
    | None, Some p ->
        let index = p.sp_children in
        p.sp_children <- index + 1;
        (Some p.sp_ctx, child p.sp_ctx ~index)
    | None, None ->
        (* Root span with no supplied context: derive one from the clock
           so virtual-clock runs stay deterministic. *)
        let s = Int64.bits_of_float (Clock.now t.clock) in
        (None, { trace_id = splitmix64 s; span_id = splitmix64 (splitmix64 s) })
  in
  {
    sp_trace = t;
    sp_ctx = ctx;
    sp_parent = parent_ctx;
    sp_name = name;
    sp_cat = cat;
    sp_tid = tid;
    sp_ts = Clock.now t.clock;
    sp_children = 0;
    sp_finished = false;
  }

let span_ctx sp = sp.sp_ctx
let next_child_index sp =
  let index = sp.sp_children in
  sp.sp_children <- index + 1;
  index

let finish_span ?(args = []) sp =
  if not sp.sp_finished then begin
    sp.sp_finished <- true;
    let t = sp.sp_trace in
    complete ~tid:sp.sp_tid ~cat:sp.sp_cat
      ~args:(ctx_args ?parent:sp.sp_parent sp.sp_ctx @ args)
      t ~name:sp.sp_name ~ts:sp.sp_ts
      ~dur:(Clock.now t.clock -. sp.sp_ts)
  end

let micros s =
  (* Timestamps are whole microseconds where possible so the JSON stays
     integer-valued and byte-stable; fractional values are kept exact —
     Perfetto accepts them, and the nesting invariants (span end inside
     parent) would break under rounding. *)
  let us = s *. 1e6 in
  if Float.is_integer us && Float.abs us < 1e15 then Json.Int (int_of_float us)
  else Json.Float us

let event_json ev =
  Json.Obj
    ([
       ("name", Json.String ev.ev_name);
       ("cat", Json.String ev.ev_cat);
       ("ph", Json.String ev.ev_phase);
       ("ts", micros ev.ev_ts);
     ]
    @ (if ev.ev_phase = "X" then [ ("dur", micros ev.ev_dur) ] else [])
    @ [ ("pid", Json.Int ev.ev_pid); ("tid", Json.Int ev.ev_tid) ]
    @ (if ev.ev_phase = "i" then [ ("s", Json.String "t") ] else [])
    @ match ev.ev_args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let to_json t =
  Mutex.lock t.lock;
  let events = List.rev t.events in
  Mutex.unlock t.lock;
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write t oc =
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n'

let events_for t ~trace_id =
  Mutex.lock t.lock;
  let events = List.rev t.events in
  Mutex.unlock t.lock;
  List.filter
    (fun ev ->
      List.exists
        (fun (k, v) -> k = "trace_id" && v = Json.String trace_id)
        ev.ev_args)
    events

let span_tree_json t ~trace_id =
  (* Flat list in arrival order; parent_span_id args encode the tree.
     Used by the slow-request log, so the shape must be line-friendly. *)
  Json.List (List.map event_json (events_for t ~trace_id))
