module Json = Report.Json

type event = {
  ev_name : string;
  ev_cat : string;
  ev_phase : string; (* "X" complete, "i" instant *)
  ev_ts : float; (* seconds *)
  ev_dur : float; (* seconds; 0 for instants *)
  ev_pid : int;
  ev_tid : int;
  ev_args : (string * Json.t) list;
  ev_seq : int;
}

type t = {
  clock : Clock.t;
  lock : Mutex.t;
  mutable events : event list; (* reverse arrival order *)
  mutable next_seq : int;
}

let create ?(clock = Clock.real) () =
  { clock; lock = Mutex.create (); events = []; next_seq = 0 }

let now t = Clock.now t.clock

let record t ~name ~cat ~phase ~ts ~dur ~pid ~tid ~args =
  Mutex.lock t.lock;
  t.events <-
    {
      ev_name = name;
      ev_cat = cat;
      ev_phase = phase;
      ev_ts = ts;
      ev_dur = dur;
      ev_pid = pid;
      ev_tid = tid;
      ev_args = args;
      ev_seq = t.next_seq;
    }
    :: t.events;
  t.next_seq <- t.next_seq + 1;
  Mutex.unlock t.lock

let complete ?(pid = 1) ?(tid = 0) ?(cat = "proxion") ?(args = []) t ~name ~ts
    ~dur =
  record t ~name ~cat ~phase:"X" ~ts ~dur:(Float.max 0.0 dur) ~pid ~tid ~args

let instant ?(pid = 1) ?(tid = 0) ?(cat = "proxion") ?(args = []) t ~name ~ts =
  record t ~name ~cat ~phase:"i" ~ts ~dur:0.0 ~pid ~tid ~args

let with_span ?tid ?cat ?args t name f =
  let t0 = Clock.now t.clock in
  let finish () = complete ?tid ?cat ?args t ~name ~ts:t0 ~dur:(Clock.now t.clock -. t0) in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let count t =
  Mutex.lock t.lock;
  let n = t.next_seq in
  Mutex.unlock t.lock;
  n

let micros s =
  (* Timestamps are whole microseconds where possible so the JSON stays
     integer-valued and byte-stable; fractional values are kept exact —
     Perfetto accepts them, and the nesting invariants (span end inside
     parent) would break under rounding. *)
  let us = s *. 1e6 in
  if Float.is_integer us && Float.abs us < 1e15 then Json.Int (int_of_float us)
  else Json.Float us

let event_json ev =
  Json.Obj
    ([
       ("name", Json.String ev.ev_name);
       ("cat", Json.String ev.ev_cat);
       ("ph", Json.String ev.ev_phase);
       ("ts", micros ev.ev_ts);
     ]
    @ (if ev.ev_phase = "X" then [ ("dur", micros ev.ev_dur) ] else [])
    @ [ ("pid", Json.Int ev.ev_pid); ("tid", Json.Int ev.ev_tid) ]
    @ (if ev.ev_phase = "i" then [ ("s", Json.String "t") ] else [])
    @ match ev.ev_args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let to_json t =
  Mutex.lock t.lock;
  let events = List.rev t.events in
  Mutex.unlock t.lock;
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_json events));
      ("displayTimeUnit", Json.String "ms");
    ]

let write t oc =
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n'
