module Json = Report.Json

type event = {
  fl_seq : int;
  fl_ts : float;
  fl_kind : string;
  fl_fields : (string * Json.t) list;
}

type t = {
  clock : Clock.t;
  capacity : int;
  buf : event option array;
  lock : Mutex.t;
  mutable total : int;
}

let create ?(clock = Clock.real) ?(capacity = 256) () =
  if capacity <= 0 then invalid_arg "Obs.Flight.create: capacity must be > 0";
  {
    clock;
    capacity;
    buf = Array.make capacity None;
    lock = Mutex.create ();
    total = 0;
  }

let capacity t = t.capacity

let record ?(fields = []) t kind =
  Mutex.lock t.lock;
  (* Clock read under the lock: with an auto-stepping virtual clock the
     (seq, ts) pairing stays deterministic for a given recording order. *)
  let ts = Clock.now t.clock in
  let seq = t.total in
  t.buf.(seq mod t.capacity) <-
    Some { fl_seq = seq; fl_ts = ts; fl_kind = kind; fl_fields = fields };
  t.total <- seq + 1;
  Mutex.unlock t.lock

let recorded t =
  Mutex.lock t.lock;
  let n = t.total in
  Mutex.unlock t.lock;
  n

let events t =
  Mutex.lock t.lock;
  let n = min t.total t.capacity in
  let first = t.total - n in
  let out =
    List.init n (fun i ->
        match t.buf.((first + i) mod t.capacity) with
        | Some ev -> ev
        | None -> assert false)
  in
  Mutex.unlock t.lock;
  out

let event_json ev =
  Json.Obj
    ([
       ("seq", Json.Int ev.fl_seq);
       ("ts", Trace.micros ev.fl_ts);
       ("kind", Json.String ev.fl_kind);
     ]
    @ match ev.fl_fields with [] -> [] | fields -> [ ("fields", Json.Obj fields) ])

let to_json ?limit t =
  let evs = events t in
  let evs =
    match limit with
    | Some n when n >= 0 ->
        let len = List.length evs in
        if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs
    | _ -> evs
  in
  Json.Obj
    [
      ("capacity", Json.Int t.capacity);
      ("recorded", Json.Int (recorded t));
      ("events", Json.List (List.map event_json evs));
    ]

let write ?limit t oc =
  output_string oc (Json.to_string (to_json ?limit t));
  output_char oc '\n'
