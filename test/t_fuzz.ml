(* Robustness fuzzing: every analysis entry point must return a value —
   never raise — on arbitrary bytecode.  Mainnet-scale scans meet byte
   soup (constructor arguments, metadata, hand-written assembly), so total
   robustness of the analyzers is a correctness property of its own. *)

let arb_bytecode =
  let open QCheck.Gen in
  let gen =
    oneof
      [
        (* Pure random bytes. *)
        string_size ~gen:char (int_bound 300);
        (* Random bytes guaranteed to contain DELEGATECALL so the
           emulation path actually runs. *)
        map (fun s -> s ^ "\xf4" ^ s) (string_size ~gen:char (int_bound 120));
        (* Valid-ish prefix grafted onto junk. *)
        map
          (fun s -> Hexutil.of_hex "0x6080604052" ^ s)
          (string_size ~gen:char (int_bound 200));
      ]
  in
  QCheck.make ~print:Hexutil.to_hex gen

let total name f =
  QCheck.Test.make ~name ~count:150 arb_bytecode (fun code ->
      match f code with _ -> true | exception _ -> false)

(* Quorum canonicality: whatever per-endpoint fault, lag and Byzantine
   plan a hostile pool draws, a transport with quorum >= 2 either
   returns the node's canonical answer or a structured error — it never
   hands the analysis a fabricated one.  (Quorum >= 2 is the contract:
   a single liar cannot reach agreement because Byzantine corruption is
   a function of the endpoint's identity, so two liars lie apart.) *)
let quorum_canonicality =
  let chain, subject =
    let chain = Chain.create () in
    let a = Chain.install_contract chain ~runtime:"\x00" () in
    for slot = 0 to 7 do
      Chain.set_storage_direct chain a (U256.of_int slot)
        (U256.of_int (100 + slot))
    done;
    Chain.advance_blocks chain 12;
    (chain, a)
  in
  let arb_pool =
    let open QCheck.Gen in
    (* Per endpoint: fault rate in {0, .1 .. .6}, lag in 0..4, and a
       coin for an always-lying Byzantine data plane. *)
    let endpoint_gen = triple (int_bound 6) (int_bound 4) bool in
    let gen = pair nat (list_size (int_range 2 4) endpoint_gen) in
    let print (seed, eps) =
      Printf.sprintf "seed %d, pool [%s]" seed
        (String.concat "; "
           (List.map
              (fun (r, l, b) ->
                Printf.sprintf "rate .%d lag %d byz %b" r l b)
              eps))
    in
    QCheck.make ~print gen
  in
  QCheck.Test.make ~name:"hostile pools never yield a non-canonical answer"
    ~count:60 arb_pool (fun (seed, eps) ->
      let n = List.length eps in
      let quorum = max 2 ((n / 2) + 1) in
      let endpoints =
        List.mapi
          (fun i (rate, lag, byz) ->
            Resilience.Transport.endpoint
              ?plan:
                (if rate > 0 then
                   Some
                     (Resilience.Fault_plan.spec ~seed:(seed + i)
                        ~fault_rate:(float_of_int rate /. 10.0)
                        ())
                 else None)
              ~lag
              ~byzantine:(if byz then 1.0 else 0.0)
              ~byz_seed:(seed lxor i)
              (Printf.sprintf "ep-%d" i))
          eps
      in
      let cfg = Resilience.Transport.config ~endpoints ~quorum () in
      let t = Resilience.Transport.create ~config:cfg ~chain () in
      List.for_all
        (fun slot ->
          let meth = "eth_getStorageAt" in
          let params =
            [ Evm.Address.to_hex subject; Printf.sprintf "0x%x" slot; "latest" ]
          in
          let canonical = Chain_rpc.call chain ~meth ~params in
          match Resilience.Transport.call t ~meth ~params with
          | Ok _ as got -> got = canonical
          | Error _ -> true)
        [ 0; 1; 2; 3 ])

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      quorum_canonicality;
      total "disassembler total" Evm.Disasm.disassemble;
      total "basic blocks total" Evm.Disasm.basic_blocks;
      total "cfg build total" (fun c -> Evm.Cfg.build c);
      total "stack check total" Evm.Stack_check.analyze;
      total "proxy detection total" (fun c -> Proxion.Proxy_detect.detect_code c);
      total "naive push4 total" Proxion.Selector_extract.naive_push4;
      total "dispatcher extraction total" Proxion.Selector_extract.dispatcher_selectors;
      total "dispatcher table total" Proxion.Selector_extract.dispatcher_table;
      total "storage profile total" Proxion.Storage_access.profile;
      total "standard classification total" (fun c ->
          Proxion.Standard_classify.classify ~code:c Proxion.Proxy_detect.Hardcoded);
      total "func collision total" (fun c ->
          Proxion.Func_collision.detect
            ~proxy:(Proxion.Func_collision.Bytecode c)
            ~logic:(Proxion.Func_collision.Bytecode c));
      total "storage collision total" (fun c ->
          Proxion.Storage_collision.detect
            ~proxy:(Proxion.Storage_collision.Bytecode c)
            ~logic:(Proxion.Storage_collision.Bytecode c));
      total "honeypot classifier total" (fun c ->
          Proxion.Honeypot.classify
            ~proxy:(Proxion.Func_collision.Bytecode c)
            ~logic:(Proxion.Func_collision.Bytecode c));
      (* The wire parsers face the same byte soup over TCP: any input
         must come back as a structured error, never an exception. *)
      total "wire request parse total" Serve.Wire.request_of_string;
      total "wire response parse total" Serve.Wire.response_of_string;
      total "raw interpretation total" (fun c ->
          let host = Evm.Host.in_memory () in
          let addr = Evm.Address.of_hex "0x00000000000000000000000000000000000fe221" in
          Evm.Host.with_code host addr c;
          Evm.Interp.execute ~step_limit:20_000 host
            (Evm.Interp.make_call
               ~caller:(Evm.Address.of_hex "0x00000000000000000000000000000000000fe222")
               ~target:addr ~input:"\x01\x02\x03" ()));
    ]
