(* Robustness fuzzing: every analysis entry point must return a value —
   never raise — on arbitrary bytecode.  Mainnet-scale scans meet byte
   soup (constructor arguments, metadata, hand-written assembly), so total
   robustness of the analyzers is a correctness property of its own. *)

let arb_bytecode =
  let open QCheck.Gen in
  let gen =
    oneof
      [
        (* Pure random bytes. *)
        string_size ~gen:char (int_bound 300);
        (* Random bytes guaranteed to contain DELEGATECALL so the
           emulation path actually runs. *)
        map (fun s -> s ^ "\xf4" ^ s) (string_size ~gen:char (int_bound 120));
        (* Valid-ish prefix grafted onto junk. *)
        map
          (fun s -> Hexutil.of_hex "0x6080604052" ^ s)
          (string_size ~gen:char (int_bound 200));
      ]
  in
  QCheck.make ~print:Hexutil.to_hex gen

let total name f =
  QCheck.Test.make ~name ~count:150 arb_bytecode (fun code ->
      match f code with _ -> true | exception _ -> false)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      total "disassembler total" Evm.Disasm.disassemble;
      total "basic blocks total" Evm.Disasm.basic_blocks;
      total "cfg build total" (fun c -> Evm.Cfg.build c);
      total "stack check total" Evm.Stack_check.analyze;
      total "proxy detection total" (fun c -> Proxion.Proxy_detect.detect_code c);
      total "naive push4 total" Proxion.Selector_extract.naive_push4;
      total "dispatcher extraction total" Proxion.Selector_extract.dispatcher_selectors;
      total "dispatcher table total" Proxion.Selector_extract.dispatcher_table;
      total "storage profile total" Proxion.Storage_access.profile;
      total "standard classification total" (fun c ->
          Proxion.Standard_classify.classify ~code:c Proxion.Proxy_detect.Hardcoded);
      total "func collision total" (fun c ->
          Proxion.Func_collision.detect
            ~proxy:(Proxion.Func_collision.Bytecode c)
            ~logic:(Proxion.Func_collision.Bytecode c));
      total "storage collision total" (fun c ->
          Proxion.Storage_collision.detect
            ~proxy:(Proxion.Storage_collision.Bytecode c)
            ~logic:(Proxion.Storage_collision.Bytecode c));
      total "honeypot classifier total" (fun c ->
          Proxion.Honeypot.classify
            ~proxy:(Proxion.Func_collision.Bytecode c)
            ~logic:(Proxion.Func_collision.Bytecode c));
      (* The wire parsers face the same byte soup over TCP: any input
         must come back as a structured error, never an exception. *)
      total "wire request parse total" Serve.Wire.request_of_string;
      total "wire response parse total" Serve.Wire.response_of_string;
      total "raw interpretation total" (fun c ->
          let host = Evm.Host.in_memory () in
          let addr = Evm.Address.of_hex "0x00000000000000000000000000000000000fe221" in
          Evm.Host.with_code host addr c;
          Evm.Interp.execute ~step_limit:20_000 host
            (Evm.Interp.make_call
               ~caller:(Evm.Address.of_hex "0x00000000000000000000000000000000000fe222")
               ~target:addr ~input:"\x01\x02\x03" ()));
    ]
