(* Robustness fuzzing: every analysis entry point must return a value —
   never raise — on arbitrary bytecode.  Mainnet-scale scans meet byte
   soup (constructor arguments, metadata, hand-written assembly), so total
   robustness of the analyzers is a correctness property of its own. *)

let arb_bytecode =
  let open QCheck.Gen in
  let gen =
    oneof
      [
        (* Pure random bytes. *)
        string_size ~gen:char (int_bound 300);
        (* Random bytes guaranteed to contain DELEGATECALL so the
           emulation path actually runs. *)
        map (fun s -> s ^ "\xf4" ^ s) (string_size ~gen:char (int_bound 120));
        (* Valid-ish prefix grafted onto junk. *)
        map
          (fun s -> Hexutil.of_hex "0x6080604052" ^ s)
          (string_size ~gen:char (int_bound 200));
      ]
  in
  QCheck.make ~print:Hexutil.to_hex gen

let total name f =
  QCheck.Test.make ~name ~count:150 arb_bytecode (fun code ->
      match f code with _ -> true | exception _ -> false)

(* Quorum canonicality: whatever per-endpoint fault, lag and Byzantine
   plan a hostile pool draws, a transport with quorum >= 2 either
   returns the node's canonical answer or a structured error — it never
   hands the analysis a fabricated one.  (Quorum >= 2 is the contract:
   a single liar cannot reach agreement because Byzantine corruption is
   a function of the endpoint's identity, so two liars lie apart.) *)
let quorum_canonicality =
  let chain, subject =
    let chain = Chain.create () in
    let a = Chain.install_contract chain ~runtime:"\x00" () in
    for slot = 0 to 7 do
      Chain.set_storage_direct chain a (U256.of_int slot)
        (U256.of_int (100 + slot))
    done;
    Chain.advance_blocks chain 12;
    (chain, a)
  in
  let arb_pool =
    let open QCheck.Gen in
    (* Per endpoint: fault rate in {0, .1 .. .6}, lag in 0..4, and a
       coin for an always-lying Byzantine data plane. *)
    let endpoint_gen = triple (int_bound 6) (int_bound 4) bool in
    let gen = pair nat (list_size (int_range 2 4) endpoint_gen) in
    let print (seed, eps) =
      Printf.sprintf "seed %d, pool [%s]" seed
        (String.concat "; "
           (List.map
              (fun (r, l, b) ->
                Printf.sprintf "rate .%d lag %d byz %b" r l b)
              eps))
    in
    QCheck.make ~print gen
  in
  QCheck.Test.make ~name:"hostile pools never yield a non-canonical answer"
    ~count:60 arb_pool (fun (seed, eps) ->
      let n = List.length eps in
      let quorum = max 2 ((n / 2) + 1) in
      let endpoints =
        List.mapi
          (fun i (rate, lag, byz) ->
            Resilience.Transport.endpoint
              ?plan:
                (if rate > 0 then
                   Some
                     (Resilience.Fault_plan.spec ~seed:(seed + i)
                        ~fault_rate:(float_of_int rate /. 10.0)
                        ())
                 else None)
              ~lag
              ~byzantine:(if byz then 1.0 else 0.0)
              ~byz_seed:(seed lxor i)
              (Printf.sprintf "ep-%d" i))
          eps
      in
      let cfg = Resilience.Transport.config ~endpoints ~quorum () in
      let t = Resilience.Transport.create ~config:cfg ~chain () in
      List.for_all
        (fun slot ->
          let meth = "eth_getStorageAt" in
          let params =
            [ Evm.Address.to_hex subject; Printf.sprintf "0x%x" slot; "latest" ]
          in
          let canonical = Chain_rpc.call chain ~meth ~params in
          match Resilience.Transport.call t ~meth ~params with
          | Ok _ as got -> got = canonical
          | Error _ -> true)
        [ 0; 1; 2; 3 ])

(* Trace-field totality: whatever JSON rides in a request's [trace]
   field, the wire parser either adopts a well-formed context (both ids
   16 lowercase hex) or rejects the request with a structured
   invalid-request error — and in-process dispatch of the same payload
   never raises.  The daemon is built once, lazily: the property only
   exercises the parse/dispatch envelope, not the analysis. *)
let fuzz_daemon =
  lazy
    (let land_ =
       Dataset.Generate.generate
         { Dataset.Generate.quick_config with Dataset.Generate.total = 60; seed = 5 }
     in
     match Serve.Daemon.create land_ with
     | Ok d -> d
     | Error e -> failwith ("fuzz daemon: " ^ e))

let trace_field_totality =
  let module Json = Report.Json in
  let open QCheck.Gen in
  let hex_char =
    oneofl
      [ '0'; '1'; '2'; '3'; '4'; '5'; '6'; '7'; '8'; '9'; 'a'; 'b'; 'c'; 'd'; 'e'; 'f' ]
  in
  let id_gen =
    oneof
      [
        string_size ~gen:hex_char (return 16);
        string_size ~gen:hex_char (int_bound 20);
        string_size ~gen:printable (int_bound 20);
      ]
  in
  let rec value_gen n =
    if n <= 0 then
      oneof
        [
          return Json.Null;
          map (fun b -> Json.Bool b) bool;
          map (fun i -> Json.Int i) small_signed_int;
          map (fun s -> Json.String s) id_gen;
        ]
    else
      oneof
        [
          value_gen 0;
          map (fun l -> Json.List l) (list_size (int_bound 3) (value_gen (n - 1)));
          map
            (fun kvs -> Json.Obj kvs)
            (list_size (int_bound 3)
               (pair
                  (oneofl [ "trace_id"; "span_id"; "other" ])
                  (value_gen (n - 1))));
        ]
  in
  let trace_gen =
    oneof
      [
        value_gen 2;
        map2
          (fun a b ->
            Json.Obj
              [ ("trace_id", Json.String a); ("span_id", Json.String b) ])
          id_gen id_gen;
      ]
  in
  let arb = QCheck.make ~print:Json.to_string trace_gen in
  QCheck.Test.make
    ~name:"trace-field totality: parse-or-reject, dispatch never raises"
    ~count:200 arb (fun trace_json ->
      let payload =
        Json.to_string
          (Json.Obj
             [
               ("proxion_rpc", Json.Int Serve.Wire.protocol_version);
               ("id", Json.Int 1);
               ("method", Json.String "get_status");
               ("params", Json.Obj []);
               ("trace", trace_json);
             ])
      in
      let parse_ok =
        match Serve.Wire.request_of_string payload with
        | Ok r -> (
            match r.Serve.Wire.rq_trace with
            | None -> true
            | Some tc ->
                Serve.Wire.is_trace_id tc.Serve.Wire.tc_trace_id
                && Serve.Wire.is_trace_id tc.Serve.Wire.tc_span_id)
        | Error e -> e.Serve.Wire.code = Serve.Wire.err_invalid_request
        | exception _ -> false
      in
      let dispatch_ok =
        match Serve.Daemon.handle (Lazy.force fuzz_daemon) payload with
        | _meth, _response -> true
        | exception _ -> false
      in
      parse_ok && dispatch_ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      quorum_canonicality;
      trace_field_totality;
      total "disassembler total" Evm.Disasm.disassemble;
      total "basic blocks total" Evm.Disasm.basic_blocks;
      total "cfg build total" (fun c -> Evm.Cfg.build c);
      total "stack check total" Evm.Stack_check.analyze;
      total "proxy detection total" (fun c -> Proxion.Proxy_detect.detect_code c);
      total "naive push4 total" Proxion.Selector_extract.naive_push4;
      total "dispatcher extraction total" Proxion.Selector_extract.dispatcher_selectors;
      total "dispatcher table total" Proxion.Selector_extract.dispatcher_table;
      total "storage profile total" Proxion.Storage_access.profile;
      total "standard classification total" (fun c ->
          Proxion.Standard_classify.classify ~code:c Proxion.Proxy_detect.Hardcoded);
      total "func collision total" (fun c ->
          Proxion.Func_collision.detect
            ~proxy:(Proxion.Func_collision.Bytecode c)
            ~logic:(Proxion.Func_collision.Bytecode c));
      total "storage collision total" (fun c ->
          Proxion.Storage_collision.detect
            ~proxy:(Proxion.Storage_collision.Bytecode c)
            ~logic:(Proxion.Storage_collision.Bytecode c));
      total "honeypot classifier total" (fun c ->
          Proxion.Honeypot.classify
            ~proxy:(Proxion.Func_collision.Bytecode c)
            ~logic:(Proxion.Func_collision.Bytecode c));
      (* The wire parsers face the same byte soup over TCP: any input
         must come back as a structured error, never an exception. *)
      total "wire request parse total" Serve.Wire.request_of_string;
      total "wire response parse total" Serve.Wire.response_of_string;
      total "raw interpretation total" (fun c ->
          let host = Evm.Host.in_memory () in
          let addr = Evm.Address.of_hex "0x00000000000000000000000000000000000fe221" in
          Evm.Host.with_code host addr c;
          Evm.Interp.execute ~step_limit:20_000 host
            (Evm.Interp.make_call
               ~caller:(Evm.Address.of_hex "0x00000000000000000000000000000000000fe222")
               ~target:addr ~input:"\x01\x02\x03" ()));
    ]
