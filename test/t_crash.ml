(* The crash-tolerance harness: worker supervision, item watchdogs and
   the durable checkpoint journal.

   Journal level — creation, commit visibility, torn-tail truncation
   (swept over every prefix of a valid journal), single-byte corruption
   (swept over every offset), and manual + automatic compaction are each
   pinned to the recovery contract: open never raises, and always lands
   on a committed prefix.  Engine level — seeded worker kills must be
   schedule-independent (DOMAINS 1 and N byte-identical), survivable
   (the supervisor respawns and the batch completes), recoverable
   (requeue converges to the fault-free figures) and bounded (the
   attempt ceiling stops a poisoned subject).  Pipeline level — a
   journaled run killed between batches must resume to a byte-identical
   report with at most one batch re-executed.

   Knobs mirror the CI matrix: CHAOS_SEED seeds the crash plans
   (default 1) and DOMAINS the parallel worker count (default 4). *)

module Generate = Dataset.Generate
module Journal = Resilience.Journal

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)
let check_sl = Alcotest.(check (list string))

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
  | None -> 1

let domains_under_test =
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "unexpected Error: %s" e

let invalid f = try ignore (f ()) ; false with Invalid_argument _ -> true

(* ------------------------------------------------------------------ *)
(* Scratch files                                                       *)
(* ------------------------------------------------------------------ *)

let fresh_path =
  let n = ref 0 in
  fun () ->
    incr n;
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "proxion_t_crash_%d_%d.jrnl" (Unix.getpid ()) !n)

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path s =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc s)

let append_raw path s =
  Out_channel.with_open_gen
    [ Open_append; Open_binary ]
    0o644 path
    (fun oc -> Out_channel.output_string oc s)

let remove path = try Sys.remove path with Sys_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Journal: creation, commit visibility, recovery                      *)
(* ------------------------------------------------------------------ *)

let test_journal_create_and_reopen () =
  let path = fresh_path () in
  let j, r = ok (Journal.open_journal ~fsync:false path) in
  check_b "fresh journal has no state" true (r.Journal.rec_state = None);
  check_i "fresh journal has no commits" 0 r.Journal.rec_committed;
  check_i "fresh journal dropped nothing" 0 r.Journal.rec_dropped_bytes;
  ok (Journal.checkpoint j "alpha");
  ok (Journal.checkpoint j "beta");
  check_b "last_committed tracks the newest checkpoint" true
    (Journal.last_committed j = Some "beta");
  check_s "path accessor" path (Journal.path j);
  Journal.close j;
  let j2, r2 = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j2;
  check_b "reopen recovers the newest checkpoint" true
    (r2.Journal.rec_state = Some "beta");
  check_i "both commits retained" 2 r2.Journal.rec_committed;
  check_i "clean file drops nothing" 0 r2.Journal.rec_dropped_bytes;
  remove path

let test_journal_header_records_durability () =
  let path = fresh_path () in
  (* A fresh journal stamps its durability mode into the header. *)
  let j, r = ok (Journal.open_journal ~fsync:false path) in
  check_b "fresh unsynced journal reports its mode" true
    (r.Journal.rec_durable = Some false);
  ok (Journal.checkpoint j "state");
  Journal.close j;
  let data = read_file path in
  check_s "v2 magic" "PXJRNL02" (String.sub data 0 8);
  check_b "durability byte says unsynced" true (data.[8] = 'U');
  (* The recorded mode is what the writer promised, not what the reader
     asks for: reopening with fsync on still reports the file's mode. *)
  let j2, r2 = ok (Journal.open_journal ~fsync:true path) in
  check_b "recorded mode survives reopen" true
    (r2.Journal.rec_durable = Some false);
  check_b "state recovered under the v2 header" true
    (r2.Journal.rec_state = Some "state");
  Journal.close j2;
  (* Legacy v1 files (bare magic, no durability byte) still open, and
     report no recorded mode. *)
  let v1 = "PXJRNL01" ^ String.sub data 9 (String.length data - 9) in
  write_file path v1;
  let j3, r3 = ok (Journal.open_journal ~fsync:false path) in
  check_b "legacy v1 journal accepted" true (r3.Journal.rec_state = Some "state");
  check_b "legacy v1 journal has no recorded mode" true
    (r3.Journal.rec_durable = None);
  (* Compaction upgrades the header in place. *)
  ok (Journal.compact j3);
  Journal.close j3;
  let upgraded = read_file path in
  check_s "compaction upgrades legacy files to v2" "PXJRNL02"
    (String.sub upgraded 0 8);
  let j4, r4 = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j4;
  check_b "upgraded journal keeps its state" true
    (r4.Journal.rec_state = Some "state");
  check_b "upgraded journal records the compactor's mode" true
    (r4.Journal.rec_durable = Some false);
  remove path

let test_journal_uncommitted_tail_dropped () =
  let path = fresh_path () in
  let j, _ = ok (Journal.open_journal ~fsync:false path) in
  ok (Journal.checkpoint j "committed");
  ok (Journal.append j "appended-but-never-committed");
  check_b "append alone does not move the committed state" true
    (Journal.last_committed j = Some "committed");
  Journal.close j;
  append_raw path "GARBAGE-TORN-WRITE";
  let j2, r = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j2;
  check_b "recovery lands on the last commit" true
    (r.Journal.rec_state = Some "committed");
  check_i "only the committed record is retained" 1 r.Journal.rec_committed;
  check_b "the uncommitted record and garbage are both dropped" true
    (r.Journal.rec_dropped_bytes
    > String.length "appended-but-never-committed");
  (* the truncation is physical: a second recovery drops nothing *)
  let j3, r3 = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j3;
  check_i "second recovery is clean" 0 r3.Journal.rec_dropped_bytes;
  remove path

(* Sweep every prefix of a valid journal, as a kill at any byte would
   leave it: open must never raise, sub-magic prefixes are the only
   errors, and every other prefix recovers exactly the last checkpoint
   whose commit frame survived whole — and stays appendable. *)
let test_journal_torn_tail_sweep () =
  let path = fresh_path () in
  let payloads = [ "s1"; "s2-longer-payload"; "s3" ] in
  let j, _ = ok (Journal.open_journal ~fsync:false path) in
  List.iter (fun p -> ok (Journal.checkpoint j p)) payloads;
  Journal.close j;
  let data = read_file path in
  (* header is 9 bytes (8-byte magic + durability byte); each frame is a
     9-byte header + payload; a checkpoint is one record frame plus one
     empty commit frame *)
  let commit_ends =
    let off = ref 9 in
    List.map
      (fun p ->
        off := !off + 9 + String.length p + 9;
        (!off, p))
      payloads
  in
  let expected len =
    List.fold_left
      (fun acc (e, p) -> if e <= len then Some p else acc)
      None commit_ends
  in
  let scratch = fresh_path () in
  for len = 0 to String.length data do
    write_file scratch (String.sub data 0 len);
    (match Journal.open_journal ~fsync:false scratch with
    | exception e ->
        Alcotest.failf "open raised at prefix %d: %s" len (Printexc.to_string e)
    | Error _ ->
        check_b
          (Printf.sprintf "prefix %d: only sub-header prefixes error" len)
          true (len < 9)
    | Ok (j2, r) ->
        check_b
          (Printf.sprintf "prefix %d: recovers the last whole commit" len)
          true
          (r.Journal.rec_state = expected len);
        let valid_end =
          List.fold_left
            (fun acc (e, _) -> if e <= len then e else acc)
            9 commit_ends
        in
        check_i
          (Printf.sprintf "prefix %d: file truncated back to the commit" len)
          valid_end
          (Unix.stat scratch).Unix.st_size;
        (* the recovered journal accepts new work *)
        ok (Journal.checkpoint j2 "post-recovery");
        Journal.close j2;
        let j3, r3 = ok (Journal.open_journal ~fsync:false scratch) in
        Journal.close j3;
        check_b
          (Printf.sprintf "prefix %d: appendable after recovery" len)
          true
          (r3.Journal.rec_state = Some "post-recovery"))
  done;
  remove scratch;
  remove path

(* Flip one byte at every offset of a valid journal: recovery must never
   raise, never error once the magic is intact, and always land on one
   of the states a commit actually covered (the CRC walls off anything
   else). *)
let test_journal_corruption_sweep () =
  let path = fresh_path () in
  let payloads = [ "s1"; "s2-longer-payload"; "s3" ] in
  let j, _ = ok (Journal.open_journal ~fsync:false path) in
  List.iter (fun p -> ok (Journal.checkpoint j p)) payloads;
  Journal.close j;
  let data = read_file path in
  let allowed = None :: List.map (fun p -> Some p) payloads in
  let scratch = fresh_path () in
  for i = 0 to String.length data - 1 do
    let b = Bytes.of_string data in
    Bytes.set b i (Char.chr (Char.code data.[i] lxor 0x5A));
    write_file scratch (Bytes.to_string b);
    match Journal.open_journal ~fsync:false scratch with
    | exception e ->
        Alcotest.failf "open raised on flip at %d: %s" i (Printexc.to_string e)
    | Error _ ->
        check_b
          (Printf.sprintf "flip at %d: only header corruption errors" i)
          true (i < 9)
    | Ok (j2, r) ->
        Journal.close j2;
        check_b (Printf.sprintf "flip at %d: header intact opens" i) true (i >= 9);
        check_b
          (Printf.sprintf "flip at %d: lands on a committed state" i)
          true
          (List.mem r.Journal.rec_state allowed)
  done;
  remove scratch;
  remove path

let test_journal_compaction () =
  let path = fresh_path () in
  let j, _ = ok (Journal.open_journal ~fsync:false path) in
  for i = 1 to 10 do
    ok (Journal.checkpoint j (Printf.sprintf "state-%d" i))
  done;
  let big = (Unix.stat path).Unix.st_size in
  ok (Journal.compact j);
  let small = (Unix.stat path).Unix.st_size in
  check_b "compaction shrinks the file" true (small < big);
  check_b "compaction preserves the committed state" true
    (Journal.last_committed j = Some "state-10");
  (* the compacted journal is still live *)
  ok (Journal.checkpoint j "state-11");
  Journal.close j;
  let j2, r = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j2;
  check_b "compacted state survives reopen" true
    (r.Journal.rec_state = Some "state-11");
  check_i "one compacted record plus one appended" 2 r.Journal.rec_committed;
  remove path

let test_journal_auto_compaction () =
  let path = fresh_path () in
  let j, _ = ok (Journal.open_journal ~fsync:false ~compact_bytes:64 path) in
  for i = 1 to 50 do
    ok (Journal.checkpoint j (Printf.sprintf "auto-%d" i))
  done;
  let size = (Unix.stat path).Unix.st_size in
  check_b "auto-compaction bounds the file" true (size < 200);
  Journal.close j;
  let j2, r = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j2;
  check_b "latest state survives auto-compaction" true
    (r.Journal.rec_state = Some "auto-50");
  remove path

let test_journal_rejects_foreign_files () =
  let path = fresh_path () in
  write_file path "definitely not a journal";
  (match Journal.open_journal ~fsync:false path with
  | Ok _ -> Alcotest.fail "foreign file accepted"
  | Error e -> check_b "bad magic named" true (contains ~needle:"magic" e));
  remove path;
  check_b "compact_bytes must be positive" true
    (invalid (fun () -> Journal.open_journal ~compact_bytes:0 path))

(* ------------------------------------------------------------------ *)
(* Fuel watchdog                                                       *)
(* ------------------------------------------------------------------ *)

let test_watchdog_fuel_exhaustion () =
  let open Evm in
  check_b "fuel budget must be positive" true
    (invalid (fun () -> Interp.fuel 0));
  let target = Address.of_u256 (U256.of_int 0xc0a) in
  let caller = Address.of_u256 (U256.of_int 0xa11ce) in
  let host = Host.in_memory () in
  let looping =
    Asm.assemble
      [ Asm.Jumpdest "top"; Asm.Push_label "top"; Asm.Op Opcode.JUMP ]
  in
  Host.with_code host target looping;
  let f = Interp.fuel 100 in
  (match
     Interp.execute
       ~tracer:(Interp.guard_fuel f Interp.no_tracer)
       host
       (Interp.make_call ~caller ~target ~input:"" ())
   with
  | _ -> Alcotest.fail "runaway execution outlived its fuel"
  | exception Interp.Fuel_exhausted { budget } ->
      check_i "the exception names the budget" 100 budget);
  check_i "fuel fully consumed" 0 (Interp.fuel_remaining f);
  (* a budget big enough for the program never fires *)
  let halting =
    Asm.assemble [ Asm.Push_int 0; Asm.Push_int 0; Asm.Op Opcode.RETURN ]
  in
  Host.with_code host target halting;
  let f2 = Interp.fuel 10_000 in
  let r =
    Interp.execute
      ~tracer:(Interp.guard_fuel f2 Interp.no_tracer)
      host
      (Interp.make_call ~caller ~target ~input:"" ())
  in
  check_b "guarded execution succeeds under budget" true (Interp.succeeded r);
  check_b "steps were metered" true (Interp.fuel_remaining f2 < 10_000);
  check_b "metering is bounded by the program" true
    (Interp.fuel_remaining f2 > 9_000)

(* ------------------------------------------------------------------ *)
(* Engine supervision                                                  *)
(* ------------------------------------------------------------------ *)

let engine_checkpoint_string t =
  Report.Json.to_string
    (Engine.checkpoint
       ~item_to_json:(fun n -> Report.Json.Int n)
       ~res_to_json:(fun s -> Report.Json.String s)
       t)

let crashy_engine ~domains () =
  Engine.create ~batch_size:4 ~domains
    ~crash_plan:(Engine.crash_plan ~subjects:[ "3"; "7" ] ())
    ~subject:string_of_int
    ~process:(fun _ n -> Ok (string_of_int (n * 2)))
    ()

let run_crashy ~domains () =
  let t = crashy_engine ~domains () in
  Engine.submit t [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  Engine.run t;
  t

let test_engine_worker_crash_supervision () =
  let t = run_crashy ~domains:1 () in
  check_sl "survivors complete in submission order"
    [ "2"; "4"; "8"; "10"; "12"; "16"; "18"; "20" ]
    (Engine.results t);
  check_i "both kills counted" 2 (Engine.crashes t);
  let dead = Engine.skipped t in
  check_i "both kills dead-lettered" 2 (List.length dead);
  List.iter
    (fun r ->
      check_b "classified worker-crashed" true
        (r.Engine.sk_class = Engine.Worker_crashed);
      check_b "the crash is named in the message" true
        (contains ~needle:"worker crashed" r.Engine.sk_message))
    dead;
  check_b "class tallies agree" true
    (List.mem (Engine.Worker_crashed, 2) (Engine.skipped_by_class t));
  (* the plan kills each subject once: requeue converges *)
  check_i "default requeue recycles worker-crashed entries" 2
    (Engine.requeue_transients t);
  Engine.run t;
  check_i "no dead letters after the retry" 0 (List.length (Engine.skipped t));
  check_sl "every item eventually completed"
    [ "2"; "4"; "8"; "10"; "12"; "16"; "18"; "20"; "6"; "14" ]
    (Engine.results t)

let test_engine_crash_schedule_independence () =
  let seq = run_crashy ~domains:1 () in
  let par = run_crashy ~domains:domains_under_test () in
  check_sl "results identical across worker counts" (Engine.results seq)
    (Engine.results par);
  check_i "crash count identical" (Engine.crashes seq) (Engine.crashes par);
  check_sl "dead letters identical"
    (List.map (fun r -> r.Engine.sk_subject ^ ":" ^ r.Engine.sk_message)
       (Engine.skipped seq))
    (List.map (fun r -> r.Engine.sk_subject ^ ":" ^ r.Engine.sk_message)
       (Engine.skipped par));
  check_s "checkpoint byte-identical across worker counts"
    (engine_checkpoint_string seq)
    (engine_checkpoint_string par);
  ignore (Engine.requeue_transients seq);
  ignore (Engine.requeue_transients par);
  Engine.run seq;
  Engine.run par;
  check_s "still byte-identical after requeue and completion"
    (engine_checkpoint_string seq)
    (engine_checkpoint_string par)

(* A worker dying of a real runtime fatal (deep non-tail recursion blowing
   the stack) must be supervised exactly like an injected kill. *)
let rec boom n = 1 + boom (n + 1)

let test_engine_stack_overflow_supervision () =
  List.iter
    (fun domains ->
      let t =
        Engine.create ~batch_size:4 ~domains ~subject:string_of_int
          ~process:(fun _ n ->
            if n = 13 then Ok (string_of_int (boom 1)) else Ok (string_of_int n))
          ()
      in
      Engine.submit t [ 11; 12; 13; 14; 15 ];
      Engine.run t;
      let label = Printf.sprintf "domains %d" domains in
      check_sl (label ^ ": survivors complete")
        [ "11"; "12"; "14"; "15" ]
        (Engine.results t);
      check_i (label ^ ": one crash") 1 (Engine.crashes t);
      match Engine.skipped t with
      | [ r ] ->
          check_s (label ^ ": the in-flight item is the casualty") "13"
            r.Engine.sk_subject;
          check_b (label ^ ": classified worker-crashed") true
            (r.Engine.sk_class = Engine.Worker_crashed);
          check_b (label ^ ": overflow named") true
            (contains ~needle:"Stack overflow" r.Engine.sk_message)
      | l -> Alcotest.failf "%s: expected 1 dead letter, got %d" label
               (List.length l))
    [ 1; domains_under_test ]

let test_engine_attempt_ceiling () =
  check_b "ceiling must be positive" true
    (invalid (fun () ->
         Engine.create ~attempt_ceiling:0 ~subject:string_of_int
           ~process:(fun _ n -> Ok n)
           ()));
  check_b "crash rate must be a probability" true
    (invalid (fun () -> Engine.crash_plan ~rate:1.5 ()));
  let t =
    Engine.create ~batch_size:4 ~attempt_ceiling:2 ~subject:string_of_int
      ~process:(fun _ n ->
        if n = 5 then Error (Engine.transient "always flaky")
        else Ok (string_of_int n))
      ()
  in
  Engine.submit t [ 1; 2; 3; 4; 5; 6 ];
  Engine.run t;
  check_i "first failure recorded" 1 (Engine.failure_count t "5");
  check_i "under the ceiling: requeued" 1 (Engine.requeue_transients t);
  Engine.run t;
  check_i "second failure recorded" 2 (Engine.failure_count t "5");
  check_i "at the ceiling: refused" 0 (Engine.requeue_transients t);
  check_i "the poisoned subject stays dead-lettered" 1
    (List.length (Engine.skipped t));
  check_i "healthy subjects unaffected" 5 (List.length (Engine.results t));
  (* the ceiling survives a checkpoint round-trip (version 3 counters) *)
  let json =
    Engine.checkpoint
      ~item_to_json:(fun n -> Report.Json.Int n)
      ~res_to_json:(fun s -> Report.Json.String s)
      t
  in
  let restored =
    match
      Engine.restore ~attempt_ceiling:2 ~subject:string_of_int
        ~process:(fun _ n -> Ok (string_of_int n))
        ~item_of_json:(function
          | Report.Json.Int n -> Ok n
          | _ -> Error "not an int")
        ~res_of_json:(function
          | Report.Json.String s -> Ok s
          | _ -> Error "not a string")
        json
    with
    | Ok (t', _) -> t'
    | Error e -> Alcotest.failf "restore failed: %s" e
  in
  check_i "failure counters survive the round-trip" 2
    (Engine.failure_count restored "5");
  check_i "the restored ceiling still refuses" 0
    (Engine.requeue_transients restored)

(* ------------------------------------------------------------------ *)
(* Engine.of_json hardening                                            *)
(* ------------------------------------------------------------------ *)

let hardening_subject = string_of_int
let hardening_process _ n = Ok (string_of_int n)

let hardening_item_of_json = function
  | Report.Json.Int n -> Ok n
  | _ -> Error "not an int"

let hardening_res_of_json = function
  | Report.Json.String s -> Ok s
  | _ -> Error "not a string"

let hardening_of_json json =
  Engine.of_json ~subject:hardening_subject ~process:hardening_process
    ~item_of_json:hardening_item_of_json ~res_of_json:hardening_res_of_json
    json

(* A checkpoint exercising every field: pending queue, results, a
   classified dead letter, failure counters and an extra payload. *)
let hardening_checkpoint () =
  let t =
    Engine.create ~batch_size:3 ~subject:string_of_int
      ~process:(fun _ n ->
        if n = 2 then Error (Engine.transient ~stage:Engine.Logic_resolve "boom")
        else Ok (string_of_int n))
      ()
  in
  Engine.submit t [ 1; 2; 3; 4; 5; 6; 7; 8 ];
  Engine.run ~max_batches:2 t;
  Engine.checkpoint
    ~item_to_json:(fun n -> Report.Json.Int n)
    ~res_to_json:(fun s -> Report.Json.String s)
    ~extra:(Report.Json.String "opaque")
    t

let test_of_json_truncation_sweep () =
  let ck = hardening_checkpoint () in
  let text = Report.Json.to_string ck in
  check_b "the sweep has material to chew on" true (String.length text > 100);
  (* byte-level truncations: the parser rejects them, nothing raises *)
  for len = 0 to String.length text - 1 do
    match Report.Json.parse (String.sub text 0 len) with
    | Error _ -> ()
    | Ok json -> (
        match hardening_of_json json with
        | Ok _ | Error _ -> ()
        | exception e ->
            Alcotest.failf "of_json raised at truncation %d: %s" len
              (Printexc.to_string e))
  done;
  (* structural truncations: drop each top-level field, then null each
     one — every mutilation must come back as [Error], never a raise *)
  let kvs =
    match ck with
    | Report.Json.Obj kvs -> kvs
    | _ -> Alcotest.fail "checkpoint is not an object"
  in
  List.iter
    (fun (victim, _) ->
      let dropped =
        Report.Json.Obj (List.filter (fun (k, _) -> k <> victim) kvs)
      in
      let nulled =
        Report.Json.Obj
          (List.map
             (fun (k, v) ->
               if k = victim then (k, Report.Json.Null) else (k, v))
             kvs)
      in
      List.iter
        (fun (label, json) ->
          match hardening_of_json json with
          | Ok _ when victim = "extra" || victim = "failures" ->
              () (* the only optional fields *)
          | Ok _ -> Alcotest.failf "checkpoint without %S accepted (%s)" victim label
          | Error _ -> ()
          | exception e ->
              Alcotest.failf "of_json raised on %s %S: %s" label victim
                (Printexc.to_string e))
        [ ("dropped", dropped); ("nulled", nulled) ])
    kvs;
  (* the full text still round-trips *)
  (match Report.Json.parse text with
  | Error e -> Alcotest.failf "valid checkpoint failed to parse: %s" e
  | Ok json -> (
      match hardening_of_json json with
      | Ok (t, extra) ->
          check_s "extra payload survives" "opaque"
            (match extra with Report.Json.String s -> s | _ -> "?");
          check_i "pending restored" 2 (Engine.pending t);
          check_i "failure counter restored" 1 (Engine.failure_count t "2")
      | Error e -> Alcotest.failf "valid checkpoint rejected: %s" e))

let test_of_json_corruption_sweep () =
  let text = Report.Json.to_string (hardening_checkpoint ()) in
  let sweep replacement =
    for i = 0 to String.length text - 1 do
      if text.[i] <> replacement then begin
        let b = Bytes.of_string text in
        Bytes.set b i replacement;
        match Report.Json.parse (Bytes.to_string b) with
        | Error _ -> ()
        | Ok json -> (
            match hardening_of_json json with
            | Ok _ | Error _ -> ()
            | exception e ->
                Alcotest.failf "of_json raised on '%c' at %d: %s" replacement i
                  (Printexc.to_string e))
      end
    done
  in
  (* a digit swap keeps most numeric fields parseable (type-level damage);
     'X' breaks structure (parser-level damage) *)
  sweep '7';
  sweep 'X';
  (* structurally valid garbage is rejected, never thrown *)
  List.iter
    (fun json ->
      match hardening_of_json json with
      | Ok _ -> Alcotest.fail "garbage checkpoint accepted"
      | Error _ -> ()
      | exception e ->
          Alcotest.failf "of_json raised on garbage: %s" (Printexc.to_string e))
    [
      Report.Json.Null;
      Report.Json.Int 3;
      Report.Json.Obj [];
      Report.Json.Obj [ ("version", Report.Json.Int 99) ];
      Report.Json.Obj [ ("version", Report.Json.String "3") ];
      Report.Json.List [ Report.Json.Int 1 ];
    ]

let test_of_json_accepts_version_2 () =
  let v3 = hardening_checkpoint () in
  let v2 =
    match v3 with
    | Report.Json.Obj kvs ->
        Report.Json.Obj
          (List.filter_map
             (fun (k, v) ->
               if k = "failures" then None
               else if k = "version" then Some (k, Report.Json.Int 2)
               else Some (k, v))
             kvs)
    | _ -> Alcotest.fail "checkpoint is not an object"
  in
  match hardening_of_json v2 with
  | Error e -> Alcotest.failf "version 2 rejected: %s" e
  | Ok (t, _) ->
      check_i "v2 failure counters rebuilt from the dead-letter list" 1
        (Engine.failure_count t "2");
      check_i "v2 dead letter retained" 1 (List.length (Engine.skipped t));
      Engine.run t;
      check_i "v2 checkpoint resumes" 0 (Engine.pending t)

(* ------------------------------------------------------------------ *)
(* Full-pipeline crash determinism                                     *)
(* ------------------------------------------------------------------ *)

let crash_gen = { Generate.quick_config with Generate.total = 240; seed = 31 }

let report_string r =
  Report.Json.to_string (Proxion.Serialize.report_to_json r)

let skeleton = function
  | Engine.Stage_started { stage; subject; _ } ->
      Some (Printf.sprintf "start %s %s" (Engine.stage_name stage) subject)
  | Engine.Stage_finished { stage; subject; _ } ->
      Some (Printf.sprintf "finish %s %s" (Engine.stage_name stage) subject)
  | Engine.Stage_errored { stage; subject; _ } ->
      Some (Printf.sprintf "error %s %s" (Engine.stage_name stage) subject)
  | Engine.Item_skipped { subject; _ } -> Some ("skip " ^ subject)
  | _ -> None

let run_landscape ?(gen = crash_gen)
    ?(config = Proxion.Pipeline.Config.default) ?crash_plan ~domains () =
  let land_ = Generate.generate gen in
  let config =
    Proxion.Pipeline.Config.(
      config |> with_batch_size 16 |> with_domains domains)
  in
  let t =
    Proxion.Analyzer.create ~config ?crash_plan ~chain:land_.Generate.chain
      ~source:land_.Generate.source_of ()
  in
  let events = ref [] in
  Proxion.Analyzer.subscribe t (fun ev ->
      match skeleton ev with Some s -> events := s :: !events | None -> ());
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  (t, List.rev !events)

let rec null_key key = function
  | Report.Json.Obj kvs ->
      Report.Json.Obj
        (List.map
           (fun (k, v) ->
             if k = key then (k, Report.Json.Null) else (k, null_key key v))
           kvs)
  | Report.Json.List l -> Report.Json.List (List.map (null_key key) l)
  | j -> j

let checkpoint_state t =
  Report.Json.to_string (null_key "config" (Proxion.Analyzer.checkpoint t))

(* Seeded worker kills are a pure function of (seed, subject): the run's
   report, dead-letter list, checkpoint state and event skeleton must be
   identical at any worker count. *)
let test_pipeline_crash_determinism () =
  (* a fresh plan per run: the kill-once set is per-plan state *)
  let plan () = Engine.crash_plan ~seed:chaos_seed ~rate:0.08 () in
  let seq, ev_seq = run_landscape ~crash_plan:(plan ()) ~domains:1 () in
  let par, ev_par =
    run_landscape ~crash_plan:(plan ()) ~domains:domains_under_test ()
  in
  let dead = Proxion.Analyzer.skipped seq in
  check_b "the plan killed workers" true (dead <> []);
  List.iter
    (fun r ->
      check_b "every casualty is worker-crashed" true
        (r.Engine.sk_class = Engine.Worker_crashed))
    dead;
  check_b "crash counter advanced" true
    (Engine.crashes (Proxion.Analyzer.engine seq) > 0);
  check_i "crash count identical across worker counts"
    (Engine.crashes (Proxion.Analyzer.engine seq))
    (Engine.crashes (Proxion.Analyzer.engine par));
  check_s "report byte-identical across worker counts"
    (report_string (Proxion.Analyzer.report seq))
    (report_string (Proxion.Analyzer.report par));
  check_s "checkpoint state byte-identical across worker counts"
    (checkpoint_state seq) (checkpoint_state par);
  check_sl
    (Printf.sprintf "event order identical at %d domains" domains_under_test)
    ev_seq ev_par

(* Each subject is killed at most once, so requeueing the casualties must
   complete the run to the fault-free figures.  Dedup is off: a requeued
   contract completes after its clones, which would flip the dedup-hit
   flags relative to the fault-free ordering. *)
let test_pipeline_crash_requeue_to_fault_free () =
  let no_dedup = Proxion.Pipeline.Config.(default |> with_dedup false) in
  let reference, _ = run_landscape ~config:no_dedup ~domains:1 () in
  let ref_report = Proxion.Analyzer.report reference in
  let plan = Engine.crash_plan ~seed:chaos_seed ~rate:0.08 () in
  let crashed, _ =
    run_landscape ~config:no_dedup ~crash_plan:plan ~domains:1 ()
  in
  let dead = Proxion.Analyzer.skipped crashed in
  check_b "the plan produced casualties" true (dead <> []);
  check_i "every casualty requeued" (List.length dead)
    (Proxion.Analyzer.requeue_transients crashed);
  Proxion.Analyzer.run crashed;
  check_i "kill-once: no dead letters after the retry" 0
    (List.length (Proxion.Analyzer.skipped crashed));
  let final = Proxion.Analyzer.report crashed in
  check_s "stats recover to the fault-free figures"
    (Report.Json.to_string
       (Proxion.Serialize.stats_to_json ref_report.Proxion.Pipeline.stats))
    (Report.Json.to_string
       (Proxion.Serialize.stats_to_json final.Proxion.Pipeline.stats));
  let sorted_contracts r =
    List.sort compare
      (List.map
         (fun c ->
           Report.Json.to_string (Proxion.Serialize.contract_report_to_json c))
         r.Proxion.Pipeline.contracts)
  in
  check_sl "per-contract reports recover to the fault-free figures"
    (sorted_contracts ref_report) (sorted_contracts final)

(* ------------------------------------------------------------------ *)
(* Journaled kill-and-resume                                           *)
(* ------------------------------------------------------------------ *)

(* The CLI's crash-safety story, end to end: journal a checkpoint at
   every batch boundary, "die" after [k] commits with a torn write on
   the tail, recover the journal, restore, and finish — the report must
   be byte-identical to the uninterrupted run, with no committed batch
   re-executed. *)
let kill_and_resume ~domains () =
  let reference, _ = run_landscape ~domains:1 () in
  let ref_report = report_string (Proxion.Analyzer.report reference) in
  let total_batches =
    Engine.batches_done (Proxion.Analyzer.engine reference)
  in
  let label = Printf.sprintf "domains %d" domains in
  let land_ = Generate.generate crash_gen in
  let config =
    Proxion.Pipeline.Config.(
      default |> with_batch_size 16 |> with_domains domains)
  in
  let t =
    Proxion.Analyzer.create ~config ~chain:land_.Generate.chain
      ~source:land_.Generate.source_of ()
  in
  let path = fresh_path () in
  let j, _ = ok (Journal.open_journal ~fsync:false path) in
  Proxion.Analyzer.subscribe t (function
    | Engine.Batch_finished _ ->
        ok
          (Journal.checkpoint j
             (Report.Json.to_string (Proxion.Analyzer.checkpoint t)))
    | _ -> ());
  Proxion.Analyzer.submit_all t;
  let k = 3 in
  Proxion.Analyzer.run ~max_batches:k t;
  let interrupted_pending = Proxion.Analyzer.pending t in
  Journal.close j;
  (* the kill lands mid-write: garbage after the last commit *)
  append_raw path "R\xff\xff\xff\xfftorn";
  let j2, recovery = ok (Journal.open_journal ~fsync:false path) in
  Journal.close j2;
  check_b (label ^ ": the torn tail was dropped") true
    (recovery.Journal.rec_dropped_bytes > 0);
  check_i (label ^ ": every committed batch retained") k
    recovery.Journal.rec_committed;
  let state =
    match recovery.Journal.rec_state with
    | Some s -> s
    | None -> Alcotest.fail (label ^ ": no recovered state")
  in
  let ck =
    match Report.Json.parse state with
    | Ok json -> json
    | Error e -> Alcotest.failf "%s: recovered state unparseable: %s" label e
  in
  let land2 = Generate.generate crash_gen in
  let resumed =
    match
      Proxion.Analyzer.restore ~chain:land2.Generate.chain
        ~source:land2.Generate.source_of ck
    with
    | Ok t -> t
    | Error e -> Alcotest.failf "%s: restore failed: %s" label e
  in
  check_i (label ^ ": resume starts after the last committed batch") k
    (Engine.batches_done (Proxion.Analyzer.engine resumed));
  check_i (label ^ ": pending picks up exactly where the kill landed")
    interrupted_pending
    (Proxion.Analyzer.pending resumed);
  Proxion.Analyzer.run resumed;
  check_i (label ^ ": total batches match the uninterrupted run")
    total_batches
    (Engine.batches_done (Proxion.Analyzer.engine resumed));
  check_s (label ^ ": resumed report byte-identical to uninterrupted")
    ref_report
    (report_string (Proxion.Analyzer.report resumed));
  remove path

let test_journal_kill_and_resume_sequential () = kill_and_resume ~domains:1 ()

let test_journal_kill_and_resume_parallel () =
  kill_and_resume ~domains:domains_under_test ()

let suite =
  [
    Alcotest.test_case "journal creates, commits and reopens" `Quick
      test_journal_create_and_reopen;
    Alcotest.test_case "journal header records the durability mode" `Quick
      test_journal_header_records_durability;
    Alcotest.test_case "journal drops uncommitted and torn tails" `Quick
      test_journal_uncommitted_tail_dropped;
    Alcotest.test_case "journal recovers every torn prefix to a commit" `Quick
      test_journal_torn_tail_sweep;
    Alcotest.test_case "journal survives single-byte corruption anywhere"
      `Quick test_journal_corruption_sweep;
    Alcotest.test_case "journal compaction preserves state atomically" `Quick
      test_journal_compaction;
    Alcotest.test_case "journal auto-compacts past the size threshold" `Quick
      test_journal_auto_compaction;
    Alcotest.test_case "journal rejects foreign files cleanly" `Quick
      test_journal_rejects_foreign_files;
    Alcotest.test_case "fuel watchdog halts runaway emulation" `Quick
      test_watchdog_fuel_exhaustion;
    Alcotest.test_case "supervisor demotes injected kills to dead letters"
      `Quick test_engine_worker_crash_supervision;
    Alcotest.test_case "worker kills are schedule-independent" `Quick
      test_engine_crash_schedule_independence;
    Alcotest.test_case "supervisor survives a real stack overflow" `Quick
      test_engine_stack_overflow_supervision;
    Alcotest.test_case "attempt ceiling stops poisoned subjects" `Quick
      test_engine_attempt_ceiling;
    Alcotest.test_case "of_json never raises on truncated checkpoints" `Quick
      test_of_json_truncation_sweep;
    Alcotest.test_case "of_json never raises on corrupted checkpoints" `Quick
      test_of_json_corruption_sweep;
    Alcotest.test_case "of_json still accepts version-2 checkpoints" `Quick
      test_of_json_accepts_version_2;
    Alcotest.test_case "pipeline crash runs are worker-count independent"
      `Quick test_pipeline_crash_determinism;
    Alcotest.test_case "pipeline crash requeue recovers fault-free figures"
      `Quick test_pipeline_crash_requeue_to_fault_free;
    Alcotest.test_case "journaled kill-and-resume is byte-identical (seq)"
      `Quick test_journal_kill_and_resume_sequential;
    Alcotest.test_case "journaled kill-and-resume is byte-identical (par)"
      `Quick test_journal_kill_and_resume_parallel;
  ]
