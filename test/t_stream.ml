(* Streamed generation: a fully drained stream must be byte-identical to
   the materialized landscape — same labels in the same order, same
   addresses, same runtime code — for the same config at any batch size
   (the generator consumes randomness per deployment step, never per
   batch).  Eviction must free exactly the non-pinned accounts, and
   [Chain.compact] must trim the evicted addresses out of the contract
   index while leaving pinned contracts resident. *)

module Generate = Dataset.Generate

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)

let config total = { Generate.quick_config with Generate.total }

let drain ?(evict = false) config batch =
  let stream = Generate.open_stream config in
  let acc = ref [] in
  let rec go () =
    match Generate.next_batch stream ~batch with
    | None -> ()
    | Some specs ->
        acc := specs :: !acc;
        if evict then
          Array.iter
            (fun sp ->
              if not sp.Generate.sp_pinned then Generate.evict stream sp)
            specs;
        go ()
  in
  go ();
  (stream, List.concat_map Array.to_list (List.rev !acc))

(* The property, exercised across population sizes and batch sizes that
   do not divide them: stream == materialized, element by element. *)
let test_stream_matches_materialized () =
  List.iter
    (fun total ->
      let cfg = config total in
      let land_ = Generate.generate cfg in
      let mat_chain = land_.Generate.chain in
      List.iter
        (fun batch ->
          let ctx = Printf.sprintf "total=%d batch=%d" total batch in
          let stream, specs = drain cfg batch in
          check_i (ctx ^ ": label count")
            (List.length land_.Generate.labels)
            (List.length specs);
          check_i (ctx ^ ": emitted counter")
            (List.length specs)
            (Generate.stream_emitted stream);
          List.iter2
            (fun l sp ->
              check_b (ctx ^ ": label identical") true
                (l = sp.Generate.sp_label);
              check_b (ctx ^ ": code identical") true
                (String.equal
                   (Chain.code_at mat_chain l.Generate.l_address)
                   sp.Generate.sp_code))
            land_.Generate.labels specs;
          check_b (ctx ^ ": chain height identical") true
            (Chain.height mat_chain
            = Chain.height (Generate.stream_chain stream)))
        [ 7; 64; 1_000 ])
    [ 500; 2_000 ]

let test_exhausted_stream_returns_none () =
  let stream, _ = drain (config 500) 64 in
  check_b "next_batch after exhaustion is None" true
    (Generate.next_batch stream ~batch:1 = None)

let test_eviction_frees_non_pinned () =
  let stream, specs = drain ~evict:true (config 1_000) 128 in
  let chain = Generate.stream_chain stream in
  Chain.compact chain;
  let evicted, pinned =
    List.partition (fun sp -> not sp.Generate.sp_pinned) specs
  in
  check_b "population splits into evicted and pinned" true
    (List.length evicted > 0 && List.length pinned > 0);
  List.iter
    (fun sp ->
      check_b "evicted account code is freed" true
        (String.equal ""
           (Chain.code_at chain sp.Generate.sp_label.Generate.l_address)))
    evicted;
  List.iter
    (fun sp ->
      check_b "pinned contract stays resident" true
        (not
           (String.equal ""
              (Chain.code_at chain sp.Generate.sp_label.Generate.l_address))))
    pinned;
  let resident = Chain.all_contracts chain in
  let is_resident a =
    List.exists (fun m -> m.Chain.cm_address = a) resident
  in
  List.iter
    (fun sp ->
      check_b "compact removed the evicted address from the index" false
        (is_resident sp.Generate.sp_label.Generate.l_address))
    evicted;
  List.iter
    (fun sp ->
      check_b "pinned address still indexed" true
        (is_resident sp.Generate.sp_label.Generate.l_address))
    pinned;
  (* Evicting a pinned spec is a no-op; so is double eviction. *)
  let p = List.hd pinned in
  Generate.evict stream p;
  check_b "evict is a no-op on pinned specs" true
    (not
       (String.equal ""
          (Chain.code_at chain p.Generate.sp_label.Generate.l_address)));
  let e = List.hd evicted in
  Generate.evict stream e;
  Chain.compact chain;
  check_b "double eviction is harmless" false
    (is_resident e.Generate.sp_label.Generate.l_address)

let suite =
  [
    Alcotest.test_case "stream equals materialized at any batch size" `Quick
      test_stream_matches_materialized;
    Alcotest.test_case "exhausted stream returns None" `Quick
      test_exhausted_stream_returns_none;
    Alcotest.test_case "eviction frees non-pinned, compact trims index"
      `Quick test_eviction_frees_non_pinned;
  ]
