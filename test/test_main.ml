let () =
  Alcotest.run "proxion"
    [
      ("hexutil", T_hexutil.suite);
      ("u256", T_u256.suite);
      ("keccak", T_keccak.suite);
      ("rlp", T_rlp.suite);
      ("evm", T_evm.suite);
      ("evm-ops", T_evm_ops.suite);
      ("state-vectors", T_state_vectors.suite);
      ("report", T_report.suite);
      ("fuzz", T_fuzz.suite);
      ("chain", T_chain.suite);
      ("minisol", T_minisol.suite);
      ("differential", T_differential.suite);
      ("proxion", T_proxion.suite);
      ("baselines", T_baselines.suite);
      ("dataset", T_dataset.suite);
      ("stream", T_stream.suite);
      ("experiments", T_experiments.suite);
      ("engine", T_engine.suite);
      ("obs", T_obs.suite);
      ("parallel", T_parallel.suite);
      ("chaos", T_chaos.suite);
      ("crash", T_crash.suite);
      ("serve", T_serve.suite);
      ("reorg", T_reorg.suite);
    ]
