(* The reorg-and-quorum harness: the multi-endpoint chain layer and the
   rollback path of incremental analysis.

   Transport level — a unanimous N-of-N pool must return the canonical
   answer from a single logical dispatch; a Byzantine endpoint outvoted
   2-of-3 must never poison an answer and must end up quarantined behind
   its breaker; a pool of lagging endpoints must report a confirmed head
   that stalls but never regresses.  Chain level — [rewind_to] followed
   by re-mining the same deployments must be byte-identical to a chain
   that never rewound (reused addresses, reverted storage).  Daemon
   level — seeded reorgs under a 3-endpoint pool with one Byzantine
   member must leave the store byte-identical to a cold full re-run over
   the post-reorg chain at DOMAINS 1 and 4, count retracted findings,
   serve the reorg history over the wire, and recover warm from the
   journal with that history intact.

   Knobs mirror the CI matrix: CHAOS_SEED seeds the fault plans
   (default 1) and DOMAINS the parallel worker count (default 4). *)

module Generate = Dataset.Generate
module Transport = Resilience.Transport
module Json = Report.Json
module Wire = Serve.Wire
module Daemon = Serve.Daemon
module Advance = Serve.Advance

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let chaos_seed =
  match Sys.getenv_opt "CHAOS_SEED" with
  | Some s -> ( try int_of_string (String.trim s) with _ -> 1)
  | None -> 1

let domains_under_test =
  match Sys.getenv_opt "DOMAINS" with
  | Some s -> ( try max 1 (int_of_string (String.trim s)) with _ -> 4)
  | None -> 4

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)
(* Quorum cross-validation                                             *)
(* ------------------------------------------------------------------ *)

let rigged_chain () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:"\x00" () in
  for slot = 0 to 7 do
    Chain.set_storage_direct chain a (U256.of_int slot)
      (U256.of_int (100 + slot))
  done;
  (chain, a)

let storage_req a slot =
  ("eth_getStorageAt", [ Evm.Address.to_hex a; Printf.sprintf "0x%x" slot; "latest" ])

let test_quorum_unanimous () =
  (* N = K: every endpoint must agree before the answer is consumed —
     and all of them do, off ONE logical dispatch to the node. *)
  let chain, a = rigged_chain () in
  let cfg =
    Transport.config
      ~endpoints:
        [
          Transport.endpoint "archive-1";
          Transport.endpoint "archive-2";
          Transport.endpoint "archive-3";
        ]
      ~quorum:3 ()
  in
  let t = Transport.create ~config:cfg ~chain () in
  check_i "pool size" 3 (Transport.pool_size t);
  check_i "quorum" 3 (Transport.quorum t);
  let meth, params = storage_req a 0 in
  let direct = Chain_rpc.call chain ~meth ~params in
  Chain.reset_api_call_count chain;
  check_b "unanimous pool returns the canonical answer" true
    (Transport.call t ~meth ~params = direct);
  (* The §6.1 accounting identity survives quorum fan-out: one logical
     request = one canonical API call, however many endpoints vote. *)
  check_i "one canonical API call despite 3 voters" 1
    (Chain.api_call_count chain);
  let s = Transport.stats t in
  check_i "one dispatch counted" 1 s.Transport.dispatched;
  check_i "no disagreements" 0 s.Transport.disagreements;
  check_i "no quorum failures" 0 s.Transport.quorum_failures;
  List.iter
    (fun es ->
      check_i
        (Printf.sprintf "%s served the request" es.Transport.eps_name)
        1 es.Transport.eps_served)
    (Transport.endpoint_stats t)

let test_byzantine_outvoted () =
  (* A 2-of-3 quorum with one always-lying member: every answer stays
     canonical, and the liar is quarantined behind its breaker. *)
  let chain, a = rigged_chain () in
  let cfg =
    Transport.config
      ~endpoints:
        [
          Transport.endpoint "honest-1";
          Transport.endpoint "honest-2";
          Transport.endpoint ~byzantine:1.0 ~byz_seed:chaos_seed "liar";
        ]
      ~quorum:2 ()
  in
  let events = ref [] in
  let t =
    Transport.create ~config:cfg
      ~on_event:(fun e -> events := e :: !events)
      ~chain ()
  in
  for slot = 0 to 7 do
    let meth, params = storage_req a slot in
    let direct = Chain_rpc.call chain ~meth ~params in
    check_b
      (Printf.sprintf "slot %d: the liar never poisons the answer" slot)
      true
      (Transport.call t ~meth ~params = direct)
  done;
  let s = Transport.stats t in
  check_b "disagreements were recorded" true (s.Transport.disagreements >= 1);
  check_i "the honest majority never failed quorum" 0
    s.Transport.quorum_failures;
  let liar =
    List.find
      (fun es -> es.Transport.eps_name = "liar")
      (Transport.endpoint_stats t)
  in
  check_b "the liar's disagreements are attributed" true
    (liar.Transport.eps_disagreed >= 1);
  check_b "the liar is quarantined via its breaker" true
    (liar.Transport.eps_opens >= 1);
  (* Honest endpoints never disagreed and were never quarantined. *)
  List.iter
    (fun es ->
      if es.Transport.eps_name <> "liar" then begin
        check_i
          (Printf.sprintf "%s never disagreed" es.Transport.eps_name)
          0 es.Transport.eps_disagreed;
        check_i
          (Printf.sprintf "%s never opened" es.Transport.eps_name)
          0 es.Transport.eps_opens
      end)
    (Transport.endpoint_stats t);
  (* Every disagreement event names the liar, nobody else. *)
  List.iter
    (function
      | Transport.Quorum_disagreement { endpoint; _ } ->
          check_s "disagreement event names the liar" "liar" endpoint
      | _ -> ())
    !events

let test_lagging_pool_head_stalls () =
  (* All endpoints lagging: the confirmed head is the quorum-th largest
     reported height — it stalls behind the true head but never
     regresses. *)
  let chain, _ = rigged_chain () in
  Chain.advance_blocks chain 20;
  let cfg =
    Transport.config
      ~endpoints:
        [
          Transport.endpoint ~lag:5 "a";
          Transport.endpoint ~lag:5 "b";
          Transport.endpoint ~lag:5 "c";
        ]
      ~quorum:2 ()
  in
  let t = Transport.create ~config:cfg ~chain () in
  let h = Chain.height chain in
  check_i "uniformly lagging pool confirms height - lag" (h - 5)
    (Transport.head_height t);
  check_i "repeated reads are stable" (h - 5) (Transport.head_height t);
  Chain.advance_blocks chain 3;
  check_i "the confirmed head grows with the chain" (h - 2)
    (Transport.head_height t);
  check_b "the confirmed head never regresses" true
    (Transport.head_height t >= h - 2);
  (* Mixed lags: quorum 2 of [0; 4; 9] confirms the 2nd-largest view. *)
  let cfg2 =
    Transport.config
      ~endpoints:
        [
          Transport.endpoint "synced";
          Transport.endpoint ~lag:4 "mid";
          Transport.endpoint ~lag:9 "slow";
        ]
      ~quorum:2 ()
  in
  let t2 = Transport.create ~config:cfg2 ~chain () in
  check_i "mixed lags: quorum-th largest wins" (Chain.height chain - 4)
    (Transport.head_height t2)

(* ------------------------------------------------------------------ *)
(* Chain rewind                                                        *)
(* ------------------------------------------------------------------ *)

let test_rewind_remine_identity () =
  let runtime1 = "\x60\x01\x60\x00\x55" in
  let runtime2 = "\x60\x02\x60\x00\x55" in
  let observe chain =
    ( Chain.height chain,
      List.map
        (fun (m : Chain.contract_meta) ->
          ( Evm.Address.to_hex m.Chain.cm_address,
            m.Chain.cm_deploy_height,
            m.Chain.cm_code_hash,
            Chain.code_at chain m.Chain.cm_address ))
        (Chain.all_contracts chain) )
  in
  let build () =
    let chain = Chain.create () in
    let base = Chain.install_contract chain ~runtime:"\x00" () in
    Chain.set_storage_direct chain base U256.one (U256.of_int 5);
    (chain, base)
  in
  (* The straight-line chain. *)
  let chain_a, _ = build () in
  ignore (Chain.install_contract chain_a ~runtime:runtime1 ());
  ignore (Chain.install_contract chain_a ~runtime:runtime2 ());
  (* The rewound chain: doomed fork blocks, rollback, then the same
     deployments re-mined. *)
  let chain_b, base_b = build () in
  let fork_base = Chain.height chain_b in
  let doomed = Chain.install_contract chain_b ~runtime:"\x01\x02" () in
  Chain.set_storage_direct chain_b base_b U256.one (U256.of_int 9);
  let rw = Chain.rewind_to chain_b ~height:fork_base in
  check_b "the doomed deployment is orphaned" true
    (List.exists (Evm.Address.equal doomed) rw.Chain.rw_orphaned);
  check_b "the overwritten survivor is reported reverted" true
    (List.exists (Evm.Address.equal base_b) rw.Chain.rw_reverted_writes);
  check_b "orphaned code is gone" true (Chain.code_at chain_b doomed = "");
  check_b "the fork write is rolled back" true
    (U256.equal (U256.of_int 5)
       (Chain.get_storage_at chain_b base_b U256.one
          ~height:(Chain.height chain_b)));
  ignore (Chain.install_contract chain_b ~runtime:runtime1 ());
  ignore (Chain.install_contract chain_b ~runtime:runtime2 ());
  check_b "rewind + re-mine = a chain that never rewound" true
    (observe chain_a = observe chain_b);
  (* A no-op rewind (height >= head) rolls back nothing. *)
  let rw2 = Chain.rewind_to chain_b ~height:(Chain.height chain_b + 10) in
  check_b "rewinding past the head is a no-op" true
    (rw2.Chain.rw_orphaned = [] && rw2.Chain.rw_reverted_writes = [])

(* ------------------------------------------------------------------ *)
(* Scripted reorgs                                                     *)
(* ------------------------------------------------------------------ *)

let gen_config = { Generate.quick_config with Generate.total = 60; seed = 11 }

let reorg_fingerprint (s : Advance.summary) =
  let addrs l = String.concat "," (List.map Evm.Address.to_hex l) in
  let rg =
    match s.Advance.a_reorg with
    | None -> "-"
    | Some rg ->
        Printf.sprintf "d%d@%d[%s][%s]" rg.Advance.rg_depth
          rg.Advance.rg_rollback_to
          (addrs rg.Advance.rg_orphaned)
          (addrs rg.Advance.rg_reverted_writes)
  in
  Printf.sprintf "#%d h%d new[%s] w[%s] %s" s.Advance.a_index
    s.Advance.a_height
    (addrs s.Advance.a_new_contracts)
    (addrs s.Advance.a_writes)
    rg

let test_advance_reorg_determinism () =
  (* Depth 0 is the legacy stream: no rollback ever, strictly forward. *)
  let a0 =
    Advance.create ~seed:5
      ~spec:{ Advance.deployments = 3; upgrades = 2; reorg_depth = 0 }
      (Generate.generate gen_config)
  in
  let prev = ref 0 in
  for i = 1 to 5 do
    let s = Advance.apply a0 in
    check_b (Printf.sprintf "depth 0: advance %d has no reorg" i) true
      (s.Advance.a_reorg = None);
    check_b (Printf.sprintf "depth 0: advance %d moves forward" i) true
      (s.Advance.a_height > !prev);
    prev := s.Advance.a_height
  done;
  (* Depth 3: two advancers over identical landscapes emit identical
     streams — the purity warm recovery depends on — and reorgs fire. *)
  let spec3 = { Advance.deployments = 3; upgrades = 2; reorg_depth = 3 } in
  let stream () =
    let a = Advance.create ~seed:5 ~spec:spec3 (Generate.generate gen_config) in
    List.init 8 (fun _ -> Advance.apply a)
  in
  let s1 = stream () and s2 = stream () in
  Alcotest.(check (list string))
    "identical landscapes, identical reorg streams"
    (List.map reorg_fingerprint s1)
    (List.map reorg_fingerprint s2);
  check_b "seeded reorgs actually fire" true
    (List.exists (fun s -> s.Advance.a_reorg <> None) s1);
  List.iter
    (fun s ->
      match s.Advance.a_reorg with
      | None -> ()
      | Some rg ->
          check_b "rolled-back depth within the configured bound" true
            (rg.Advance.rg_depth >= 1 && rg.Advance.rg_depth <= 3))
    s1

(* ------------------------------------------------------------------ *)
(* Daemon: rollback-safe incremental analysis                          *)
(* ------------------------------------------------------------------ *)

let small_config =
  { Generate.quick_config with Generate.total = 120; seed = 33 }

let report_string r = Json.to_string (Proxion.Serialize.report_to_json r)

let analysis_config domains =
  Proxion.Pipeline.Config.(
    default |> with_batch_size 16 |> with_domains domains)

let cold_report ~domains (land_ : Generate.t) =
  let t =
    Proxion.Analyzer.create
      ~config:(analysis_config domains)
      ~chain:land_.Generate.chain ~source:land_.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  Proxion.Analyzer.report t

let reorg_spec = { Advance.deployments = 3; upgrades = 2; reorg_depth = 3 }

(* The acceptance pool: 3 endpoints, one Byzantine, 2-of-3 quorum. *)
let pool_resilience =
  Transport.config
    ~endpoints:
      [
        Transport.endpoint "archive-1";
        Transport.endpoint "archive-2";
        Transport.endpoint ~byzantine:0.25 ~byz_seed:chaos_seed "archive-3";
      ]
    ~quorum:2 ()

(* Advance seed picked so the depth-3 coin both fires and reaches back
   far enough to orphan deployments within the 6 scripted advances. *)
let daemon_config domains =
  Serve.Config.(
    default
    |> with_analysis (analysis_config domains)
    |> with_workers 2
    |> with_advance_seed 28
    |> with_advance_spec reorg_spec
    |> with_resilience pool_resilience)

let warm_report d =
  report_string
    (Serve.Store.report (Daemon.store d) ~unique_codes:(Daemon.unique_codes d))

let call_daemon d meth params =
  let payload = Wire.request_to_string ~id:1 ~meth ~params () in
  let _, response = Daemon.handle d payload in
  match Wire.response_of_string response with
  | Ok r -> r.Wire.rs_result
  | Error e -> Alcotest.failf "unparsable response: %s" e

let get_ok = function
  | Ok j -> j
  | Error e ->
      Alcotest.failf "unexpected error %d: %s" e.Wire.code e.Wire.message

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing field %s" name)
  | _ -> Alcotest.fail "expected an object"

let int_field name j =
  match field name j with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %s not an int" name

let run_reorg_identity domains =
  let land_ = Generate.generate small_config in
  let d =
    match Daemon.create ~config:(daemon_config domains) land_ with
    | Ok d -> d
    | Error e -> Alcotest.failf "daemon create failed: %s" e
  in
  let reorgs_seen = ref 0 and orphans_seen = ref 0 and retracted = ref 0 in
  for i = 1 to 6 do
    let r = Daemon.advance d in
    (match r.Daemon.adv_summary.Advance.a_reorg with
    | Some rg ->
        incr reorgs_seen;
        orphans_seen := !orphans_seen + List.length rg.Advance.rg_orphaned
    | None -> ());
    retracted := !retracted + r.Daemon.adv_retracted;
    (* The rollback-safety identity: after every advance — reorg or not —
       the patched store matches a cold full re-run over the chain as it
       now stands. *)
    check_s
      (Printf.sprintf "domains %d, advance %d: post-rollback store = cold"
         domains i)
      (report_string (cold_report ~domains:1 land_))
      (warm_report d)
  done;
  check_b "seeded reorgs fired during the watch" true (!reorgs_seen >= 1);
  check_b "at least one reorg orphaned deployments" true (!orphans_seen >= 1);
  (* The reorg history is queryable in-process and over the wire. *)
  let log = Daemon.reorgs d in
  check_i "reorg log length matches the summaries" !reorgs_seen
    (List.length log);
  let wire = get_ok (call_daemon d "reorgs" []) in
  check_i "wire method reports the same count" !reorgs_seen
    (int_field "count" wire);
  (* Retractions are surfaced in the metrics families. *)
  let metrics =
    match get_ok (call_daemon d "metrics" []) with
    | Json.String text -> text
    | _ -> Alcotest.fail "metrics not a string"
  in
  check_b "reorg counter family exported" true
    (contains ~needle:"proxion_serve_reorgs_total" metrics);
  check_b "retraction counter family exported" true
    (contains ~needle:"proxion_serve_retracted_findings_total" metrics);
  check_b "endpoint attempt families exported" true
    (contains ~needle:"proxion_chain_endpoint" metrics);
  !retracted

let test_daemon_reorg_identity_seq () = ignore (run_reorg_identity 1)

let test_daemon_reorg_identity_par () =
  ignore (run_reorg_identity domains_under_test)

let temp_journal () =
  let path = Filename.temp_file "proxion_reorg" ".journal" in
  Sys.remove path;
  path

let test_daemon_reorg_warm_recovery () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let config =
        Serve.Config.(
          daemon_config 1
          |> with_journal (Some path)
          |> with_journal_fsync false)
      in
      let land1 = Generate.generate small_config in
      let d1 =
        match Daemon.create ~config land1 with
        | Ok d -> d
        | Error e -> Alcotest.failf "daemon create failed: %s" e
      in
      for _ = 1 to 5 do
        ignore (Daemon.advance d1)
      done;
      check_b "a reorg was rolled back before the kill" true
        (Daemon.reorgs d1 <> []);
      let bytes1 = warm_report d1 in
      (* Simulate SIGKILL mid-watch: drop d1 without stopping it and
         recover from a freshly generated landscape + the journal. *)
      let land2 = Generate.generate small_config in
      match Daemon.create ~config land2 with
      | Error e -> Alcotest.failf "recovery failed: %s" e
      | Ok d2 ->
          check_b "recovered warm" true (Daemon.recovered d2);
          check_i "advances restored" 5 (Daemon.advances_applied d2);
          check_s "store identical after recovery" bytes1 (warm_report d2);
          (* The reorg history is rebuilt deterministically on replay. *)
          check_b "reorg history restored bit-for-bit" true
            (Daemon.reorgs d1 = Daemon.reorgs d2);
          (* The recovered daemon keeps rolling reorgs back correctly. *)
          ignore (Daemon.advance d2);
          check_s "post-recovery advance = cold"
            (report_string (cold_report ~domains:1 land2))
            (warm_report d2))

let suite =
  [
    Alcotest.test_case "unanimous N-of-N quorum is one canonical dispatch"
      `Quick test_quorum_unanimous;
    Alcotest.test_case "a Byzantine endpoint is outvoted and quarantined"
      `Quick test_byzantine_outvoted;
    Alcotest.test_case "a lagging pool's confirmed head stalls, never regresses"
      `Quick test_lagging_pool_head_stalls;
    Alcotest.test_case "rewind + re-mine is byte-identical to no rewind" `Quick
      test_rewind_remine_identity;
    Alcotest.test_case "scripted reorgs are deterministic; depth 0 is a no-op"
      `Quick test_advance_reorg_determinism;
    Alcotest.test_case "reorg rollback matches a cold re-run (seq)" `Quick
      test_daemon_reorg_identity_seq;
    Alcotest.test_case "reorg rollback matches a cold re-run (par)" `Quick
      test_daemon_reorg_identity_par;
    Alcotest.test_case "warm recovery replays the reorg history" `Quick
      test_daemon_reorg_warm_recovery;
  ]
