(* Analysis-as-a-service: wire framing (including torn and oversized
   frames), the versioned report schema, query dispatch, incremental
   re-analysis byte-identity against cold full runs, warm recovery from
   the journal, and concurrent-client determinism over real sockets. *)

module Generate = Dataset.Generate
module Json = Report.Json
module Wire = Serve.Wire
module Daemon = Serve.Daemon

let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let check_s = Alcotest.(check string)

let small_config =
  { Generate.quick_config with Generate.total = 240; seed = 31 }

let report_string r = Json.to_string (Proxion.Serialize.report_to_json r)

let analysis_config =
  Proxion.Pipeline.Config.(default |> with_batch_size 16)

let cold_report (land_ : Generate.t) =
  let t =
    Proxion.Analyzer.create ~config:analysis_config
      ~chain:land_.Generate.chain ~source:land_.Generate.source_of ()
  in
  Proxion.Analyzer.submit_all t;
  Proxion.Analyzer.run t;
  Proxion.Analyzer.report t

let daemon_config =
  Serve.Config.(default |> with_analysis analysis_config |> with_workers 2)

let make_daemon ?(config = daemon_config) ?registry ?log ?trace () =
  let land_ = Generate.generate small_config in
  match Daemon.create ~config ?registry ?log ?trace land_ with
  | Ok d -> (d, land_)
  | Error e -> Alcotest.failf "daemon create failed: %s" e

let contains ~needle haystack =
  let nh = String.length haystack and nn = String.length needle in
  let rec at i =
    if i + nn > nh then false
    else String.sub haystack i nn = needle || at (i + 1)
  in
  at 0

(* A JSONL log sink over a temp file; [f] gets the sink and a reader
   returning everything written so far. *)
let with_json_log f =
  let path = Filename.temp_file "proxion_serve" ".log" in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () ->
      (try close_out oc with Sys_error _ -> ());
      if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let log = Obs.Log.create ~json:true oc in
      f log (fun () ->
          flush oc;
          In_channel.with_open_text path In_channel.input_all))

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let with_socketpair f =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.close a with Unix.Unix_error _ -> ());
      try Unix.close b with Unix.Unix_error _ -> ())
    (fun () -> f a b)

let test_frame_roundtrip () =
  with_socketpair (fun a b ->
      let payloads =
        [ ""; "x"; String.make 70_000 'q'; "{\"k\":\"v\"}" ]
      in
      List.iter (fun p -> Wire.write_frame a p) payloads;
      List.iter
        (fun expect ->
          match Wire.read_frame b with
          | Ok got -> check_s "frame payload" expect got
          | Error e -> Alcotest.failf "read: %s" (Wire.read_error_to_string e))
        payloads;
      Unix.close a;
      match Wire.read_frame b with
      | Error Wire.Closed -> ()
      | _ -> Alcotest.fail "expected clean EOF")

let test_frame_torn () =
  (* EOF mid-payload. *)
  with_socketpair (fun a b ->
      let frame = Wire.encode_frame "hello world" in
      let partial = String.sub frame 0 (String.length frame - 4) in
      let n = Unix.write_substring a partial 0 (String.length partial) in
      check_i "partial write" (String.length partial) n;
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Torn { wanted = 11; got = 7 }) -> ()
      | Error e -> Alcotest.failf "wrong error: %s" (Wire.read_error_to_string e)
      | Ok _ -> Alcotest.fail "expected a torn frame");
  (* EOF mid-header. *)
  with_socketpair (fun a b ->
      ignore (Unix.write_substring a "\000\000" 0 2);
      Unix.close a;
      match Wire.read_frame b with
      | Error (Wire.Torn { wanted = 4; got = 2 }) -> ()
      | _ -> Alcotest.fail "expected a torn header")

let test_frame_oversized () =
  (match Wire.encode_frame ~max_frame:8 "123456789" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode_frame accepted an oversized payload");
  with_socketpair (fun a b ->
      (* A header declaring 16 MiB. *)
      ignore (Unix.write_substring a "\001\000\000\000" 0 4);
      match Wire.read_frame ~max_frame:Wire.default_max_frame b with
      | Error (Wire.Oversized n) -> check_i "declared size" 0x01000000 n
      | _ -> Alcotest.fail "expected oversized")

let test_request_parse () =
  let ok =
    Wire.request_to_string ~id:3 ~meth:"is_proxy"
      ~params:[ ("address", Json.String "0xabc") ]
      ()
  in
  (match Wire.request_of_string ok with
  | Ok r ->
      check_s "method" "is_proxy" r.Wire.rq_method;
      check_b "id" true (r.Wire.rq_id = Json.Int 3)
  | Error e -> Alcotest.failf "parse: %s" e.Wire.message);
  let expect_code want payload =
    match Wire.request_of_string payload with
    | Error e -> check_i "error code" want e.Wire.code
    | Ok _ -> Alcotest.fail "expected a parse failure"
  in
  expect_code Wire.err_parse "{not json";
  expect_code Wire.err_invalid_request "[1,2]";
  expect_code Wire.err_invalid_request "{\"proxion_rpc\":99,\"method\":\"x\"}";
  expect_code Wire.err_invalid_request "{\"proxion_rpc\":1}";
  expect_code Wire.err_invalid_request "{\"method\":\"x\"}"

let test_response_parse () =
  let okp = Wire.response_ok ~id:(Json.Int 7) (Json.Obj [ ("a", Json.Int 1) ]) in
  (match Wire.response_of_string okp with
  | Ok { Wire.rs_id = Json.Int 7; rs_schema_version = Some v; rs_result = Ok _ }
    ->
      check_i "schema version" Report.Schema.version v
  | _ -> Alcotest.fail "bad ok response");
  let errp =
    Wire.response_error ~id:(Json.Int 8)
      { Wire.code = Wire.err_unknown_address; message = "nope" }
  in
  match Wire.response_of_string errp with
  | Ok { Wire.rs_result = Error e; _ } ->
      check_i "code" Wire.err_unknown_address e.Wire.code
  | _ -> Alcotest.fail "bad error response"

let test_trace_field () =
  check_b "is_trace_id accepts 16 lowercase hex" true
    (Wire.is_trace_id (String.make 16 'a') && Wire.is_trace_id (String.make 16 '0'));
  List.iter
    (fun bad ->
      check_b
        (Printf.sprintf "is_trace_id rejects %S" bad)
        false (Wire.is_trace_id bad))
    [ ""; "abc"; String.make 16 'A'; String.make 17 'a'; String.make 16 'g' ];
  (* A well-formed context rides the wire and comes back intact. *)
  let tc =
    { Wire.tc_trace_id = String.make 16 'a'; tc_span_id = String.make 16 'b' }
  in
  let payload =
    Wire.request_to_string ~trace:tc ~id:9 ~meth:"get_status" ~params:[] ()
  in
  (match Wire.request_of_string payload with
  | Ok r -> check_b "trace context round-trips" true (r.Wire.rq_trace = Some tc)
  | Error e -> Alcotest.failf "traced request rejected: %s" e.Wire.message);
  (* Untraced payloads stay byte-identical to previous releases. *)
  check_b "no trace field when unset" false
    (contains ~needle:"trace"
       (Wire.request_to_string ~id:9 ~meth:"get_status" ~params:[] ()));
  (* Malformed trace values reject with the structured error. *)
  let reject what trace_json =
    let payload =
      Json.to_string
        (Json.Obj
           [
             ("proxion_rpc", Json.Int Wire.protocol_version);
             ("id", Json.Int 1);
             ("method", Json.String "get_status");
             ("params", Json.Obj []);
             ("trace", trace_json);
           ])
    in
    match Wire.request_of_string payload with
    | Error e ->
        check_i (what ^ " code") Wire.err_invalid_request e.Wire.code
    | Ok _ -> Alcotest.fail (what ^ ": malformed trace accepted")
  in
  let good = Json.String (String.make 16 'a') in
  reject "non-object trace" (Json.Int 3);
  reject "short id" (Json.Obj [ ("trace_id", Json.String "abc"); ("span_id", good) ]);
  reject "uppercase id"
    (Json.Obj [ ("trace_id", Json.String (String.make 16 'A')); ("span_id", good) ]);
  reject "missing span_id" (Json.Obj [ ("trace_id", good) ]);
  reject "non-string ids"
    (Json.Obj [ ("trace_id", Json.Int 7); ("span_id", good) ])

(* ------------------------------------------------------------------ *)
(* Versioned report schema                                             *)
(* ------------------------------------------------------------------ *)

let stats_gen =
  QCheck.Gen.(
    map
      (fun l ->
        match l with
        | [ a; b; c; d; e; f; g; h; i; j; k; m ] ->
            {
              Proxion.Analysis.s_analyzed = a;
              s_proxies = b;
              s_emulation_errors = c;
              s_pairs = d;
              s_func_colliding_pairs = e;
              s_storage_colliding_pairs = f;
              s_verified_storage_pairs = g;
              s_honeypot_pairs = h;
              s_dedup_hits = i;
              s_unique_codes = j;
              s_api_calls = k;
              s_emulation_steps = m;
            }
        | _ -> assert false)
      (list_repeat 12 (int_bound 1_000_000)))

let stats_roundtrip_prop =
  QCheck.Test.make ~count:200 ~name:"stats JSON round-trip"
    (QCheck.make stats_gen) (fun stats ->
      match Proxion.Serialize.stats_of_json (Proxion.Serialize.stats_to_json stats)
      with
      | Ok back -> back = stats
      | Error _ -> false)

let test_report_roundtrip () =
  let land_ = Generate.generate { small_config with Generate.total = 120 } in
  let report = cold_report land_ in
  let json = Proxion.Serialize.report_to_json report in
  (match Report.Schema.version_of json with
  | Some v -> check_i "stamped version" Report.Schema.version v
  | None -> Alcotest.fail "report not stamped");
  check_b "stamped kind" true
    (Report.Schema.kind_of json = Some Proxion.Serialize.report_kind);
  (* Through text and back: byte-identical re-serialization. *)
  let text = Json.to_string json in
  (match Json.parse text with
  | Error e -> Alcotest.failf "reparse: %s" e
  | Ok parsed -> (
      match Proxion.Serialize.report_of_json parsed with
      | Error e -> Alcotest.failf "of_json: %s" e
      | Ok back -> check_s "round-trip bytes" text (report_string back)));
  (* Version and kind gates. *)
  let tampered = Report.Schema.stamp ~kind:"proxion.other" json in
  check_b "kind gate" true
    (Result.is_error (Proxion.Serialize.report_of_json tampered));
  match json with
  | Json.Obj kvs ->
      let wrong =
        Json.Obj
          (List.map
             (function
               | "schema_version", _ -> ("schema_version", Json.Int 999)
               | kv -> kv)
             kvs)
      in
      check_b "version gate" true
        (Result.is_error (Proxion.Serialize.report_of_json wrong))
  | _ -> Alcotest.fail "report json not an object"

(* ------------------------------------------------------------------ *)
(* Query dispatch (in-process)                                         *)
(* ------------------------------------------------------------------ *)

let call_daemon ?deadline d meth params =
  let payload =
    Wire.request_to_string ~id:1 ~meth ~params ()
  in
  let _, response = Daemon.handle ?deadline d payload in
  match Wire.response_of_string response with
  | Ok r -> r.Wire.rs_result
  | Error e -> Alcotest.failf "unparsable response: %s" e

let get_ok = function
  | Ok j -> j
  | Error e -> Alcotest.failf "unexpected error %d: %s" e.Wire.code e.Wire.message

let field name = function
  | Json.Obj kvs -> (
      match List.assoc_opt name kvs with
      | Some v -> v
      | None -> Alcotest.failf "missing field %s" name)
  | _ -> Alcotest.fail "expected an object"

let int_field name j =
  match field name j with
  | Json.Int n -> n
  | _ -> Alcotest.failf "field %s not an int" name

let test_queries () =
  let d, land_ = make_daemon () in
  let cold = cold_report land_ in
  (* get_status *)
  let status = get_ok (call_daemon d "get_status" []) in
  check_i "contracts" cold.Proxion.Analysis.stats.Proxion.Analysis.s_analyzed
    (int_field "contracts" status);
  check_i "proxies" cold.Proxion.Analysis.stats.Proxion.Analysis.s_proxies
    (int_field "proxies" status);
  check_i "advances" 0 (int_field "advances" status);
  (* report: byte-identical to the cold run. *)
  let report_json = get_ok (call_daemon d "report" []) in
  check_s "report bytes" (report_string cold) (Json.to_string report_json);
  (* is_proxy on a ground-truth proxy and a non-proxy. *)
  let some_proxy =
    List.find (fun l -> l.Generate.l_is_proxy) land_.Generate.labels
  in
  let some_plain =
    List.find
      (fun l -> l.Generate.l_kind = Generate.K_plain)
      land_.Generate.labels
  in
  let addr_param l =
    [ ("address", Json.String (Evm.Address.to_hex l.Generate.l_address)) ]
  in
  let p = get_ok (call_daemon d "is_proxy" (addr_param some_proxy)) in
  check_b "proxy detected" true (field "is_proxy" p = Json.Bool true);
  let q = get_ok (call_daemon d "is_proxy" (addr_param some_plain)) in
  check_b "plain rejected" true (field "is_proxy" q = Json.Bool false);
  (* logic_history agrees with the stored report. *)
  let h = get_ok (call_daemon d "logic_history" (addr_param some_proxy)) in
  check_b "resolution present" true (field "resolution" h <> Json.Null);
  (* collisions returns the stored pairs. *)
  let c = get_ok (call_daemon d "collisions" (addr_param some_proxy)) in
  (match field "pairs" c with
  | Json.List _ -> ()
  | _ -> Alcotest.fail "pairs not a list");
  (* unknown address *)
  (match
     call_daemon d "is_proxy"
       [ ("address", Json.String "0x00000000000000000000000000000000000000ff") ]
   with
  | Error e -> check_i "unknown address" Wire.err_unknown_address e.Wire.code
  | Ok _ -> Alcotest.fail "expected unknown-address error");
  (* invalid params / unknown method *)
  (match call_daemon d "is_proxy" [ ("address", Json.String "zz") ] with
  | Error e -> check_i "invalid params" Wire.err_invalid_params e.Wire.code
  | Ok _ -> Alcotest.fail "expected invalid-params");
  (match call_daemon d "no_such_method" [] with
  | Error e -> check_i "unknown method" Wire.err_method_not_found e.Wire.code
  | Ok _ -> Alcotest.fail "expected method-not-found");
  (* list_findings pagination covers the corpus exactly once. *)
  let total = int_field "total" (get_ok (call_daemon d "list_findings" [])) in
  let page_size = 7 in
  let rec collect offset acc =
    let page =
      get_ok
        (call_daemon d "list_findings"
           [ ("offset", Json.Int offset); ("limit", Json.Int page_size) ])
    in
    let count = int_field "count" page in
    check_i "total stable" total (int_field "total" page);
    if count = 0 then acc
    else collect (offset + count) (acc + count)
  in
  check_i "paged total" total (collect 0 0);
  let crit =
    get_ok
      (call_daemon d "list_findings"
         [ ("severity", Json.String "critical"); ("limit", Json.Int 500) ])
  in
  check_b "filtered <= total" true (int_field "total" crit <= total);
  (* metrics: prometheus output passes the linter. *)
  (match get_ok (call_daemon d "metrics" []) with
  | Json.String text -> (
      match Obs.Metrics.lint text with
      | Ok () -> ()
      | Error msgs -> Alcotest.failf "promlint: %s" (String.concat "; " msgs))
  | _ -> Alcotest.fail "metrics not a string");
  (* flight: the ring is served over the wire; limit keeps the newest. *)
  let fl = get_ok (call_daemon d "flight" []) in
  check_i "flight ring capacity" 256 (int_field "capacity" fl);
  (match field "events" fl with
  | Json.List _ -> ()
  | _ -> Alcotest.fail "flight events not a list");
  match field "events" (get_ok (call_daemon d "flight" [ ("limit", Json.Int 1) ])) with
  | Json.List l -> check_b "flight limit trims" true (List.length l <= 1)
  | _ -> Alcotest.fail "limited flight events not a list"

(* ------------------------------------------------------------------ *)
(* Incremental re-analysis                                             *)
(* ------------------------------------------------------------------ *)

let test_incremental_identity () =
  let d, land_ = make_daemon () in
  for i = 1 to 3 do
    let r = Daemon.advance d in
    let store_size = Serve.Store.size (Daemon.store d) in
    (* It is actually incremental: the dirty set is a strict subset. *)
    check_b
      (Printf.sprintf "advance %d re-analyzes a strict subset" i)
      true
      (r.Daemon.adv_dirty > 0 && r.Daemon.adv_dirty + r.Daemon.adv_new < store_size);
    (* Byte-identity with a cold full run over the advanced chain. *)
    let cold = cold_report land_ in
    let warm =
      Serve.Store.report (Daemon.store d)
        ~unique_codes:(Daemon.unique_codes d)
    in
    check_s
      (Printf.sprintf "advance %d: incremental = cold" i)
      (report_string cold) (report_string warm)
  done

(* ------------------------------------------------------------------ *)
(* Warm recovery                                                       *)
(* ------------------------------------------------------------------ *)

let temp_journal () =
  let path = Filename.temp_file "proxion_serve" ".journal" in
  Sys.remove path;
  path

let test_warm_recovery () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let config = Serve.Config.(daemon_config |> with_journal (Some path)) in
      let d1, _ = make_daemon ~config () in
      ignore (Daemon.advance d1);
      ignore (Daemon.advance d1);
      let bytes1 =
        report_string
          (Serve.Store.report (Daemon.store d1)
             ~unique_codes:(Daemon.unique_codes d1))
      in
      (* Simulate SIGKILL: drop d1 without stopping it, re-create from a
         freshly generated landscape + the journal. *)
      let land2 = Generate.generate small_config in
      match Daemon.create ~config land2 with
      | Error e -> Alcotest.failf "recovery failed: %s" e
      | Ok d2 ->
          check_b "recovered warm" true (Daemon.recovered d2);
          check_i "advances restored" 2 (Daemon.advances_applied d2);
          let bytes2 =
            report_string
              (Serve.Store.report (Daemon.store d2)
                 ~unique_codes:(Daemon.unique_codes d2))
          in
          check_s "store identical after recovery" bytes1 bytes2;
          (* The recovered daemon keeps advancing correctly. *)
          ignore (Daemon.advance d2);
          let cold = cold_report land2 in
          check_s "post-recovery advance = cold" (report_string cold)
            (report_string
               (Serve.Store.report (Daemon.store d2)
                  ~unique_codes:(Daemon.unique_codes d2))))

(* ------------------------------------------------------------------ *)
(* Sockets: concurrent clients, oversized frames, shutdown             *)
(* ------------------------------------------------------------------ *)

let query_script (land_ : Generate.t) =
  let proxies =
    List.filter (fun l -> l.Generate.l_is_proxy) land_.Generate.labels
  in
  let pick n = List.nth proxies (n mod List.length proxies) in
  [ ("get_status", []) ]
  @ List.concat_map
      (fun n ->
        let addr =
          Json.String (Evm.Address.to_hex (pick n).Generate.l_address)
        in
        [
          ("is_proxy", [ ("address", addr) ]);
          ("logic_history", [ ("address", addr) ]);
          ("collisions", [ ("address", addr) ]);
        ])
      [ 0; 3; 7; 11 ]
  @ [ ("list_findings", [ ("limit", Json.Int 25) ]) ]

let test_concurrent_clients () =
  let d, land_ = make_daemon () in
  (match Daemon.start d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "start: %s" e);
  let port = Daemon.port d in
  let script = query_script land_ in
  let run_client () =
    match Serve.Client.connect ~port () with
    | Error e -> Error e
    | Ok c ->
        let out =
          List.map
            (fun (meth, params) ->
              match Serve.Client.call c ~meth ~params with
              | Ok j -> Json.to_string ~pretty:false j
              | Error e -> "ERR " ^ e)
            script
        in
        Serve.Client.close c;
        Ok out
  in
  let domains = List.init 4 (fun _ -> Domain.spawn run_client) in
  let outs = List.map Domain.join domains in
  let first =
    match List.hd outs with
    | Ok o -> o
    | Error e -> Alcotest.failf "client: %s" e
  in
  List.iteri
    (fun i out ->
      match out with
      | Ok o ->
          check_s
            (Printf.sprintf "client %d sees identical responses" i)
            (String.concat "\n" first) (String.concat "\n" o)
      | Error e -> Alcotest.failf "client %d: %s" i e)
    outs;
  check_b "all responses succeeded" true
    (List.for_all
       (fun line -> not (String.length line >= 3 && String.sub line 0 3 = "ERR"))
       first);
  (* Oversized frame: the server answers with err_oversized and closes. *)
  (let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
   Unix.connect fd
     (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
   ignore (Unix.write_substring fd "\x7f\x00\x00\x00" 0 4);
   (match Wire.read_frame fd with
   | Ok payload -> (
       match Wire.response_of_string payload with
       | Ok { Wire.rs_result = Error e; _ } ->
           check_i "oversized code" Wire.err_oversized e.Wire.code
       | _ -> Alcotest.fail "expected an error response")
   | Error e ->
       Alcotest.failf "no oversized reply: %s" (Wire.read_error_to_string e));
   (match Wire.read_frame fd with
   | Error Wire.Closed -> ()
   | _ -> Alcotest.fail "connection not closed after oversized frame");
   Unix.close fd);
  (* Shutdown over the wire stops the daemon. *)
  (match Serve.Client.connect ~port () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
      (match Serve.Client.call c ~meth:"shutdown" ~params:[] with
      | Ok j -> check_b "stopping" true (field "stopping" j = Json.Bool true)
      | Error e -> Alcotest.failf "shutdown: %s" e);
      Serve.Client.close c);
  Daemon.wait d

(* ------------------------------------------------------------------ *)
(* Overload robustness: shedding, deadlines, drain, hostile input       *)
(* ------------------------------------------------------------------ *)

let connect_raw port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
  fd

let start_daemon d =
  match Daemon.start d with
  | Ok () -> ()
  | Error e -> Alcotest.failf "start: %s" e

let expect_wire_error ~what want fd =
  match Wire.read_frame fd with
  | Ok payload -> (
      match Wire.response_of_string payload with
      | Ok { Wire.rs_result = Error e; _ } ->
          check_i (what ^ " code") want e.Wire.code
      | _ -> Alcotest.failf "expected a structured %s error" what)
  | Error e ->
      Alcotest.failf "no %s reply: %s" what (Wire.read_error_to_string e)

(* A client writing a request and vanishing before the reply lands must
   surface as EPIPE on the worker, not kill the whole process. *)
let test_sigpipe_mid_reply () =
  let d, _ = make_daemon () in
  start_daemon d;
  let port = Daemon.port d in
  for _ = 1 to 5 do
    let fd = connect_raw port in
    Wire.write_frame fd (Wire.request_to_string ~id:1 ~meth:"report" ~params:[] ());
    Unix.close fd
  done;
  (* The daemon is still alive and answers a well-formed request. *)
  (match Serve.Client.connect ~timeout_ms:5_000 ~port () with
  | Error e -> Alcotest.failf "connect after EPIPE: %s" e
  | Ok c ->
      (match Serve.Client.call c ~meth:"get_status" ~params:[] with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "call after EPIPE: %s" e);
      Serve.Client.close c);
  Daemon.stop d

let test_admission_shed () =
  with_json_log @@ fun log read_log ->
  let config =
    Serve.Config.(
      daemon_config |> with_workers 1 |> with_max_conns 1 |> with_queue_limit 1)
  in
  let d, _ = make_daemon ~config ~log () in
  start_daemon d;
  let port = Daemon.port d in
  (* c1 occupies the only slot; a completed call proves it was admitted
     and claimed by the single worker. *)
  let c1 =
    match Serve.Client.connect ~timeout_ms:5_000 ~port () with
    | Ok c -> c
    | Error e -> Alcotest.failf "c1 connect: %s" e
  in
  (match Serve.Client.call c1 ~meth:"get_status" ~params:[] with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "c1 call: %s" e);
  (* c2 is shed at accept with the structured overloaded error, counted,
     and closed — never silently dropped, never queued unbounded. *)
  let fd = connect_raw port in
  expect_wire_error ~what:"shed" Wire.err_overloaded fd;
  (match Wire.read_frame fd with
  | Error Wire.Closed -> ()
  | _ -> Alcotest.fail "shed connection not closed");
  Unix.close fd;
  let reg = Daemon.registry d in
  (match Obs.Metrics.find reg "proxion_serve_shed_connections_total" with
  | None -> Alcotest.fail "shed counter family missing"
  | Some fam ->
      check_b "shed counted" true
        (match Obs.Metrics.value ~labels:[ ("reason", "max_conns") ] reg fam with
        | Some v -> v >= 1.0
        | None -> false));
  (* The shed is never invisible: beyond the counter, the flight
     recorder holds a [shed] event and the access log a structured
     line, all three naming the same reason and the 1002 code. *)
  (match Obs.Flight.to_json (Daemon.flight d) with
  | Json.Obj kvs -> (
      match List.assoc_opt "events" kvs with
      | Some (Json.List evs) ->
          check_b "flight recorded the shed with its reason" true
            (List.exists
               (fun ev ->
                 match ev with
                 | Json.Obj e ->
                     List.assoc_opt "kind" e = Some (Json.String "shed")
                     && (match List.assoc_opt "fields" e with
                        | Some (Json.Obj fs) ->
                            List.assoc_opt "reason" fs
                            = Some (Json.String "max_conns")
                        | _ -> false)
                 | _ -> false)
               evs)
      | _ -> Alcotest.fail "flight events missing")
  | _ -> Alcotest.fail "flight json not an object");
  let log_text = read_log () in
  check_b "shed hit the access log" true
    (contains ~needle:"connection shed" log_text);
  check_b "shed log names the reason" true
    (contains ~needle:"max_conns" log_text);
  check_b "shed log carries the 1002 code" true
    (contains ~needle:"1002" log_text);
  (* Releasing c1 frees the slot (the worker notices the EOF at its next
     poll wakeup) and a fresh client gets in. *)
  Serve.Client.close c1;
  let rec retry n =
    if n = 0 then Alcotest.fail "slot never freed after client close"
    else
      let again () =
        Unix.sleepf 0.05;
        retry (n - 1)
      in
      match Serve.Client.connect ~timeout_ms:5_000 ~port () with
      | Error _ -> again ()
      | Ok c -> (
          match Serve.Client.call c ~meth:"get_status" ~params:[] with
          | Ok _ -> Serve.Client.close c
          | Error _ ->
              Serve.Client.close c;
              again ())
  in
  retry 100;
  Daemon.stop d

(* Slowloris: a connection that trickles (or stalls) its frame is cut at
   the idle deadline instead of holding a worker hostage forever. *)
let test_idle_timeout () =
  let config =
    Serve.Config.(daemon_config |> with_workers 1 |> with_idle_timeout_ms 300)
  in
  let d, _ = make_daemon ~config () in
  start_daemon d;
  let port = Daemon.port d in
  let fd = connect_raw port in
  Wire.write_frame fd
    (Wire.request_to_string ~id:1 ~meth:"get_status" ~params:[] ());
  (match Wire.read_frame fd with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "healthy call: %s" (Wire.read_error_to_string e));
  (* Two header bytes, then silence. *)
  let t0 = Unix.gettimeofday () in
  ignore (Unix.write_substring fd "\000\000" 0 2);
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
  (match Wire.read_frame fd with
  | Error (Wire.Closed | Wire.Torn _) -> ()
  | Error e ->
      Alcotest.failf "expected the server to cut the connection, got %s"
        (Wire.read_error_to_string e)
  | Ok _ -> Alcotest.fail "server answered a half frame");
  let waited = Unix.gettimeofday () -. t0 in
  check_b "cut within bounds (idle sweep, not the 5s client timeout)" true
    (waited < 4.0);
  Unix.close fd;
  Daemon.stop d

(* Deadline decisions read the injected clock, so a virtual clock that
   advances a fixed step per read makes them a pure function of the
   request — same daemon, same request, same verdict. *)
let test_deadline_virtual_clock () =
  let run_scenario () =
    let clock = Obs.Clock.virtual_ ~start:0.0 ~auto_step:1.0 () in
    let config = Serve.Config.(daemon_config |> with_clock clock) in
    let d, _ = make_daemon ~config () in
    (* Already-expired deadline: refused at entry, nothing applied. *)
    let expired = Obs.Clock.now clock in
    (match call_daemon ~deadline:expired d "get_status" [] with
    | Error e ->
        check_i "entry deadline code" Wire.err_deadline_exceeded e.Wire.code
    | Ok _ -> Alcotest.fail "expected deadline_exceeded at entry");
    check_i "nothing applied" 0 (Daemon.advances_applied d);
    (* Multi-step advance: the budget expires between steps; committed
       steps stay committed and the error says how far it got. *)
    let deadline = Obs.Clock.now clock +. 2.5 in
    (match call_daemon ~deadline d "advance" [ ("count", Json.Int 5) ] with
    | Error e ->
        check_i "mid-advance deadline code" Wire.err_deadline_exceeded
          e.Wire.code
    | Ok _ -> Alcotest.fail "expected deadline_exceeded mid-advance");
    let applied = Daemon.advances_applied d in
    check_b "partial progress committed" true (applied > 0 && applied < 5);
    applied
  in
  let first = run_scenario () in
  (* Determinism: an identical daemon under an identical virtual clock
     makes the identical shedding decision. *)
  check_i "identical deadline decision on replay" first (run_scenario ())

let test_drain_lifecycle () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let config = Serve.Config.(daemon_config |> with_journal (Some path)) in
      let d, _ = make_daemon ~config () in
      ignore (Daemon.advance d);
      start_daemon d;
      let port = Daemon.port d in
      let pre =
        report_string
          (Serve.Store.report (Daemon.store d)
             ~unique_codes:(Daemon.unique_codes d))
      in
      (* Health surface before the drain. *)
      let health = get_ok (call_daemon d "health" []) in
      check_b "healthy" true (field "status" health = Json.String "ok");
      check_b "not draining" true (field "draining" health = Json.Bool false);
      let ready = get_ok (call_daemon d "ready" []) in
      check_b "ready" true (field "ready" ready = Json.Bool true);
      Daemon.request_drain d;
      check_b "draining flag" true (Daemon.is_draining d);
      (* Readiness flipped first and the gauges agree. *)
      let reg = Daemon.registry d in
      let gauge name =
        match Obs.Metrics.find reg name with
        | Some fam -> Obs.Metrics.value reg fam
        | None -> Alcotest.failf "gauge %s missing" name
      in
      check_b "ready gauge dropped" true
        (gauge "proxion_serve_ready" = Some 0.0);
      check_b "draining gauge raised" true
        (gauge "proxion_serve_draining" = Some 1.0);
      (* While draining: health answers, readiness says no, queries are
         refused with the structured overloaded error... *)
      let health = get_ok (call_daemon d "health" []) in
      check_b "still alive" true (field "draining" health = Json.Bool true);
      let ready = get_ok (call_daemon d "ready" []) in
      check_b "no longer ready" true (field "ready" ready = Json.Bool false);
      (match call_daemon d "get_status" [] with
      | Error e -> check_i "drain gate" Wire.err_overloaded e.Wire.code
      | Ok _ -> Alcotest.fail "expected queries to be refused while draining");
      (* ...and the listener sheds fresh connections the same way. *)
      let fd = connect_raw port in
      expect_wire_error ~what:"drain shed" Wire.err_overloaded fd;
      Unix.close fd;
      (* wait completes the drain: domains joined, journal flushed. *)
      Daemon.wait d;
      (* Warm restart over the intact journal serves byte-identical
         answers — the drain lost nothing. *)
      let land2 = Generate.generate small_config in
      match Daemon.create ~config land2 with
      | Error e -> Alcotest.failf "warm restart after drain: %s" e
      | Ok d2 ->
          check_b "recovered warm" true (Daemon.recovered d2);
          let post =
            report_string
              (Serve.Store.report (Daemon.store d2)
                 ~unique_codes:(Daemon.unique_codes d2))
          in
          check_s "byte-identical after drain + warm restart" pre post)

(* Seeded garbage frames: whatever one connection throws at the daemon,
   the next well-formed request on a fresh connection is answered. *)
let test_frame_fuzzer () =
  let d, _ = make_daemon () in
  start_daemon d;
  let port = Daemon.port d in
  let prng = Dataset.Prng.create 0xF0CC1A in
  let raw_header n =
    let b = Bytes.create 4 in
    Bytes.set_uint8 b 0 ((n lsr 24) land 0xff);
    Bytes.set_uint8 b 1 ((n lsr 16) land 0xff);
    Bytes.set_uint8 b 2 ((n lsr 8) land 0xff);
    Bytes.set_uint8 b 3 (n land 0xff);
    Bytes.to_string b
  in
  let garbage () =
    match Dataset.Prng.int prng 4 with
    | 0 ->
        (* Raw byte soup, length prefix included. *)
        String.init
          (1 + Dataset.Prng.int prng 64)
          (fun _ -> Char.chr (Dataset.Prng.int prng 256))
    | 1 ->
        (* Header that lies: declares more than it sends. *)
        raw_header (32 + Dataset.Prng.int prng 64) ^ "{\"proxion_rpc\":1,\"met"
    | 2 ->
        (* Oversized declaration. *)
        raw_header (Wire.default_max_frame + 1 + Dataset.Prng.int prng 100_000)
    | _ ->
        (* Well-framed non-JSON. *)
        Wire.encode_frame "}{ not json !!"
  in
  for round = 1 to 25 do
    let fd = connect_raw port in
    let s = garbage () in
    (try ignore (Unix.write_substring fd s 0 (String.length s))
     with Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ());
    match Serve.Client.connect ~timeout_ms:5_000 ~port () with
    | Error e -> Alcotest.failf "round %d: connect: %s" round e
    | Ok c ->
        (match Serve.Client.call c ~meth:"get_status" ~params:[] with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "round %d: call: %s" round e);
        Serve.Client.close c
  done;
  Daemon.stop d

(* The client-side receive timeout: a server that accepts the handshake
   but never answers cannot hang the caller. *)
let test_client_timeout () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.bind fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", 0));
      Unix.listen fd 4;
      let port =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, p) -> p
        | _ -> Alcotest.fail "no port"
      in
      (* The kernel completes the handshake via the backlog; nothing
         ever accepts or replies. *)
      match Serve.Client.connect ~timeout_ms:300 ~port () with
      | Error e -> Alcotest.failf "connect: %s" e
      | Ok c ->
          let t0 = Unix.gettimeofday () in
          (match Serve.Client.call c ~meth:"get_status" ~params:[] with
          | Error e ->
              check_b "receive timeout surfaced" true
                (e = "receive timed out")
          | Ok _ -> Alcotest.fail "got an answer from a mute server");
          let waited = Unix.gettimeofday () -. t0 in
          check_b "timed out promptly" true (waited < 3.0);
          Serve.Client.close c)

(* ------------------------------------------------------------------ *)
(* Request-scoped tracing, the flight recorder, the ops console         *)
(* ------------------------------------------------------------------ *)

(* The acceptance scenario: one traced [query] against a 3-endpoint
   quorum-2 daemon.  The daemon adopts the client's context; its
   request span, the quorum-vote endpoint attempts and the EVM frames
   all carry the client's trace_id; the max-latency exemplar names it;
   the access log and the slow-request log (with the span tree) name
   it; and the store is left byte-identical — live queries are
   side-effect-free. *)
let test_traced_query () =
  with_json_log @@ fun log read_log ->
  let trace = Obs.Trace.create () in
  let endpoints =
    List.init 3 (fun i ->
        Resilience.Transport.endpoint (Printf.sprintf "archive-%d" i))
  in
  let resilience = Resilience.Transport.config ~endpoints ~quorum:2 () in
  (* An auto-stepping virtual clock makes the query's elapsed time
     deterministic (every clock read advances 2ms), so the slow-request
     path fires reliably; the deadlines are widened so the stepping
     cannot expire them. *)
  let config =
    Serve.Config.(
      daemon_config |> with_resilience resilience |> with_slow_ms (Some 1)
      |> with_clock (Obs.Clock.virtual_ ~start:1000.0 ~auto_step:0.002 ())
      |> with_request_deadline_ms 600_000
      |> with_idle_timeout_ms 600_000)
  in
  let d, land_ = make_daemon ~config ~log ~trace () in
  start_daemon d;
  let port = Daemon.port d in
  let some_proxy =
    List.find (fun l -> l.Generate.l_is_proxy) land_.Generate.labels
  in
  let addr_hex = Evm.Address.to_hex some_proxy.Generate.l_address in
  let before =
    report_string
      (Serve.Store.report (Daemon.store d) ~unique_codes:(Daemon.unique_codes d))
  in
  (* The client draws its own root context and carries it on the wire. *)
  let cctx = Obs.Trace.next_ctx (Obs.Trace.gen ~seed:99) in
  let tc =
    {
      Wire.tc_trace_id = Obs.Trace.id_to_hex cctx.Obs.Trace.trace_id;
      tc_span_id = Obs.Trace.id_to_hex cctx.Obs.Trace.span_id;
    }
  in
  (match Serve.Client.connect ~timeout_ms:30_000 ~port () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
      (match
         Serve.Client.call ~trace:tc c ~meth:"query"
           ~params:[ ("address", Json.String addr_hex) ]
       with
      | Ok j ->
          check_b "live re-analysis ran" true (field "live" j = Json.Bool true);
          check_b "response echoes the address" true
            (field "address" j = Json.String addr_hex);
          check_b "response names the client's trace id" true
            (field "trace_id" j = Json.String tc.Wire.tc_trace_id)
      | Error e -> Alcotest.failf "query: %s" e);
      Serve.Client.close c);
  Daemon.stop d;
  let after =
    report_string
      (Serve.Store.report (Daemon.store d) ~unique_codes:(Daemon.unique_codes d))
  in
  check_s "store byte-identical after the live query" before after;
  (* One joined trace: request span, endpoint votes, EVM frames. *)
  let str key ev =
    match ev with
    | Json.Obj kvs -> (
        match List.assoc_opt key kvs with
        | Some (Json.String s) -> Some s
        | _ -> None)
    | _ -> None
  in
  let arg key ev =
    match ev with
    | Json.Obj kvs -> (
        match List.assoc_opt "args" kvs with
        | Some (Json.Obj args) -> (
            match List.assoc_opt key args with
            | Some (Json.String s) -> Some s
            | _ -> None)
        | _ -> None)
    | _ -> None
  in
  (match Obs.Trace.span_tree_json trace ~trace_id:tc.Wire.tc_trace_id with
  | Json.List (_ :: _ as evs) ->
      let cats = List.filter_map (str "cat") evs in
      let requests =
        List.filter (fun ev -> str "cat" ev = Some "request") evs
      in
      check_i "exactly one request span" 1 (List.length requests);
      let req = List.hd requests in
      check_b "request span is the query" true (str "name" req = Some "query");
      check_b "request span's parent is the client's span" true
        (arg "parent_span_id" req = Some tc.Wire.tc_span_id);
      check_b "endpoint attempt spans joined the trace" true
        (List.mem "rpc" cats);
      check_b "EVM frame spans joined the trace" true (List.mem "evm" cats);
      let endpoints_seen =
        List.sort_uniq compare (List.filter_map (arg "endpoint") evs)
      in
      check_b "quorum votes span distinct endpoints" true
        (List.length endpoints_seen >= 2)
  | _ -> Alcotest.fail "no spans recorded for the request trace");
  (* The max-latency exemplar on the request histogram names the id. *)
  let registry = Daemon.registry d in
  (match Obs.Metrics.find registry "proxion_serve_request_seconds" with
  | None -> Alcotest.fail "request histogram missing"
  | Some fam -> (
      match
        Obs.Metrics.exemplar ~labels:[ ("method", "query") ] registry fam
      with
      | Some (id, v) ->
          check_s "exemplar names the trace id" tc.Wire.tc_trace_id id;
          check_b "exemplar value is the observed latency" true (v > 0.0)
      | None -> Alcotest.fail "no exemplar on the query series"));
  (* The same id joins the daemon's logs: the access line, and the
     slow-request line carrying the full span tree. *)
  let log_text = read_log () in
  check_b "access log names the trace id" true
    (contains ~needle:tc.Wire.tc_trace_id log_text);
  check_b "slow request logged" true (contains ~needle:"slow request" log_text);
  check_b "slow log carries the span tree" true
    (contains ~needle:"\"spans\"" log_text)

(* The flight ring dumped at drain is a pure function of the recording
   order and the (virtual) clock: two identical daemons produce
   byte-identical dumps. *)
let test_flight_dump_determinism () =
  let run () =
    let path = Filename.temp_file "proxion_flight" ".json" in
    let clock = Obs.Clock.virtual_ ~start:100.0 ~auto_step:0.25 () in
    let config =
      Serve.Config.(
        daemon_config |> with_clock clock |> with_flight_capacity 32
        |> with_flight_dump (Some path))
    in
    let d, _ = make_daemon ~config () in
    ignore (Daemon.advance d);
    ignore (Daemon.advance d);
    Daemon.request_drain d;
    let text = In_channel.with_open_text path In_channel.input_all in
    Sys.remove path;
    text
  in
  let a = run () in
  check_b "dump written" true (String.length a > 0);
  (match Json.parse a with
  | Error e -> Alcotest.failf "flight dump does not parse: %s" e
  | Ok parsed ->
      check_i "dump capacity" 32 (int_field "capacity" parsed);
      let kinds =
        match field "events" parsed with
        | Json.List evs ->
            List.filter_map
              (fun ev ->
                match ev with
                | Json.Obj kvs -> (
                    match List.assoc_opt "kind" kvs with
                    | Some (Json.String k) -> Some k
                    | _ -> None)
                | _ -> None)
              evs
        | _ -> Alcotest.fail "dump events missing"
      in
      check_b "advances recorded" true (List.mem "advance" kinds);
      check_b "the drain recorded" true (List.mem "drain" kinds));
  check_s "drain dump byte-identical across identical runs" a (run ())

(* The ops console: Prometheus-style quantile math, snapshot digestion
   and the rendered dashboard. *)
let test_ops_console () =
  let checkf msg e a = Alcotest.(check (float 1e-9)) msg e a in
  let h buckets count =
    {
      Serve.Ops.h_labels = [];
      h_buckets = buckets;
      h_sum = 0.0;
      h_count = count;
      h_exemplar = None;
    }
  in
  let hist =
    h [ (1.0, 50.0); (2.0, 90.0); (4.0, 100.0); (infinity, 100.0) ] 100.0
  in
  checkf "p50 lands on the first bound" 1.0 (Serve.Ops.quantile hist 0.50);
  checkf "p90 lands on the second bound" 2.0 (Serve.Ops.quantile hist 0.90);
  checkf "p99 interpolates inside the third" 3.8 (Serve.Ops.quantile hist 0.99);
  checkf "overflow clamps to the last finite bound" 1.0
    (Serve.Ops.quantile (h [ (1.0, 2.0); (infinity, 5.0) ] 5.0) 0.99);
  checkf "empty histogram reads zero" 0.0 (Serve.Ops.quantile (h [] 0.0) 0.5);
  (* A live daemon's snapshot digests into the dashboard. *)
  let d, _ = make_daemon () in
  start_daemon d;
  let port = Daemon.port d in
  (match Serve.Client.connect ~timeout_ms:5_000 ~port () with
  | Error e -> Alcotest.failf "connect: %s" e
  | Ok c ->
      for i = 1 to 3 do
        match Serve.Client.call c ~meth:"get_status" ~params:[] with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "call %d: %s" i e
      done;
      Serve.Client.close c);
  let mjson =
    get_ok (call_daemon d "metrics" [ ("format", Json.String "json") ])
  in
  let health = get_ok (call_daemon d "health" []) in
  let fl = get_ok (call_daemon d "flight" []) in
  Daemon.stop d;
  let view =
    match Serve.Ops.of_metrics_json mjson with
    | Ok v -> v
    | Error e -> Alcotest.failf "ops snapshot parse: %s" e
  in
  check_b "requests counted" true
    (Serve.Ops.scalar_total view "proxion_serve_requests_total" >= 2.0);
  let view = Serve.Ops.with_health view health in
  check_b "health folds the draining flag" false view.Serve.Ops.v_draining;
  let view = Serve.Ops.with_flight ~tail:4 view fl in
  check_b "flight kinds counted" true (view.Serve.Ops.v_flight <> []);
  check_b "flight tail bounded" true
    (List.length view.Serve.Ops.v_flight_tail <= 4);
  checkf "no rate without a previous poll" 0.0
    (Serve.Ops.rate ~prev:None ~dt:1.0 view "proxion_serve_requests_total");
  checkf "flat between identical polls" 0.0
    (Serve.Ops.rate ~prev:(Some view) ~dt:1.0 view
       "proxion_serve_requests_total");
  let text = Serve.Ops.render ~prev:view ~dt:1.0 view in
  check_b "dashboard reports serving" true (contains ~needle:"serving" text);
  check_b "per-method table present" true (contains ~needle:"get_status" text);
  check_b "flight ring rendered" true (contains ~needle:"flight ring" text)

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
    Alcotest.test_case "torn frames" `Quick test_frame_torn;
    Alcotest.test_case "oversized frames" `Quick test_frame_oversized;
    Alcotest.test_case "request parsing" `Quick test_request_parse;
    Alcotest.test_case "response parsing" `Quick test_response_parse;
    Alcotest.test_case "trace context on the wire" `Quick test_trace_field;
    QCheck_alcotest.to_alcotest stats_roundtrip_prop;
    Alcotest.test_case "report schema round-trip" `Quick test_report_roundtrip;
    Alcotest.test_case "query dispatch" `Quick test_queries;
    Alcotest.test_case "incremental = cold re-run" `Quick
      test_incremental_identity;
    Alcotest.test_case "warm recovery from journal" `Quick test_warm_recovery;
    Alcotest.test_case "concurrent clients over TCP" `Quick
      test_concurrent_clients;
    Alcotest.test_case "EPIPE mid-reply does not kill the daemon" `Quick
      test_sigpipe_mid_reply;
    Alcotest.test_case "admission control sheds past max_conns" `Quick
      test_admission_shed;
    Alcotest.test_case "idle deadline cuts a slowloris writer" `Quick
      test_idle_timeout;
    Alcotest.test_case "request deadlines under a virtual clock" `Quick
      test_deadline_virtual_clock;
    Alcotest.test_case "graceful drain with warm-restart identity" `Quick
      test_drain_lifecycle;
    Alcotest.test_case "frame fuzzer leaves the daemon serving" `Quick
      test_frame_fuzzer;
    Alcotest.test_case "client receive timeout" `Quick test_client_timeout;
    Alcotest.test_case "traced query joins client and daemon spans" `Quick
      test_traced_query;
    Alcotest.test_case "flight dump determinism under a virtual clock" `Quick
      test_flight_dump_determinism;
    Alcotest.test_case "ops console digest and quantiles" `Quick
      test_ops_console;
  ]
