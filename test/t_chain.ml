let check_b = Alcotest.(check bool)
let check_i = Alcotest.(check int)
let u = Alcotest.testable U256.pp U256.equal
let check_u = Alcotest.check u
let alice = Evm.Address.of_hex "0x00000000000000000000000000000000000a11ce"
let slot0 = U256.zero

let stop_runtime = "\x00"

let test_install_and_meta () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:stop_runtime () in
  let b = Chain.install_contract chain ~runtime:stop_runtime () in
  check_b "distinct addresses" false (Evm.Address.equal a b);
  check_i "two contracts" 2 (List.length (Chain.all_contracts chain));
  (match Chain.contract_meta chain a with
  | None -> Alcotest.fail "meta missing"
  | Some m ->
      check_i "deploy height" 0 m.Chain.cm_deploy_height;
      check_b "code hash" true (m.Chain.cm_code_hash = Keccak.digest stop_runtime));
  check_b "code readable" true (Chain.code_at chain a = stop_runtime)

let test_storage_history () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:stop_runtime () in
  (* Heights: install mined block 0; writes at heights 1, 2, 3. *)
  Chain.set_storage_direct chain a slot0 (U256.of_int 10);
  Chain.advance_blocks chain 5;
  Chain.set_storage_direct chain a slot0 (U256.of_int 20);
  Chain.advance_blocks chain 5;
  Chain.set_storage_direct chain a slot0 (U256.of_int 30);
  let h = Chain.height chain in
  check_u "latest" (U256.of_int 30) (Chain.get_storage_at chain a slot0 ~height:h);
  check_u "genesis" U256.zero (Chain.get_storage_at chain a slot0 ~height:0);
  check_u "mid value" (U256.of_int 10) (Chain.get_storage_at chain a slot0 ~height:2);
  check_u "second value" (U256.of_int 20) (Chain.get_storage_at chain a slot0 ~height:8);
  check_i "three changes" 3 (List.length (Chain.storage_change_heights chain a slot0))

let test_api_counter () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:stop_runtime () in
  Chain.reset_api_call_count chain;
  ignore (Chain.get_storage_at chain a slot0 ~height:0);
  ignore (Chain.get_storage_at chain a slot0 ~height:0);
  check_i "counted" 2 (Chain.api_call_count chain);
  Chain.reset_api_call_count chain;
  check_i "reset" 0 (Chain.api_call_count chain)

let test_tx_records_and_index () =
  let chain = Chain.create () in
  (* Contract that stores 1 at slot 0 when called. *)
  let code =
    Evm.Asm.assemble
      [
        Evm.Asm.Push_int 1;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.SSTORE;
        Evm.Asm.Op Evm.Opcode.STOP;
      ]
  in
  let a = Chain.install_contract chain ~runtime:code () in
  check_b "no txs yet" false (Chain.has_transactions chain a);
  let r = Chain.call chain ~from:alice ~to_:a () in
  check_b "success" true (r.Chain.tx_status = Evm.Interp.Returned);
  check_b "indexed now" true (Chain.has_transactions chain a);
  check_i "global record" 1 (List.length (Chain.all_transactions chain));
  (* The storage write is visible in history at the tx height. *)
  check_u "write recorded" U256.one
    (Chain.get_storage_at chain a slot0 ~height:(Chain.height chain))

let test_reverted_tx_leaves_no_history () =
  let chain = Chain.create () in
  let code =
    Evm.Asm.assemble
      [
        Evm.Asm.Push_int 1;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.SSTORE;
        Evm.Asm.Push_int 0;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.REVERT;
      ]
  in
  let a = Chain.install_contract chain ~runtime:code () in
  let r = Chain.call chain ~from:alice ~to_:a () in
  check_b "reverted" true (r.Chain.tx_status = Evm.Interp.Reverted);
  check_u "no storage change" U256.zero
    (Chain.get_storage_at chain a slot0 ~height:(Chain.height chain));
  check_i "no change heights" 0
    (List.length (Chain.storage_change_heights chain a slot0))

let test_deploy_via_init_code () =
  let chain = Chain.create () in
  let init =
    Evm.Asm.assemble
      [
        Evm.Asm.Push_int 0;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.MSTORE8;
        Evm.Asm.Push_int 1;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.RETURN;
      ]
  in
  match Chain.deploy chain ~from:alice ~init_code:init () with
  | Error e -> Alcotest.failf "deploy failed: %s" e
  | Ok addr ->
      check_b "code installed" true (Chain.code_at chain addr = "\x00");
      check_b "meta present" true (Chain.contract_meta chain addr <> None)

let test_internal_call_indexing () =
  let chain = Chain.create () in
  let b = Chain.install_contract chain ~runtime:stop_runtime () in
  (* a delegatecalls b when called. *)
  let a_code =
    Evm.Asm.assemble
      [
        Evm.Asm.Push_int 0;
        Evm.Asm.Push_int 0;
        Evm.Asm.Push_int 0;
        Evm.Asm.Push_int 0;
        Evm.Asm.Push_u256 (Evm.Address.to_u256 b);
        Evm.Asm.Op Evm.Opcode.GAS;
        Evm.Asm.Op Evm.Opcode.DELEGATECALL;
        Evm.Asm.Op Evm.Opcode.POP;
        Evm.Asm.Op Evm.Opcode.STOP;
      ]
  in
  let a = Chain.install_contract chain ~runtime:a_code () in
  let r = Chain.call chain ~from:alice ~to_:a () in
  check_i "one internal call" 1 (List.length r.Chain.tx_internal_calls);
  (match r.Chain.tx_internal_calls with
  | [ ic ] ->
      check_b "kind" true (ic.Chain.ic_kind = Evm.Interp.Delegatecall);
      check_b "to b" true (Evm.Address.equal ic.Chain.ic_to b)
  | _ -> Alcotest.fail "internal calls");
  (* b participated in a transaction, so it now "has transactions". *)
  check_b "b indexed via internal call" true (Chain.has_transactions chain b)

let test_block_timestamps_advance () =
  let chain = Chain.create () in
  let code =
    Evm.Asm.assemble
      [
        Evm.Asm.Op Evm.Opcode.TIMESTAMP;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.MSTORE;
        Evm.Asm.Push_int 32;
        Evm.Asm.Push_int 0;
        Evm.Asm.Op Evm.Opcode.RETURN;
      ]
  in
  let a = Chain.install_contract chain ~runtime:code () in
  let read () =
    let r = Chain.call chain ~from:alice ~to_:a () in
    Evm.Abi.decode_uint r.Chain.tx_return_data
  in
  let t1 = read () in
  Chain.advance_blocks chain 100;
  let t2 = read () in
  (* 101 blocks elapsed between the two reads at 12 s each. *)
  check_u "12s per block" (U256.of_int (12 * 101)) (U256.sub t2 t1)

let test_height_advances () =
  let chain = Chain.create () in
  check_i "starts at 0" 0 (Chain.height chain);
  let _ = Chain.install_contract chain ~runtime:stop_runtime () in
  check_i "install mines" 1 (Chain.height chain);
  Chain.advance_blocks chain 10;
  check_i "advanced" 11 (Chain.height chain)

(* Events emitted during a transaction are recorded on the tx record. *)
let test_tx_logs_recorded () =
  let chain = Chain.create () in
  let token =
    match
      Chain.deploy chain ~from:alice
        ~init_code:(Minisol.Codegen.init_code (Minisol.Patterns.erc20ish_logic ()))
        ()
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "deploy: %s" e
  in
  let r =
    Chain.call chain ~from:alice ~to_:token
      ~input:
        (Evm.Abi.encode_call ~signature:"mint(uint256)"
           [ Evm.Abi.Uint (U256.of_int 5) ])
      ()
  in
  check_b "mint ok" true (r.Chain.tx_status = Evm.Interp.Returned);
  check_i "one log" 1 (List.length r.Chain.tx_logs);
  match r.Chain.tx_logs with
  | [ log ] ->
      check_b "topic is the Transfer hash" true
        (log.Evm.Interp.topics
        = [ U256.of_bytes_be (Keccak.digest "Transfer(address,address,uint256)") ]);
      check_b "emitted by the token" true
        (Evm.Address.equal log.Evm.Interp.log_address token)
  | _ -> Alcotest.fail "log missing"

(* Algorithm 1 assumes logic addresses are never reused (4.3).  When a
   proxy downgrades back to an old logic (A -> B -> A), the endpoints of
   the whole range agree and the search can terminate early, missing B —
   the documented limitation, pinned here as expected behaviour. *)
let test_algorithm1_value_reuse_limitation () =
  let chain = Chain.create () in
  let proxy = Chain.install_contract chain ~runtime:stop_runtime () in
  let a = U256.of_int 0xA in
  let b = U256.of_int 0xB in
  Chain.set_storage_direct chain proxy slot0 a;
  Chain.advance_blocks chain 50;
  Chain.set_storage_direct chain proxy slot0 b;
  Chain.advance_blocks chain 50;
  Chain.set_storage_direct chain proxy slot0 a;
  Chain.advance_blocks chain 50;
  let values =
    Proxion.Logic_resolve.algorithm1 chain proxy ~slot:slot0 ~lower:2
      ~upper:(Chain.height chain)
  in
  (* Both endpoints of [2, head] hold A, so the search returns {A} and
     never sees B. *)
  check_b "endpoint-equal range hides the middle value" true
    (U256.Set.equal values (U256.Set.singleton a));
  (* Starting from genesis the endpoints differ (zero vs A), so the split
     recovers everything. *)
  let all =
    Proxion.Logic_resolve.algorithm1 chain proxy ~slot:slot0 ~lower:0
      ~upper:(Chain.height chain)
  in
  check_b "full-range search sees B" true (U256.Set.mem b all)

(* The JSON-RPC facade: hex conventions and historical storage reads. *)
let test_rpc_facade () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:"\x00\x01\x02" () in
  Chain.set_storage_direct chain a slot0 (U256.of_int 0xbeef);
  Chain.advance_blocks chain 10;
  Chain.set_storage_direct chain a slot0 (U256.of_int 0xcafe);
  let call meth params =
    match Chain_rpc.call chain ~meth ~params with
    | Ok v -> v
    | Error e -> Alcotest.failf "%s failed: %s" meth (Chain_rpc.error_to_string e)
  in
  Alcotest.(check string) "chain id" "0x1" (call "eth_chainId" []);
  Alcotest.(check string) "block number"
    (U256.to_hex (U256.of_int (Chain.height chain)))
    (call "eth_blockNumber" []);
  Alcotest.(check string) "code" "0x000102"
    (call "eth_getCode" [ Evm.Address.to_hex a; "latest" ]);
  (* Historical storage read: before the second write the slot held 0xbeef. *)
  Alcotest.(check string) "storage latest"
    ("0x" ^ String.make 60 '0' ^ "cafe")
    (call "eth_getStorageAt" [ Evm.Address.to_hex a; "0x0"; "latest" ]);
  Alcotest.(check string) "storage historical"
    ("0x" ^ String.make 60 '0' ^ "beef")
    (call "eth_getStorageAt" [ Evm.Address.to_hex a; "0x0"; "0x5" ]);
  (* Errors. *)
  check_b "unknown method" true
    (match Chain_rpc.call chain ~meth:"eth_sendTransaction" ~params:[] with
    | Error (Chain_rpc.Unknown_method _) -> true
    | _ -> false);
  check_b "bad arity" true
    (match Chain_rpc.call chain ~meth:"eth_getCode" ~params:[] with
    | Error (Chain_rpc.Invalid_params _) -> true
    | _ -> false);
  check_b "block beyond head" true
    (match
       Chain_rpc.call chain ~meth:"eth_getStorageAt"
         ~params:[ Evm.Address.to_hex a; "0x0"; "0xffffff" ]
     with
    | Error (Chain_rpc.Invalid_params _) -> true
    | _ -> false);
  (* Historical tags on latest-only methods: a valid past height is a
     distinct, named, non-retryable error — not Invalid_params, and never
     classified transient (the resilient transport must not retry it). *)
  List.iter
    (fun (meth, params) ->
      match Chain_rpc.call chain ~meth ~params with
      | Error (Chain_rpc.Unsupported_height m) ->
          Alcotest.(check string)
            (meth ^ " unsupported-height names the method")
            meth m;
          check_b (meth ^ " unsupported-height is permanent") false
            (Chain_rpc.is_transient (Chain_rpc.Unsupported_height m));
          check_b (meth ^ " message names the method") true
            (let s =
               Chain_rpc.error_to_string (Chain_rpc.Unsupported_height m)
             in
             let rec contains i =
               i + String.length meth <= String.length s
               && (String.sub s i (String.length meth) = meth
                  || contains (i + 1))
             in
             contains 0)
      | Ok _ -> Alcotest.failf "%s served a historical height" meth
      | Error e ->
          Alcotest.failf "%s: expected Unsupported_height, got %s" meth
            (Chain_rpc.error_to_string e))
    [
      ("eth_getCode", [ Evm.Address.to_hex a; "0x5" ]);
      ("eth_getBalance", [ Evm.Address.to_hex a; "0x5" ]);
      ("eth_getTransactionCount", [ Evm.Address.to_hex a; "0x5" ]);
    ];
  (* The same height tag on the history-capable method still works. *)
  check_b "getStorageAt keeps serving history" true
    (Result.is_ok
       (Chain_rpc.call chain ~meth:"eth_getStorageAt"
          ~params:[ Evm.Address.to_hex a; "0x0"; "0x5" ]))

let test_intrinsic_gas () =
  let chain = Chain.create () in
  let a = Chain.install_contract chain ~runtime:"\x00" () in
  (* Empty calldata: exactly the 21000 base (the STOP contract runs free). *)
  let r0 = Chain.call chain ~from:alice ~to_:a () in
  check_i "base cost" 21_000 r0.Chain.tx_gas_used;
  (* Calldata bytes are charged 16 (non-zero) / 4 (zero). *)
  let r1 = Chain.call chain ~from:alice ~to_:a ~input:"\xff\x00" () in
  check_i "data bytes" (21_000 + 16 + 4) r1.Chain.tx_gas_used;
  (* Creations carry the 32000 surcharge on top. *)
  let init =
    Evm.Asm.assemble [ Evm.Asm.Push_int 0; Evm.Asm.Push_int 0; Evm.Asm.Op Evm.Opcode.RETURN ]
  in
  (match Chain.deploy chain ~from:alice ~init_code:init () with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deploy: %s" e);
  match Chain.all_transactions chain with
  | txs -> (
      match List.rev txs with
      | last :: _ ->
          check_b "creation cost includes surcharge" true
            (last.Chain.tx_gas_used > 21_000 + 32_000)
      | [] -> Alcotest.fail "no txs")

let test_rpc_eth_call () =
  let chain = Chain.create () in
  let token =
    match
      Chain.deploy chain ~from:alice
        ~init_code:(Minisol.Codegen.init_code (Minisol.Patterns.counter_logic ()))
        ()
    with
    | Ok a -> a
    | Error e -> Alcotest.failf "deploy: %s" e
  in
  ignore
    (Chain.call chain ~from:alice ~to_:token
       ~input:
         (Evm.Abi.encode_call ~signature:"setCount(uint256)"
            [ Evm.Abi.Uint (U256.of_int 77) ])
       ());
  let data = Hexutil.to_hex (Evm.Abi.encode_call ~signature:"count()" []) in
  (match
     Chain_rpc.call chain ~meth:"eth_call"
       ~params:[ Evm.Address.to_hex token; data; "latest" ]
   with
  | Ok ret ->
      check_u "count read via eth_call" (U256.of_int 77)
        (U256.of_hex ret)
  | Error e -> Alcotest.failf "eth_call: %s" (Chain_rpc.error_to_string e));
  (* eth_call leaves no transaction behind. *)
  check_i "no extra tx" 2 (List.length (Chain.all_transactions chain))

let suite =
  [
    Alcotest.test_case "install and meta" `Quick test_install_and_meta;
    Alcotest.test_case "rpc eth_call" `Quick test_rpc_eth_call;
    Alcotest.test_case "intrinsic gas" `Quick test_intrinsic_gas;
    Alcotest.test_case "json-rpc facade" `Quick test_rpc_facade;
    Alcotest.test_case "tx logs recorded" `Quick test_tx_logs_recorded;
    Alcotest.test_case "algorithm1 value-reuse limitation" `Quick
      test_algorithm1_value_reuse_limitation;
    Alcotest.test_case "storage history" `Quick test_storage_history;
    Alcotest.test_case "api counter" `Quick test_api_counter;
    Alcotest.test_case "tx records" `Quick test_tx_records_and_index;
    Alcotest.test_case "reverted tx history" `Quick test_reverted_tx_leaves_no_history;
    Alcotest.test_case "deploy via init" `Quick test_deploy_via_init_code;
    Alcotest.test_case "internal call indexing" `Quick test_internal_call_indexing;
    Alcotest.test_case "height advances" `Quick test_height_advances;
    Alcotest.test_case "block timestamps advance" `Quick test_block_timestamps_advance;
  ]
